//! Ablation benches for the design choices DESIGN.md calls out:
//! frequency-sorted vs FIFO scheduling, Algorithm 1's subgraph-cache
//! thresholds, and sequential vs parallel execution.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use svqa::aggregator::{AggregatorConfig, DataAggregator};
use svqa::executor::scheduler::{QueryScheduler, SchedulerConfig};
use svqa::qparser::QueryGraphGenerator;
use svqa::vision::prior::PairPrior;
use svqa::vision::sgg::{SceneGraphGenerator, SggConfig};
use svqa::{Svqa, SvqaConfig};
use svqa_dataset::{build_knowledge_graph, Mvqa};

fn bench_ablations(c: &mut Criterion) {
    let mvqa = Mvqa::generate_small(500, 21);
    let system = Svqa::build(&mvqa.images, &mvqa.kg, SvqaConfig::default());
    let generator = QueryGraphGenerator::new();
    let graphs: Vec<_> = mvqa
        .questions
        .iter()
        .filter_map(|q| generator.generate(&q.question).ok())
        .collect();

    // Scheduler ordering ablation.
    for (label, sort) in [("freq_sorted", true), ("fifo", false)] {
        let scheduler = QueryScheduler::new(SchedulerConfig {
            frequency_sort: sort,
            ..SchedulerConfig::default()
        });
        c.bench_function(&format!("ablation/scheduler_{label}"), |b| {
            b.iter(|| black_box(scheduler.run(system.merged_graph(), &graphs).answers.len()))
        });
    }

    // Parallelism ablation.
    for threads in [1usize, 2, 4] {
        let scheduler = QueryScheduler::new(SchedulerConfig {
            threads,
            ..SchedulerConfig::default()
        });
        c.bench_function(&format!("ablation/threads_{threads}"), |b| {
            b.iter(|| black_box(scheduler.run(system.merged_graph(), &graphs).answers.len()))
        });
    }

    // Algorithm 1 thresholds (c' frequency threshold, k radius).
    let kg = build_knowledge_graph();
    let prior = PairPrior::fit(&mvqa.images);
    let sgg = SceneGraphGenerator::new(SggConfig::default(), prior);
    let scene_graphs: Vec<_> = mvqa
        .images
        .iter()
        .take(300)
        .map(|i| sgg.generate(i).graph)
        .collect();
    for (label, c_threshold, k) in [
        ("paper_c5_k2", 5usize, 2usize),
        ("no_cache_c_huge", usize::MAX / 2, 2),
        ("deep_c5_k4", 5, 4),
    ] {
        let aggregator = DataAggregator::new(AggregatorConfig {
            frequency_threshold: c_threshold,
            k,
            ..AggregatorConfig::default()
        });
        c.bench_function(&format!("ablation/aggregator_{label}"), |b| {
            b.iter(|| black_box(aggregator.merge(&scene_graphs, &kg).graph.edge_count()))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ablations
}
criterion_main!(benches);
