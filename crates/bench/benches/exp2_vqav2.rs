//! Exp-2 (Table IV) bench: baseline simulators vs SVQA on modified VQAv2.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use svqa::baselines::vqa_models::{BaselineVqa, VqaModel};
use svqa::dataset::groundtruth::GroundTruth;
use svqa::dataset::vqav2::{generate_vqav2, VqaV2Config};
use svqa::{Svqa, SvqaConfig};

fn bench_exp2(c: &mut Criterion) {
    let v = generate_vqav2(VqaV2Config {
        image_count: 400,
        per_type: 10,
        seed: 5,
    });
    let gt = GroundTruth::new(&v.images, &v.kg);

    for model in VqaModel::ALL {
        c.bench_function(&format!("exp2/baseline_{}", model.name()), |b| {
            b.iter(|| {
                black_box(
                    BaselineVqa::new(model, 1)
                        .answer_dataset(&gt, &v.specs, v.images.len())
                        .0
                        .len(),
                )
            })
        });
    }

    let system = Svqa::build(&v.images, &v.kg, SvqaConfig::default());
    let questions: Vec<&str> = v.questions.iter().map(|q| q.question.as_str()).collect();
    c.bench_function("exp2/svqa_batch", |b| {
        b.iter(|| black_box(system.answer_batch(black_box(&questions)).answers.len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_exp2
}
criterion_main!(benches);
