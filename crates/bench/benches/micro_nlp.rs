//! Microbenchmarks: the NLP substrate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use svqa_nlp::{levenshtein, Embedder, PosTagger, RuleDependencyParser};

const Q: &str = "What kind of clothes are worn by the wizard who is most \
                 frequently hanging out with Harry Potter's girlfriend?";

fn bench_nlp(c: &mut Criterion) {
    let tagger = PosTagger::new();
    let parser = RuleDependencyParser::new();
    let embedder = Embedder::new();
    let tagged = tagger.tag(Q);

    c.bench_function("nlp/tokenize", |b| {
        b.iter(|| black_box(svqa_nlp::tokenize(black_box(Q)).len()))
    });
    c.bench_function("nlp/pos_tag", |b| {
        b.iter(|| black_box(tagger.tag(black_box(Q)).len()))
    });
    c.bench_function("nlp/dependency_parse", |b| {
        b.iter(|| black_box(parser.parse(black_box(&tagged)).unwrap().len()))
    });
    c.bench_function("nlp/tagger_construction", |b| {
        b.iter(|| black_box(PosTagger::new()))
    });
    c.bench_function("nlp/embed_word", |b| {
        b.iter(|| black_box(embedder.embed(black_box("wizard"))))
    });
    c.bench_function("nlp/similarity", |b| {
        b.iter(|| black_box(embedder.similarity(black_box("hang out with"), black_box("near"))))
    });
    c.bench_function("nlp/levenshtein", |b| {
        b.iter(|| black_box(levenshtein(black_box("girlfriend"), black_box("boyfriend"))))
    });
}

criterion_group!(benches, bench_nlp);
criterion_main!(benches);
