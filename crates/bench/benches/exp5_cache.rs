//! Exp-5 (Figs. 10–11) bench: the key-centric cache.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use svqa::executor::cache::{CacheGranularity, EvictionPolicy};
use svqa::executor::scheduler::{QueryScheduler, SchedulerConfig};
use svqa::qparser::QueryGraphGenerator;
use svqa::{Svqa, SvqaConfig};
use svqa_dataset::Mvqa;

fn bench_exp5(c: &mut Criterion) {
    let mvqa = Mvqa::generate_small(500, 21);
    let system = Svqa::build(&mvqa.images, &mvqa.kg, SvqaConfig::default());
    let generator = QueryGraphGenerator::new();
    let graphs: Vec<_> = mvqa
        .questions
        .iter()
        .filter_map(|q| generator.generate(&q.question).ok())
        .collect();

    // Fig. 10a/10b: granularities.
    for (label, g) in [
        ("none", CacheGranularity::None),
        ("scope", CacheGranularity::Scope),
        ("path", CacheGranularity::Path),
        ("both", CacheGranularity::Both),
    ] {
        let scheduler = QueryScheduler::new(SchedulerConfig {
            granularity: g,
            pool_size: 100,
            ..SchedulerConfig::default()
        });
        c.bench_function(&format!("exp5/batch_cache_{label}"), |b| {
            b.iter(|| black_box(scheduler.run(system.merged_graph(), &graphs).answers.len()))
        });
    }

    // Fig. 11: policy × pool size.
    for policy in [EvictionPolicy::Lfu, EvictionPolicy::Lru] {
        for pool in [10usize, 100] {
            let scheduler = QueryScheduler::new(SchedulerConfig {
                policy,
                pool_size: pool,
                ..SchedulerConfig::default()
            });
            c.bench_function(&format!("exp5/pool_{policy:?}_{pool}"), |b| {
                b.iter(|| black_box(scheduler.run(system.merged_graph(), &graphs).answers.len()))
            });
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_exp5
}
criterion_main!(benches);
