//! Microbenchmarks: the graph substrate.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use svqa_graph::{induced_subgraph, k_hop_neighborhood, Graph};

fn build_graph(n: usize) -> Graph {
    let mut g = Graph::with_capacity(n, n * 4);
    let ids: Vec<_> = (0..n).map(|i| g.add_vertex(format!("v{}", i % 64))).collect();
    for i in 0..n {
        g.add_edge(ids[i], ids[(i * 7 + 1) % n], "e").unwrap();
        g.add_edge(ids[i], ids[(i * 13 + 5) % n], "f").unwrap();
    }
    g
}

fn bench_graph(c: &mut Criterion) {
    let g = build_graph(10_000);
    let start = svqa_graph::VertexId::from_index(0);

    c.bench_function("graph/build_10k", |b| {
        b.iter(|| black_box(build_graph(black_box(10_000))))
    });
    c.bench_function("graph/label_lookup", |b| {
        b.iter(|| black_box(g.vertices_with_label(black_box("v17")).len()))
    });
    c.bench_function("graph/k_hop_2", |b| {
        b.iter(|| black_box(k_hop_neighborhood(&g, start, 2).len()))
    });
    c.bench_function("graph/induced_subgraph_2", |b| {
        b.iter(|| black_box(induced_subgraph(&g, start, 2).edge_count()))
    });
    c.bench_function("graph/out_neighbors_scan", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for (vid, _) in g.vertices().take(1000) {
                acc += g.out_neighbors(vid).count();
            }
            black_box(acc)
        })
    });
}

criterion_group!(benches, bench_graph);
criterion_main!(benches);
