//! Exp-4 (Fig. 9) bench: query-graph generation vs the split baselines.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use svqa::baselines::splitters::{SentenceSplitter, SplitterModel};
use svqa::qparser::QueryGraphGenerator;
use svqa_dataset::Mvqa;

fn bench_exp4(c: &mut Criterion) {
    let mvqa = Mvqa::generate_small(400, 21);
    let generator = QueryGraphGenerator::new();

    // Fig. 9b: per-clause-count parse latency.
    for (label, clause_filter) in [("1clause", 1usize), ("2clause", 2), ("3clause", 3)] {
        let subset: Vec<&str> = mvqa
            .questions
            .iter()
            .filter(|q| q.clauses == clause_filter && !q.adversarial)
            .map(|q| q.question.as_str())
            .collect();
        if subset.is_empty() {
            continue;
        }
        c.bench_function(&format!("exp4/parse_{label}"), |b| {
            b.iter(|| {
                for q in &subset {
                    black_box(generator.generate(q).ok());
                }
            })
        });
    }

    // Fig. 9a: ours (construction + batch) vs the splitters' real split
    // work (their simulated-clock cost is constants, not benchable).
    let questions: Vec<&str> = mvqa
        .questions
        .iter()
        .take(30)
        .map(|q| q.question.as_str())
        .collect();
    c.bench_function("exp4/ours_cold_30_questions", |b| {
        b.iter(|| {
            let generator = QueryGraphGenerator::new();
            let mut n = 0;
            for q in &questions {
                n += usize::from(generator.generate(q).is_ok());
            }
            black_box(n)
        })
    });
    let splitter = SentenceSplitter::new(SplitterModel::AbcdMlp);
    c.bench_function("exp4/abcd_split_work_30_questions", |b| {
        b.iter(|| black_box(splitter.split_batch(black_box(&questions)).0.len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_exp4
}
criterion_main!(benches);
