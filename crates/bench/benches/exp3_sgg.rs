//! Exp-3 (Table V) bench: scene-graph generation per framework × method.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use svqa::dataset::generate_crowded_images;
use svqa::vision::prior::PairPrior;
use svqa::vision::sgg::{SceneGraphGenerator, SggConfig, SggModel};

fn bench_exp3(c: &mut Criterion) {
    let images = generate_crowded_images(50, 0x5661);
    let prior = PairPrior::fit(&images);

    for model in SggModel::ALL {
        for use_tde in [false, true] {
            let label = format!(
                "exp3/sgg_{}_{}",
                model.name(),
                if use_tde { "tde" } else { "orig" }
            );
            let sgg = SceneGraphGenerator::new(
                SggConfig {
                    model,
                    use_tde,
                    ..SggConfig::default()
                },
                prior.clone(),
            );
            c.bench_function(&label, |b| {
                b.iter(|| {
                    let mut edges = 0usize;
                    for img in &images {
                        edges += sgg.generate(img).graph.edge_count();
                    }
                    black_box(edges)
                })
            });
        }
    }

    c.bench_function("exp3/prior_fit", |b| {
        b.iter(|| black_box(PairPrior::fit(black_box(&images)).pair_count()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_exp3
}
criterion_main!(benches);
