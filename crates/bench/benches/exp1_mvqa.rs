//! Exp-1 (Table III) bench: end-to-end SVQA on an MVQA world.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use svqa::{Svqa, SvqaConfig};
use svqa_dataset::Mvqa;

fn bench_exp1(c: &mut Criterion) {
    let mvqa = Mvqa::generate_small(400, 21);

    c.bench_function("exp1/offline_build_400_images", |b| {
        b.iter(|| {
            black_box(Svqa::build(
                black_box(&mvqa.images),
                &mvqa.kg,
                SvqaConfig::default(),
            ))
        })
    });

    let system = Svqa::build(&mvqa.images, &mvqa.kg, SvqaConfig::default());
    let judgment = "Does the dog appear in the car?";
    let example1 = "What kind of clothes are worn by the wizard who is most \
                    frequently hanging out with Harry Potter's girlfriend?";
    c.bench_function("exp1/answer_judgment", |b| {
        b.iter(|| black_box(system.answer(black_box(judgment))))
    });
    c.bench_function("exp1/answer_example1", |b| {
        b.iter(|| black_box(system.answer(black_box(example1))))
    });

    let questions: Vec<&str> = mvqa
        .questions
        .iter()
        .take(25)
        .map(|q| q.question.as_str())
        .collect();
    c.bench_function("exp1/batch_25_questions", |b| {
        b.iter(|| black_box(system.answer_batch(black_box(&questions)).answers.len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_exp1
}
criterion_main!(benches);
