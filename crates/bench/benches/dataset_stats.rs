//! Bench for the Table I/II path: dataset generation + statistics.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use svqa_dataset::{generate_images, Mvqa};

fn bench_dataset(c: &mut Criterion) {
    c.bench_function("dataset/generate_500_images", |b| {
        b.iter(|| black_box(generate_images(black_box(500), 7).len()))
    });
    let mvqa = Mvqa::generate_small(500, 7);
    c.bench_function("dataset/stats_table2", |b| {
        b.iter(|| black_box(mvqa.stats()))
    });
    c.bench_function("dataset/full_mvqa_300", |b| {
        b.iter_batched(
            || (),
            |()| black_box(Mvqa::generate_small(300, 11).questions.len()),
            BatchSize::PerIteration,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_dataset
}
criterion_main!(benches);
