//! # svqa-bench
//!
//! The experiment harness of the SVQA reproduction: one runner per table
//! and figure of the paper's evaluation (§VII). The binaries `exp_tables`
//! and `exp_figures` print paper-style rows (with the paper's reported
//! numbers alongside for comparison) and write JSON reports under
//! `results/`; the Criterion benches under `benches/` time scaled-down
//! versions of the same code paths.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use experiments::*;
pub use report::*;
