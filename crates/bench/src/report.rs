//! Report rendering and persistence.

use serde::Serialize;
use std::fmt::Write as _;
use std::path::Path;

/// A rendered table: header + rows of equal arity.
#[derive(Debug, Clone, Serialize)]
pub struct Table {
    /// Table title (e.g. "Table III — Exp-1").
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Build a table.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_owned(),
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells.to_vec());
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }
}

/// Write a serializable report to `results/<name>.json` (best effort — the
/// harness still prints everything). The payload is wrapped alongside a
/// `telemetry` section holding the process-global metrics snapshot at save
/// time — span histograms, counters, cache hit rates — and a `profiles`
/// section with any `EXPLAIN ANALYZE` profiles recorded during the run, so
/// a saved experiment carries its own plan-level evidence.
pub fn save_json<T: Serialize>(name: &str, value: &T) {
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{name}.json"));
    let wrapped = serde_json::json!({
        "results": value,
        "telemetry": svqa_telemetry::global().snapshot(),
        "profiles": svqa_telemetry::global_profiles().recent(),
    });
    if let Ok(json) = serde_json::to_string_pretty(&wrapped) {
        let _ = std::fs::write(path, json);
    }
}

/// Format a ratio as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format a duration in seconds.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}s", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("Demo", &["a", "long-header"]);
        t.row(&["x".into(), "y".into()]);
        t.row(&["longer-cell".into(), "z".into()]);
        let s = t.render();
        assert!(s.contains("Demo"));
        assert!(s.contains("longer-cell"));
        // Leading blank line + title + header + separator + 2 rows.
        assert_eq!(s.lines().count(), 6);
    }

    #[test]
    fn pct_and_secs() {
        assert_eq!(pct(0.925), "92.5%");
        assert_eq!(secs(std::time::Duration::from_millis(1500)), "1.500s");
    }
}
