//! Experiment runners — one per paper table/figure.

use crate::report::{pct, Table};
use serde::Serialize;
use std::time::{Duration, Instant};
use svqa::baselines::splitters::{SentenceSplitter, SplitterModel};
use svqa::baselines::vqa_models::{BaselineVqa, VqaModel};
use svqa::dataset::groundtruth::GroundTruth;
use svqa::dataset::mvqa::{Mvqa, MvqaConfig};
use svqa::dataset::questions::QuestionCounts;
use svqa::dataset::vqav2::{generate_vqav2, VqaV2, VqaV2Config};
use svqa::executor::cache::{CacheGranularity, EvictionPolicy};
use svqa::executor::scheduler::SchedulerConfig;
use svqa::qparser::QueryGraphGenerator;
use svqa::vision::eval::RecallAccumulator;
use svqa::vision::prior::PairPrior;
use svqa::vision::sgg::{SceneGraphGenerator, SggConfig, SggModel};
use svqa::{evaluate_on_mvqa, EvalOutcome, Svqa, SvqaConfig};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper-size dataset (4,233 images) — minutes.
    Full,
    /// Reduced dataset (1,000 images) — seconds; same shapes.
    Quick,
}

impl Scale {
    /// Image count at this scale.
    pub fn image_count(self) -> usize {
        match self {
            Scale::Full => 4233,
            Scale::Quick => 1000,
        }
    }
}

/// Build the MVQA dataset at a scale.
pub fn build_mvqa(scale: Scale) -> Mvqa {
    Mvqa::generate(MvqaConfig {
        image_count: scale.image_count(),
        seed: 0x4d56_5141,
        counts: QuestionCounts::default(),
    })
}

/// Build the modified VQAv2 at a scale.
pub fn build_vqav2(scale: Scale) -> VqaV2 {
    generate_vqav2(VqaV2Config {
        image_count: scale.image_count().min(1200),
        per_type: 20,
        seed: 0x5651_4132,
    })
}

// ---------------------------------------------------------------- Table I/II

/// Tables I and II: dataset statistics.
pub fn table_1_and_2(mvqa: &Mvqa) -> (Table, Table) {
    let stats = mvqa.stats();
    let mut t1 = Table::new(
        "Table I — VQA dataset comparison (literature rows are the paper's constants)",
        &["Dataset", "Images", "Knowledge?", "Cross-image?", "Avg. query length"],
    );
    for (name, images, kb, cross, len) in [
        ("DAQUR", "1,449", "no", "no", "11.5"),
        ("Visual 7W", "47,300", "no", "no", "6.9"),
        ("VQA(2.0)", "200K", "no", "no", "6.1"),
        ("KB-VQA", "700", "given", "no", "6.8"),
        ("FVQA", "2,190", "given", "no", "9.5"),
        ("OK-VQA", "14,031", "open", "no", "8.1"),
    ] {
        t1.row(&[
            name.into(),
            images.into(),
            kb.into(),
            cross.into(),
            len.into(),
        ]);
    }
    t1.row(&[
        "MVQA (ours, generated)".into(),
        format!("{}", stats.image_count),
        "yes".into(),
        "yes".into(),
        format!("{:.1} (paper: 16.9)", stats.avg_query_length),
    ]);

    let mut t2 = Table::new(
        "Table II — MVQA composition (paper: 40/16/44 questions, 94/35/90 clauses, 58/28/70 SPOs, 1593/2182/1201 avg images)",
        &["Type", "Questions", "Clauses", "Unique SPOs", "Avg. images"],
    );
    for (name, row) in [
        ("Judgement", &stats.judgment),
        ("Counting", &stats.counting),
        ("Reasoning", &stats.reasoning),
    ] {
        t2.row(&[
            name.into(),
            row.questions.to_string(),
            row.clauses.to_string(),
            row.unique_spos.to_string(),
            format!("{:.0}", row.avg_images),
        ]);
    }
    t2.row(&[
        "Total".into(),
        stats.question_count.to_string(),
        stats.total_clauses.to_string(),
        stats.unique_spos_total.to_string(),
        String::new(),
    ]);
    (t1, t2)
}

// ------------------------------------------------------------------- Exp-1

/// Exp-1 report data.
#[derive(Debug, Clone, Serialize)]
pub struct Exp1Report {
    /// Measured outcome.
    pub outcome: EvalOutcome,
    /// Offline build time (not part of the paper's query latency).
    pub build_secs: f64,
}

/// Exp-1 (Table III): SVQA on MVQA.
pub fn run_exp1(mvqa: &Mvqa) -> (Exp1Report, Table) {
    let t0 = Instant::now();
    let system = Svqa::build(&mvqa.images, &mvqa.kg, SvqaConfig::default());
    let build_secs = t0.elapsed().as_secs_f64();
    let outcome = evaluate_on_mvqa(&system, mvqa);
    let mut t = Table::new(
        "Table III — Exp-1: answering complex queries on MVQA",
        &["Method", "Latency (100 q)", "Judgment", "Counting", "Reasoning", "Overall"],
    );
    t.row(&[
        "SVQA (ours)".into(),
        format!("{:.3}s", outcome.total_latency.as_secs_f64()),
        pct(outcome.judgment),
        pct(outcome.counting),
        pct(outcome.reasoning),
        pct(outcome.overall),
    ]);
    t.row(&[
        "SVQA (paper)".into(),
        "10.38s".into(),
        "90.0%".into(),
        "80.0%".into(),
        "87.5%".into(),
        "85.8%".into(),
    ]);
    (
        Exp1Report {
            outcome,
            build_secs,
        },
        t,
    )
}

// ------------------------------------------------------------------- Exp-2

/// One Exp-2 row.
#[derive(Debug, Clone, Serialize)]
pub struct Exp2Row {
    /// System name.
    pub method: String,
    /// Latency in seconds (simulated for the baselines, wall for SVQA).
    pub latency_secs: f64,
    /// Judgment accuracy.
    pub judgment: f64,
    /// Counting accuracy.
    pub counting: f64,
    /// Reasoning accuracy.
    pub reasoning: f64,
}

/// Exp-2 (Table IV): SVQA vs VisualBert/ViLT/OFA on modified VQAv2.
pub fn run_exp2(vqav2: &VqaV2) -> (Vec<Exp2Row>, Table) {
    let as_mvqa = Mvqa {
        images: vqav2.images.clone(),
        kg: vqav2.kg.clone(),
        questions: vqav2.questions.clone(),
        specs: vqav2.specs.clone(),
        config: MvqaConfig::default(),
    };
    let gt = GroundTruth::new(&vqav2.images, &vqav2.kg);
    let mut rows = Vec::new();
    for model in VqaModel::ALL {
        let baseline = BaselineVqa::new(model, 0xb5e);
        let (answers, clock) = baseline.answer_dataset(&gt, &vqav2.specs, vqav2.images.len());
        let (j, c, r, _) = as_mvqa.score_answers(&answers);
        rows.push(Exp2Row {
            method: model.name().to_owned(),
            latency_secs: clock.elapsed().as_secs_f64(),
            judgment: j,
            counting: c,
            reasoning: r,
        });
    }
    // SVQA itself.
    let system = Svqa::build(&vqav2.images, &vqav2.kg, SvqaConfig::default());
    let outcome = evaluate_on_mvqa(&system, &as_mvqa);
    rows.push(Exp2Row {
        method: "SVQA".to_owned(),
        latency_secs: outcome.total_latency.as_secs_f64(),
        judgment: outcome.judgment,
        counting: outcome.counting,
        reasoning: outcome.reasoning,
    });

    let mut t = Table::new(
        "Table IV — Exp-2: modified VQAv2 (baseline latencies are simulated-clock; paper row order: VisualBert 3375.56s/72.0/60.0/68.5, Vilt 4216.34s/76.5/77.4/67.0, OFA 866.36s/95.5/87.0/79.0, SVQA 10.38s/93.0/83.8/83.2)",
        &["Method", "Latency", "Judgment", "Counting", "Reasoning"],
    );
    for row in &rows {
        t.row(&[
            row.method.clone(),
            format!("{:.2}s", row.latency_secs),
            pct(row.judgment),
            pct(row.counting),
            pct(row.reasoning),
        ]);
    }
    (rows, t)
}

// ------------------------------------------------------------------- Exp-3

/// One Exp-3 row.
#[derive(Debug, Clone, Serialize)]
pub struct Exp3Row {
    /// SGG framework.
    pub model: String,
    /// "Original" or "TDE".
    pub method: String,
    /// mR@20.
    pub mr20: f64,
    /// mR@50.
    pub mr50: f64,
    /// mR@100.
    pub mr100: f64,
    /// End-to-end SVQA accuracy with this SGG configuration.
    pub svqa_accuracy: f64,
}

/// Exp-3 (Table V): SGG framework × {Original, TDE} → mR@K + SVQA accuracy.
pub fn run_exp3(mvqa: &Mvqa) -> (Vec<Exp3Row>, Table) {
    let prior = PairPrior::fit(&mvqa.images);
    // mR@K is benchmarked on a crowded (Visual-Genome-density) split —
    // ordinary MVQA scenes are too sparse for Recall@K to discriminate.
    let crowded = svqa::dataset::generate_crowded_images(200, 0x5661);
    let sample: Vec<_> = crowded.iter().collect();
    let mut rows = Vec::new();
    for model in SggModel::ALL {
        for use_tde in [false, true] {
            let sgg_config = SggConfig {
                model,
                use_tde,
                ..SggConfig::default()
            };
            let sgg = SceneGraphGenerator::new(sgg_config.clone(), prior.clone());
            let mut acc20 = RecallAccumulator::exact();
            let mut acc50 = RecallAccumulator::exact();
            let mut acc100 = RecallAccumulator::exact();
            for img in &sample {
                let out = sgg.generate(img);
                acc20.add_image(img, &out.detections, &out.predictions, 20);
                acc50.add_image(img, &out.detections, &out.predictions, 50);
                acc100.add_image(img, &out.detections, &out.predictions, 100);
            }
            // End-to-end accuracy with this SGG config.
            let config = SvqaConfig {
                sgg: sgg_config,
                ..SvqaConfig::default()
            };
            let system = Svqa::build(&mvqa.images, &mvqa.kg, config);
            let outcome = evaluate_on_mvqa(&system, mvqa);
            rows.push(Exp3Row {
                model: model.name().to_owned(),
                method: if use_tde { "TDE" } else { "Original" }.to_owned(),
                mr20: acc20.mean_recall(),
                mr50: acc50.mean_recall(),
                mr100: acc100.mean_recall(),
                svqa_accuracy: outcome.overall,
            });
        }
    }
    let mut t = Table::new(
        "Table V — Exp-3: SGG relation prediction (paper: VTransE 3.7/5.1/6.1→72.2, +TDE 5.8/8.1/9.9→84.1; VCTree 4.2/5.8/6.9→74.1, +TDE 6.3/8.6/10.5→86.3; Neural-Motifs 4.2/5.3/6.9→75.4, +TDE 6.9/9.5/11.3→87.2)",
        &["Model", "Method", "mR@20", "mR@50", "mR@100", "SVQA accuracy"],
    );
    for row in &rows {
        t.row(&[
            row.model.clone(),
            row.method.clone(),
            pct(row.mr20),
            pct(row.mr50),
            pct(row.mr100),
            pct(row.svqa_accuracy),
        ]);
    }
    (rows, t)
}

// ------------------------------------------------------------------- Exp-4

/// Exp-4 report: parse latency series.
#[derive(Debug, Clone, Serialize)]
pub struct Exp4Report {
    /// Question counts on the x-axis.
    pub n_questions: Vec<usize>,
    /// `(method, seconds per x)` series for Fig. 9a.
    pub series: Vec<(String, Vec<f64>)>,
    /// Fig. 9b: (label, mean seconds) for A=all, B/C/D = 1/2/3-clause.
    pub by_clause: Vec<(String, f64)>,
}

/// Exp-4 (Fig. 9a/9b): query-parse latency vs the split baselines.
pub fn run_exp4(mvqa: &Mvqa) -> (Exp4Report, Table, Table) {
    let questions: Vec<&str> = mvqa
        .questions
        .iter()
        .map(|q| q.question.as_str())
        .collect();
    let ns: Vec<usize> = vec![1, 5, 10, 15, 20, 25, 30];
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();

    // Ours: generator construction (the "model load") + parsing N questions,
    // wall clock.
    let mut ours = Vec::new();
    for &n in &ns {
        let t0 = Instant::now();
        let generator = QueryGraphGenerator::new();
        for q in questions.iter().cycle().take(n) {
            let _ = generator.generate(q);
        }
        ours.push(t0.elapsed().as_secs_f64());
    }
    series.push(("SVQA (ours, wall)".to_owned(), ours));

    // Baselines: simulated clock (load + per-question).
    for model in SplitterModel::ALL {
        let splitter = SentenceSplitter::new(model);
        let mut ys = Vec::new();
        for &n in &ns {
            let batch: Vec<&str> = questions.iter().copied().cycle().take(n).collect();
            let (_, clock) = splitter.split_batch(&batch);
            ys.push(clock.elapsed().as_secs_f64());
        }
        series.push((format!("{} (sim)", model.name()), ys));
    }

    let mut t9a = Table::new(
        "Fig. 9a — Exp-4: split latency vs number of questions (baselines on the simulated clock)",
        &["N", "SVQA (ours)", "ABCD-MLP", "ABCD-bilinear", "DisSim"],
    );
    for (i, &n) in ns.iter().enumerate() {
        t9a.row(&[
            n.to_string(),
            format!("{:.4}s", series[0].1[i]),
            format!("{:.2}s", series[1].1[i]),
            format!("{:.2}s", series[2].1[i]),
            format!("{:.2}s", series[3].1[i]),
        ]);
    }

    // Fig. 9b: latency by clause count.
    let generator = QueryGraphGenerator::new();
    let mut by_clause: Vec<(String, f64)> = Vec::new();
    type ClauseFilter = Box<dyn Fn(usize) -> bool>;
    let mut groups: Vec<(&str, ClauseFilter)> = vec![
        ("A (all)", Box::new(|_| true)),
        ("B (1 clause)", Box::new(|c| c == 1)),
        ("C (2 clauses)", Box::new(|c| c == 2)),
        ("D (3 clauses)", Box::new(|c| c >= 3)),
    ];
    for (label, filter) in groups.drain(..) {
        let subset: Vec<&str> = mvqa
            .questions
            .iter()
            .filter(|q| filter(q.clauses))
            .map(|q| q.question.as_str())
            .collect();
        if subset.is_empty() {
            by_clause.push((label.to_owned(), 0.0));
            continue;
        }
        // Repeat for a stable measurement.
        let reps = 20usize;
        let t0 = Instant::now();
        for _ in 0..reps {
            for q in &subset {
                let _ = generator.generate(q);
            }
        }
        let mean = t0.elapsed().as_secs_f64() / (reps * subset.len()) as f64;
        by_clause.push((label.to_owned(), mean));
    }
    let mut t9b = Table::new(
        "Fig. 9b — Exp-4: query-graph generation latency by question complexity (paper average: 0.63s with CoreNLP models; ours has no model inference)",
        &["Group", "Mean latency / question"],
    );
    for (label, secs) in &by_clause {
        t9b.row(&[label.clone(), format!("{:.1}µs", secs * 1e6)]);
    }

    (
        Exp4Report {
            n_questions: ns,
            series,
            by_clause,
        },
        t9a,
        t9b,
    )
}

// ------------------------------------------------------------------- Exp-5

/// Exp-5 report.
#[derive(Debug, Clone, Serialize)]
pub struct Exp5Report {
    /// Fig. 10a: `(N, no-cache seconds, cache seconds)`.
    pub cache_onoff: Vec<(usize, f64, f64)>,
    /// Fig. 10b: `(granularity, seconds)` at N = all questions, pool 100.
    pub granularity: Vec<(String, f64)>,
    /// Fig. 11: `(policy, pool size, N, seconds)`.
    pub pool_sweep: Vec<(String, usize, usize, f64)>,
}

fn run_batch(
    system: &Svqa,
    questions: &[&str],
    granularity: CacheGranularity,
    policy: EvictionPolicy,
    pool: usize,
    reps: usize,
) -> Duration {
    let config = SvqaConfig {
        scheduler: SchedulerConfig {
            granularity,
            policy,
            pool_size: pool,
            ..SchedulerConfig::default()
        },
        ..SvqaConfig::default()
    };
    // Rebuild only the scheduler side: reuse the merged graph via a
    // scheduler run on it directly.
    let generator = QueryGraphGenerator::new();
    let graphs: Vec<_> = questions
        .iter()
        .filter_map(|q| generator.generate(q).ok())
        .collect();
    let scheduler = svqa::executor::scheduler::QueryScheduler::new(config.scheduler);
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let report = scheduler.run(system.merged_graph(), &graphs);
        best = best.min(report.total);
    }
    best
}

/// Exp-5 (Figs. 10a, 10b, 11): the caching mechanism.
pub fn run_exp5(mvqa: &Mvqa, system: &Svqa) -> (Exp5Report, Table, Table, Table) {
    let questions: Vec<&str> = mvqa
        .questions
        .iter()
        .map(|q| q.question.as_str())
        .collect();
    let reps = 3;

    // Fig. 10a: cache on/off over N.
    let mut cache_onoff = Vec::new();
    for &n in &[20usize, 40, 60, 80, 100] {
        let subset: Vec<&str> = questions.iter().copied().cycle().take(n).collect();
        let off = run_batch(
            system,
            &subset,
            CacheGranularity::None,
            EvictionPolicy::Lfu,
            0,
            reps,
        );
        let on = run_batch(
            system,
            &subset,
            CacheGranularity::Both,
            EvictionPolicy::Lfu,
            100,
            reps,
        );
        cache_onoff.push((n, off.as_secs_f64(), on.as_secs_f64()));
    }
    let mut t10a = Table::new(
        "Fig. 10a — Exp-5: latency with vs without the key-centric cache (paper: −48.89% on average)",
        &["N", "No cache", "Cache", "Reduction"],
    );
    for &(n, off, on) in &cache_onoff {
        t10a.row(&[
            n.to_string(),
            format!("{:.2}ms", off * 1e3),
            format!("{:.2}ms", on * 1e3),
            pct(1.0 - on / off.max(1e-12)),
        ]);
    }

    // Fig. 10b: granularity at full batch, pool 100.
    let mut granularity = Vec::new();
    for (label, g) in [
        ("No", CacheGranularity::None),
        ("Scope", CacheGranularity::Scope),
        ("Path", CacheGranularity::Path),
        ("Both", CacheGranularity::Both),
    ] {
        let d = run_batch(system, &questions, g, EvictionPolicy::Lfu, 100, reps);
        granularity.push((label.to_owned(), d.as_secs_f64()));
    }
    let mut t10b = Table::new(
        "Fig. 10b — Exp-5: cache granularity, 100 questions, pool 100 (paper reductions: Scope −13.46%, Path −27.61%, Both −38.72%)",
        &["Granularity", "Latency", "Reduction vs No"],
    );
    let no_cache = granularity[0].1;
    for (label, secs) in &granularity {
        t10b.row(&[
            label.clone(),
            format!("{:.2}ms", secs * 1e3),
            pct(1.0 - secs / no_cache.max(1e-12)),
        ]);
    }

    // Fig. 11: pool-size sweep × policy × N.
    let mut pool_sweep = Vec::new();
    for policy in [EvictionPolicy::Lfu, EvictionPolicy::Lru] {
        for &pool in &[10usize, 25, 50, 75, 100] {
            for &n in &[20usize, 60, 100] {
                let subset: Vec<&str> = questions.iter().copied().cycle().take(n).collect();
                let d = run_batch(system, &subset, CacheGranularity::Both, policy, pool, reps);
                pool_sweep.push((
                    format!("{policy:?}").to_uppercase(),
                    pool,
                    n,
                    d.as_secs_f64(),
                ));
            }
        }
    }
    let mut t11 = Table::new(
        "Fig. 11 — Exp-5: cache pool size vs latency (paper: plateau past pool ≈ 50 at N = 20; LFU slightly ahead of LRU)",
        &["Policy", "Pool", "N=20", "N=60", "N=100"],
    );
    for policy in ["LFU", "LRU"] {
        for &pool in &[10usize, 25, 50, 75, 100] {
            let cell = |n: usize| -> String {
                pool_sweep
                    .iter()
                    .find(|(p, pl, nn, _)| p == policy && *pl == pool && *nn == n)
                    .map(|(_, _, _, s)| format!("{:.2}ms", s * 1e3))
                    .unwrap_or_default()
            };
            t11.row(&[
                policy.to_owned(),
                pool.to_string(),
                cell(20),
                cell(60),
                cell(100),
            ]);
        }
    }

    (
        Exp5Report {
            cache_onoff,
            granularity,
            pool_sweep,
        },
        t10a,
        t10b,
        t11,
    )
}
