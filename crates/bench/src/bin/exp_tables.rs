//! `exp_tables` — regenerate Tables I–V of the paper.
//!
//! ```text
//! cargo run -p svqa-bench --bin exp_tables --release [-- --quick]
//! ```
//!
//! `--quick` uses 1,000 images (seconds); the default uses the paper's
//! 4,233 (a few minutes). JSON reports land under `results/`.

use svqa_bench::{
    build_mvqa, build_vqav2, run_exp1, run_exp2, run_exp3, save_json, table_1_and_2, Scale,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    eprintln!(
        "building MVQA at {:?} scale ({} images)...",
        scale,
        scale.image_count()
    );
    let mvqa = build_mvqa(scale);

    let (t1, t2) = table_1_and_2(&mvqa);
    print!("{}", t1.render());
    print!("{}", t2.render());
    save_json("table1_table2", &mvqa.stats());

    eprintln!("running Exp-1 (Table III)...");
    let (exp1, t3) = run_exp1(&mvqa);
    print!("{}", t3.render());
    println!(
        "(offline build: {:.1}s for {} images; parse failures: {})",
        exp1.build_secs,
        mvqa.images.len(),
        exp1.outcome.parse_failures
    );
    save_json("exp1_table3", &exp1);

    eprintln!("running Exp-2 (Table IV)...");
    let vqav2 = build_vqav2(scale);
    let (exp2, t4) = run_exp2(&vqav2);
    print!("{}", t4.render());
    save_json("exp2_table4", &exp2);

    eprintln!("running Exp-3 (Table V; 6 pipeline builds)...");
    let exp3_mvqa = if quick { mvqa } else { build_mvqa(Scale::Quick) };
    let (exp3, t5) = run_exp3(&exp3_mvqa);
    print!("{}", t5.render());
    save_json("exp3_table5", &exp3);

    println!("\nreports written to results/*.json");
}
