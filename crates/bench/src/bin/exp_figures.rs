//! `exp_figures` — regenerate Figures 9a, 9b, 10a, 10b and 11.
//!
//! ```text
//! cargo run -p svqa-bench --bin exp_figures --release [-- --quick]
//! ```

use svqa::{Svqa, SvqaConfig};
use svqa_bench::{build_mvqa, run_exp4, run_exp5, save_json, Scale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { Scale::Quick } else { Scale::Full };
    eprintln!(
        "building MVQA at {:?} scale ({} images)...",
        scale,
        scale.image_count()
    );
    let mvqa = build_mvqa(scale);

    eprintln!("running Exp-4 (Figs. 9a/9b)...");
    let (exp4, t9a, t9b) = run_exp4(&mvqa);
    print!("{}", t9a.render());
    print!("{}", t9b.render());
    save_json("exp4_fig9", &exp4);

    eprintln!("building the pipeline for Exp-5 (Figs. 10–11)...");
    let system = Svqa::build(&mvqa.images, &mvqa.kg, SvqaConfig::default());
    let (exp5, t10a, t10b, t11) = run_exp5(&mvqa, &system);
    print!("{}", t10a.render());
    print!("{}", t10b.render());
    print!("{}", t11.render());
    save_json("exp5_fig10_fig11", &exp5);

    println!("\nreports written to results/*.json");
}
