//! Smoke tests: every experiment runner executes end-to-end on a tiny
//! world and produces structurally sane reports.

use svqa::dataset::mvqa::{Mvqa, MvqaConfig};
use svqa::dataset::questions::QuestionCounts;
use svqa_bench::{run_exp1, run_exp4, table_1_and_2};

fn tiny_mvqa() -> Mvqa {
    Mvqa::generate(MvqaConfig {
        image_count: 250,
        seed: 0xbeef,
        counts: QuestionCounts::default(),
    })
}

#[test]
fn tables_1_and_2_render() {
    let mvqa = tiny_mvqa();
    let (t1, t2) = table_1_and_2(&mvqa);
    let r1 = t1.render();
    let r2 = t2.render();
    assert!(r1.contains("MVQA"));
    assert!(r1.contains("16.9")); // paper reference present
    assert!(r2.contains("Judgement"));
    assert!(r2.contains("219")); // total clauses
}

#[test]
fn exp1_reports_accuracies_and_latency() {
    let mvqa = tiny_mvqa();
    let (report, table) = run_exp1(&mvqa);
    assert!((0.0..=1.0).contains(&report.outcome.overall));
    assert!(report.outcome.total_latency.as_nanos() > 0);
    let rendered = table.render();
    assert!(rendered.contains("SVQA (ours)"));
    assert!(rendered.contains("SVQA (paper)"));
}

#[test]
fn exp4_series_are_monotone_for_baselines() {
    let mvqa = tiny_mvqa();
    let (report, t9a, t9b) = run_exp4(&mvqa);
    assert_eq!(report.series.len(), 4); // ours + 3 baselines
    // Baselines' simulated latency strictly grows with N.
    for (name, ys) in report.series.iter().skip(1) {
        for w in ys.windows(2) {
            assert!(w[1] > w[0], "{name} not monotone: {ys:?}");
        }
    }
    // Clause-count groups cover A–D.
    assert_eq!(report.by_clause.len(), 4);
    assert!(t9a.render().contains("DisSim"));
    assert!(t9b.render().contains("clause"));
}
