//! Accuracy evaluation harness (Exp-1 / Exp-2).

use crate::pipeline::Svqa;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};
use svqa_dataset::mvqa::{Mvqa, PredictedAnswer};
use svqa_executor::Answer;

/// Outcome of an evaluation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalOutcome {
    /// Judgment accuracy.
    pub judgment: f64,
    /// Counting accuracy.
    pub counting: f64,
    /// Reasoning accuracy.
    pub reasoning: f64,
    /// Overall accuracy.
    pub overall: f64,
    /// Total batch latency.
    pub total_latency: Duration,
    /// Mean per-question latency.
    pub mean_latency: Duration,
    /// Median per-question latency (from the batch's per-query times).
    #[serde(default)]
    pub p50_latency: Duration,
    /// 95th-percentile per-question latency.
    #[serde(default)]
    pub p95_latency: Duration,
    /// Questions that failed to parse (Fig. 8a class errors).
    pub parse_failures: usize,
}

/// Nearest-rank percentile over unsorted per-query durations.
fn percentile(samples: &[Duration], q: f64) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Convert an executor answer to the dataset's scoring form.
pub fn to_predicted(answer: &Answer) -> Option<PredictedAnswer> {
    match answer {
        Answer::Judgment(b) => Some(PredictedAnswer::YesNo(*b)),
        Answer::Count(n) => Some(PredictedAnswer::Count(*n)),
        Answer::Entity { label, .. } => Some(PredictedAnswer::Entity(label.clone())),
        Answer::Unknown => None,
    }
}

/// Run SVQA over an MVQA-shaped dataset and score it (Table III / IV).
pub fn evaluate_on_mvqa(system: &Svqa, mvqa: &Mvqa) -> EvalOutcome {
    let questions: Vec<&str> = mvqa.questions.iter().map(|q| q.question.as_str()).collect();
    let outcome = system.answer_batch(&questions);
    let parse_failures = outcome
        .answers
        .iter()
        .filter(|a| matches!(a, Err(crate::SvqaError::Parse(_))))
        .count();
    let predicted: Vec<Option<PredictedAnswer>> = outcome
        .answers
        .iter()
        .map(|a| a.as_ref().ok().and_then(to_predicted))
        .collect();
    let (judgment, counting, reasoning, overall) = mvqa.score_answers(&predicted);
    let n = questions.len().max(1);
    EvalOutcome {
        judgment,
        counting,
        reasoning,
        overall,
        total_latency: outcome.total,
        mean_latency: outcome.total / n as u32,
        p50_latency: percentile(&outcome.per_query, 0.50),
        p95_latency: percentile(&outcome.per_query, 0.95),
        parse_failures,
    }
}

/// Outcome of a guarded (chaos) evaluation pass: accuracy plus how the
/// degradation policy resolved each question. Produced by
/// [`evaluate_on_mvqa_guarded`] and serialized into `svqa-cli chaos`
/// curve files.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GuardedEvalOutcome {
    /// Overall accuracy over every question (degraded answers included —
    /// that is the point of measuring under chaos).
    pub overall: f64,
    /// Questions answered with both sources available.
    pub full: usize,
    /// Questions answered from a partial view (`AnswerStatus::Degraded`).
    pub degraded: usize,
    /// Questions refused because every source was down
    /// (`SvqaError::Unavailable`).
    pub unavailable: usize,
    /// Questions that failed for any other reason (parse, lint, exec).
    pub failed: usize,
}

/// Run every MVQA question through [`Svqa::answer_guarded`] under the
/// currently installed fault plan (if any) and score the results. Each
/// question gets a fresh deadline of `per_question` from its start.
pub fn evaluate_on_mvqa_guarded(
    system: &Svqa,
    mvqa: &Mvqa,
    per_question: Duration,
) -> GuardedEvalOutcome {
    let mut predicted: Vec<Option<PredictedAnswer>> = Vec::with_capacity(mvqa.questions.len());
    let (mut full, mut degraded, mut unavailable, mut failed) = (0usize, 0usize, 0usize, 0usize);
    for q in &mvqa.questions {
        let deadline = Instant::now() + per_question;
        match system.answer_guarded(&q.question, None, Some(deadline)) {
            Ok(g) => {
                if g.status.is_degraded() {
                    degraded += 1;
                } else {
                    full += 1;
                }
                predicted.push(to_predicted(&g.answer));
            }
            Err(crate::SvqaError::Unavailable { .. }) => {
                unavailable += 1;
                predicted.push(None);
            }
            Err(_) => {
                failed += 1;
                predicted.push(None);
            }
        }
    }
    let (_, _, _, overall) = mvqa.score_answers(&predicted);
    GuardedEvalOutcome {
        overall,
        full,
        degraded,
        unavailable,
        failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SvqaConfig;

    #[test]
    fn end_to_end_accuracy_is_substantial() {
        // The headline reproduction check (a small-scale Table III): the
        // full noisy pipeline must recover a large majority of the
        // ground-truth answers. The full-size calibrated run lives in the
        // bench harness; this guards against regressions.
        let mvqa = Mvqa::generate_small(700, 21);
        let system = Svqa::build(&mvqa.images, &mvqa.kg, SvqaConfig::default());
        let outcome = evaluate_on_mvqa(&system, &mvqa);
        assert!(
            outcome.overall > 0.75,
            "overall accuracy too low: {outcome:?}"
        );
        assert!(outcome.judgment > 0.7, "judgment: {outcome:?}");
        assert!(outcome.reasoning > 0.7, "reasoning: {outcome:?}");
    }

    #[test]
    fn percentiles_are_ordered_and_from_the_samples() {
        let samples: Vec<Duration> = [5, 1, 9, 3, 7].iter().map(|&ms| Duration::from_millis(ms)).collect();
        let p50 = percentile(&samples, 0.50);
        let p95 = percentile(&samples, 0.95);
        assert_eq!(p50, Duration::from_millis(5));
        assert_eq!(p95, Duration::from_millis(9));
        assert!(p50 <= p95);
        assert_eq!(percentile(&[], 0.5), Duration::ZERO);
    }

    #[test]
    fn to_predicted_conversions() {
        assert_eq!(
            to_predicted(&Answer::Judgment(true)),
            Some(PredictedAnswer::YesNo(true))
        );
        assert_eq!(to_predicted(&Answer::Count(3)), Some(PredictedAnswer::Count(3)));
        assert_eq!(
            to_predicted(&Answer::Entity {
                label: "dog".into(),
                alternatives: vec![]
            }),
            Some(PredictedAnswer::Entity("dog".into()))
        );
        assert_eq!(to_predicted(&Answer::Unknown), None);
    }
}
