//! The query-serving subsystem: `svqa serve`.
//!
//! A long-running HTTP service over a built SVQA system, on the same
//! dependency-free `std::net` stack as the metrics endpoint (see
//! [`svqa_telemetry::router`]). One port serves both query and
//! observability routes:
//!
//! * `POST /ask` — `{"question": "...", "deadline_ms"?: N}` → the answer,
//!   plus the exact cache traffic this question generated;
//! * `POST /batch` — `{"questions": [...], "deadline_ms"?: N}` → per-
//!   question answers via the §V-B scheduler (frequency-sorted order,
//!   shared cache, configured parallelism);
//! * `GET /healthz` — liveness plus graph/queue shape (answered inline,
//!   never queued, so health stays green under load);
//! * `POST /shutdown` — graceful drain: stop accepting, finish queued
//!   work, then [`QueryServer::serve`] returns;
//! * `GET /metrics`, `/metrics.json`, `/profiles/recent` — the usual
//!   telemetry routes, mounted on the same port.
//!
//! ## Execution model
//!
//! Connections are accepted on the caller's thread and parsed on
//! short-lived connection threads. Query work is **admission-controlled**:
//! a bounded queue sits between connection threads and a fixed worker
//! pool. When the queue is full the request is rejected immediately with
//! `429 Too Many Requests` and a `Retry-After` header — under overload the
//! service sheds load instead of accumulating latency. Each request
//! carries a deadline (`deadline_ms`, default
//! [`ServeConfig::default_deadline`]); a request that cannot be answered
//! in time gets `504 Gateway Timeout` and is counted in
//! `server_deadline_exceeded`. Workers also check the deadline before
//! starting execution, so queued-but-expired work is skipped, not run.
//!
//! ## Cache persistence
//!
//! The server owns one [`ShardedCache`] built from the scheduler
//! configuration and feeds it to every `/ask` and `/batch` — scopes and
//! paths cached by one request accelerate all later ones, which is the
//! §V-B key-centric cache doing its job across requests instead of only
//! within a batch.

use crate::degrade::AnswerStatus;
use crate::error::SvqaError;
use crate::pipeline::Svqa;
use std::collections::VecDeque;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use svqa_executor::cache::ShardedCache;
use svqa_executor::scheduler::QueryScheduler;
use svqa_telemetry::router::{HttpServer, Request, Response, Router};
use svqa_telemetry::{counter, gauge, global, global_profiles, metrics_routes};

/// Tuning for [`QueryServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing queries (≥ 1).
    pub workers: usize,
    /// Admission-queue capacity; 0 rejects everything (useful in tests).
    pub queue_depth: usize,
    /// Deadline applied when a request does not set `deadline_ms`.
    pub default_deadline: Duration,
    /// Per-connection socket read/write timeout.
    pub io_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_depth: 64,
            default_deadline: Duration::from_secs(10),
            io_timeout: Duration::from_secs(5),
        }
    }
}

/// What a worker is asked to do.
enum Work {
    Ask(String),
    Batch(Vec<String>),
}

/// One admitted request: the work, its deadline, and the channel the
/// waiting connection thread blocks on.
struct Job {
    work: Work,
    deadline: Instant,
    reply: mpsc::SyncSender<Response>,
}

/// Why [`BoundedQueue::try_push`] refused a job.
enum PushError {
    /// The queue is at capacity — shed load.
    Full,
    /// The server is draining for shutdown.
    Closed,
}

/// A bounded MPMC queue on `std::sync` primitives. `try_push` fails
/// deterministically at capacity (no rendezvous semantics), which is what
/// makes the 429 path testable with `queue_depth: 0`.
struct BoundedQueue<T> {
    capacity: usize,
    inner: Mutex<QueueInner<T>>,
    ready: Condvar,
}

struct QueueInner<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> BoundedQueue<T> {
    fn new(capacity: usize) -> BoundedQueue<T> {
        BoundedQueue {
            capacity,
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueInner<T>> {
        // A worker panicking mid-pop poisons nothing we can't still use:
        // the queue state is a plain VecDeque.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn try_push(&self, item: T) -> Result<(), PushError> {
        let mut q = self.lock();
        if q.closed {
            return Err(PushError::Closed);
        }
        if q.items.len() >= self.capacity {
            return Err(PushError::Full);
        }
        q.items.push_back(item);
        drop(q);
        self.ready.notify_one();
        Ok(())
    }

    /// Block until an item is available; `None` once closed **and**
    /// drained — workers finish queued jobs before exiting.
    fn pop(&self) -> Option<T> {
        let mut q = self.lock();
        loop {
            if let Some(item) = q.items.pop_front() {
                return Some(item);
            }
            if q.closed {
                return None;
            }
            q = self
                .ready
                .wait(q)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }
}

/// A bound (but not yet serving) query server.
pub struct QueryServer {
    system: Svqa,
    config: ServeConfig,
    cache: ShardedCache,
    http: HttpServer,
    queue: BoundedQueue<Job>,
    shutdown: AtomicBool,
    in_flight: AtomicI64,
}

impl QueryServer {
    /// Bind `addr` (port 0 picks a free port) over a built system. The
    /// persistent cache is shaped by `system.config().scheduler`
    /// (granularity, policy, pool size, shards).
    pub fn bind(system: Svqa, addr: &str, config: ServeConfig) -> io::Result<QueryServer> {
        let mut http = HttpServer::bind(addr)?;
        http.set_io_timeout(Some(config.io_timeout));
        let cache = QueryScheduler::new(system.config().scheduler).build_cache();
        Ok(QueryServer {
            system,
            cache,
            http,
            queue: BoundedQueue::new(config.queue_depth),
            shutdown: AtomicBool::new(false),
            in_flight: AtomicI64::new(0),
            config,
        })
    }

    /// The actual bound address (useful with port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.http.local_addr()
    }

    /// The persistent cross-request cache (exposed for tests and stats).
    pub fn cache(&self) -> &ShardedCache {
        &self.cache
    }

    /// Serve until `POST /shutdown`: workers and connection threads run on
    /// scoped threads borrowing `self`. On shutdown the accept loop stops,
    /// the admission queue closes, queued work drains, and this returns
    /// `Ok(())` — the graceful-exit contract the CI smoke test checks.
    pub fn serve(&self) -> io::Result<()> {
        let addr = self.local_addr()?;
        let router = self.router(addr);
        std::thread::scope(|scope| {
            for _ in 0..self.config.workers.max(1) {
                scope.spawn(|| self.worker_loop());
            }
            while !self.shutdown.load(Ordering::SeqCst) {
                let Ok(stream) = self.http.accept() else {
                    continue;
                };
                let router = &router;
                scope.spawn(move || {
                    let _ = HttpServer::handle_connection(stream, router);
                });
            }
            // Drain: no new admissions; workers finish what's queued, then
            // the scope joins every thread.
            self.queue.close();
        });
        Ok(())
    }

    fn router(&self, addr: SocketAddr) -> Router<'_> {
        let router = Router::new()
            .get("/", |_: &Request| {
                Response::text(
                    200,
                    "svqa query server\n\n\
                     POST /ask         {\"question\": \"...\", \"deadline_ms\"?: N}\n\
                     POST /batch       {\"questions\": [...], \"deadline_ms\"?: N}\n\
                     GET  /healthz     liveness + shape\n\
                     POST /shutdown    drain and exit\n\
                     GET  /metrics     Prometheus text exposition\n\
                     GET  /metrics.json\n\
                     GET  /profiles/recent\n",
                )
            })
            .get("/healthz", |_: &Request| self.handle_healthz())
            .post("/ask", |req: &Request| self.handle_ask(req))
            .post("/batch", |req: &Request| self.handle_batch(req))
            .post("/shutdown", move |_: &Request| self.handle_shutdown(addr));
        metrics_routes(router, global(), global_profiles())
    }

    fn handle_healthz(&self) -> Response {
        let stats = self.system.build_stats();
        let mut sources = serde_json::Map::new();
        for (source, state) in self.system.breaker_states() {
            sources.insert(
                source.name().to_owned(),
                serde_json::Value::String(state.name().to_owned()),
            );
        }
        Response::json(
            200,
            serde_json::to_string(&serde_json::json!({
                "status": self.system.health_status(),
                "sources": serde_json::Value::Object(sources),
                "fault_plan_armed": svqa_fault::active().is_some(),
                "merged_vertices": stats.merged_vertices,
                "merged_edges": stats.merged_edges,
                "workers": self.config.workers.max(1),
                "queue_depth": self.config.queue_depth,
                "in_flight": self.in_flight.load(Ordering::SeqCst),
                "cache_entries": self.cache.len(),
            }))
            .expect("healthz serialization is infallible"),
        )
    }

    fn handle_shutdown(&self, addr: SocketAddr) -> Response {
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept loop is blocked in `accept()`; a self-connection
        // wakes it so it can observe the flag. The probe connection is
        // dropped immediately and handled as a clean zero-byte request.
        let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
        Response::json(200, "{\"status\": \"draining\"}")
    }

    fn handle_ask(&self, req: &Request) -> Response {
        global().incr_counter(counter::SERVER_REQUESTS);
        let body = match parse_body(req) {
            Ok(b) => b,
            Err(resp) => return resp,
        };
        let Some(question) = body.get("question").and_then(|q| q.as_str()) else {
            return bad_request("missing-field", "missing string field 'question'");
        };
        // Lint at the door: a question whose query graph provably cannot
        // produce answers is rejected on the connection thread with the
        // full diagnostics, without burning a worker slot on it.
        match self.system.lint(question) {
            Err(e) => return error_response(&e),
            Ok(report) if report.has_errors() => {
                return error_response(&SvqaError::Lint(report))
            }
            Ok(_) => {}
        }
        self.submit(Work::Ask(question.to_owned()), self.deadline_of(&body))
    }

    fn handle_batch(&self, req: &Request) -> Response {
        global().incr_counter(counter::SERVER_REQUESTS);
        let body = match parse_body(req) {
            Ok(b) => b,
            Err(resp) => return resp,
        };
        let Some(questions) = body.get("questions").and_then(|q| q.as_array()) else {
            return bad_request("missing-field", "missing array field 'questions'");
        };
        let mut batch = Vec::with_capacity(questions.len());
        for q in questions {
            match q.as_str() {
                Some(s) => batch.push(s.to_owned()),
                None => return bad_request("bad-field", "'questions' must be strings"),
            }
        }
        self.submit(Work::Batch(batch), self.deadline_of(&body))
    }

    fn deadline_of(&self, body: &serde_json::Value) -> Instant {
        let budget = body
            .get("deadline_ms")
            .and_then(|v| v.as_u64())
            .map_or(self.config.default_deadline, Duration::from_millis);
        Instant::now() + budget
    }

    /// Admission control: enqueue the job and wait for the worker's reply,
    /// but never past the deadline.
    fn submit(&self, work: Work, deadline: Instant) -> Response {
        let (tx, rx) = mpsc::sync_channel(1);
        let job = Job {
            work,
            deadline,
            reply: tx,
        };
        match self.queue.try_push(job) {
            Err(PushError::Full) => {
                global().incr_counter(counter::SERVER_REJECTED);
                Response::json(429, "{\"error\": \"admission queue full\"}")
                    .with_header("Retry-After", "1")
            }
            Err(PushError::Closed) => {
                Response::json(503, "{\"error\": \"server is shutting down\"}")
            }
            Ok(()) => {
                self.in_flight_delta(1);
                let remaining = deadline.saturating_duration_since(Instant::now());
                let response = match rx.recv_timeout(remaining) {
                    Ok(response) => {
                        if response.status == 504 {
                            global().incr_counter(counter::SERVER_DEADLINE_EXCEEDED);
                        }
                        response
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        global().incr_counter(counter::SERVER_DEADLINE_EXCEEDED);
                        deadline_response()
                    }
                    Err(RecvTimeoutError::Disconnected) => {
                        Response::json(500, "{\"error\": \"worker dropped the request\"}")
                    }
                };
                self.in_flight_delta(-1);
                response
            }
        }
    }

    fn in_flight_delta(&self, delta: i64) {
        let now = self.in_flight.fetch_add(delta, Ordering::SeqCst) + delta;
        global().set_gauge(gauge::SERVER_REQUESTS_IN_FLIGHT, now as f64);
    }

    fn worker_loop(&self) {
        while let Some(job) = self.queue.pop() {
            let Job {
                work,
                deadline,
                reply,
            } = job;
            let fault = svqa_fault::draw(svqa_fault::site::SERVE_WORKER);
            if fault == Some(svqa_fault::FaultKind::DropResult) {
                // The worker "loses" the job: the reply channel drops
                // unanswered and the connection thread observes
                // `Disconnected` (500, "worker dropped the request").
                continue;
            }
            // Queued past its deadline: skip the work. The connection
            // thread owns the deadline-exceeded counter (it may already
            // have timed out on its own), so just reply 504.
            let response = if Instant::now() >= deadline {
                deadline_response()
            } else {
                if let Some(svqa_fault::FaultKind::Latency(ms)) = fault {
                    svqa_fault::apply_latency(ms, Some(deadline));
                }
                // A panic while answering (injected or genuine) must not
                // shrink the worker pool: catch it, count it, reply 500,
                // and keep this thread in the loop.
                let run = catch_unwind(AssertUnwindSafe(|| {
                    if fault == Some(svqa_fault::FaultKind::Error) {
                        panic!("injected fault: serve.worker");
                    }
                    match &work {
                        Work::Ask(question) => self.answer_one(question, deadline),
                        Work::Batch(questions) => self.answer_many(questions),
                    }
                }));
                run.unwrap_or_else(|_| {
                    global().incr_counter(counter::SERVER_WORKER_PANICS);
                    Response::json(500, "{\"error\": \"internal panic while answering\"}")
                })
            };
            // The receiver may have timed out and gone — not an error.
            let _ = reply.send(response);
        }
    }

    fn answer_one(&self, question: &str, deadline: Instant) -> Response {
        let before = self.cache.stats();
        let result = self
            .system
            .answer_guarded(question, Some(&self.cache), Some(deadline));
        let cache = self.cache.stats().delta_since(&before);
        match result {
            Ok(guarded) => {
                let body = match &guarded.status {
                    AnswerStatus::Full => serde_json::json!({
                        "question": question,
                        "answer": guarded.answer,
                        "answer_text": guarded.answer.to_string(),
                        "status": guarded.status.label(),
                        "cache": cache,
                    }),
                    AnswerStatus::Degraded {
                        missing_sources,
                        confidence_penalty,
                    } => serde_json::json!({
                        "question": question,
                        "answer": guarded.answer,
                        "answer_text": guarded.answer.to_string(),
                        "status": guarded.status.label(),
                        "missing_sources": missing_sources,
                        "confidence_penalty": confidence_penalty,
                        "cache": cache,
                    }),
                };
                Response::json(
                    200,
                    serde_json::to_string(&body).expect("answer serialization is infallible"),
                )
            }
            Err(e) => error_response(&e),
        }
    }

    fn answer_many(&self, questions: &[String]) -> Response {
        let refs: Vec<&str> = questions.iter().map(String::as_str).collect();
        let outcome = self.system.answer_batch_cached(&refs, &self.cache);
        let answers: Vec<serde_json::Value> = outcome
            .answers
            .iter()
            .map(|r| match r {
                Ok(a) => serde_json::json!({
                    "answer": a,
                    "answer_text": a.to_string(),
                }),
                Err(e) => serde_json::json!({ "error": e.to_string() }),
            })
            .collect();
        Response::json(
            200,
            serde_json::to_string(&serde_json::json!({
                "answers": answers,
                "cache": outcome.cache_stats,
            }))
            .expect("batch serialization is infallible"),
        )
    }
}

fn parse_body(req: &Request) -> Result<serde_json::Value, Response> {
    let Some(text) = req.body_str() else {
        return Err(bad_request("bad-encoding", "body is not UTF-8"));
    };
    serde_json::from_str(text)
        .map_err(|e| bad_request("bad-json", &format!("invalid JSON: {e}")))
}

/// A structured 400: `{"error": ..., "code": ...}`, counted in
/// `server_requests_bad` so malformed traffic is visible in `/metrics`.
fn bad_request(code: &str, message: &str) -> Response {
    global().incr_counter(counter::SERVER_REQUESTS_BAD);
    Response::json(
        400,
        serde_json::to_string(&serde_json::json!({ "error": message, "code": code }))
            .expect("error serialization is infallible"),
    )
}

fn deadline_response() -> Response {
    // A 504 means the service was too slow for *this* deadline, not that it
    // is down — tell the client when trying again is reasonable.
    Response::json(504, "{\"error\": \"deadline exceeded\"}").with_header("Retry-After", "1")
}

/// `Retry-After` seconds for an `Unavailable` error: the longest remaining
/// breaker cooldown, rounded up, never below 1 s.
fn retry_after_secs(retry_after_ms: u64) -> u64 {
    retry_after_ms.div_ceil(1000).max(1)
}

fn error_response(e: &SvqaError) -> Response {
    let status = match e {
        SvqaError::Parse(_) | SvqaError::Lint(_) => 400,
        SvqaError::Exec(_) => 500,
        SvqaError::Unavailable { .. } => 503,
    };
    if status == 400 {
        global().incr_counter(counter::SERVER_REQUESTS_BAD);
    }
    // Lint rejections carry the machine-readable diagnostics alongside the
    // human-readable summary, so clients can surface "did you mean".
    let body = match e {
        SvqaError::Lint(report) => serde_json::json!({
            "error": e.to_string(),
            "code": "lint-rejected",
            "diagnostics": report.diagnostics,
        }),
        SvqaError::Unavailable {
            missing,
            retry_after_ms,
        } => serde_json::json!({
            "error": e.to_string(),
            "code": "unavailable",
            "missing_sources": missing,
            "retry_after_ms": retry_after_ms,
        }),
        _ => serde_json::json!({ "error": e.to_string() }),
    };
    let response = Response::json(
        status,
        serde_json::to_string(&body).expect("error serialization is infallible"),
    );
    if let SvqaError::Unavailable { retry_after_ms, .. } = e {
        response.with_header("Retry-After", &retry_after_secs(*retry_after_ms).to_string())
    } else {
        response
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_queue_rejects_at_capacity_and_drains_on_close() {
        let q: BoundedQueue<u32> = BoundedQueue::new(2);
        assert!(q.try_push(1).is_ok());
        assert!(q.try_push(2).is_ok());
        assert!(matches!(q.try_push(3), Err(PushError::Full)));
        q.close();
        assert!(matches!(q.try_push(4), Err(PushError::Closed)));
        // Queued items survive the close; then the queue reports empty.
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn zero_capacity_queue_always_rejects() {
        let q: BoundedQueue<u32> = BoundedQueue::new(0);
        assert!(matches!(q.try_push(1), Err(PushError::Full)));
    }

    #[test]
    fn bounded_queue_unblocks_waiting_consumers_on_close() {
        let q: std::sync::Arc<BoundedQueue<u32>> = std::sync::Arc::new(BoundedQueue::new(4));
        let waiter = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert_eq!(waiter.join().unwrap(), None);
    }
}
