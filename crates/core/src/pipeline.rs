//! The end-to-end SVQA pipeline (Fig. 2 of the paper).

use crate::config::SvqaConfig;
use crate::degrade::{
    execute_with_retry, filter_view, probe_source, AnswerStatus, Breakers, GuardedAnswer,
    ProbeOutcome,
};
use crate::error::SvqaError;
use std::sync::OnceLock;
use std::time::{Duration, Instant};
use svqa_fault::{BreakerState, Source};
use svqa_aggregator::DataAggregator;
use svqa_executor::cache::ShardedCache;
use svqa_executor::executor::QueryGraphExecutor;
use svqa_executor::scheduler::{BatchReport, QueryScheduler};
use svqa_executor::{Answer, CacheStats};
use svqa_graph::Graph;
use svqa_qlint::{LintReport, Linter, Schema, Severity};
use svqa_qparser::{QueryGraph, QueryGraphGenerator};
use svqa_telemetry::{counter, global, stage, QueryOutcome, QueryTrace, Span};
use svqa_vision::prior::PairPrior;
use svqa_vision::scene::SyntheticImage;
use svqa_vision::sgg::SceneGraphGenerator;

/// Offline build statistics.
#[derive(Debug, Clone)]
pub struct BuildStats {
    /// Number of scene graphs generated.
    pub scene_graphs: usize,
    /// Merged-graph vertex count.
    pub merged_vertices: usize,
    /// Merged-graph edge count.
    pub merged_edges: usize,
    /// Aggregator accounting (Algorithm 1).
    pub merge: svqa_aggregator::MergeStats,
    /// Wall-clock time of scene-graph generation.
    pub sgg_time: Duration,
    /// Wall-clock time of graph merging.
    pub merge_time: Duration,
}

impl BuildStats {
    /// One-line human summary of the offline phase.
    pub fn summary_line(&self) -> String {
        format!(
            "{} scene graphs in {:.1?}; merged {} vertices / {} edges in {:.1?}",
            self.scene_graphs,
            self.sgg_time,
            self.merged_vertices,
            self.merged_edges,
            self.merge_time
        )
    }
}

/// Result of answering a batch of questions.
#[derive(Debug)]
pub struct BatchOutcome {
    /// Per-question results (original order). Parse failures are recorded
    /// as errors, matching the paper's Fig. 8a error analysis.
    pub answers: Vec<Result<Answer, SvqaError>>,
    /// Total wall-clock latency of the batch.
    pub total: Duration,
    /// Wall-clock per question (original order; parse-failed questions
    /// carry their parse time).
    pub per_query: Vec<Duration>,
    /// Cache hit/miss counters accumulated over the batch.
    pub cache_stats: CacheStats,
    /// Per-question telemetry traces (original order).
    pub traces: Vec<QueryTrace>,
}

/// The assembled system: merged graph + query pipeline.
pub struct Svqa {
    config: SvqaConfig,
    merged: Graph,
    generator: QueryGraphGenerator,
    build_stats: BuildStats,
    /// The scene-graph generator, retained for incremental ingestion (its
    /// prior is the one fitted on the original corpus — a deployed model
    /// does not retrain per batch).
    sgg: SceneGraphGenerator,
    /// KG vertices occupy merged ids `0..kg_vertex_count` (absorb order),
    /// which is how incremental linking finds knowledge counterparts.
    kg_vertex_count: usize,
    /// Static query-graph analyzer over the merged graph's extracted
    /// schema; every `answer*` path runs it before the executor and
    /// short-circuits error-severity findings.
    linter: Linter,
    /// Per-source circuit breakers for [`answer_guarded`](Self::answer_guarded).
    breakers: Breakers,
    /// Lazily-built merged-graph view without KG vertices (scene evidence
    /// only), for degraded execution when the KG breaker is open.
    scene_view: OnceLock<Graph>,
    /// Lazily-built merged-graph view without scene vertices (KG evidence
    /// only).
    kg_view: OnceLock<Graph>,
}

impl Svqa {
    /// Offline phase: run scene-graph generation over every image (fitting
    /// the relation model's prior on the corpus), then merge with the
    /// knowledge graph (Algorithm 1).
    pub fn build(images: &[SyntheticImage], kg: &Graph, config: SvqaConfig) -> Svqa {
        let prior = PairPrior::fit(images);
        let sgg = SceneGraphGenerator::new(config.sgg.clone(), prior);
        let t0 = Instant::now();
        let scene_graphs: Vec<Graph> = images.iter().map(|i| sgg.generate(i).graph).collect();
        let sgg_time = t0.elapsed();
        global().incr_counter_by(counter::SCENE_GRAPHS_BUILT, scene_graphs.len() as u64);

        let t1 = Instant::now();
        let aggregator = DataAggregator::new(config.aggregator.clone());
        let merged = aggregator.merge(&scene_graphs, kg);
        let merge_time = t1.elapsed();

        let build_stats = BuildStats {
            scene_graphs: scene_graphs.len(),
            merged_vertices: merged.graph.vertex_count(),
            merged_edges: merged.graph.edge_count(),
            merge: merged.stats,
            sgg_time,
            merge_time,
        };
        let linter = Linter::new(Schema::extract(&merged.graph));
        let breakers = Breakers::new(&config.degrade);
        Svqa {
            config,
            merged: merged.graph,
            generator: QueryGraphGenerator::new(),
            build_stats,
            sgg,
            kg_vertex_count: kg.vertex_count(),
            linter,
            breakers,
            scene_view: OnceLock::new(),
            kg_view: OnceLock::new(),
        }
    }

    /// Incremental ingestion: run scene-graph generation over `images` and
    /// attach them to the existing merged graph (the data-lake scenario of
    /// §I — new sources arrive continuously, and rebuilding `G_mg` from
    /// scratch per batch would defeat the aggregator). Returns the number
    /// of new link edges created.
    ///
    /// Note: callers running batches through the §V-B scheduler should
    /// start a fresh [`svqa_executor::cache::ShardedCache`] afterwards —
    /// cached scopes and paths predate the new evidence.
    pub fn add_images(&mut self, images: &[SyntheticImage]) -> usize {
        let link_label = self.config.aggregator.link_label.clone();
        let mut links = 0usize;
        for image in images {
            let out = self.sgg.generate(image);
            let mapping = self.merged.absorb(&out.graph);
            for (local, &merged_id) in out.graph.vertices().map(|(_, v)| v).zip(&mapping) {
                // Knowledge counterpart: the first vertex with this label
                // inside the KG id range.
                let kg_vertex = self
                    .merged
                    .vertices_with_label(local.label())
                    .iter()
                    .copied()
                    .find(|v| v.index() < self.kg_vertex_count);
                if let Some(kg) = kg_vertex {
                    self.merged
                        .add_edge(merged_id, kg, link_label.as_str())
                        .expect("endpoints exist");
                    self.merged
                        .add_edge(kg, merged_id, link_label.as_str())
                        .expect("endpoints exist");
                    links += 2;
                }
            }
        }
        global().incr_counter_by(counter::SCENE_GRAPHS_BUILT, images.len() as u64);
        self.build_stats.scene_graphs += images.len();
        self.build_stats.merged_vertices = self.merged.vertex_count();
        self.build_stats.merged_edges = self.merged.edge_count();
        self.build_stats.merge.links_created += links;
        // The new evidence may introduce categories/predicates the old
        // schema has never seen; re-extract so the linter stays truthful.
        self.linter = Linter::new(Schema::extract(&self.merged));
        // Degraded views were built from the pre-ingestion graph; drop
        // them so the next guarded answer sees the new evidence.
        self.scene_view = OnceLock::new();
        self.kg_view = OnceLock::new();
        links
    }

    /// Answer a question and return the supporting evidence (which images
    /// and knowledge-graph facts back the answer).
    pub fn answer_explained(
        &self,
        question: &str,
    ) -> Result<(Answer, svqa_executor::Explanation), SvqaError> {
        let result = (|| {
            let gq = self.parse(question)?;
            self.lint_gate(&gq)?;
            let executor = QueryGraphExecutor::with_config(&self.merged, self.config.executor);
            Ok(executor.execute_explained(&gq)?)
        })();
        count_outcome(&result);
        result
    }

    /// The merged graph `G_mg`.
    pub fn merged_graph(&self) -> &Graph {
        &self.merged
    }

    /// Offline build statistics.
    pub fn build_stats(&self) -> &BuildStats {
        &self.build_stats
    }

    /// The configuration.
    pub fn config(&self) -> &SvqaConfig {
        &self.config
    }

    /// Parse a question into its query graph (§IV).
    pub fn parse(&self, question: &str) -> Result<QueryGraph, SvqaError> {
        Ok(self.generator.generate(question)?)
    }

    /// The merged graph's extracted schema — what the linter checks
    /// questions against.
    pub fn schema(&self) -> &Schema {
        self.linter.schema()
    }

    /// Statically analyze a question without executing it: parse, then run
    /// the query-graph linter over the result. `Err` only for parse
    /// failures — an error-riddled report comes back as `Ok`, so callers
    /// can render every diagnostic.
    pub fn lint(&self, question: &str) -> Result<LintReport, SvqaError> {
        let gq = self.parse(question)?;
        Ok(self.lint_graph(&gq))
    }

    /// Lint an already-parsed query graph: records the `lint` stage span
    /// and bumps the lint counters.
    pub fn lint_graph(&self, gq: &QueryGraph) -> LintReport {
        let _span = Span::enter(stage::LINT);
        let report = self.linter.lint(gq);
        let errors = report.count(Severity::Error) as u64;
        let warnings = report.count(Severity::Warning) as u64;
        if errors > 0 {
            global().incr_counter_by(counter::LINT_ERRORS, errors);
        }
        if warnings > 0 {
            global().incr_counter_by(counter::LINT_WARNINGS, warnings);
        }
        report
    }

    /// Lint-first gate for the `answer*` paths: error-severity findings
    /// short-circuit execution; otherwise the (possibly warning-bearing)
    /// report is handed back for attachment to profiles.
    fn lint_gate(&self, gq: &QueryGraph) -> Result<LintReport, SvqaError> {
        let report = self.lint_graph(gq);
        if report.has_errors() {
            Err(SvqaError::Lint(report))
        } else {
            Ok(report)
        }
    }

    /// Answer a single question end-to-end.
    pub fn answer(&self, question: &str) -> Result<Answer, SvqaError> {
        let result = (|| {
            let gq = self.parse(question)?;
            self.lint_gate(&gq)?;
            let executor = QueryGraphExecutor::with_config(&self.merged, self.config.executor);
            Ok(executor.execute(&gq)?)
        })();
        count_outcome(&result);
        result
    }

    /// Answer a question under the failure-handling policy: per-source
    /// circuit breakers, bounded retries for transient faults, and partial
    /// answers from the surviving sources.
    ///
    /// * Both sources up → executes against the full merged graph and
    ///   returns [`AnswerStatus::Full`].
    /// * One source down (probe failed past the retry budget, or its
    ///   breaker already open) → executes against the surviving source's
    ///   filtered view and returns [`AnswerStatus::Degraded`]. The shared
    ///   `cache` is bypassed for degraded runs: cached ids refer to the
    ///   full merged graph.
    /// * Both sources down → [`SvqaError::Unavailable`] with a
    ///   `Retry-After` hint (the longest remaining breaker cooldown).
    ///
    /// `deadline` bounds injected latency stalls and retry backoff; the
    /// query server derives it from the request's `deadline_ms`.
    pub fn answer_guarded(
        &self,
        question: &str,
        cache: Option<&ShardedCache>,
        deadline: Option<Instant>,
    ) -> Result<GuardedAnswer, SvqaError> {
        let result = self.answer_guarded_inner(question, cache, deadline);
        count_outcome(&result);
        result
    }

    fn answer_guarded_inner(
        &self,
        question: &str,
        cache: Option<&ShardedCache>,
        deadline: Option<Instant>,
    ) -> Result<GuardedAnswer, SvqaError> {
        let gq = self.parse(question)?;
        self.lint_gate(&gq)?;
        let policy = &self.config.degrade;
        let mut missing: Vec<Source> = Vec::new();
        let mut retry_after_ms = policy.breaker.cooldown_ms;
        for source in Source::ALL {
            match probe_source(&self.breakers, policy, source, deadline) {
                ProbeOutcome::Available => {}
                ProbeOutcome::Down => missing.push(source),
                ProbeOutcome::Rejected {
                    retry_after_ms: ms,
                } => {
                    missing.push(source);
                    retry_after_ms = retry_after_ms.max(ms);
                }
            }
        }
        self.breakers.publish_gauges();
        if missing.len() == Source::ALL.len() {
            return Err(SvqaError::Unavailable {
                missing: missing.iter().map(|s| s.name().to_owned()).collect(),
                retry_after_ms,
            });
        }
        if missing.is_empty() {
            let executor = QueryGraphExecutor::with_config(&self.merged, self.config.executor);
            let answer = execute_with_retry(&policy.retry, deadline, || {
                executor.execute_cached(&gq, cache).map(|(a, _)| a)
            })?;
            return Ok(GuardedAnswer {
                answer,
                status: AnswerStatus::Full,
            });
        }
        let view = match missing[0] {
            Source::Kg => self.scene_view(),
            Source::Scene => self.kg_view(),
        };
        let executor = QueryGraphExecutor::with_config(view, self.config.executor);
        let answer = execute_with_retry(&policy.retry, deadline, || {
            executor.execute_cached(&gq, None).map(|(a, _)| a)
        })?;
        global().incr_counter(counter::ANSWERS_DEGRADED);
        Ok(GuardedAnswer {
            answer,
            status: AnswerStatus::Degraded {
                missing_sources: missing.iter().map(|s| s.name().to_owned()).collect(),
                confidence_penalty: (policy.confidence_penalty * missing.len() as f64).min(1.0),
            },
        })
    }

    /// The scene-only view of the merged graph (KG vertices filtered out),
    /// built on first use.
    fn scene_view(&self) -> &Graph {
        self.scene_view
            .get_or_init(|| filter_view(&self.merged, |i| i >= self.kg_vertex_count))
    }

    /// The KG-only view (scene vertices filtered out), built on first use.
    fn kg_view(&self) -> &Graph {
        self.kg_view
            .get_or_init(|| filter_view(&self.merged, |i| i < self.kg_vertex_count))
    }

    /// The per-source circuit breakers guarding this system.
    pub fn breakers(&self) -> &Breakers {
        &self.breakers
    }

    /// Current breaker state per source, in [`Source::ALL`] order.
    pub fn breaker_states(&self) -> Vec<(Source, BreakerState)> {
        self.breakers.states()
    }

    /// Overall source health: `"ok"`, `"degraded"`, or `"unhealthy"` (see
    /// [`Breakers::health`]).
    pub fn health_status(&self) -> &'static str {
        self.breakers.health()
    }

    /// Answer a single question with a caller-provided shared cache.
    pub fn answer_cached(
        &self,
        question: &str,
        cache: &ShardedCache,
    ) -> Result<Answer, SvqaError> {
        self.answer_traced(question, Some(cache)).0
    }

    /// Answer a single question and return its [`QueryTrace`]: per-stage
    /// wall-clock times, exact cache traffic (when a cache is supplied),
    /// and the terminal outcome. Powers `svqa-cli repl --verbose`.
    pub fn answer_traced(
        &self,
        question: &str,
        cache: Option<&ShardedCache>,
    ) -> (Result<Answer, SvqaError>, QueryTrace) {
        let mut trace = QueryTrace::new(question);
        let before = cache.map(ShardedCache::stats).unwrap_or_default();

        let t0 = Instant::now();
        let parsed = self.parse(question);
        trace.record_stage(stage::PARSE, t0.elapsed());

        let result = match parsed {
            Ok(gq) => {
                let t_lint = Instant::now();
                let lint = self.lint_graph(&gq);
                trace.record_stage(stage::LINT, t_lint.elapsed());
                if lint.has_errors() {
                    trace.outcome = QueryOutcome::LintError;
                    Err(SvqaError::Lint(lint))
                } else {
                    let executor =
                        QueryGraphExecutor::with_config(&self.merged, self.config.executor);
                    let t1 = Instant::now();
                    let executed = executor.execute_cached(&gq, cache).map(|(a, _)| a);
                    trace.record_stage(stage::MATCH, t1.elapsed());
                    if executed.is_err() {
                        trace.outcome = QueryOutcome::ExecError;
                    }
                    executed.map_err(SvqaError::from)
                }
            }
            Err(e) => {
                trace.outcome = QueryOutcome::ParseError;
                Err(e)
            }
        };
        if let Some(c) = cache {
            trace.cache = c.stats().delta_since(&before);
        }
        count_outcome(&result);
        (result, trace)
    }

    /// Answer a question and return the full `EXPLAIN ANALYZE` bundle:
    /// answer, plan-level [`ExecutionProfile`](svqa_executor::ExecutionProfile)
    /// (with the parse stage prepended), and answer provenance. The profile
    /// is also pushed into the global telemetry profile ring, where
    /// `svqa-cli serve-metrics` exposes it at `/profiles/recent`.
    pub fn answer_profiled(
        &self,
        question: &str,
        cache: Option<&ShardedCache>,
    ) -> Result<svqa_executor::ProfiledRun, SvqaError> {
        let result = (|| {
            let t0 = Instant::now();
            let gq = self.parse(question)?;
            let parse_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let t1 = Instant::now();
            let lint = self.lint_gate(&gq)?;
            let lint_ns = u64::try_from(t1.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let executor = QueryGraphExecutor::with_config(&self.merged, self.config.executor);
            let mut run = executor.execute_profiled(&gq, cache)?;
            // Prepend in reverse: lint first so parse ends up on top.
            run.profile.prepend_stage(stage::LINT, lint_ns);
            run.profile.prepend_stage(stage::PARSE, parse_ns);
            if !lint.is_clean() {
                run.profile.set_lint(lint.diagnostics);
            }
            svqa_telemetry::global_profiles().push(run.profile.to_json_value());
            Ok(run)
        })();
        count_outcome(&result);
        result
    }

    /// Answer a batch with the §V-B optimized scheduler (frequency-sorted
    /// order, shared key-centric cache, optional parallelism). Each call
    /// starts from a cold cache; long-lived callers (the query server)
    /// should hold a [`ShardedCache`] and use
    /// [`answer_batch_cached`](Self::answer_batch_cached) so hits carry
    /// over between batches.
    pub fn answer_batch(&self, questions: &[&str]) -> BatchOutcome {
        let cache = QueryScheduler::new(self.config.scheduler).build_cache();
        self.answer_batch_cached(questions, &cache)
    }

    /// [`answer_batch`](Self::answer_batch) against a caller-provided
    /// persistent cache: scopes and paths cached by earlier requests
    /// (single questions or whole batches) accelerate this one.
    pub fn answer_batch_cached(&self, questions: &[&str], cache: &ShardedCache) -> BatchOutcome {
        let start = Instant::now();
        // Parse phase (per-question failures recorded, not fatal).
        let mut parsed: Vec<(usize, QueryGraph)> = Vec::with_capacity(questions.len());
        let mut answers: Vec<Option<Result<Answer, SvqaError>>> =
            (0..questions.len()).map(|_| None).collect();
        let mut per_query = vec![Duration::ZERO; questions.len()];
        let mut traces: Vec<QueryTrace> =
            questions.iter().map(|q| QueryTrace::new(*q)).collect();
        for (i, q) in questions.iter().enumerate() {
            let t0 = Instant::now();
            match self.generator.generate(q) {
                Ok(gq) => {
                    traces[i].record_stage(stage::PARSE, t0.elapsed());
                    let t_lint = Instant::now();
                    let lint = self.lint_graph(&gq);
                    traces[i].record_stage(stage::LINT, t_lint.elapsed());
                    if lint.has_errors() {
                        traces[i].outcome = QueryOutcome::LintError;
                        answers[i] = Some(Err(SvqaError::Lint(lint)));
                    } else {
                        parsed.push((i, gq));
                    }
                }
                Err(e) => {
                    traces[i].record_stage(stage::PARSE, t0.elapsed());
                    traces[i].outcome = QueryOutcome::ParseError;
                    answers[i] = Some(Err(e.into()));
                }
            }
            per_query[i] = t0.elapsed();
        }
        // Execution phase via the scheduler, with the linter's cardinality
        // estimates as join-order hints (ties in the frequency ordering
        // break toward cheaper plans).
        let graphs: Vec<QueryGraph> = parsed.iter().map(|(_, g)| g.clone()).collect();
        let hints: Vec<f64> = graphs.iter().map(|g| self.linter.cost(g).total).collect();
        let scheduler = QueryScheduler::new(self.config.scheduler);
        let report: BatchReport =
            scheduler.run_with_cache_hinted(&self.merged, &graphs, cache, Some(&hints));
        for ((orig, _), (answer, dt)) in parsed
            .iter()
            .zip(report.answers.into_iter().zip(report.per_query))
        {
            if answer.is_err() {
                traces[*orig].outcome = QueryOutcome::ExecError;
            }
            traces[*orig].record_stage(stage::MATCH, dt);
            answers[*orig] = Some(answer.map_err(SvqaError::from));
            per_query[*orig] += dt;
        }
        report.cache_stats.record_to(global());
        // The cache is shared across the batch, so per-question attribution
        // is an even split (documented as approximate on `QueryTrace`).
        let executed = parsed.len().max(1) as u64;
        let share = CacheStats {
            scope_hits: report.cache_stats.scope_hits / executed,
            scope_misses: report.cache_stats.scope_misses / executed,
            path_hits: report.cache_stats.path_hits / executed,
            path_misses: report.cache_stats.path_misses / executed,
        };
        for (orig, _) in &parsed {
            traces[*orig].cache = share;
        }
        let answers: Vec<Result<Answer, SvqaError>> = answers
            .into_iter()
            .map(|a| a.expect("all questions accounted for"))
            .collect();
        for a in &answers {
            count_outcome(a);
        }
        BatchOutcome {
            answers,
            total: start.elapsed(),
            per_query,
            cache_stats: report.cache_stats,
            traces,
        }
    }
}

/// Bump the global answered/failed counters for a finished question.
fn count_outcome<T>(result: &Result<T, SvqaError>) {
    match result {
        Ok(_) => global().incr_counter(counter::QUESTIONS_ANSWERED),
        Err(_) => global().incr_counter(counter::QUESTIONS_FAILED),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svqa_dataset::Mvqa;

    fn small_system() -> (Svqa, Mvqa) {
        let mvqa = Mvqa::generate_small(250, 11);
        let system = Svqa::build(&mvqa.images, &mvqa.kg, SvqaConfig::default());
        (system, mvqa)
    }

    #[test]
    fn build_produces_a_connected_merged_graph() {
        let (system, mvqa) = small_system();
        let stats = system.build_stats();
        assert_eq!(stats.scene_graphs, 250);
        assert!(stats.merged_vertices > mvqa.kg.vertex_count());
        assert!(stats.merge.links_created > 0);
        system.merged_graph().validate().unwrap();
    }

    #[test]
    fn answers_a_simple_judgment() {
        let (system, _) = small_system();
        // Pets in vehicles exist by archetype construction.
        let a = system
            .answer("Does the dog appear in the car?")
            .unwrap();
        assert!(matches!(a, Answer::Judgment(_)));
    }

    #[test]
    fn parse_failures_are_reported_not_fatal() {
        let (system, _) = small_system();
        let out = system.answer_batch(&[
            "Does the dog appear in the car?",
            "the red dog", // no verb
        ]);
        assert!(out.answers[0].is_ok());
        assert!(matches!(out.answers[1], Err(SvqaError::Parse(_))));
    }

    #[test]
    fn incremental_ingestion_extends_the_merged_graph() {
        let mvqa = Mvqa::generate_small(200, 11);
        let (head, tail) = mvqa.images.split_at(150);
        let mut incremental = Svqa::build(head, &mvqa.kg, SvqaConfig::default());
        let before_vertices = incremental.merged_graph().vertex_count();
        let links = incremental.add_images(tail);
        assert!(links > 0);
        assert!(incremental.merged_graph().vertex_count() > before_vertices);
        assert_eq!(incremental.build_stats().scene_graphs, 200);
        incremental.merged_graph().validate().unwrap();

        // Answers over the incrementally-built graph match the batch-built
        // one (scene-graph generation is seeded per image id, so the two
        // paths see identical perception).
        let full = Svqa::build(&mvqa.images, &mvqa.kg, SvqaConfig::default());
        for q in [
            "Does the dog appear in the car?",
            "How many dogs are in the car?",
        ] {
            assert_eq!(incremental.answer(q).ok(), full.answer(q).ok(), "{q}");
        }
    }

    #[test]
    fn explained_answers_cite_images() {
        let (system, _) = small_system();
        let (answer, explanation) = system
            .answer_explained("Does the dog appear in the car?")
            .unwrap();
        if answer.is_yes() {
            assert!(!explanation.cited_images().is_empty());
            assert!(explanation.fact_count() > 0);
        } else {
            assert_eq!(explanation.fact_count(), 0);
        }
    }

    #[test]
    fn profiled_answers_match_and_reach_the_profile_ring() {
        let (system, _) = small_system();
        let q = "Does the dog appear in the car?";
        let plain = system.answer(q).unwrap();
        let run = system.answer_profiled(q, None).unwrap();
        assert_eq!(run.answer, plain);
        assert_eq!(run.profile.question, q);
        // parse + match stages, with per-quadruple children under match.
        assert!(run.profile.stages.len() >= 2);
        assert_eq!(run.profile.stages[0].stage, stage::PARSE);
        assert!(!run.profile.quads.is_empty());
        assert!(run.profile.render_tree().contains("EXPLAIN ANALYZE"));
        // The global profile ring saw it (other tests may push too, so
        // only require presence).
        let ring = svqa_telemetry::global_profiles();
        assert!(ring
            .recent()
            .iter()
            .any(|p| p["question"].as_str() == Some(q)));
    }

    #[test]
    fn batch_and_single_agree() {
        let (system, _) = small_system();
        let questions = [
            "Does the dog appear in the car?",
            "How many dogs are in the car?",
        ];
        let batch = system.answer_batch(&questions);
        for (q, b) in questions.iter().zip(&batch.answers) {
            let single = system.answer(q).unwrap();
            assert_eq!(b.as_ref().unwrap(), &single);
        }
        assert!(batch.total > Duration::ZERO);
    }
}
