//! Pipeline error type.

use std::fmt;
use svqa_executor::executor::ExecError;
use svqa_qlint::LintReport;
use svqa_qparser::QueryParseError;

/// Errors from answering a question end-to-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SvqaError {
    /// The question could not be parsed into a query graph (§IV).
    Parse(QueryParseError),
    /// The query graph was rejected by the static linter before execution:
    /// at least one error-severity diagnostic says the plan cannot produce
    /// answers. Carries the full report (including any warnings/hints).
    Lint(LintReport),
    /// The query graph could not be executed (§V).
    Exec(ExecError),
    /// Every evidence source is unavailable (all circuit breakers open):
    /// not even a degraded answer is possible. Servers map this to 503.
    Unavailable {
        /// Names of the unavailable sources.
        missing: Vec<String>,
        /// Suggested client backoff before retrying, in milliseconds (the
        /// longest remaining breaker cooldown).
        retry_after_ms: u64,
    },
}

impl fmt::Display for SvqaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvqaError::Parse(e) => write!(f, "query parse failed: {e}"),
            SvqaError::Lint(report) => {
                write!(f, "query rejected by lint ({})", report.summary())?;
                for d in report.errors() {
                    write!(f, "; {d}")?;
                }
                Ok(())
            }
            SvqaError::Exec(e) => write!(f, "query execution failed: {e}"),
            SvqaError::Unavailable {
                missing,
                retry_after_ms,
            } => write!(
                f,
                "no evidence source available (missing: {}; retry after {retry_after_ms}ms)",
                missing.join(", ")
            ),
        }
    }
}

impl std::error::Error for SvqaError {}

impl From<QueryParseError> for SvqaError {
    fn from(e: QueryParseError) -> Self {
        SvqaError::Parse(e)
    }
}

impl From<ExecError> for SvqaError {
    fn from(e: ExecError) -> Self {
        SvqaError::Exec(e)
    }
}

impl From<LintReport> for SvqaError {
    fn from(report: LintReport) -> Self {
        SvqaError::Lint(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: SvqaError = ExecError::EmptyQueryGraph.into();
        assert!(e.to_string().contains("execution"));
        let e: SvqaError = QueryParseError::EmptySpoc { clause: 1 }.into();
        assert!(e.to_string().contains("parse"));
        let mut report = LintReport::default();
        report.diagnostics.push(svqa_qlint::Diagnostic::new(
            svqa_qlint::codes::CYCLIC_DEPENDENCY,
            svqa_qlint::Severity::Error,
            "cycle",
        ));
        let e: SvqaError = report.into();
        let text = e.to_string();
        assert!(text.contains("lint") && text.contains("cyclic-dependency"), "{text}");
    }
}
