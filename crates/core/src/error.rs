//! Pipeline error type.

use std::fmt;
use svqa_executor::executor::ExecError;
use svqa_qparser::QueryParseError;

/// Errors from answering a question end-to-end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SvqaError {
    /// The question could not be parsed into a query graph (§IV).
    Parse(QueryParseError),
    /// The query graph could not be executed (§V).
    Exec(ExecError),
}

impl fmt::Display for SvqaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvqaError::Parse(e) => write!(f, "query parse failed: {e}"),
            SvqaError::Exec(e) => write!(f, "query execution failed: {e}"),
        }
    }
}

impl std::error::Error for SvqaError {}

impl From<QueryParseError> for SvqaError {
    fn from(e: QueryParseError) -> Self {
        SvqaError::Parse(e)
    }
}

impl From<ExecError> for SvqaError {
    fn from(e: ExecError) -> Self {
        SvqaError::Exec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e: SvqaError = ExecError::EmptyQueryGraph.into();
        assert!(e.to_string().contains("execution"));
        let e: SvqaError = QueryParseError::EmptySpoc { clause: 1 }.into();
        assert!(e.to_string().contains("parse"));
    }
}
