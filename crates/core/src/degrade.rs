//! Graceful degradation: per-source circuit breakers, transient-fault
//! retries, and partial answers over the surviving sources.
//!
//! SVQA's merged graph folds two evidence sources — the external knowledge
//! graph and the per-image scene graphs — into one structure, so "one
//! source is down" is a *view* question, not a storage question: KG
//! vertices occupy the low id range (absorb order), scene vertices the
//! rest. When a source's breaker is open,
//! [`Svqa::answer_guarded`](crate::Svqa::answer_guarded) executes against
//! a lazily-built filtered copy of the merged graph that keeps only the
//! surviving source's vertices, and labels the result
//! [`AnswerStatus::Degraded`].

use std::fmt;
use std::time::Instant;
use svqa_fault::{
    Acquire, BreakerState, CircuitBreaker, DegradePolicy, FaultKind, RetryPolicy, Source,
};
use svqa_graph::Graph;
use svqa_telemetry::{counter, gauge, global};

/// How complete the evidence behind an answer was.
#[derive(Debug, Clone, PartialEq)]
pub enum AnswerStatus {
    /// All sources participated.
    Full,
    /// One or more sources were unavailable; the answer came from the
    /// survivors.
    Degraded {
        /// Names of the sources that did not participate (see
        /// [`Source::name`]).
        missing_sources: Vec<String>,
        /// Total confidence penalty in `[0, 1]` (policy penalty × missing
        /// sources).
        confidence_penalty: f64,
    },
}

impl AnswerStatus {
    /// Whether any source was missing.
    pub fn is_degraded(&self) -> bool {
        matches!(self, AnswerStatus::Degraded { .. })
    }

    /// Stable status label for response payloads: `"ok"` or `"degraded"`.
    pub fn label(&self) -> &'static str {
        match self {
            AnswerStatus::Full => "ok",
            AnswerStatus::Degraded { .. } => "degraded",
        }
    }
}

impl fmt::Display for AnswerStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnswerStatus::Full => f.write_str("ok"),
            AnswerStatus::Degraded {
                missing_sources,
                confidence_penalty,
            } => write!(
                f,
                "degraded (missing: {}; confidence -{confidence_penalty:.2})",
                missing_sources.join(", ")
            ),
        }
    }
}

/// An answer plus how complete the evidence behind it was.
#[derive(Debug, Clone, PartialEq)]
pub struct GuardedAnswer {
    /// The answer from whatever evidence survived.
    pub answer: svqa_executor::Answer,
    /// Full or degraded.
    pub status: AnswerStatus,
}

/// The per-source breakers guarding a [`crate::Svqa`] system.
#[derive(Debug)]
pub struct Breakers {
    kg: CircuitBreaker,
    scene: CircuitBreaker,
}

impl Breakers {
    /// Fresh (closed) breakers with the policy's tuning.
    pub fn new(policy: &DegradePolicy) -> Breakers {
        Breakers {
            kg: CircuitBreaker::new(policy.breaker),
            scene: CircuitBreaker::new(policy.breaker),
        }
    }

    /// The breaker guarding `source`.
    pub fn for_source(&self, source: Source) -> &CircuitBreaker {
        match source {
            Source::Kg => &self.kg,
            Source::Scene => &self.scene,
        }
    }

    /// Current state per source, in [`Source::ALL`] order.
    pub fn states(&self) -> Vec<(Source, BreakerState)> {
        Source::ALL
            .iter()
            .map(|&s| (s, self.for_source(s).state()))
            .collect()
    }

    /// Overall health: `ok` (all closed), `unhealthy` (all open), else
    /// `degraded` (anything in between, including recovering half-open).
    pub fn health(&self) -> &'static str {
        let states = self.states();
        if states.iter().all(|(_, s)| *s == BreakerState::Closed) {
            "ok"
        } else if states.iter().all(|(_, s)| *s == BreakerState::Open) {
            "unhealthy"
        } else {
            "degraded"
        }
    }

    /// Push each breaker's state onto its telemetry gauge.
    pub fn publish_gauges(&self) {
        global().set_gauge(gauge::BREAKER_STATE_KG, self.kg.state().gauge_value());
        global().set_gauge(gauge::BREAKER_STATE_SCENE, self.scene.state().gauge_value());
    }
}

/// Outcome of one per-query source probe.
pub(crate) enum ProbeOutcome {
    /// The source answered (possibly after retries).
    Available,
    /// The source failed past the retry budget; the breaker recorded it.
    Down,
    /// The breaker was already open; the source was not touched.
    Rejected {
        /// Cooldown remaining, as a client `Retry-After` hint.
        retry_after_ms: u64,
    },
}

/// Probe one source's availability for this query: gate on the breaker,
/// draw the source's injection site, and retry transient errors within the
/// policy and deadline budget.
pub(crate) fn probe_source(
    breakers: &Breakers,
    policy: &DegradePolicy,
    source: Source,
    deadline: Option<Instant>,
) -> ProbeOutcome {
    let breaker = breakers.for_source(source);
    match breaker.try_acquire() {
        Acquire::Rejected { retry_after } => ProbeOutcome::Rejected {
            retry_after_ms: retry_after.as_millis().try_into().unwrap_or(u64::MAX),
        },
        Acquire::Ready | Acquire::Probe => {
            // Deterministic per-source salt: keeps the two sources' backoff
            // jitter decorrelated while staying reproducible per plan.
            let salt = match source {
                Source::Kg => 0x6b67,
                Source::Scene => 0x7363,
            };
            if attempt_with_retry(&policy.retry, source.probe_site(), salt, deadline) {
                breaker.record_success();
                ProbeOutcome::Available
            } else {
                breaker.record_failure();
                ProbeOutcome::Down
            }
        }
    }
}

/// Draw `site` until it succeeds or the retry/deadline budget runs out.
/// Returns whether the operation ultimately succeeded.
fn attempt_with_retry(
    retry: &RetryPolicy,
    site: &str,
    salt: u64,
    deadline: Option<Instant>,
) -> bool {
    let mut attempt = 0u32;
    loop {
        match svqa_fault::draw(site) {
            None | Some(FaultKind::CorruptLabel) => return true,
            // A stalled source that still fits the deadline counts as
            // success; a stall truncated by the deadline does not.
            Some(FaultKind::Latency(ms)) => return svqa_fault::apply_latency(ms, deadline),
            // The result is silently gone — retrying cannot bring it back.
            Some(FaultKind::DropResult) => return false,
            Some(FaultKind::Error) => {
                if !retry.fits(attempt, salt, deadline) {
                    return false;
                }
                global().incr_counter(counter::FAULT_RETRIES);
                std::thread::sleep(retry.backoff(attempt, salt));
                attempt += 1;
            }
        }
    }
}

/// Retry a fallible execution closure on injected transient errors, within
/// the policy and deadline budget. Non-injected errors return immediately.
pub(crate) fn execute_with_retry<T>(
    retry: &RetryPolicy,
    deadline: Option<Instant>,
    mut run: impl FnMut() -> Result<T, svqa_executor::executor::ExecError>,
) -> Result<T, svqa_executor::executor::ExecError> {
    let mut attempt = 0u32;
    loop {
        match run() {
            Err(svqa_executor::executor::ExecError::Injected)
                if retry.fits(attempt, 0x6578, deadline) =>
            {
                global().incr_counter(counter::FAULT_RETRIES);
                std::thread::sleep(retry.backoff(attempt, 0x6578));
                attempt += 1;
            }
            other => return other,
        }
    }
}

/// Copy the subgraph induced by the vertices `keep` accepts (by dense
/// vertex index), preserving labels and properties. Edge endpoints are
/// remapped; edges with a dropped endpoint are dropped.
pub(crate) fn filter_view(graph: &Graph, keep: impl Fn(usize) -> bool) -> Graph {
    let mut view = Graph::with_capacity(graph.vertex_count(), graph.edge_count());
    let mut mapping = vec![None; graph.vertex_count()];
    for (id, v) in graph.vertices() {
        if keep(id.index()) {
            mapping[id.index()] =
                Some(view.add_vertex_with_props(v.label(), v.props().clone()));
        }
    }
    for (_, e) in graph.edges() {
        if let (Some(src), Some(dst)) = (mapping[e.src().index()], mapping[e.dst().index()]) {
            view.add_edge_with_props(src, dst, e.label(), e.props().clone())
                .expect("endpoints were just added");
        }
    }
    view
}

#[cfg(test)]
mod tests {
    use super::*;
    use svqa_fault::BreakerConfig;

    fn policy() -> DegradePolicy {
        DegradePolicy {
            breaker: BreakerConfig {
                failure_threshold: 2,
                cooldown_ms: 10,
            },
            ..DegradePolicy::default()
        }
    }

    #[test]
    fn health_reflects_breaker_states() {
        let b = Breakers::new(&policy());
        assert_eq!(b.health(), "ok");
        b.for_source(Source::Kg).force_open();
        assert_eq!(b.health(), "degraded");
        b.for_source(Source::Scene).force_open();
        assert_eq!(b.health(), "unhealthy");
        b.for_source(Source::Kg).record_success();
        b.for_source(Source::Scene).record_success();
        assert_eq!(b.health(), "ok");
    }

    #[test]
    fn probe_rejected_while_breaker_open() {
        let b = Breakers::new(&policy());
        b.for_source(Source::Kg).force_open();
        match probe_source(&b, &policy(), Source::Kg, None) {
            ProbeOutcome::Rejected { retry_after_ms } => assert!(retry_after_ms <= 10),
            _ => panic!("expected rejection"),
        }
        // No plan installed: the scene probe trivially succeeds.
        assert!(matches!(
            probe_source(&b, &policy(), Source::Scene, None),
            ProbeOutcome::Available
        ));
    }

    #[test]
    fn filter_view_keeps_induced_subgraph() {
        let mut g = Graph::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        let c = g.add_vertex("c");
        g.add_edge(a, b, "ab").unwrap();
        g.add_edge(b, c, "bc").unwrap();
        g.add_edge(a, c, "ac").unwrap();
        let view = filter_view(&g, |i| i != 1);
        assert_eq!(view.vertex_count(), 2);
        assert_eq!(view.edge_count(), 1);
        let labels: Vec<_> = view.vertices().map(|(_, v)| v.label().to_owned()).collect();
        assert_eq!(labels, ["a", "c"]);
        assert_eq!(view.edges().next().unwrap().1.label(), "ac");
    }

    #[test]
    fn status_labels() {
        assert_eq!(AnswerStatus::Full.label(), "ok");
        let d = AnswerStatus::Degraded {
            missing_sources: vec!["kg".into()],
            confidence_penalty: 0.25,
        };
        assert_eq!(d.label(), "degraded");
        assert!(d.is_degraded());
        assert!(d.to_string().contains("kg"));
    }
}
