//! Whole-pipeline configuration.

use serde::{Deserialize, Serialize};
use svqa_aggregator::AggregatorConfig;
use svqa_executor::executor::ExecutorConfig;
use svqa_executor::scheduler::SchedulerConfig;
use svqa_vision::sgg::SggConfig;

/// Configuration for the full SVQA pipeline.
#[derive(Debug, Clone, Default)]
pub struct SvqaConfig {
    /// Scene-graph generation (§III-A): detector channel, relation model,
    /// TDE.
    pub sgg: SggConfig,
    /// Data aggregation (§III-B): subgraph-cache thresholds.
    pub aggregator: AggregatorConfig,
    /// Single-query execution (§V-A).
    pub executor: ExecutorConfig,
    /// Multi-query scheduling and caching (§V-B).
    pub scheduler: SchedulerConfig,
    /// Failure handling: circuit-breaker, retry, and partial-answer tuning
    /// used by `Svqa::answer_guarded` and `svqa serve`.
    pub degrade: svqa_fault::DegradePolicy,
}

/// Serializable summary of a configuration, for experiment reports.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConfigSummary {
    /// SGG model name.
    pub sgg_model: String,
    /// Whether TDE is on.
    pub tde: bool,
    /// Aggregator frequency threshold `c'`.
    pub frequency_threshold: usize,
    /// Aggregator neighbourhood radius `k`.
    pub k: usize,
    /// Cache pool size.
    pub pool_size: usize,
}

impl SvqaConfig {
    /// Summarize for reports.
    pub fn summary(&self) -> ConfigSummary {
        ConfigSummary {
            sgg_model: self.sgg.model.name().to_owned(),
            tde: self.sgg.use_tde,
            frequency_threshold: self.aggregator.frequency_threshold,
            k: self.aggregator.k,
            pool_size: self.scheduler.pool_size,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper_choices() {
        let c = SvqaConfig::default();
        assert!(c.sgg.use_tde); // TDE is the paper's default (§III-A)
        assert_eq!(c.aggregator.frequency_threshold, 5); // "more than 5 times"
        assert_eq!(c.aggregator.k, 2); // "we set k = 2"
        let s = c.summary();
        assert_eq!(s.sgg_model, "Neural-Motifs"); // MOTIFNET default
        assert!(s.tde);
    }
}
