//! # svqa
//!
//! **SVQA** — semantic question answering across images and graphs. A
//! from-scratch Rust reproduction of "Across Images and Graphs for Question
//! Answering" (ICDE 2024).
//!
//! The crate wires the subsystem crates into the paper's Fig. 2 pipeline:
//!
//! ```text
//! images ──▶ scene-graph generation (svqa-vision, §III-A, TDE debiasing)
//!                    │
//! knowledge graph ──▶ data aggregator (svqa-aggregator, §III-B, Alg. 1)
//!                    │
//!                    ▼
//!              merged graph G_mg
//!                    ▲
//! question ──▶ query-graph generator (svqa-qparser, §IV, Alg. 2)
//!                    │
//!                    ▼
//!              query executor (svqa-executor, §V, Alg. 3 + caching)
//!                    │
//!                    ▼
//!                  answer
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use svqa::{Svqa, SvqaConfig};
//! use svqa_dataset::Mvqa;
//!
//! // A miniature MVQA-style world: synthetic images + knowledge graph.
//! let mvqa = Mvqa::generate_small(150, 7);
//! let system = Svqa::build(&mvqa.images, &mvqa.kg, SvqaConfig::default());
//! let answer = system
//!     .answer("How many dogs are sitting on the grass?")
//!     .unwrap();
//! println!("answer: {answer}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod degrade;
pub mod error;
pub mod eval;
pub mod pipeline;
pub mod serve;

pub use config::SvqaConfig;
pub use degrade::{AnswerStatus, Breakers, GuardedAnswer};
pub use error::SvqaError;
pub use eval::{evaluate_on_mvqa, evaluate_on_mvqa_guarded, EvalOutcome, GuardedEvalOutcome};
pub use pipeline::{BatchOutcome, BuildStats, Svqa};
pub use serve::{QueryServer, ServeConfig};

// Re-export the subsystem crates so downstream users need a single
// dependency.
pub use svqa_aggregator as aggregator;
pub use svqa_fault as fault;
pub use svqa_baselines as baselines;
pub use svqa_dataset as dataset;
pub use svqa_executor as executor;
pub use svqa_graph as graph;
pub use svqa_nlp as nlp;
pub use svqa_qlint as qlint;
pub use svqa_qparser as qparser;
pub use svqa_telemetry as telemetry;
pub use svqa_vision as vision;

pub use svqa_executor::Answer;
