//! `svqa-cli` — build, persist, query and evaluate SVQA worlds from the
//! command line.
//!
//! ```text
//! svqa-cli build --images 1000 --seed 7 --out world/     # offline phase
//! svqa-cli ask   --world world/ "How many dogs are in the car?"
//! svqa-cli ask   --world world/ --explain --trace-out t.json "…"
//! svqa-cli explain --world world/ "How many dogs are in the car?"
//! svqa-cli eval  --world world/                          # Table-III style report
//! svqa-cli eval  --images 200 --metrics out.json         # in-process build + metrics dump
//! svqa-cli repl  --images 500 --verbose                  # interactive loop with traces
//! svqa-cli stats --images 200                            # build stats + telemetry summary
//! svqa-cli serve-metrics --images 200 --port 9100        # live Prometheus endpoint
//! ```
//!
//! `--metrics <file.json>` (on `ask` and `eval`) writes the process-global
//! telemetry snapshot — per-stage latency histograms with p50/p95/p99,
//! counters, and cache hit rates — as pretty-printed JSON.
//!
//! `explain` (or `ask --explain`) prints the `EXPLAIN ANALYZE` plan tree:
//! per-quadruple candidate counts through each pruning step, cache
//! hit/miss/bypass classification, edges scanned, and wall times.
//! `--trace-out FILE` writes a Chrome trace-event file (open in
//! `chrome://tracing` or <https://ui.perfetto.dev>); `--profile-out FILE`
//! writes the machine-readable profile JSON. `serve-metrics` exposes the
//! live registry at `/metrics` (Prometheus text format), `/metrics.json`,
//! and the last profiles at `/profiles/recent`.
//!
//! The world directory holds the merged graph as a binary snapshot
//! (`merged.svqg`, see `svqa_graph::binio`) plus the generated questions
//! with their ground truth (`questions.json`) — everything the online
//! phase needs, without regenerating scenes.

use std::io::{BufRead, Write as _};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;
use svqa::dataset::mvqa::{Mvqa, MvqaConfig};
use svqa::dataset::questions::{QaPair, QuestionCounts};
use svqa::executor::executor::QueryGraphExecutor;
use svqa::executor::ProfiledRun;
use svqa::qparser::QueryGraphGenerator;
use svqa::telemetry::ChromeTrace;
use svqa::{Svqa, SvqaConfig};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("ask") => cmd_ask(&args[1..]),
        Some("explain") => cmd_explain(&args[1..]),
        Some("lint") => cmd_lint(&args[1..]),
        Some("eval") => cmd_eval(&args[1..]),
        Some("repl") => cmd_repl(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("serve-metrics") => cmd_serve_metrics(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        _ => {
            eprintln!(
                "usage: svqa-cli <build|ask|explain|lint|eval|repl|stats|serve|serve-metrics|chaos> \
                 [--images N] [--seed S] [--out DIR] [--world DIR] [--metrics FILE] \
                 [--corpus FILE] [--explain] [--json] [--trace-out FILE] [--profile-out FILE] \
                 [--port N] [--workers N] [--queue-depth N] [--deadline-ms N] \
                 [--cache-pool N] [--cache-shards N] [--fault-plan FILE] [--fault-seed S] \
                 [--rates R1,R2,...] [--verbose] [question]"
            );
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type AnyError = Box<dyn std::error::Error>;

/// Flags that consume the following argument as their value. Anything else
/// starting with `--` is a boolean switch (`--explain`, `--verbose`, …).
const VALUE_FLAGS: [&str; 17] = [
    "--images",
    "--seed",
    "--out",
    "--world",
    "--metrics",
    "--corpus",
    "--trace-out",
    "--profile-out",
    "--port",
    "--workers",
    "--queue-depth",
    "--deadline-ms",
    "--cache-pool",
    "--cache-shards",
    "--fault-plan",
    "--fault-seed",
    "--rates",
];

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn positional(args: &[String]) -> Option<String> {
    let mut skip_next = false;
    for a in args {
        if skip_next {
            skip_next = false;
            continue;
        }
        if a.starts_with("--") {
            skip_next = VALUE_FLAGS.contains(&a.as_str());
            continue;
        }
        return Some(a.clone());
    }
    None
}

fn build_world(images: usize, seed: u64) -> (Svqa, Mvqa) {
    eprintln!("generating {images} images (seed {seed})...");
    let mvqa = Mvqa::generate(MvqaConfig {
        image_count: images,
        seed,
        counts: QuestionCounts::default(),
    });
    eprintln!("building the merged graph...");
    let system = Svqa::build(&mvqa.images, &mvqa.kg, SvqaConfig::default());
    let stats = system.build_stats();
    eprintln!(
        "merged graph: {} vertices, {} edges",
        stats.merged_vertices, stats.merged_edges
    );
    (system, mvqa)
}

fn cmd_build(args: &[String]) -> Result<(), AnyError> {
    let images: usize = flag(args, "--images").map_or(Ok(1000), |s| s.parse())?;
    let seed: u64 = flag(args, "--seed").map_or(Ok(0x4d56_5141), |s| s.parse())?;
    let out = PathBuf::from(flag(args, "--out").unwrap_or_else(|| "world".to_owned()));
    std::fs::create_dir_all(&out)?;

    let (system, mvqa) = build_world(images, seed);
    std::fs::write(
        out.join("merged.svqg"),
        svqa::graph::binio::to_bytes(system.merged_graph()),
    )?;
    std::fs::write(
        out.join("questions.json"),
        serde_json::to_string_pretty(&mvqa.questions)?,
    )?;
    std::fs::write(
        out.join("meta.json"),
        serde_json::to_string_pretty(&serde_json::json!({
            "images": images,
            "seed": seed,
            "config": system.config().summary(),
        }))?,
    )?;
    println!("world written to {}", out.display());
    Ok(())
}

fn load_world(dir: &Path) -> Result<(svqa::graph::Graph, Vec<QaPair>), AnyError> {
    let snapshot = std::fs::read(dir.join("merged.svqg"))?;
    let graph = svqa::graph::binio::from_bytes(snapshot.into())?;
    let questions: Vec<QaPair> =
        serde_json::from_str(&std::fs::read_to_string(dir.join("questions.json"))?)?;
    Ok((graph, questions))
}

fn answer_over(graph: &svqa::graph::Graph, question: &str) -> Result<(), AnyError> {
    let result = answer_over_inner(graph, question);
    let counter = match result {
        Ok(()) => svqa::telemetry::counter::QUESTIONS_ANSWERED,
        Err(_) => svqa::telemetry::counter::QUESTIONS_FAILED,
    };
    svqa::telemetry::global().incr_counter(counter);
    result
}

/// Build a linter over a loaded world graph and gate `gq` on it: hard
/// `Error` diagnostics short-circuit before the executor runs; warnings
/// and hints come back for display.
fn lint_world_gate(
    graph: &svqa::graph::Graph,
    gq: &svqa::qparser::QueryGraph,
) -> Result<svqa::qlint::LintReport, AnyError> {
    let linter = svqa::qlint::Linter::new(svqa::qlint::Schema::extract(graph));
    let report = linter.lint(gq);
    if report.has_errors() {
        return Err(Box::new(svqa::SvqaError::Lint(report)));
    }
    Ok(report)
}

fn answer_over_inner(graph: &svqa::graph::Graph, question: &str) -> Result<(), AnyError> {
    let generator = QueryGraphGenerator::new();
    let gq = generator.generate(question)?;
    println!("query graph ({:?}):", gq.question_type);
    for (i, v) in gq.vertices.iter().enumerate() {
        println!("  v{i}: {}", v.display());
    }
    let report = lint_world_gate(graph, &gq)?;
    for d in &report.diagnostics {
        println!("lint: {d}");
    }
    let executor = QueryGraphExecutor::new(graph);
    let (answer, explanation) = executor.execute_explained(&gq)?;
    println!("answer: {answer}");
    let support = explanation.answer_support();
    if !support.is_empty() {
        println!("evidence ({} facts):", support.len());
        for fact in support.iter().take(8) {
            println!("  {}", fact.display());
        }
        if support.len() > 8 {
            println!("  ... and {} more", support.len() - 8);
        }
    }
    Ok(())
}

/// Write the process-global telemetry snapshot as pretty JSON, if asked.
fn write_metrics(path: Option<&str>) -> Result<(), AnyError> {
    if let Some(path) = path {
        std::fs::write(path, svqa::telemetry::global().snapshot().to_json_pretty())?;
        eprintln!("metrics written to {path}");
    }
    Ok(())
}

/// Parse and execute one question with full plan profiling; the profile
/// includes the parse stage and lands in the global profile ring.
fn profile_question(graph: &svqa::graph::Graph, question: &str) -> Result<ProfiledRun, AnyError> {
    let t0 = Instant::now();
    let gq = QueryGraphGenerator::new().generate(question)?;
    let parse_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let t1 = Instant::now();
    let report = lint_world_gate(graph, &gq)?;
    let lint_ns = u64::try_from(t1.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let executor = QueryGraphExecutor::new(graph);
    let mut run = executor.execute_profiled(&gq, None)?;
    // Reverse order: parse ends up above lint, matching pipeline order.
    run.profile.prepend_stage(svqa::telemetry::stage::LINT, lint_ns);
    run.profile.prepend_stage(svqa::telemetry::stage::PARSE, parse_ns);
    if !report.is_clean() {
        run.profile.set_lint(report.diagnostics);
    }
    svqa::telemetry::global_profiles().push(run.profile.to_json_value());
    svqa::telemetry::global().incr_counter(svqa::telemetry::counter::QUESTIONS_ANSWERED);
    Ok(run)
}

/// Honour `--trace-out` / `--profile-out` for a profiled run.
fn write_profile_outputs(args: &[String], run: &ProfiledRun) -> Result<(), AnyError> {
    if let Some(path) = flag(args, "--trace-out") {
        let trace = ChromeTrace::from_query_traces(&[run.profile.query_trace()]);
        std::fs::write(&path, trace.to_json())?;
        eprintln!("chrome trace written to {path} (open in chrome://tracing or ui.perfetto.dev)");
    }
    if let Some(path) = flag(args, "--profile-out") {
        std::fs::write(&path, run.profile.to_json_pretty())?;
        eprintln!("profile written to {path}");
    }
    Ok(())
}

fn cmd_ask(args: &[String]) -> Result<(), AnyError> {
    let world = PathBuf::from(flag(args, "--world").unwrap_or_else(|| "world".to_owned()));
    let metrics = flag(args, "--metrics");
    let explain = args.iter().any(|a| a == "--explain");
    let wants_profile =
        explain || flag(args, "--trace-out").is_some() || flag(args, "--profile-out").is_some();
    let question = positional(args).ok_or("no question given")?;
    let (graph, _) = load_world(&world)?;
    let outcome = if wants_profile {
        match profile_question(&graph, &question) {
            Ok(run) => {
                println!("answer: {}", run.answer);
                if explain {
                    print!("{}", run.profile.render_tree());
                }
                write_profile_outputs(args, &run)?;
                Ok(())
            }
            Err(e) => Err(e),
        }
    } else {
        answer_over(&graph, &question)
    };
    write_metrics(metrics.as_deref())?;
    outcome
}

/// `explain` — `EXPLAIN ANALYZE` for one question: print the plan tree
/// (or the JSON profile with `--json`) without the evidence listing.
fn cmd_explain(args: &[String]) -> Result<(), AnyError> {
    let world = PathBuf::from(flag(args, "--world").unwrap_or_else(|| "world".to_owned()));
    let question = positional(args).ok_or("no question given")?;
    let (graph, _) = load_world(&world)?;
    let run = profile_question(&graph, &question)?;
    if args.iter().any(|a| a == "--json") {
        println!("{}", run.profile.to_json_pretty());
    } else {
        print!("{}", run.profile.render_tree());
    }
    write_profile_outputs(args, &run)
}

/// `lint` — static analysis of query graphs without executing them: one
/// question (positional) or a whole corpus (`--corpus questions.json`).
/// Prints every diagnostic (or a JSON report with `--json`) and exits
/// nonzero iff any question produced an `Error`-severity diagnostic — the
/// CI gate for "the bundled corpus stays statically clean". Questions the
/// parser rejects are reported but do not fail the gate: parse coverage
/// is the parser's business, not the linter's.
fn cmd_lint(args: &[String]) -> Result<(), AnyError> {
    let world = PathBuf::from(flag(args, "--world").unwrap_or_else(|| "world".to_owned()));
    let json = args.iter().any(|a| a == "--json");
    let (graph, _) = load_world(&world)?;
    let linter = svqa::qlint::Linter::new(svqa::qlint::Schema::extract(&graph));
    let generator = QueryGraphGenerator::new();

    let questions: Vec<String> = match flag(args, "--corpus") {
        Some(path) => {
            let pairs: Vec<QaPair> = serde_json::from_str(&std::fs::read_to_string(&path)?)?;
            pairs.into_iter().map(|p| p.question).collect()
        }
        None => vec![positional(args).ok_or("no question or --corpus FILE given")?],
    };

    let (mut errors, mut warnings, mut hints, mut parse_failures) = (0usize, 0usize, 0usize, 0usize);
    let mut reports = Vec::with_capacity(questions.len());
    for question in &questions {
        match generator.generate(question) {
            Err(e) => {
                parse_failures += 1;
                if !json {
                    println!("{question}\n  parse failed: {e}");
                }
                reports.push(serde_json::json!({
                    "question": question,
                    "parse_error": e.to_string(),
                }));
            }
            Ok(gq) => {
                let report = linter.lint(&gq);
                errors += report.errors().count();
                for d in &report.diagnostics {
                    match d.severity {
                        svqa::qlint::Severity::Warning => warnings += 1,
                        svqa::qlint::Severity::Hint => hints += 1,
                        svqa::qlint::Severity::Error => {}
                    }
                }
                if !json && !report.is_clean() {
                    println!("{question}");
                    for d in &report.diagnostics {
                        println!("  {d}");
                    }
                }
                reports.push(serde_json::json!({
                    "question": question,
                    "diagnostics": report.diagnostics,
                }));
            }
        }
    }
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::json!({
                "questions": reports,
                "errors": errors,
                "warnings": warnings,
                "hints": hints,
                "parse_failures": parse_failures,
            }))?
        );
    } else {
        println!(
            "linted {} question(s): {errors} errors, {warnings} warnings, \
             {hints} hints, {parse_failures} parse failures",
            questions.len()
        );
    }
    if errors > 0 {
        return Err(format!("{errors} error-severity diagnostic(s)").into());
    }
    Ok(())
}

/// `serve` — build a world in process and run the query service on it:
/// `POST /ask` and `/batch` behind a worker pool with admission control
/// and per-request deadlines, plus `/healthz`, `/shutdown`, and the
/// metrics routes, all on one port. Returns after a graceful drain.
fn cmd_serve(args: &[String]) -> Result<(), AnyError> {
    let images: usize = flag(args, "--images").map_or(Ok(200), |s| s.parse())?;
    let seed: u64 = flag(args, "--seed").map_or(Ok(0x4d56_5141), |s| s.parse())?;
    let port: u16 = flag(args, "--port").map_or(Ok(7878), |s| s.parse())?;

    let mut serve_config = svqa::ServeConfig::default();
    if let Some(w) = flag(args, "--workers") {
        serve_config.workers = w.parse()?;
    }
    if let Some(d) = flag(args, "--queue-depth") {
        serve_config.queue_depth = d.parse()?;
    }
    if let Some(ms) = flag(args, "--deadline-ms") {
        serve_config.default_deadline = std::time::Duration::from_millis(ms.parse()?);
    }
    let mut config = SvqaConfig::default();
    if let Some(p) = flag(args, "--cache-pool") {
        config.scheduler.pool_size = p.parse()?;
    }
    if let Some(s) = flag(args, "--cache-shards") {
        config.scheduler.shards = s.parse()?;
    }

    eprintln!("generating {images} images (seed {seed})...");
    let mvqa = Mvqa::generate(MvqaConfig {
        image_count: images,
        seed,
        counts: QuestionCounts::default(),
    });
    eprintln!("building the merged graph...");
    let system = Svqa::build(&mvqa.images, &mvqa.kg, config);
    // Arm the fault plan only after the build: chaos targets the online
    // phase, not world construction.
    let fault_guard = match flag(args, "--fault-plan") {
        Some(path) => {
            let plan = svqa::fault::FaultPlan::from_json(&std::fs::read_to_string(&path)?)?;
            eprintln!("fault plan armed from {path} (seed {})", plan.seed);
            Some(svqa::fault::install(plan))
        }
        None => None,
    };
    let server = svqa::QueryServer::bind(system, &format!("127.0.0.1:{port}"), serve_config)?;
    let addr = server.local_addr()?;
    println!("serving on http://{addr}");
    println!("  POST /ask, /batch, /shutdown; GET /healthz, /metrics");
    server.serve()?;
    drop(fault_guard);
    println!("drained, exiting");
    Ok(())
}

/// `chaos` — measure graceful degradation: build a world once, then sweep
/// fault rates, each time installing a seeded plan that drops the
/// knowledge-graph source with the given probability and re-scoring every
/// generated question through `answer_guarded`. Writes the
/// accuracy-vs-fault-rate curve to `--out` (default
/// `results/chaos_s<fault-seed>.json`).
///
/// The same `--fault-seed` across rates makes the fault sets *nested*: a
/// question whose KG probe fails at rate r also fails at every rate above
/// r, so the degraded-question count is exactly monotone in the rate and
/// the curve is reproducible run to run. The circuit breaker is disabled
/// for the sweep (threshold `u32::MAX`) so the curve measures the pure
/// per-question policy, not wall-clock-dependent breaker dynamics.
fn cmd_chaos(args: &[String]) -> Result<(), AnyError> {
    let images: usize = flag(args, "--images").map_or(Ok(120), |s| s.parse())?;
    let seed: u64 = flag(args, "--seed").map_or(Ok(0x4d56_5141), |s| s.parse())?;
    let fault_seed: u64 = flag(args, "--fault-seed").map_or(Ok(0xc4a05), |s| s.parse())?;
    let deadline_ms: u64 = flag(args, "--deadline-ms").map_or(Ok(2000), |s| s.parse())?;
    let rates: Vec<f64> = match flag(args, "--rates") {
        Some(list) => list
            .split(',')
            .map(|r| r.trim().parse())
            .collect::<Result<_, _>>()?,
        None => vec![0.0, 0.05, 0.1, 0.2, 0.35, 0.5],
    };
    let out = PathBuf::from(
        flag(args, "--out").unwrap_or_else(|| format!("results/chaos_s{fault_seed}.json")),
    );

    eprintln!("generating {images} images (seed {seed})...");
    let mvqa = Mvqa::generate(MvqaConfig {
        image_count: images,
        seed,
        counts: QuestionCounts::default(),
    });
    eprintln!("building the merged graph...");
    let mut config = SvqaConfig::default();
    config.degrade.breaker.failure_threshold = u32::MAX;
    let system = Svqa::build(&mvqa.images, &mvqa.kg, config);
    let per_question = std::time::Duration::from_millis(deadline_ms);

    let baseline = svqa::evaluate_on_mvqa_guarded(&system, &mvqa, per_question);
    println!(
        "baseline (no plan): accuracy {:.1}% over {} questions",
        baseline.overall * 100.0,
        mvqa.questions.len()
    );

    let mut points = Vec::with_capacity(rates.len());
    for &rate in &rates {
        let plan = svqa::fault::FaultPlan::new(fault_seed).with_fault(
            svqa::fault::site::SOURCE_KG,
            svqa::fault::SiteFault::new(svqa::fault::FaultKind::DropResult, rate),
        );
        let guard = svqa::fault::install(plan);
        let outcome = svqa::evaluate_on_mvqa_guarded(&system, &mvqa, per_question);
        drop(guard);
        println!(
            "rate {rate:5.2}: accuracy {:6.1}%  full {:4}  degraded {:4}  unavailable {:4}",
            outcome.overall * 100.0,
            outcome.full,
            outcome.degraded,
            outcome.unavailable
        );
        points.push(serde_json::json!({ "rate": rate, "outcome": outcome }));
    }

    if let Some(dir) = out.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(
        &out,
        serde_json::to_string_pretty(&serde_json::json!({
            "images": images,
            "seed": seed,
            "fault_seed": fault_seed,
            "fault_site": svqa::fault::site::SOURCE_KG,
            "fault_kind": "DropResult",
            "questions": mvqa.questions.len(),
            "deadline_ms": deadline_ms,
            "baseline": baseline,
            "points": points,
        }))?,
    )?;
    println!("chaos curve written to {}", out.display());
    Ok(())
}

/// `serve-metrics` — build a world in process, answer its generated
/// questions once to populate the registry and the profile ring, then
/// serve both over HTTP until killed.
fn cmd_serve_metrics(args: &[String]) -> Result<(), AnyError> {
    let images: usize = flag(args, "--images").map_or(Ok(200), |s| s.parse())?;
    let seed: u64 = flag(args, "--seed").map_or(Ok(0x4d56_5141), |s| s.parse())?;
    let port: u16 = flag(args, "--port").map_or(Ok(9100), |s| s.parse())?;
    let (system, mvqa) = build_world(images, seed);
    let warmup = if args.iter().any(|a| a == "--no-warmup") { 0 } else { 16 };
    for q in mvqa.questions.iter().take(warmup) {
        let _ = system.answer_profiled(&q.question, None);
    }
    let server = svqa::telemetry::MetricsServer::bind(
        &format!("127.0.0.1:{port}"),
        svqa::telemetry::global().clone(),
        svqa::telemetry::global_profiles().clone(),
    )?;
    let addr = server.local_addr()?;
    println!("serving metrics on http://{addr}/metrics (ctrl-c to stop)");
    println!("  also: /metrics.json and /profiles/recent");
    server.serve_forever()
}

fn cmd_eval(args: &[String]) -> Result<(), AnyError> {
    let metrics = flag(args, "--metrics");
    if let Some(images) = flag(args, "--images") {
        // In-process build: scene-graph generation and aggregation run
        // here, so `--metrics` captures every pipeline stage including the
        // offline ones (sgg, aggregate).
        let images: usize = images.parse()?;
        let seed: u64 = flag(args, "--seed").map_or(Ok(0x4d56_5141), |s| s.parse())?;
        let (system, mvqa) = build_world(images, seed);
        let outcome = svqa::evaluate_on_mvqa(&system, &mvqa);
        println!("{:10} {:.1}%", "Judgment", outcome.judgment * 100.0);
        println!("{:10} {:.1}%", "Counting", outcome.counting * 100.0);
        println!("{:10} {:.1}%", "Reasoning", outcome.reasoning * 100.0);
        println!("{:10} {:.1}%", "Overall", outcome.overall * 100.0);
        println!(
            "{} questions in {:.3}s ({} parse failures)",
            mvqa.questions.len(),
            outcome.total_latency.as_secs_f64(),
            outcome.parse_failures
        );
        println!(
            "per-question latency: mean {:.1}µs, p50 {:.1}µs, p95 {:.1}µs",
            outcome.mean_latency.as_secs_f64() * 1e6,
            outcome.p50_latency.as_secs_f64() * 1e6,
            outcome.p95_latency.as_secs_f64() * 1e6
        );
    } else {
        let world = PathBuf::from(flag(args, "--world").unwrap_or_else(|| "world".to_owned()));
        let (graph, questions) = load_world(&world)?;
        eval_world(&graph, &questions);
    }
    write_metrics(metrics.as_deref())
}

/// Score a loaded world through the §V-B scheduler (shared cache +
/// frequency-sorted order, so the schedule/match spans record).
fn eval_world(graph: &svqa::graph::Graph, questions: &[QaPair]) {
    use svqa::executor::scheduler::{QueryScheduler, SchedulerConfig};

    let generator = QueryGraphGenerator::new();
    let embedder = svqa::nlp::Embedder::new();
    let mut parsed: Vec<(usize, svqa::qparser::QueryGraph)> = Vec::new();
    for (i, q) in questions.iter().enumerate() {
        if let Ok(gq) = generator.generate(&q.question) {
            parsed.push((i, gq));
        }
    }
    let graphs: Vec<_> = parsed.iter().map(|(_, g)| g.clone()).collect();
    let report = QueryScheduler::new(SchedulerConfig::default()).run(graph, &graphs);
    report.cache_stats.record_to(svqa::telemetry::global());
    let mut predicted: Vec<Option<svqa::Answer>> = vec![None; questions.len()];
    for ((i, _), answer) in parsed.iter().zip(report.answers) {
        predicted[*i] = answer.ok();
    }
    let answered = predicted.iter().flatten().count() as u64;
    let failed = questions.len() as u64 - answered;
    let recorder = svqa::telemetry::global();
    recorder.incr_counter_by(svqa::telemetry::counter::QUESTIONS_ANSWERED, answered);
    recorder.incr_counter_by(svqa::telemetry::counter::QUESTIONS_FAILED, failed);

    let mut per_type: std::collections::HashMap<&str, (usize, usize)> = Default::default();
    for (q, predicted) in questions.iter().zip(&predicted) {
        let entry = per_type.entry(q.qtype.name()).or_insert((0, 0));
        entry.1 += 1;
        let correct = match (&q.answer, predicted) {
            (svqa::dataset::GtAnswer::YesNo(g), Some(svqa::Answer::Judgment(p))) => g == p,
            (svqa::dataset::GtAnswer::Count(g), Some(svqa::Answer::Count(p))) => g == p,
            (svqa::dataset::GtAnswer::Entity(g), Some(svqa::Answer::Entity { label, .. })) => {
                g == label || embedder.similarity(g, label) >= 0.7
            }
            _ => false,
        };
        if correct {
            entry.0 += 1;
        }
    }
    let mut total = (0usize, 0usize);
    for (name, (c, n)) in &per_type {
        println!("{name:10} {c}/{n} = {:.1}%", 100.0 * *c as f64 / *n as f64);
        total.0 += c;
        total.1 += n;
    }
    println!(
        "{:10} {}/{} = {:.1}%",
        "Overall",
        total.0,
        total.1,
        100.0 * total.0 as f64 / total.1.max(1) as f64
    );
    let cache = report.cache_stats;
    println!(
        "cache: scope {}/{} path {}/{} ({:.0}% hit overall)",
        cache.scope_hits,
        cache.scope_hits + cache.scope_misses,
        cache.path_hits,
        cache.path_hits + cache.path_misses,
        cache.hit_rate() * 100.0
    );
}

/// `stats` — build (or rebuild) a world in process and print the offline
/// build statistics plus the telemetry snapshot accumulated doing it.
fn cmd_stats(args: &[String]) -> Result<(), AnyError> {
    let images: usize = flag(args, "--images").map_or(Ok(200), |s| s.parse())?;
    let seed: u64 = flag(args, "--seed").map_or(Ok(0x4d56_5141), |s| s.parse())?;
    let (system, mvqa) = build_world(images, seed);
    let stats = system.build_stats();
    println!("build: {}", stats.summary_line());
    println!(
        "questions generated: {} ({} images, seed {seed})",
        mvqa.questions.len(),
        images
    );
    println!("{}", svqa::telemetry::global().snapshot().to_json_pretty());
    Ok(())
}

fn cmd_repl(args: &[String]) -> Result<(), AnyError> {
    let images: usize = flag(args, "--images").map_or(Ok(500), |s| s.parse())?;
    let seed: u64 = flag(args, "--seed").map_or(Ok(7), |s| s.parse())?;
    let verbose = args.iter().any(|a| a == "--verbose");
    let (system, _) = build_world(images, seed);
    // A session-lived cache so repeat questions show up as hits in the
    // per-question summaries.
    let cache = svqa::executor::ShardedCache::new(
        svqa::executor::CacheGranularity::Both,
        svqa::executor::EvictionPolicy::Lfu,
        100,
        4,
    );
    println!("ready — type a question (empty line to quit)");
    let stdin = std::io::stdin();
    loop {
        print!("svqa> ");
        std::io::stdout().flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break;
        }
        let question = line.trim();
        if question.is_empty() {
            break;
        }
        if verbose {
            let (result, trace) = system.answer_traced(question, Some(&cache));
            match result {
                Ok(answer) => println!("answer: {answer}"),
                Err(e) => println!("could not answer: {e}"),
            }
            println!("  {}", trace.summary_line());
        } else {
            match system.answer_explained(question) {
                Ok((answer, explanation)) => {
                    println!("answer: {answer}");
                    for fact in explanation.answer_support().iter().take(5) {
                        println!("  {}", fact.display());
                    }
                }
                Err(e) => println!("could not answer: {e}"),
            }
        }
    }
    Ok(())
}
