//! Sentence-split baselines for Exp-4 (Fig. 9a): ABCD-MLP, ABCD-bilinear
//! and DisSim.
//!
//! These systems "transform a complex sentence into simpler sentences, each
//! containing only one clause" (§IV). The reproduction performs the split
//! for real (re-using the clause segmentation of the NLP substrate) but
//! charges the *deep-learning cost model* to the simulated clock: a large
//! model-load latency paid once, plus a per-question inference cost. That
//! cost structure is what produces Fig. 9a's shape — our method wins
//! outright at small N because the baselines are load-dominated, and the
//! gap narrows as N amortizes the load.

use crate::simclock::SimClock;
use serde::{Deserialize, Serialize};
use svqa_nlp::{PosTagger, RuleDependencyParser};
use svqa_qparser::clause::{clause_tokens, segment};

/// The three split baselines of Fig. 9a.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SplitterModel {
    /// Gao et al. 2021, MLP head.
    AbcdMlp,
    /// Gao et al. 2021, bilinear head.
    AbcdBilinear,
    /// Niklaus et al. 2019.
    DisSim,
}

impl SplitterModel {
    /// All baselines, Fig. 9a legend order.
    pub const ALL: [SplitterModel; 3] = [
        SplitterModel::AbcdMlp,
        SplitterModel::AbcdBilinear,
        SplitterModel::DisSim,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            SplitterModel::AbcdMlp => "ABCD-MLP",
            SplitterModel::AbcdBilinear => "ABCD-bilinear",
            SplitterModel::DisSim => "DisSim",
        }
    }

    /// `(model load ms, per-question ms)` — constants set to the scale of
    /// the paper's Fig. 9a (totals of 6–12 s at N = 30).
    pub fn cost(self) -> (f64, f64) {
        match self {
            SplitterModel::AbcdMlp => (5_200.0, 150.0),
            SplitterModel::AbcdBilinear => (4_400.0, 130.0),
            SplitterModel::DisSim => (6_800.0, 180.0),
        }
    }
}

/// A sentence splitter with its cost model.
pub struct SentenceSplitter {
    model: SplitterModel,
    tagger: PosTagger,
    parser: RuleDependencyParser,
}

impl SentenceSplitter {
    /// Build a splitter.
    pub fn new(model: SplitterModel) -> Self {
        SentenceSplitter {
            model,
            tagger: PosTagger::new(),
            parser: RuleDependencyParser::new(),
        }
    }

    /// The model.
    pub fn model(&self) -> SplitterModel {
        self.model
    }

    /// Split one question into simple clause sentences. The split itself is
    /// real; the clock is charged the model's per-question cost (plus the
    /// load cost on the first call).
    pub fn split(&self, question: &str, clock: &mut SimClock) -> Vec<String> {
        if clock.elapsed_ms() == 0.0 {
            clock.charge_ms(self.model.cost().0);
        }
        clock.charge_ms(self.model.cost().1);
        let tagged = self.tagger.tag(question);
        let Ok(tree) = self.parser.parse(&tagged) else {
            return vec![question.to_owned()];
        };
        segment(&tree)
            .into_iter()
            .map(|c| {
                let mut words: Vec<&str> = clause_tokens(&tree, c.verb)
                    .into_iter()
                    .filter(|&t| !tree.tag(t).is_punct())
                    .map(|t| tree.text(t))
                    .collect();
                if let Some(ant) = c.antecedent {
                    // Replenish the clause with its antecedent ("the pets
                    // that were situated..." → "pets were situated...").
                    words.insert(0, tree.text(ant));
                }
                words.join(" ")
            })
            .collect()
    }

    /// Split a batch, returning the clause lists and total simulated time.
    pub fn split_batch(&self, questions: &[&str]) -> (Vec<Vec<String>>, SimClock) {
        let mut clock = SimClock::new();
        let splits = questions
            .iter()
            .map(|q| self.split(q, &mut clock))
            .collect();
        (splits, clock)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_two_clause_question() {
        let s = SentenceSplitter::new(SplitterModel::AbcdMlp);
        let mut clock = SimClock::new();
        let parts = s.split(
            "What kind of animals is carried by the pets that were situated in the car?",
            &mut clock,
        );
        assert_eq!(parts.len(), 2, "{parts:?}");
        assert!(parts[0].contains("carried"));
        assert!(parts[1].contains("situated"));
        assert!(parts[1].contains("pets"), "{parts:?}"); // replenished
    }

    #[test]
    fn single_clause_passthrough() {
        let s = SentenceSplitter::new(SplitterModel::DisSim);
        let mut clock = SimClock::new();
        let parts = s.split("How many dogs are sitting on the grass?", &mut clock);
        assert_eq!(parts.len(), 1);
    }

    #[test]
    fn load_cost_paid_once() {
        let s = SentenceSplitter::new(SplitterModel::AbcdBilinear);
        let (load, per_q) = SplitterModel::AbcdBilinear.cost();
        let (_, clock) = s.split_batch(&[
            "How many dogs are sitting on the grass?",
            "Does the dog appear near the man?",
        ]);
        assert!((clock.elapsed_ms() - (load + 2.0 * per_q)).abs() < 1e-9);
    }

    #[test]
    fn cost_ordering_matches_figure() {
        // DisSim is the slowest both to load and per question.
        let (dl, dq) = SplitterModel::DisSim.cost();
        for m in [SplitterModel::AbcdMlp, SplitterModel::AbcdBilinear] {
            let (l, q) = m.cost();
            assert!(l < dl && q < dq);
        }
    }

    #[test]
    fn unparseable_input_degrades_to_identity() {
        let s = SentenceSplitter::new(SplitterModel::AbcdMlp);
        let mut clock = SimClock::new();
        let parts = s.split("the red dog", &mut clock);
        assert_eq!(parts, vec!["the red dog".to_owned()]);
    }
}
