//! # svqa-baselines
//!
//! The comparison systems of the paper's evaluation, rebuilt as calibrated
//! simulators (see `DESIGN.md` — the real models are hundred-million
//! parameter checkpoints):
//!
//! * [`vqa_models`] — VisualBert / ViLT / OFA (Exp-2, Table IV): per-image
//!   VQA models that answer *decomposed simple questions* (the paper feeds
//!   them SVQA's own query-graph decomposition) through a clause-level
//!   noise channel, with a latency cost model charging per-image inference;
//! * [`splitters`] — ABCD-MLP / ABCD-bilinear / DisSim (Exp-4, Fig. 9a):
//!   sentence-split baselines that pay a large model-load latency before a
//!   per-question cost;
//! * [`simclock`] — the simulated clock those cost models accumulate on
//!   (deep-learning latencies are *simulated*; SVQA's own latencies are
//!   wall-clock — EXPERIMENTS.md discusses the comparison).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod simclock;
pub mod splitters;
pub mod vqa_models;

pub use simclock::SimClock;
pub use splitters::{SentenceSplitter, SplitterModel};
pub use vqa_models::{BaselineVqa, VqaModel};
