//! VisualBert / ViLT / OFA simulators (Exp-2, Table IV).
//!
//! The paper's protocol: "we first utilize the SVQA's query graph
//! generation module to generate a set of ordered simple questions. Then,
//! the baseline methods perform the queries over the regrouped dataset with
//! the decomposed questions and aggregate the obtained results."
//!
//! Simulation (per `DESIGN.md`): each baseline answers every decomposed
//! *clause* through a calibrated noise channel — with probability
//! `p_clause` the clause is evaluated faithfully against the ground truth;
//! otherwise a slot of the clause is corrupted (a sibling category swap),
//! which derails the aggregation exactly the way a wrong per-image answer
//! would. The channel probabilities are set so the resulting
//! complex-question accuracies land in Table IV's neighbourhood, with the
//! ordering OFA > ViLT ≈ VisualBert and the characteristic reasoning
//! weakness of all per-image models. Latency is a cost model on the
//! simulated clock: model load + one forward pass per (clause, image).

use crate::simclock::SimClock;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use svqa_dataset::groundtruth::{ChainClause, GroundTruth};
use svqa_dataset::mvqa::PredictedAnswer;
use svqa_dataset::questions::QuestionSpec;
use svqa_dataset::GtAnswer;
use svqa_vision::scene::CATEGORIES;

/// The three baseline VQA models of Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VqaModel {
    /// Li et al. 2019 — dual-stream.
    VisualBert,
    /// Kim et al. 2021 — single-stream.
    Vilt,
    /// Wang et al. 2022 — unified large-scale seq2seq.
    Ofa,
}

/// Channel + cost parameters of one model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VqaModelParams {
    /// Model-load latency (simulated ms).
    pub load_ms: f64,
    /// Per-(clause, image) forward-pass latency (simulated ms).
    pub per_image_ms: f64,
    /// Probability a judgment question is answered correctly.
    pub p_judgment: f64,
    /// Probability a counting question is answered exactly.
    pub p_counting: f64,
    /// Probability a reasoning question's label survives.
    pub p_reasoning: f64,
}

impl VqaModel {
    /// All three models, Table IV order.
    pub const ALL: [VqaModel; 3] = [VqaModel::VisualBert, VqaModel::Vilt, VqaModel::Ofa];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            VqaModel::VisualBert => "VisualBert",
            VqaModel::Vilt => "Vilt",
            VqaModel::Ofa => "OFA",
        }
    }

    /// Calibrated parameters (targets: Table IV's accuracy rows and the
    /// latency ordering ViLT > VisualBert ≫ OFA ≫ SVQA).
    pub fn params(self) -> VqaModelParams {
        // Accuracy targets are Table IV's reported rows (VisualBert
        // 72.0/60.0/68.5, ViLT 76.5/77.4/67.0, OFA 95.5/87.0/79.0); what
        // the harness *measures* is a finite-sample draw from this channel.
        match self {
            VqaModel::VisualBert => VqaModelParams {
                load_ms: 45_000.0,
                per_image_ms: 1.35,
                p_judgment: 0.72,
                p_counting: 0.60,
                p_reasoning: 0.685,
            },
            VqaModel::Vilt => VqaModelParams {
                load_ms: 60_000.0,
                per_image_ms: 1.70,
                p_judgment: 0.765,
                p_counting: 0.774,
                p_reasoning: 0.67,
            },
            VqaModel::Ofa => VqaModelParams {
                load_ms: 110_000.0,
                per_image_ms: 0.30,
                p_judgment: 0.955,
                p_counting: 0.87,
                p_reasoning: 0.79,
            },
        }
    }
}

/// A baseline VQA run over a dataset.
pub struct BaselineVqa {
    model: VqaModel,
    params: VqaModelParams,
    seed: u64,
}

impl BaselineVqa {
    /// Build a baseline with its calibrated parameters.
    pub fn new(model: VqaModel, seed: u64) -> Self {
        BaselineVqa {
            model,
            params: model.params(),
            seed,
        }
    }

    /// The model.
    pub fn model(&self) -> VqaModel {
        self.model
    }

    /// Answer a whole question set. Returns the per-question answers and
    /// the simulated latency of the run (load + per-image inference for
    /// every decomposed clause).
    pub fn answer_dataset(
        &self,
        gt: &GroundTruth<'_>,
        specs: &[QuestionSpec],
        image_count: usize,
    ) -> (Vec<Option<PredictedAnswer>>, SimClock) {
        let mut clock = SimClock::new();
        clock.charge_ms(self.params.load_ms);
        let mut rng = StdRng::seed_from_u64(self.seed);
        let answers = specs
            .iter()
            .map(|spec| {
                clock.charge_ms(
                    self.params.per_image_ms * image_count as f64 * spec.chain.len() as f64,
                );
                Some(self.answer_one(gt, spec, &mut rng))
            })
            .collect();
        (answers, clock)
    }

    /// Answer one question through the calibrated channel: the decomposed
    /// question is evaluated against the ground truth, then the answer
    /// survives with the model's per-type accuracy (a wrong answer is a
    /// flipped judgment, a jittered count, or a swapped category — the
    /// observable effect of per-image inference mistakes compounding
    /// through the aggregation).
    pub fn answer_one(
        &self,
        gt: &GroundTruth<'_>,
        spec: &QuestionSpec,
        rng: &mut StdRng,
    ) -> PredictedAnswer {
        let chain: Vec<ChainClause> = spec.chain.clone();
        let answer = gt.eval(&chain, &spec.links, spec.qtype, spec.answer_side);
        match answer {
            GtAnswer::YesNo(b) => {
                if rng.gen::<f64>() < self.params.p_judgment {
                    PredictedAnswer::YesNo(b)
                } else {
                    PredictedAnswer::YesNo(!b)
                }
            }
            GtAnswer::Count(n) => {
                if rng.gen::<f64>() < self.params.p_counting {
                    PredictedAnswer::Count(n)
                } else {
                    let mut jitter = rng.gen_range(-2i64..=2);
                    if jitter == 0 {
                        jitter = 1;
                    }
                    PredictedAnswer::Count((n as i64 + jitter).max(0) as usize)
                }
            }
            GtAnswer::Entity(e) => {
                if rng.gen::<f64>() < self.params.p_reasoning {
                    PredictedAnswer::Entity(e)
                } else {
                    PredictedAnswer::Entity(random_category(rng))
                }
            }
        }
    }
}

fn random_category(rng: &mut StdRng) -> String {
    CATEGORIES[rng.gen_range(0..CATEGORIES.len())].0.to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use svqa_dataset::mvqa::Mvqa;

    fn fixture() -> Mvqa {
        Mvqa::generate_small(800, 77)
    }

    #[test]
    fn ofa_beats_visualbert_on_judgment() {
        let mvqa = fixture();
        let gt = GroundTruth::new(&mvqa.images, &mvqa.kg);
        let run = |m: VqaModel| {
            let (answers, _) =
                BaselineVqa::new(m, 1).answer_dataset(&gt, &mvqa.specs, mvqa.images.len());
            mvqa.score_answers(&answers)
        };
        let (vb_j, _, _, vb_all) = run(VqaModel::VisualBert);
        let (ofa_j, _, _, ofa_all) = run(VqaModel::Ofa);
        assert!(ofa_j >= vb_j, "OFA {ofa_j} < VisualBert {vb_j}");
        assert!(ofa_all > vb_all, "OFA {ofa_all} <= VisualBert {vb_all}");
    }

    #[test]
    fn accuracies_in_plausible_band() {
        let mvqa = fixture();
        let gt = GroundTruth::new(&mvqa.images, &mvqa.kg);
        for m in VqaModel::ALL {
            let (answers, _) =
                BaselineVqa::new(m, 2).answer_dataset(&gt, &mvqa.specs, mvqa.images.len());
            let (_, _, _, all) = mvqa.score_answers(&answers);
            assert!(
                (0.45..=1.0).contains(&all),
                "{} overall accuracy {all}",
                m.name()
            );
        }
    }

    #[test]
    fn latency_model_charges_load_and_per_image() {
        let mvqa = fixture();
        let gt = GroundTruth::new(&mvqa.images, &mvqa.kg);
        let (_, clock) = BaselineVqa::new(VqaModel::VisualBert, 3).answer_dataset(
            &gt,
            &mvqa.specs,
            mvqa.images.len(),
        );
        let params = VqaModel::VisualBert.params();
        let clauses: usize = mvqa.specs.iter().map(|s| s.chain.len()).sum();
        let expected = params.load_ms + params.per_image_ms * (mvqa.images.len() * clauses) as f64;
        assert!((clock.elapsed_ms() - expected).abs() < 1e-6);
        assert!(clock.elapsed_ms() > params.load_ms);
    }

    #[test]
    fn ofa_is_fastest_baseline() {
        // Per Table IV: OFA 866s vs VisualBert 3375s vs ViLT 4216s.
        let mvqa = fixture();
        let gt = GroundTruth::new(&mvqa.images, &mvqa.kg);
        let latency = |m: VqaModel| {
            BaselineVqa::new(m, 4)
                .answer_dataset(&gt, &mvqa.specs, mvqa.images.len())
                .1
                .elapsed_ms()
        };
        let vb = latency(VqaModel::VisualBert);
        let vi = latency(VqaModel::Vilt);
        let ofa = latency(VqaModel::Ofa);
        assert!(ofa < vb && vb < vi, "ofa={ofa} vb={vb} vilt={vi}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mvqa = fixture();
        let gt = GroundTruth::new(&mvqa.images, &mvqa.kg);
        let run = || {
            BaselineVqa::new(VqaModel::Vilt, 9)
                .answer_dataset(&gt, &mvqa.specs, mvqa.images.len())
                .0
        };
        assert_eq!(run(), run());
    }
}
