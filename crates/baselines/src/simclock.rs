//! A simulated clock for deep-learning cost models.
//!
//! The paper's baselines run on 8×V100 GPUs; reproducing their latency on a
//! CPU is meaningless, so their cost models charge *simulated milliseconds*
//! (model loading, per-image forward passes) to this clock. SVQA's own
//! engine runs for real and is measured in wall-clock time.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Accumulates simulated time.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SimClock {
    elapsed_ms: f64,
}

impl SimClock {
    /// A clock at zero.
    pub fn new() -> Self {
        SimClock::default()
    }

    /// Charge `ms` simulated milliseconds (negative charges are clamped to
    /// zero — time does not run backwards).
    pub fn charge_ms(&mut self, ms: f64) {
        self.elapsed_ms += ms.max(0.0);
    }

    /// Total simulated time in milliseconds.
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_ms
    }

    /// Total simulated time as a [`Duration`].
    pub fn elapsed(&self) -> Duration {
        Duration::from_secs_f64(self.elapsed_ms / 1000.0)
    }

    /// Reset to zero.
    pub fn reset(&mut self) {
        self.elapsed_ms = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates() {
        let mut c = SimClock::new();
        assert_eq!(c.elapsed_ms(), 0.0);
        c.charge_ms(100.0);
        c.charge_ms(250.5);
        assert!((c.elapsed_ms() - 350.5).abs() < 1e-9);
        assert!((c.elapsed().as_secs_f64() - 0.3505).abs() < 1e-9);
    }

    #[test]
    fn negative_charges_clamped() {
        let mut c = SimClock::new();
        c.charge_ms(-5.0);
        assert_eq!(c.elapsed_ms(), 0.0);
    }

    #[test]
    fn reset() {
        let mut c = SimClock::new();
        c.charge_ms(10.0);
        c.reset();
        assert_eq!(c.elapsed_ms(), 0.0);
    }
}
