//! The external knowledge graph `G`.
//!
//! Two layers:
//! * a **taxonomy** over the scene categories (`dog —is a→ pet —is a→
//!   animal`), which is what lets the executor resolve class nouns like
//!   "pets" or "clothes" down to scene instances;
//! * a **character universe** (the paper's Fig. 1 movie graph): named
//!   entities with social relations, each `is a` wizard and transitively a
//!   person.

use svqa_graph::{Graph, GraphBuilder};

/// `(category, class noun)` taxonomy links; class nouns then roll up via
/// [`CLASS_HIERARCHY`].
pub const CATEGORY_CLASSES: &[(&str, &str)] = &[
    // pets and animals
    ("dog", "pet"), ("cat", "pet"),
    ("bird", "animal"), ("horse", "animal"), ("sheep", "animal"),
    ("cow", "animal"), ("elephant", "animal"), ("bear", "animal"),
    ("zebra", "animal"), ("giraffe", "animal"), ("teddy bear", "animal"),
    // people
    ("man", "person"), ("woman", "person"), ("child", "person"),
    ("wizard", "person"), ("player", "person"),
    // vehicles
    ("car", "vehicle"), ("bus", "vehicle"), ("truck", "vehicle"),
    ("motorcycle", "vehicle"), ("bicycle", "vehicle"), ("train", "vehicle"),
    ("boat", "vehicle"), ("airplane", "vehicle"),
    // clothing
    ("hat", "clothes"), ("shirt", "clothes"), ("jacket", "clothes"),
    ("robe", "clothes"), ("helmet", "clothes"), ("dress", "clothes"),
    // structures
    ("building", "structure"), ("house", "structure"), ("fence", "structure"),
    ("bench", "structure"), ("tower", "structure"), ("bridge", "structure"),
    // furniture
    ("bed", "furniture"), ("chair", "furniture"), ("table", "furniture"),
    ("couch", "furniture"), ("window", "furniture"), ("door", "furniture"),
    // everyday objects
    ("frisbee", "object"), ("ball", "object"), ("umbrella", "object"),
    ("backpack", "object"), ("bottle", "object"), ("cup", "object"),
    ("book", "object"), ("phone", "object"), ("laptop", "object"),
    ("tv", "object"), ("kite", "object"), ("skateboard", "object"),
    ("surfboard", "object"),
];

/// Class-noun roll-ups.
pub const CLASS_HIERARCHY: &[(&str, &str)] = &[("pet", "animal")];

/// The character universe: every name `is a` wizard.
pub const CHARACTERS: &[&str] = &[
    "harry potter", "ginny weasley", "cho chang", "ron weasley",
    "hermione granger", "neville longbottom", "luna lovegood",
    "draco malfoy", "severus snape", "albus dumbledore", "fred weasley",
    "cedric diggory",
];

/// Social relations `(subject, relation, object)`.
pub const CHARACTER_RELATIONS: &[(&str, &str, &str)] = &[
    ("ginny weasley", "girlfriend of", "harry potter"),
    ("cho chang", "girlfriend of", "harry potter"),
    ("hermione granger", "girlfriend of", "ron weasley"),
    ("cedric diggory", "boyfriend of", "cho chang"),
    ("ron weasley", "friend of", "harry potter"),
    ("hermione granger", "friend of", "harry potter"),
    ("neville longbottom", "friend of", "ginny weasley"),
    ("luna lovegood", "friend of", "ginny weasley"),
    ("draco malfoy", "enemy of", "harry potter"),
    ("severus snape", "mentor of", "draco malfoy"),
    ("albus dumbledore", "mentor of", "harry potter"),
    ("fred weasley", "sibling of", "ron weasley"),
    ("fred weasley", "sibling of", "ginny weasley"),
];

/// Build the knowledge graph `G`.
pub fn build_knowledge_graph() -> Graph {
    let mut b = GraphBuilder::new();
    for &(cat, class) in CATEGORY_CLASSES {
        fault_triple(&mut b, cat, "is a", class);
    }
    for &(sub, sup) in CLASS_HIERARCHY {
        fault_triple(&mut b, sub, "is a", sup);
    }
    for &name in CHARACTERS {
        fault_triple(&mut b, name, "is a", "wizard");
    }
    for &(s, r, o) in CHARACTER_RELATIONS {
        fault_triple(&mut b, s, r, o);
    }
    b.build()
}

/// Add a triple through the `kg.triple` fault gate (one draw per triple).
/// KG construction is infallible, so `Error` degrades to a dropped triple;
/// `CorruptLabel` rewrites the relation to a semantically dead label.
fn fault_triple(b: &mut GraphBuilder, s: &str, r: &str, o: &str) {
    match svqa_fault::draw(svqa_fault::site::KG_TRIPLE) {
        Some(svqa_fault::FaultKind::Error | svqa_fault::FaultKind::DropResult) => {}
        Some(svqa_fault::FaultKind::Latency(ms)) => {
            svqa_fault::apply_latency(ms, None);
            b.triple(s, r, o);
        }
        Some(svqa_fault::FaultKind::CorruptLabel) => {
            b.triple(s, "unrelated to", o);
        }
        None => {
            b.triple(s, r, o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_links_exist() {
        let g = build_knowledge_graph();
        let dog = g.vertices_with_label("dog")[0];
        let pet = g.vertices_with_label("pet")[0];
        assert!(g.has_edge(dog, pet, "is a"));
        let animal = g.vertices_with_label("animal")[0];
        assert!(g.has_edge(pet, animal, "is a"));
    }

    #[test]
    fn characters_are_wizards() {
        let g = build_knowledge_graph();
        let harry = g.vertices_with_label("harry potter")[0];
        let wizard = g.vertices_with_label("wizard")[0];
        assert!(g.has_edge(harry, wizard, "is a"));
    }

    #[test]
    fn harry_has_two_girlfriends() {
        // The paper's Example 1: "Ginny Weasley and Cho Chang".
        let g = build_knowledge_graph();
        let harry = g.vertices_with_label("harry potter")[0];
        let girlfriends: Vec<_> = g
            .in_edges(harry)
            .filter(|(_, e)| e.label() == "girlfriend of")
            .map(|(_, e)| g.vertex_label(e.src()).unwrap().to_owned())
            .collect();
        assert_eq!(girlfriends.len(), 2);
        assert!(girlfriends.contains(&"ginny weasley".to_owned()));
        assert!(girlfriends.contains(&"cho chang".to_owned()));
    }

    #[test]
    fn graph_is_well_formed() {
        let g = build_knowledge_graph();
        g.validate().unwrap();
        assert!(g.vertex_count() > 60);
        assert!(g.edge_count() > 60);
    }

    #[test]
    fn every_category_is_a_vision_category() {
        for &(cat, _) in CATEGORY_CLASSES {
            assert!(
                svqa_vision::scene::category_info(cat).is_some(),
                "{cat} unknown to svqa-vision"
            );
        }
    }
}
