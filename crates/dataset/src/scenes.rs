//! Synthetic image generation (§VI-B "Image Selection").
//!
//! The paper selects 4,233 COCO images across "humans, animals, vehicles,
//! and buildings … which have the highest proportion and crossover rate",
//! filtering out single-object images. The generator mirrors that with
//! weighted *scene archetypes*, each producing a multi-object scene whose
//! relations are geometrically realized by
//! [`svqa_vision::scene::SceneBuilder`]. A small fraction of scenes feature
//! named characters from the knowledge graph (the Example 1 world).

use crate::kg::CHARACTERS;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use svqa_vision::scene::{SceneBuilder, SyntheticImage};

const PEOPLE: &[&str] = &["man", "woman", "child", "person", "player"];
const PETS: &[&str] = &["dog", "cat"];
const FARM_ANIMALS: &[&str] = &["horse", "sheep", "cow", "zebra", "giraffe", "elephant"];
const VEHICLES: &[&str] = &["car", "bus", "truck", "motorcycle", "bicycle", "train", "boat"];
const RIDEABLE: &[&str] = &["horse", "bicycle", "motorcycle", "skateboard"];
const HEADWEAR: &[&str] = &["hat", "helmet"];
const GARMENTS: &[&str] = &["hat", "shirt", "jacket", "dress"];
const WIZARD_GARMENTS: &[&str] = &["robe", "hat"];
const CARRIED: &[&str] = &["frisbee", "ball", "backpack", "umbrella", "book", "bottle"];
const FURNITURE_SEATS: &[&str] = &["bed", "couch", "chair"];
const STRUCTURES: &[&str] = &["building", "house", "fence", "bench", "tower", "bridge"];

/// Generate `count` images with the base `seed`.
pub fn generate_images(count: usize, seed: u64) -> Vec<SyntheticImage> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|i| generate_one(i as u32, &mut rng))
        .collect()
}

/// Generate `count` *crowded* scenes (10-14 objects, many relations of
/// diverse predicates) — the Visual-Genome-density split used to benchmark
/// scene-graph generation (Exp-3, Table V). Ordinary MVQA scenes are too
/// sparse for Recall@K to bite.
pub fn generate_crowded_images(count: usize, seed: u64) -> Vec<SyntheticImage> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0de);
    (0..count)
        .map(|i| {
            let mut b = SceneBuilder::new(i as u32, &mut rng);
            // Ground layer.
            let ground = b.add_object_from(&["grass", "road", "beach"]);
            // People with garments and carried objects.
            let n_people = b.rng().gen_range(2..4usize);
            for _ in 0..n_people {
                let p = b.add_object_from(PEOPLE);
                b.relate(p, "standing on", ground);
                if b.rng().gen_bool(0.7) {
                    let g = b.add_object_from(GARMENTS);
                    b.relate(p, "wearing", g);
                }
                if b.rng().gen_bool(0.5) {
                    let c = b.add_object_from(CARRIED);
                    b.relate(p, "carrying", c);
                }
            }
            // Animals engaging objects.
            let n_animals = b.rng().gen_range(1..3usize);
            for _ in 0..n_animals {
                let a = b.add_object_from(PETS);
                b.relate(a, "on", ground);
                if b.rng().gen_bool(0.5) {
                    let toy = b.add_object_from(&["frisbee", "ball"]);
                    b.relate(a, "holding", toy);
                }
            }
            // A vehicle, a structure, a rider.
            let v = b.add_object_from(VEHICLES);
            b.relate(v, "on", ground);
            let s = b.add_object_from(STRUCTURES);
            b.relate(s, "behind", v);
            if b.rng().gen_bool(0.6) {
                let rider = b.add_object_from(PEOPLE);
                let mount = b.add_object_from(RIDEABLE);
                b.relate(rider, "riding", mount);
                let hw = b.add_object_from(HEADWEAR);
                b.relate(rider, "wearing", hw);
            }
            b.build()
        })
        .collect()
}

/// Generate a single image by sampling an archetype.
pub fn generate_one(id: u32, rng: &mut StdRng) -> SyntheticImage {
    // Archetype weights sum to 100.
    let roll = rng.gen_range(0..100u32);
    match roll {
        0..=15 => park_scene(id, rng),
        16..=29 => street_scene(id, rng),
        30..=41 => pets_in_vehicle_scene(id, rng),
        42..=53 => indoor_scene(id, rng),
        54..=63 => riding_scene(id, rng),
        64..=73 => carrying_scene(id, rng),
        74..=83 => wearing_scene(id, rng),
        84..=91 => farm_scene(id, rng),
        _ => character_scene(id, rng),
    }
}

/// Park: person and pet on grass, pet engaging a toy, person watching.
fn park_scene(id: u32, rng: &mut StdRng) -> SyntheticImage {
    let mut b = SceneBuilder::new(id, rng);
    let person = b.add_object_from(PEOPLE);
    let pet = b.add_object_from(PETS);
    let grass = b.add_object("grass");
    let toy = b.add_object_from(&["frisbee", "ball", "kite"]);
    b.relate(pet, "on", grass);
    b.relate(pet, "holding", toy);
    b.relate(person, "watching", pet);
    if b.rng().gen_bool(0.5) {
        let tree = b.add_object("tree");
        b.relate(tree, "behind", person);
    }
    b.build()
}

/// Street: person near vehicle on a road, structure behind.
fn street_scene(id: u32, rng: &mut StdRng) -> SyntheticImage {
    let mut b = SceneBuilder::new(id, rng);
    let person = b.add_object_from(PEOPLE);
    let vehicle = b.add_object_from(VEHICLES);
    let road = b.add_object("road");
    b.relate(vehicle, "on", road);
    b.relate(person, "near", vehicle);
    let structure = b.add_object_from(STRUCTURES);
    b.relate(structure, "behind", vehicle);
    if b.rng().gen_bool(0.4) {
        let garment = b.add_object_from(GARMENTS);
        b.relate(person, "wearing", garment);
    }
    b.build()
}

/// Pets in vehicles (the Fig. 7 world: "a dog is looking out of a window
/// from a car").
fn pets_in_vehicle_scene(id: u32, rng: &mut StdRng) -> SyntheticImage {
    let mut b = SceneBuilder::new(id, rng);
    let pet = b.add_object_from(PETS);
    let vehicle = b.add_object_from(&["car", "truck", "bus"]);
    b.relate(pet, "in", vehicle);
    let person = b.add_object_from(PEOPLE);
    b.relate(person, "near", vehicle);
    if b.rng().gen_bool(0.35) {
        let carried = b.add_object("bird");
        b.relate(pet, "carrying", carried);
    }
    b.build()
}

/// Indoor: pet on furniture, tv in front, person watching.
fn indoor_scene(id: u32, rng: &mut StdRng) -> SyntheticImage {
    let mut b = SceneBuilder::new(id, rng);
    let pet = b.add_object_from(&["cat", "dog", "teddy bear"]);
    if b.rng().gen_bool(0.2) {
        b.set_attribute(pet, "kind", "toy");
    }
    let seat = b.add_object_from(FURNITURE_SEATS);
    b.relate(pet, "sitting on", seat);
    let tv = b.add_object("tv");
    b.relate_anchored(pet, "in front of", tv);
    if b.rng().gen_bool(0.5) {
        let person = b.add_object_from(PEOPLE);
        b.relate(person, "watching", tv);
    }
    b.build()
}

/// Riding: person riding something, wearing headwear.
fn riding_scene(id: u32, rng: &mut StdRng) -> SyntheticImage {
    let mut b = SceneBuilder::new(id, rng);
    let person = b.add_object_from(PEOPLE);
    let mount = b.add_object_from(RIDEABLE);
    let road = b.add_object_from(&["road", "grass", "beach"]);
    b.relate(mount, "on", road);
    b.relate(person, "riding", mount);
    let headwear = b.add_object_from(HEADWEAR);
    b.relate(person, "wearing", headwear);
    b.build()
}

/// Carrying: a carrier (person or dog) carrying something.
fn carrying_scene(id: u32, rng: &mut StdRng) -> SyntheticImage {
    let mut b = SceneBuilder::new(id, rng);
    let carrier_is_pet = b.rng().gen_bool(0.4);
    let carrier = if carrier_is_pet {
        b.add_object("dog")
    } else {
        b.add_object_from(PEOPLE)
    };
    let cargo = if carrier_is_pet {
        b.add_object_from(&["bird", "ball", "frisbee"])
    } else {
        b.add_object_from(CARRIED)
    };
    let ground = b.add_object_from(&["grass", "road", "beach"]);
    b.relate(carrier, "on", ground);
    b.relate(carrier, "carrying", cargo);
    if b.rng().gen_bool(0.4) {
        let other = b.add_object_from(PEOPLE);
        b.relate(other, "behind", carrier);
    }
    b.build()
}

/// Wearing: two people, garments, proximity.
fn wearing_scene(id: u32, rng: &mut StdRng) -> SyntheticImage {
    let mut b = SceneBuilder::new(id, rng);
    let a = b.add_object_from(PEOPLE);
    if b.rng().gen_bool(0.5) {
        let bench = b.add_object("bench");
        b.relate(a, "sitting on", bench);
    }
    let garment = b.add_object_from(GARMENTS);
    b.relate(a, "wearing", garment);
    let other = b.add_object_from(PEOPLE);
    b.relate(other, "near", a);
    b.build()
}

/// Farm / outdoor animals.
fn farm_scene(id: u32, rng: &mut StdRng) -> SyntheticImage {
    let mut b = SceneBuilder::new(id, rng);
    let animal = b.add_object_from(FARM_ANIMALS);
    let grass = b.add_object("grass");
    b.relate(animal, "standing on", grass);
    let fence = b.add_object("fence");
    b.relate(fence, "behind", animal);
    if b.rng().gen_bool(0.5) {
        let second = b.add_object_from(FARM_ANIMALS);
        b.relate(second, "near", animal);
    }
    if b.rng().gen_bool(0.4) {
        let person = b.add_object_from(PEOPLE);
        b.relate(person, "watching", animal);
    }
    b.build()
}

/// Character scene: named wizards co-appearing, one dressed distinctively.
///
/// Co-appearance statistics are *biased by a deterministic pairing table*
/// so Example-1-style "most frequently hanging out" questions have stable
/// answers: each character has one preferred companion they appear with in
/// ~70% of their scenes.
fn character_scene(id: u32, rng: &mut StdRng) -> SyntheticImage {
    let mut b = SceneBuilder::new(id, rng);
    let a_idx = b.rng().gen_range(0..CHARACTERS.len());
    let a_name = CHARACTERS[a_idx];
    // Preferred companion: the next character in the ring.
    let companion = if b.rng().gen_bool(0.7) {
        CHARACTERS[(a_idx + 1) % CHARACTERS.len()]
    } else {
        let mut other = b.rng().gen_range(0..CHARACTERS.len());
        if other == a_idx {
            other = (other + 2) % CHARACTERS.len();
        }
        CHARACTERS[other]
    };
    let a = b.add_entity_object("wizard", Some(a_name));
    let c = b.add_entity_object("wizard", Some(companion));
    b.relate(a, "near", c);
    // Each character has a signature garment: even ring index → robe,
    // odd → hat. Deterministic so "what is X wearing" is stable.
    let garment_cat = WIZARD_GARMENTS[a_idx % 2];
    let garment = b.add_object(garment_cat);
    b.relate(a, "wearing", garment);
    if b.rng().gen_bool(0.4) {
        let structure = b.add_object_from(STRUCTURES);
        b.relate(structure, "behind", a);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn generates_requested_count_with_unique_ids() {
        let imgs = generate_images(200, 42);
        assert_eq!(imgs.len(), 200);
        let ids: HashSet<u32> = imgs.iter().map(|i| i.id).collect();
        assert_eq!(ids.len(), 200);
    }

    #[test]
    fn no_single_object_images() {
        // §VI-B: "we manually filter out images that contain only a single
        // object" — the generator never produces them.
        for img in generate_images(300, 7) {
            assert!(img.objects.len() >= 2, "image {} too small", img.id);
            assert!(!img.relations.is_empty());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_images(50, 9);
        let b = generate_images(50, 9);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.caption, y.caption);
            assert_eq!(x.objects.len(), y.objects.len());
        }
        let c = generate_images(50, 10);
        assert!(a.iter().zip(&c).any(|(x, y)| x.caption != y.caption));
    }

    #[test]
    fn covers_the_four_macro_categories() {
        let imgs = generate_images(500, 11);
        let mut supertypes: HashSet<&str> = HashSet::new();
        for img in &imgs {
            for o in &img.objects {
                supertypes.insert(svqa_vision::scene::supertype(&o.category));
            }
        }
        for needed in ["human", "animal", "vehicle", "building"] {
            assert!(supertypes.contains(needed), "missing {needed}");
        }
    }

    #[test]
    fn character_scenes_appear() {
        let imgs = generate_images(500, 13);
        let named = imgs
            .iter()
            .filter(|i| i.objects.iter().any(|o| o.entity.is_some()))
            .count();
        assert!(named > 10, "only {named} character scenes in 500");
    }

    #[test]
    fn preferred_companions_dominate() {
        // The ring pairing makes (character, next) the modal co-appearance.
        let imgs = generate_images(3000, 5);
        let mut together = 0usize;
        let mut apart = 0usize;
        for img in &imgs {
            let names: Vec<&str> = img
                .objects
                .iter()
                .filter_map(|o| o.entity.as_deref())
                .collect();
            if names.len() == 2 {
                let i = CHARACTERS.iter().position(|&c| c == names[0]).unwrap();
                if CHARACTERS[(i + 1) % CHARACTERS.len()] == names[1] {
                    together += 1;
                } else {
                    apart += 1;
                }
            }
        }
        assert!(together > apart, "{together} vs {apart}");
    }

    #[test]
    fn all_relations_use_known_predicates() {
        use svqa_vision::relation::relation_index;
        for img in generate_images(300, 17) {
            for r in &img.relations {
                assert!(
                    relation_index(&r.pred).is_some(),
                    "unknown predicate {}",
                    r.pred
                );
            }
        }
    }
}
