//! The "modified VQAv2" of Exp-2 (§VII).
//!
//! The paper adapts VQAv2 so baselines can be compared on multi-image
//! reasoning: "1) applying count questions to multiple images and asking
//! the accumulated results of these questions; 2) combining two related
//! simple questions into a complex question". Questions here are therefore
//! simpler than MVQA's (one or two clauses), but still require scanning
//! every image.

use crate::groundtruth::{ChainClause, ChainLink, GroundTruth, GtAnswer, Side};
use crate::kg::build_knowledge_graph;
use crate::questions::{QaPair, QuestionSpec};
use crate::scenes::generate_images;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use svqa_graph::Graph;
use svqa_qparser::QuestionType;
use svqa_vision::scene::SyntheticImage;

/// Configuration of the modified-VQAv2 build.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VqaV2Config {
    /// Number of images.
    pub image_count: usize,
    /// Questions per type (judgment, counting, reasoning).
    pub per_type: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for VqaV2Config {
    fn default() -> Self {
        VqaV2Config {
            image_count: 1200,
            per_type: 20,
            seed: 0x5651_4132, // "VQA2"
        }
    }
}

/// Spatial predicates usable in "appear X the Y" conjuncts.
const SPATIAL_JUDGMENT: &[&str] = &["near", "in front of", "behind", "under", "in", "on"];

/// The modified-VQAv2 dataset (same shape as MVQA).
#[derive(Debug)]
pub struct VqaV2 {
    /// Images.
    pub images: Vec<SyntheticImage>,
    /// Knowledge graph (shared with MVQA).
    pub kg: Graph,
    /// QA pairs.
    pub questions: Vec<QaPair>,
    /// Structured specs.
    pub specs: Vec<QuestionSpec>,
}

/// Generate the modified VQAv2.
pub fn generate_vqav2(config: VqaV2Config) -> VqaV2 {
    let images = generate_images(config.image_count, config.seed);
    let kg = build_knowledge_graph();
    let gt = GroundTruth::new(&images, &kg);

    // Category-level triple counts.
    let mut counts: HashMap<(String, String, String), usize> = HashMap::new();
    for img in &images {
        for rel in &img.relations {
            if rel.emergent {
                continue;
            }
            let s = &img.objects[rel.sub];
            let o = &img.objects[rel.obj];
            if s.entity.is_some() || o.entity.is_some() {
                continue;
            }
            *counts
                .entry((s.category.clone(), rel.pred.clone(), o.category.clone()))
                .or_insert(0) += 1;
        }
    }
    let mut frequent: Vec<(&(String, String, String), usize)> =
        counts.iter().map(|(k, &c)| (k, c)).collect();
    frequent.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));

    let mut questions = Vec::new();
    let mut specs = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();

    let mut push = |spec: QuestionSpec| {
        if !seen.insert(spec.text.clone()) {
            return false;
        }
        let answer = gt.eval(&spec.chain, &spec.links, spec.qtype, spec.answer_side);
        let heads: Vec<&str> = spec
            .chain
            .iter()
            .flat_map(|c| [c.sub.as_str(), c.obj.as_str()])
            .filter(|h| !h.is_empty())
            .collect();
        questions.push(QaPair {
            question: spec.text.clone(),
            qtype: spec.qtype,
            answer,
            clauses: spec.chain.len(),
            spo_keys: spec
                .chain
                .iter()
                .map(|c| format!("{}|{}|{}", c.sub, c.pred, c.obj))
                .collect(),
            images_needed: gt.images_involved(&heads),
            adversarial: false,
        });
        specs.push(spec);
        true
    };

    // Accumulated counting over multiple images (modification 1).
    let mut made = 0usize;
    for (k, n) in &frequent {
        if made >= config.per_type {
            break;
        }
        if *n < 2 {
            continue;
        }
        let (a, p, b) = (&k.0, &k.1, &k.2);
        if svqa_vision::scene::supertype(a) == "scenery" {
            continue;
        }
        let text = format!("How many {} are {p} the {b}?", crate::vqav2::plural(a));
        let spec = QuestionSpec {
            text,
            qtype: QuestionType::Counting,
            chain: vec![ChainClause {
                sub: a.clone(),
                pred: p.clone(),
                obj: b.clone(),
                most_frequent: false,
            }],
            links: vec![],
            answer_side: Side::Sub,
        };
        // Accumulated counts stay small enough to be exactly countable
        // under perception noise (the paper's counting questions behave
        // the same way).
        let answer = gt.eval(&spec.chain, &spec.links, spec.qtype, spec.answer_side);
        if !matches!(answer, GtAnswer::Count(n) if (1..=6).contains(&n)) {
            continue;
        }
        if push(spec) {
            made += 1;
        }
    }

    // Combined two-clause judgment questions (modification 2), alternating
    // yes/no.
    let mut made = 0usize;
    let mut want_yes = true;
    'outer: for (k1, _) in &frequent {
        if made >= config.per_type {
            break;
        }
        let (a, p1, b) = (&k1.0, &k1.1, &k1.2);
        for (k2, _) in &frequent {
            if &k2.0 != a || k2 == k1 {
                continue;
            }
            let (p2, c) = (&k2.1, &k2.2);
            if !matches!(
                p2.as_str(),
                "near" | "in front of" | "behind" | "under" | "in" | "on"
            ) {
                continue;
            }
            let (obj, expected) = if want_yes {
                (c.clone(), true)
            } else {
                // A category never in that relation with A (sorted scan
                // for determinism).
                let mut all: Vec<&String> = counts.keys().map(|(s, _, _)| s).collect();
                all.sort();
                all.dedup();
                match all.into_iter().find(|cc| {
                    !counts.contains_key(&((*cc).clone(), p2.clone(), a.clone()))
                        && !counts.contains_key(&(a.clone(), p2.clone(), (*cc).clone()))
                        && *cc != c
                }) {
                    Some(cc) => (cc.clone(), false),
                    None => continue,
                }
            };
            // Alternate the paper's two combination styles: a relative
            // clause, or an explicit conjunction of two simple questions.
            let conjunction_form = made % 3 == 2;
            let spec = if conjunction_form && SPATIAL_JUDGMENT.contains(&p1.as_str()) {
                QuestionSpec {
                    text: format!(
                        "Does the {a} appear {p1} the {b} and does the {a} appear {p2} the {obj}?"
                    ),
                    qtype: QuestionType::Judgment,
                    chain: vec![
                        ChainClause { sub: a.clone(), pred: p1.clone(), obj: b.clone(), most_frequent: false },
                        ChainClause { sub: a.clone(), pred: p2.clone(), obj: obj.clone(), most_frequent: false },
                    ],
                    links: vec![],
                    answer_side: Side::Sub,
                }
            } else {
                QuestionSpec {
                    text: format!("Does the {a} that is {p1} the {b} appear {p2} the {obj}?"),
                    qtype: QuestionType::Judgment,
                    chain: vec![
                        ChainClause { sub: a.clone(), pred: p2.clone(), obj: obj.clone(), most_frequent: false },
                        ChainClause { sub: a.clone(), pred: p1.clone(), obj: b.clone(), most_frequent: false },
                    ],
                    links: vec![ChainLink {
                        provider: 1,
                        consumer: 0,
                        consumer_side: Side::Sub,
                        provider_side: Side::Sub,
                    }],
                    answer_side: Side::Sub,
                }
            };
            let answer = gt.eval(&spec.chain, &spec.links, spec.qtype, spec.answer_side);
            if answer != GtAnswer::YesNo(expected) {
                continue;
            }
            if push(spec) {
                made += 1;
                want_yes = !want_yes;
            }
            if made >= config.per_type {
                break 'outer;
            }
        }
    }

    // Reasoning: subject-class questions over one clause.
    let mut made = 0usize;
    for (k, _) in &frequent {
        if made >= config.per_type {
            break;
        }
        let (a, p, b) = (&k.0, &k.1, &k.2);
        let Some(class) = crate::kg::CATEGORY_CLASSES
            .iter()
            .find(|(c, _)| c == a)
            .map(|&(_, cl)| cl)
        else {
            continue;
        };
        let text = format!("What kind of {} are {p} the {b}?", plural(class));
        let spec = QuestionSpec {
            text,
            qtype: QuestionType::Reasoning,
            chain: vec![ChainClause {
                sub: class.to_owned(),
                pred: p.clone(),
                obj: b.clone(),
                most_frequent: false,
            }],
            links: vec![],
            answer_side: Side::Sub,
        };
        if !gt.reasoning_is_stable(&spec.chain, &spec.links, spec.answer_side) {
            continue;
        }
        if push(spec) {
            made += 1;
        }
    }

    VqaV2 {
        images,
        kg,
        questions,
        specs,
    }
}

pub(crate) fn plural(noun: &str) -> String {
    match noun {
        "sheep" | "clothes" => return noun.to_owned(),
        "child" => return "children".to_owned(),
        "man" => return "men".to_owned(),
        "woman" => return "women".to_owned(),
        "person" => return "people".to_owned(),
        _ => {}
    }
    if noun.ends_with('s') || noun.ends_with('x') || noun.ends_with("ch") || noun.ends_with("sh") {
        format!("{noun}es")
    } else if noun.ends_with('y') && !noun.ends_with("ay") && !noun.ends_with("ey") && !noun.ends_with("oy") {
        format!("{}ies", &noun[..noun.len() - 1])
    } else {
        format!("{noun}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> VqaV2 {
        generate_vqav2(VqaV2Config {
            image_count: 600,
            per_type: 10,
            seed: 3,
        })
    }

    #[test]
    fn generates_all_three_types() {
        let v = small();
        let count = |t: QuestionType| v.questions.iter().filter(|q| q.qtype == t).count();
        assert_eq!(count(QuestionType::Counting), 10);
        assert_eq!(count(QuestionType::Judgment), 10);
        assert!(count(QuestionType::Reasoning) >= 5);
    }

    #[test]
    fn questions_are_simpler_than_mvqa() {
        let v = small();
        assert!(v.questions.iter().all(|q| q.clauses <= 2));
    }

    #[test]
    fn every_question_parses() {
        let v = small();
        let gen = svqa_qparser::QueryGraphGenerator::new();
        for q in &v.questions {
            let gq = gen
                .generate(&q.question)
                .unwrap_or_else(|e| panic!("{:?}: {e}", q.question));
            assert_eq!(gq.question_type, q.qtype, "{:?}", q.question);
        }
    }

    #[test]
    fn judgment_mix_has_yes_and_no() {
        let v = small();
        let yes = v
            .questions
            .iter()
            .filter(|q| q.answer == GtAnswer::YesNo(true))
            .count();
        let no = v
            .questions
            .iter()
            .filter(|q| q.answer == GtAnswer::YesNo(false))
            .count();
        assert!(yes >= 3 && no >= 3, "yes={yes} no={no}");
    }

    #[test]
    fn deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.questions, b.questions);
    }
}
