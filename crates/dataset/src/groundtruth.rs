//! Ground-truth evaluation over clean scene data + the knowledge graph.
//!
//! Question generation needs authoritative answers. This evaluator runs a
//! *structured* clause chain (no NLP involved) over the ground-truth
//! scenes, using the same category-level cross-image identity semantics as
//! the executor: "the pets situated in the car" resolves to the *category*
//! dog (Example 7 of the paper), and that category carries over to other
//! images. Because generation and execution share semantics, SVQA's
//! accuracy measures its *pipeline* fidelity (detection, SGG, parsing,
//! matching), not a semantics mismatch.

use crate::kg::CHARACTER_RELATIONS;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use svqa_graph::Graph;
use svqa_vision::scene::SyntheticImage;

/// A ground-truth answer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum GtAnswer {
    /// Judgment result.
    YesNo(bool),
    /// Counting result.
    Count(usize),
    /// Reasoning result (a category or entity label).
    Entity(String),
}

/// One structured clause: `sub —pred→ obj`, heads as category/class/entity
/// nouns; empty string = wildcard.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainClause {
    /// Subject head noun.
    pub sub: String,
    /// Predicate: a scene relation name or a knowledge-graph relation.
    pub pred: String,
    /// Object head noun.
    pub obj: String,
    /// Whether the "most frequently" constraint applies (aggregating over
    /// the side this clause provides downstream).
    pub most_frequent: bool,
}

/// Which SPOC side a link touches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Side {
    /// Subject side.
    Sub,
    /// Object side.
    Obj,
}

/// A link: clause `provider` (deeper) feeds clause `consumer`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainLink {
    /// Provider clause index.
    pub provider: usize,
    /// Consumer clause index.
    pub consumer: usize,
    /// Consumer slot receiving the binding.
    pub consumer_side: Side,
    /// Provider side the binding is read from.
    pub provider_side: Side,
}

/// One matching clause instance: `(image idx, sub obj-idx, obj obj-idx,
/// sub label, obj label)`; `usize::MAX` as the image marks a
/// knowledge-graph pseudo-triple.
type ClausePair = (usize, usize, usize, String, String);

/// The ground-truth evaluator.
pub struct GroundTruth<'a> {
    images: &'a [SyntheticImage],
    /// class noun → the set of labels it covers (taxonomy closure,
    /// including the noun itself and entity names).
    closures: HashMap<String, HashSet<String>>,
    /// Knowledge relations as label triples.
    kg_triples: Vec<(String, String, String)>,
}

impl<'a> GroundTruth<'a> {
    /// Build the evaluator from the scenes and the knowledge graph.
    pub fn new(images: &'a [SyntheticImage], kg: &Graph) -> Self {
        // Taxonomy closure: for each vertex, the set of labels reaching it
        // via "is a" paths (plus itself).
        let mut closures: HashMap<String, HashSet<String>> = HashMap::new();
        for (vid, v) in kg.vertices() {
            let mut members: HashSet<String> = HashSet::new();
            members.insert(v.label().to_owned());
            // Reverse-BFS along incoming "is a" edges.
            let mut stack = vec![vid];
            let mut seen = HashSet::new();
            seen.insert(vid);
            while let Some(cur) = stack.pop() {
                for (_, e) in kg.in_edges(cur) {
                    if e.label() == "is a" && seen.insert(e.src()) {
                        members.insert(kg.vertex_label(e.src()).unwrap_or_default().to_owned());
                        stack.push(e.src());
                    }
                }
            }
            closures.insert(v.label().to_owned(), members);
        }
        let kg_triples = CHARACTER_RELATIONS
            .iter()
            .map(|&(s, r, o)| (s.to_owned(), r.to_owned(), o.to_owned()))
            .collect();
        GroundTruth {
            images,
            closures,
            kg_triples,
        }
    }

    /// Labels covered by a head noun (the noun itself if it is not in the
    /// taxonomy).
    pub fn closure(&self, head: &str) -> HashSet<String> {
        self.closures
            .get(head)
            .cloned()
            .unwrap_or_else(|| [head.to_owned()].into_iter().collect())
    }

    /// Whether `pred` is a knowledge-graph relation (vs a scene relation).
    fn is_kg_relation(&self, pred: &str) -> bool {
        self.kg_triples.iter().any(|(_, r, _)| r == pred)
    }

    /// Evaluate one clause: matching `(image idx, sub obj-idx, obj obj-idx)`
    /// scene triples, or pseudo-triples for KG relations (image = usize::MAX).
    /// Label pairs are also returned for binding propagation.
    fn clause_pairs(
        &self,
        clause: &ChainClause,
        sub_bind: Option<&HashSet<String>>,
        obj_bind: Option<&HashSet<String>>,
    ) -> Vec<ClausePair> {
        let sub_set: Option<HashSet<String>> = match sub_bind {
            Some(b) => Some(self.expand_binding(b)),
            None if clause.sub.is_empty() => None,
            None => Some(self.closure(&clause.sub)),
        };
        let obj_set: Option<HashSet<String>> = match obj_bind {
            Some(b) => Some(self.expand_binding(b)),
            None if clause.obj.is_empty() => None,
            None => Some(self.closure(&clause.obj)),
        };
        let in_set = |set: &Option<HashSet<String>>, label: &str, category: &str| -> bool {
            match set {
                None => true,
                Some(s) => s.contains(label) || s.contains(category),
            }
        };
        if self.is_kg_relation(&clause.pred) {
            return self
                .kg_triples
                .iter()
                .filter(|(s, r, o)| {
                    r == &clause.pred
                        && in_set(&sub_set, s, s)
                        && in_set(&obj_set, o, o)
                })
                .enumerate()
                .map(|(i, (s, _, o))| (usize::MAX, i, i, s.clone(), o.clone()))
                .collect();
        }
        let mut out = Vec::new();
        for (ii, img) in self.images.iter().enumerate() {
            for rel in &img.relations {
                // Predicate equivalence classes (on/sitting on/…) apply —
                // the same aliasing the executor's matching uses, so ground
                // truth and system semantics agree.
                if !svqa_vision::relation::predicates_aliased(&rel.pred, &clause.pred) {
                    continue;
                }
                let so = &img.objects[rel.sub];
                let oo = &img.objects[rel.obj];
                if in_set(&sub_set, so.scene_label(), &so.category)
                    && in_set(&obj_set, oo.scene_label(), &oo.category)
                {
                    out.push((
                        ii,
                        rel.sub,
                        rel.obj,
                        so.scene_label().to_owned(),
                        oo.scene_label().to_owned(),
                    ));
                }
            }
        }
        out
    }

    /// Bindings propagate at label level; entity labels stay themselves,
    /// category labels stay themselves (category-level identity).
    fn expand_binding(&self, binding: &HashSet<String>) -> HashSet<String> {
        binding.clone()
    }

    /// Evaluate a clause chain. `answer_side` is the answer slot of clause
    /// 0; question type shapes the result.
    pub fn eval(
        &self,
        clauses: &[ChainClause],
        links: &[ChainLink],
        qtype: svqa_qparser::QuestionType,
        answer_side: Side,
    ) -> GtAnswer {
        let n = clauses.len();
        let mut sub_bind: Vec<Option<HashSet<String>>> = vec![None; n];
        let mut obj_bind: Vec<Option<HashSet<String>>> = vec![None; n];
        let mut pair_sets: Vec<Vec<ClausePair>> = vec![Vec::new(); n];
        // Execution order: providers before consumers (chains are linear,
        // highest index deepest).
        for i in (0..n).rev() {
            let mut pairs =
                self.clause_pairs(&clauses[i], sub_bind[i].as_ref(), obj_bind[i].as_ref());
            if clauses[i].most_frequent {
                // Aggregate on the provided side (subject by convention for
                // our templates).
                let mut counts: HashMap<&str, usize> = HashMap::new();
                for p in &pairs {
                    *counts.entry(p.3.as_str()).or_insert(0) += 1;
                }
                if let Some(&max) = counts.values().max() {
                    let keep: HashSet<String> = counts
                        .iter()
                        .filter(|(_, &c)| c == max)
                        .map(|(l, _)| (*l).to_owned())
                        .collect();
                    pairs.retain(|p| keep.contains(&p.3));
                }
            }
            for link in links.iter().filter(|l| l.provider == i) {
                let labels: HashSet<String> = pairs
                    .iter()
                    .map(|p| match link.provider_side {
                        Side::Sub => p.3.clone(),
                        Side::Obj => p.4.clone(),
                    })
                    .collect();
                let slot = match link.consumer_side {
                    Side::Sub => &mut sub_bind[link.consumer],
                    Side::Obj => &mut obj_bind[link.consumer],
                };
                *slot = Some(match slot.take() {
                    Some(existing) => existing.intersection(&labels).cloned().collect(),
                    None => labels,
                });
            }
            pair_sets[i] = pairs;
        }

        match qtype {
            svqa_qparser::QuestionType::Judgment => {
                GtAnswer::YesNo(pair_sets.iter().all(|p| !p.is_empty()))
            }
            svqa_qparser::QuestionType::Counting => {
                let distinct: HashSet<(usize, usize)> = pair_sets[0]
                    .iter()
                    .map(|p| match answer_side {
                        Side::Sub => (p.0, p.1),
                        Side::Obj => (p.0, p.2),
                    })
                    .collect();
                GtAnswer::Count(distinct.len())
            }
            svqa_qparser::QuestionType::Reasoning => {
                let mut counts: HashMap<&str, usize> = HashMap::new();
                for p in &pair_sets[0] {
                    let label = match answer_side {
                        Side::Sub => p.3.as_str(),
                        Side::Obj => p.4.as_str(),
                    };
                    *counts.entry(label).or_insert(0) += 1;
                }
                let mut ranked: Vec<(&str, usize)> = counts.into_iter().collect();
                ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
                match ranked.first() {
                    Some((label, _)) => GtAnswer::Entity((*label).to_owned()),
                    None => GtAnswer::Entity(String::new()),
                }
            }
        }
    }

    /// Whether the reasoning answer is *unique with margin*: the top label
    /// must beat the runner-up by at least 30% relative support. Moderately
    /// contested rankings stay in the dataset (the paper's handwritten
    /// questions are not noise-proof either) — they are where perception
    /// noise costs reasoning accuracy.
    pub fn reasoning_is_stable(
        &self,
        clauses: &[ChainClause],
        links: &[ChainLink],
        answer_side: Side,
    ) -> bool {
        let n = clauses.len();
        let mut sub_bind: Vec<Option<HashSet<String>>> = vec![None; n];
        let mut obj_bind: Vec<Option<HashSet<String>>> = vec![None; n];
        let mut top_two: Option<(usize, usize)> = None;
        for i in (0..n).rev() {
            let mut pairs =
                self.clause_pairs(&clauses[i], sub_bind[i].as_ref(), obj_bind[i].as_ref());
            if clauses[i].most_frequent {
                let mut counts: HashMap<&str, usize> = HashMap::new();
                for p in &pairs {
                    *counts.entry(p.3.as_str()).or_insert(0) += 1;
                }
                // Constraint itself must be unambiguous.
                let mut vals: Vec<usize> = counts.values().copied().collect();
                vals.sort_unstable_by(|a, b| b.cmp(a));
                if vals.len() > 1 && vals[0] == vals[1] {
                    return false;
                }
                if let Some(&max) = vals.first() {
                    let keep: HashSet<String> = counts
                        .iter()
                        .filter(|(_, &c)| c == max)
                        .map(|(l, _)| (*l).to_owned())
                        .collect();
                    pairs.retain(|p| keep.contains(&p.3));
                }
            }
            for link in links.iter().filter(|l| l.provider == i) {
                let labels: HashSet<String> = pairs
                    .iter()
                    .map(|p| match link.provider_side {
                        Side::Sub => p.3.clone(),
                        Side::Obj => p.4.clone(),
                    })
                    .collect();
                let slot = match link.consumer_side {
                    Side::Sub => &mut sub_bind[link.consumer],
                    Side::Obj => &mut obj_bind[link.consumer],
                };
                *slot = Some(labels);
            }
            if i == 0 {
                let mut counts: HashMap<&str, usize> = HashMap::new();
                for p in &pairs {
                    let label = match answer_side {
                        Side::Sub => p.3.as_str(),
                        Side::Obj => p.4.as_str(),
                    };
                    *counts.entry(label).or_insert(0) += 1;
                }
                let mut vals: Vec<usize> = counts.values().copied().collect();
                vals.sort_unstable_by(|a, b| b.cmp(a));
                top_two = Some((
                    vals.first().copied().unwrap_or(0),
                    vals.get(1).copied().unwrap_or(0),
                ));
            }
        }
        matches!(top_two, Some((a, b)) if a > b && a as f64 >= 1.3 * b as f64)
    }

    /// Number of images containing at least one instance matching any of
    /// the heads involved — the "Average Images" scan-set size of Table II.
    pub fn images_involved(&self, heads: &[&str]) -> usize {
        let sets: Vec<HashSet<String>> = heads
            .iter()
            .filter(|h| !h.is_empty())
            .map(|h| self.closure(h))
            .collect();
        self.images
            .iter()
            .filter(|img| {
                img.objects.iter().any(|o| {
                    sets.iter().any(|s| {
                        s.contains(o.scene_label()) || s.contains(&o.category)
                    })
                })
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kg::build_knowledge_graph;
    use crate::scenes::generate_images;
    use svqa_qparser::QuestionType;

    fn clause(sub: &str, pred: &str, obj: &str) -> ChainClause {
        ChainClause {
            sub: sub.into(),
            pred: pred.into(),
            obj: obj.into(),
            most_frequent: false,
        }
    }

    #[test]
    fn closure_includes_taxonomy_and_entities() {
        let images = generate_images(10, 1);
        let kg = build_knowledge_graph();
        let gt = GroundTruth::new(&images, &kg);
        let pets = gt.closure("pet");
        assert!(pets.contains("dog") && pets.contains("cat") && pets.contains("pet"));
        let animals = gt.closure("animal");
        assert!(animals.contains("dog") && animals.contains("bird"));
        let wizards = gt.closure("wizard");
        assert!(wizards.contains("harry potter"));
        // Unknown heads close over themselves.
        assert_eq!(gt.closure("spaceship").len(), 1);
    }

    #[test]
    fn single_clause_judgment() {
        let images = generate_images(800, 3);
        let kg = build_knowledge_graph();
        let gt = GroundTruth::new(&images, &kg);
        // Pets in vehicles exist by construction of the archetypes.
        let yes = gt.eval(
            &[clause("pet", "in", "vehicle")],
            &[],
            QuestionType::Judgment,
            Side::Sub,
        );
        assert_eq!(yes, GtAnswer::YesNo(true));
        // Elephants never ride bicycles.
        let no = gt.eval(
            &[clause("elephant", "riding", "bicycle")],
            &[],
            QuestionType::Judgment,
            Side::Sub,
        );
        assert_eq!(no, GtAnswer::YesNo(false));
    }

    #[test]
    fn chained_judgment_requires_all_clauses() {
        let images = generate_images(800, 3);
        let kg = build_knowledge_graph();
        let gt = GroundTruth::new(&images, &kg);
        let ans = gt.eval(
            &[
                clause("pet", "carrying", "bird"),
                clause("pet", "in", "vehicle"),
            ],
            &[ChainLink {
                provider: 1,
                consumer: 0,
                consumer_side: Side::Sub,
                provider_side: Side::Sub,
            }],
            QuestionType::Judgment,
            Side::Sub,
        );
        // Dogs in vehicles exist and dogs carry birds → yes.
        assert_eq!(ans, GtAnswer::YesNo(true));
    }

    #[test]
    fn example7_reasoning() {
        // "What kind of animals is carried by the pets that were situated
        // in the car?" → dog carries bird → "bird".
        let images = generate_images(1500, 3);
        let kg = build_knowledge_graph();
        let gt = GroundTruth::new(&images, &kg);
        let ans = gt.eval(
            &[
                clause("pet", "carrying", "animal"),
                clause("pet", "in", "car"),
            ],
            &[ChainLink {
                provider: 1,
                consumer: 0,
                consumer_side: Side::Sub,
                provider_side: Side::Sub,
            }],
            QuestionType::Reasoning,
            Side::Obj,
        );
        assert_eq!(ans, GtAnswer::Entity("bird".into()));
    }

    #[test]
    fn counting_counts_distinct_instances() {
        let images = generate_images(300, 5);
        let kg = build_knowledge_graph();
        let gt = GroundTruth::new(&images, &kg);
        let GtAnswer::Count(n) = gt.eval(
            &[clause("pet", "in", "vehicle")],
            &[],
            QuestionType::Counting,
            Side::Sub,
        ) else {
            panic!()
        };
        // Direct recount.
        let manual: usize = images
            .iter()
            .map(|img| {
                img.relations
                    .iter()
                    .filter(|r| {
                        r.pred == "in"
                            && matches!(img.objects[r.sub].category.as_str(), "dog" | "cat")
                            && matches!(
                                img.objects[r.obj].category.as_str(),
                                "car" | "bus" | "truck" | "motorcycle" | "bicycle" | "train" | "boat" | "airplane"
                            )
                    })
                    .count()
            })
            .sum();
        assert_eq!(n, manual);
        assert!(n > 0);
    }

    #[test]
    fn kg_relation_clauses() {
        let images = generate_images(10, 1);
        let kg = build_knowledge_graph();
        let gt = GroundTruth::new(&images, &kg);
        let ans = gt.eval(
            &[clause("", "girlfriend of", "harry potter")],
            &[],
            QuestionType::Counting,
            Side::Sub,
        );
        assert_eq!(ans, GtAnswer::Count(2)); // ginny + cho
    }

    #[test]
    fn most_frequent_constraint_selects_modal_subject() {
        let images = generate_images(3000, 5);
        let kg = build_knowledge_graph();
        let gt = GroundTruth::new(&images, &kg);
        // Who most frequently hangs out near ginny weasley? The ring
        // pairing makes harry potter (her predecessor) the modal companion.
        let ans = gt.eval(
            &[ChainClause {
                sub: "wizard".into(),
                pred: "near".into(),
                obj: "ginny weasley".into(),
                most_frequent: true,
            }],
            &[],
            QuestionType::Reasoning,
            Side::Sub,
        );
        assert_eq!(ans, GtAnswer::Entity("harry potter".into()));
    }

    #[test]
    fn images_involved_counts_scan_set() {
        let images = generate_images(500, 9);
        let kg = build_knowledge_graph();
        let gt = GroundTruth::new(&images, &kg);
        let people = gt.images_involved(&["person"]);
        let elephants = gt.images_involved(&["elephant"]);
        assert!(people > elephants);
        assert!(people <= 500);
        assert_eq!(gt.images_involved(&[]), 0);
    }
}
