//! The assembled MVQA dataset and its statistics (Tables I–II).

use crate::groundtruth::GtAnswer;
use crate::kg::build_knowledge_graph;
use crate::questions::{generate_questions, QaPair, QuestionCounts, QuestionSpec};
use crate::scenes::generate_images;
use serde::{Deserialize, Serialize};
use svqa_graph::Graph;
use svqa_qparser::QuestionType;
use svqa_vision::scene::SyntheticImage;

/// Configuration of the dataset build.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MvqaConfig {
    /// Number of images (paper: 4,233).
    pub image_count: usize,
    /// Master seed.
    pub seed: u64,
    /// Question composition (paper: 40/16/44).
    pub counts: QuestionCounts,
}

impl Default for MvqaConfig {
    fn default() -> Self {
        MvqaConfig {
            image_count: 4233,
            seed: 0x4d56_5141, // "MVQA"
            counts: QuestionCounts::default(),
        }
    }
}

/// The MVQA dataset.
#[derive(Debug)]
pub struct Mvqa {
    /// The synthetic images.
    pub images: Vec<SyntheticImage>,
    /// The external knowledge graph.
    pub kg: Graph,
    /// The complex QA pairs.
    pub questions: Vec<QaPair>,
    /// Structured question specs (for ground-truth re-evaluation).
    pub specs: Vec<QuestionSpec>,
    /// The configuration used.
    pub config: MvqaConfig,
}

impl Mvqa {
    /// Generate the dataset.
    pub fn generate(config: MvqaConfig) -> Self {
        let images = generate_images(config.image_count, config.seed);
        let kg = build_knowledge_graph();
        let (questions, specs) =
            generate_questions(&images, &kg, config.seed ^ 0x51, config.counts);
        Mvqa {
            images,
            kg,
            questions,
            specs,
            config,
        }
    }

    /// A small dataset for tests and fast iteration.
    pub fn generate_small(image_count: usize, seed: u64) -> Self {
        Self::generate(MvqaConfig {
            image_count,
            seed,
            counts: QuestionCounts::default(),
        })
    }

    /// Compute the Table I/II statistics.
    pub fn stats(&self) -> MvqaStats {
        let row = |qtype: QuestionType| -> MvqaTypeRow {
            let of_type: Vec<&QaPair> = self
                .questions
                .iter()
                .filter(|p| p.qtype == qtype)
                .collect();
            let clauses: usize = of_type.iter().map(|p| p.clauses).sum();
            let mut spos: Vec<&str> = of_type
                .iter()
                .flat_map(|p| p.spo_keys.iter().map(String::as_str))
                .collect();
            spos.sort_unstable();
            spos.dedup();
            let avg_images = if of_type.is_empty() {
                0.0
            } else {
                of_type.iter().map(|p| p.images_needed).sum::<usize>() as f64
                    / of_type.len() as f64
            };
            MvqaTypeRow {
                questions: of_type.len(),
                clauses,
                unique_spos: spos.len(),
                avg_images,
            }
        };
        let mut all_spos: Vec<&str> = self
            .questions
            .iter()
            .flat_map(|p| p.spo_keys.iter().map(String::as_str))
            .collect();
        all_spos.sort_unstable();
        all_spos.dedup();
        let total_words: usize = self
            .questions
            .iter()
            .map(|p| p.question.split_whitespace().count())
            .sum();
        MvqaStats {
            image_count: self.images.len(),
            question_count: self.questions.len(),
            judgment: row(QuestionType::Judgment),
            counting: row(QuestionType::Counting),
            reasoning: row(QuestionType::Reasoning),
            total_clauses: self.questions.iter().map(|p| p.clauses).sum(),
            unique_spos_total: all_spos.len(),
            avg_query_length: if self.questions.is_empty() {
                0.0
            } else {
                total_words as f64 / self.questions.len() as f64
            },
            constrained_questions: self
                .questions
                .iter()
                .filter(|p| p.question.contains("most") || p.question.contains("least"))
                .count(),
        }
    }

    /// Accuracy of a batch of predicted answers against ground truth,
    /// per question type plus overall: `(judgment, counting, reasoning,
    /// overall)`. Reasoning answers are compared by the paper's semantic
    /// rule (exact label, or embedding similarity — "dog" vs "puppy"
    /// count as consistent).
    pub fn score_answers(
        &self,
        answers: &[Option<PredictedAnswer>],
    ) -> (f64, f64, f64, f64) {
        let embedder = svqa_nlp::Embedder::new();
        let mut per_type: std::collections::HashMap<QuestionType, (usize, usize)> =
            std::collections::HashMap::new();
        for (q, ans) in self.questions.iter().zip(answers) {
            let entry = per_type.entry(q.qtype).or_insert((0, 0));
            entry.1 += 1;
            let correct = match (&q.answer, ans) {
                (GtAnswer::YesNo(gt), Some(PredictedAnswer::YesNo(p))) => gt == p,
                (GtAnswer::Count(gt), Some(PredictedAnswer::Count(p))) => gt == p,
                (GtAnswer::Entity(gt), Some(PredictedAnswer::Entity(p))) => {
                    gt == p || embedder.similarity(gt, p) >= 0.7
                }
                _ => false,
            };
            if correct {
                entry.0 += 1;
            }
        }
        let acc = |t: QuestionType| -> f64 {
            per_type
                .get(&t)
                .map_or(0.0, |&(c, n)| if n == 0 { 0.0 } else { c as f64 / n as f64 })
        };
        let (total_c, total_n) = per_type
            .values()
            .fold((0, 0), |(c, n), &(ci, ni)| (c + ci, n + ni));
        (
            acc(QuestionType::Judgment),
            acc(QuestionType::Counting),
            acc(QuestionType::Reasoning),
            if total_n == 0 {
                0.0
            } else {
                total_c as f64 / total_n as f64
            },
        )
    }
}

/// A system's predicted answer, for scoring.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictedAnswer {
    /// Yes/no.
    YesNo(bool),
    /// Number.
    Count(usize),
    /// Entity label.
    Entity(String),
}

/// Per-type statistics row (Table II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MvqaTypeRow {
    /// Number of questions.
    pub questions: usize,
    /// Total clauses.
    pub clauses: usize,
    /// Unique SPO triples (within the type).
    pub unique_spos: usize,
    /// Average size of the image scan set.
    pub avg_images: f64,
}

/// Dataset statistics (Tables I–II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MvqaStats {
    /// Number of images.
    pub image_count: usize,
    /// Number of questions.
    pub question_count: usize,
    /// Judgment row.
    pub judgment: MvqaTypeRow,
    /// Counting row.
    pub counting: MvqaTypeRow,
    /// Reasoning row.
    pub reasoning: MvqaTypeRow,
    /// Total clauses across all questions.
    pub total_clauses: usize,
    /// Unique SPOs across the whole dataset.
    pub unique_spos_total: usize,
    /// Average question length in words (Table I's "Avg. Query length").
    pub avg_query_length: f64,
    /// Questions with constraints (paper: 40).
    pub constrained_questions: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_dataset_builds_and_reports() {
        let mvqa = Mvqa::generate_small(1000, 99);
        assert_eq!(mvqa.images.len(), 1000);
        assert_eq!(mvqa.questions.len(), 100);
        let stats = mvqa.stats();
        assert_eq!(stats.question_count, 100);
        assert_eq!(stats.judgment.questions, 40);
        assert_eq!(stats.counting.questions, 16);
        assert_eq!(stats.reasoning.questions, 44);
        assert_eq!(stats.total_clauses, 219);
        assert!(stats.avg_query_length > 10.0 && stats.avg_query_length < 25.0);
        assert!(stats.unique_spos_total > 30);
    }

    #[test]
    fn scoring_counts_exact_and_semantic_matches() {
        let mvqa = Mvqa::generate_small(600, 5);
        // Answer everything with the exact ground truth → 100%.
        let perfect: Vec<Option<PredictedAnswer>> = mvqa
            .questions
            .iter()
            .map(|q| {
                Some(match &q.answer {
                    GtAnswer::YesNo(b) => PredictedAnswer::YesNo(*b),
                    GtAnswer::Count(n) => PredictedAnswer::Count(*n),
                    GtAnswer::Entity(e) => PredictedAnswer::Entity(e.clone()),
                })
            })
            .collect();
        let (j, c, r, all) = mvqa.score_answers(&perfect);
        assert_eq!((j, c, r, all), (1.0, 1.0, 1.0, 1.0));
        // Answer nothing → 0%.
        let nothing: Vec<Option<PredictedAnswer>> =
            mvqa.questions.iter().map(|_| None).collect();
        let (_, _, _, zero) = mvqa.score_answers(&nothing);
        assert_eq!(zero, 0.0);
    }

    #[test]
    fn synonym_entities_count_as_correct() {
        let mvqa = Mvqa::generate_small(600, 5);
        // Find a reasoning question whose answer is "dog" (if any) and
        // answer "puppy" — the paper's own example of consistency.
        let answers: Vec<Option<PredictedAnswer>> = mvqa
            .questions
            .iter()
            .map(|q| match &q.answer {
                GtAnswer::Entity(e) if e == "dog" => {
                    Some(PredictedAnswer::Entity("puppy".into()))
                }
                GtAnswer::Entity(e) => Some(PredictedAnswer::Entity(e.clone())),
                GtAnswer::YesNo(b) => Some(PredictedAnswer::YesNo(*b)),
                GtAnswer::Count(n) => Some(PredictedAnswer::Count(*n)),
            })
            .collect();
        let (_, _, r, _) = mvqa.score_answers(&answers);
        assert_eq!(r, 1.0);
    }
}
