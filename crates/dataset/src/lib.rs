//! # svqa-dataset
//!
//! The MVQA dataset of the SVQA reproduction (§VI of the paper), generated
//! synthetically (see `DESIGN.md` for the substitution argument):
//!
//! * [`kg`] — the external knowledge graph: a category taxonomy (dog *is a*
//!   pet *is a* animal; robe *is a* clothes; …) plus a character universe
//!   with `girlfriend of` / `friend of` / `mentor of` relations (the
//!   paper's Example 1 world);
//! * [`scenes`] — 4,233 COCO-like synthetic images drawn from weighted
//!   scene archetypes (park, street, indoor, riding, character scenes, …),
//!   every relation geometrically realized;
//! * [`groundtruth`] — a clean-data evaluator that answers questions over
//!   the *ground-truth* scenes + knowledge graph with the same
//!   category-level cross-image identity semantics the executor uses
//!   (§VI-B's Example 7 resolves "the pets in the car" to the category
//!   *dog*, not to one specific dog instance);
//! * [`questions`] — template-based generation of the 100 complex QA pairs
//!   (40 judgment / 16 counting / 44 reasoning, Table II), each validated
//!   to parse and carry a stable ground-truth answer;
//! * [`mvqa`] — the assembled dataset with Table I/II statistics;
//! * [`vqav2`] — the "modified VQAv2" of Exp-2: simpler multi-image
//!   questions baselines can answer after decomposition.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod groundtruth;
pub mod io;
pub mod kg;
pub mod mvqa;
pub mod questions;
pub mod scenes;
pub mod vqav2;

pub use groundtruth::{GroundTruth, GtAnswer};
pub use io::{load, save, DatasetIoError};
pub use kg::build_knowledge_graph;
pub use mvqa::{Mvqa, MvqaConfig, MvqaStats};
pub use questions::{QaPair, QuestionSpec};
pub use scenes::{generate_crowded_images, generate_images};
pub use vqav2::{generate_vqav2, VqaV2Config};
