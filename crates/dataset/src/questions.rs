//! Complex question generation (§VI-B "Generating Question-Answer Pairs").
//!
//! The paper's three-step authoring process — (1) write questions spanning
//! multiple objects, (2) reject questions answerable from a single image,
//! (3) label answers with three annotators — is mirrored programmatically:
//! candidate questions are instantiated from the realized scene statistics,
//! evaluated against the [`crate::groundtruth`] oracle (the "annotator"),
//! and accepted only when the answer is stable and the question genuinely
//! requires cross-image evidence.

use crate::groundtruth::{ChainClause, ChainLink, GroundTruth, GtAnswer, Side};
use crate::kg::{CATEGORY_CLASSES, CHARACTER_RELATIONS};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use svqa_graph::Graph;
use svqa_qparser::QuestionType;
use svqa_vision::scene::SyntheticImage;

/// A generated question with its ground truth.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QaPair {
    /// The natural-language question.
    pub question: String,
    /// Question type.
    pub qtype: QuestionType,
    /// Ground-truth answer.
    pub answer: GtAnswer,
    /// Number of clauses (query-graph vertices).
    pub clauses: usize,
    /// The SPO keys of the clauses (`sub|pred|obj`), for Table II's
    /// unique-SPO statistic.
    pub spo_keys: Vec<String>,
    /// Images containing any involved category — Table II's "Average
    /// Images" scan-set size.
    pub images_needed: usize,
    /// Whether a category word was swapped for a rare synonym after
    /// generation ("dog" → "canis") — the lexical adversity behind the
    /// paper's Fig. 8a error analysis. The ground truth is unchanged; the
    /// system must survive the rare surface form.
    pub adversarial: bool,
}

/// The structured form a question was generated from (kept for debugging
/// and for the ground-truth re-evaluation tests).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuestionSpec {
    /// Surface text.
    pub text: String,
    /// Question type.
    pub qtype: QuestionType,
    /// Clause chain (clause 0 = answer clause).
    pub chain: Vec<ChainClause>,
    /// Chain links.
    pub links: Vec<ChainLink>,
    /// Answer side of clause 0.
    pub answer_side: Side,
}

/// How many questions of each type to generate (Table II's composition).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuestionCounts {
    /// Judgment questions (paper: 40).
    pub judgment: usize,
    /// Counting questions (paper: 16).
    pub counting: usize,
    /// Reasoning questions (paper: 44).
    pub reasoning: usize,
}

impl Default for QuestionCounts {
    fn default() -> Self {
        QuestionCounts {
            judgment: 40,
            counting: 16,
            reasoning: 44,
        }
    }
}

/// Predicates usable in "appear ..." main clauses (spatial).
const SPATIAL: &[&str] = &["near", "in front of", "behind", "under", "in", "on"];

/// Predicates with an irregular passive participle.
fn passive_form(pred: &str) -> Option<&'static str> {
    match pred {
        "carrying" => Some("carried"),
        "holding" => Some("held"),
        "wearing" => Some("worn"),
        "watching" => Some("watched"),
        _ => None,
    }
}

/// Finite do-support form ("does the dog CARRY the bird").
fn base_form(pred: &str) -> Option<&'static str> {
    match pred {
        "carrying" => Some("carry"),
        "holding" => Some("hold"),
        "wearing" => Some("wear"),
        "watching" => Some("watch"),
        "riding" => Some("ride"),
        "sitting on" => Some("sit on"),
        "standing on" => Some("stand on"),
        _ => None,
    }
}

/// Class noun of a category (None when the category *is* a class noun or
/// unknown).
fn class_of(category: &str) -> Option<&'static str> {
    CATEGORY_CLASSES
        .iter()
        .find(|(c, _)| *c == category)
        .map(|&(_, class)| class)
}

/// Naive plural (matches the tagger's morphology).
fn plural(noun: &str) -> String {
    match noun {
        "sheep" | "clothes" => return noun.to_owned(),
        "child" => return "children".to_owned(),
        "man" => return "men".to_owned(),
        "woman" => return "women".to_owned(),
        "person" => return "people".to_owned(),
        _ => {}
    }
    if noun.ends_with('s') || noun.ends_with('x') || noun.ends_with("ch") || noun.ends_with("sh") {
        format!("{noun}es")
    } else if noun.ends_with('y') && !noun.ends_with("ay") && !noun.ends_with("ey") && !noun.ends_with("oy") {
        format!("{}ies", &noun[..noun.len() - 1])
    } else {
        format!("{noun}s")
    }
}

/// Category-level triple statistics of the generated scenes.
struct TripleStats {
    /// `(sub category, pred, obj category)` → count, anonymous objects only.
    counts: HashMap<(String, String, String), usize>,
    /// Categories appearing as subjects.
    categories: HashSet<String>,
}

impl TripleStats {
    fn collect(images: &[SyntheticImage]) -> Self {
        let mut counts: HashMap<(String, String, String), usize> = HashMap::new();
        let mut categories = HashSet::new();
        for img in images {
            for rel in &img.relations {
                if rel.emergent {
                    continue; // questions are authored from intended scenes
                }
                let s = &img.objects[rel.sub];
                let o = &img.objects[rel.obj];
                if s.entity.is_some() || o.entity.is_some() {
                    continue;
                }
                *counts
                    .entry((s.category.clone(), rel.pred.clone(), o.category.clone()))
                    .or_insert(0) += 1;
                categories.insert(s.category.clone());
                categories.insert(o.category.clone());
            }
        }
        TripleStats { counts, categories }
    }

    /// Triples with count ≥ `min`, sorted descending by count (then key),
    /// for deterministic iteration.
    fn frequent(&self, min: usize) -> Vec<(&(String, String, String), usize)> {
        let mut v: Vec<_> = self
            .counts
            .iter()
            .filter(|(_, &c)| c >= min)
            .map(|(k, &c)| (k, c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        v
    }

    fn count(&self, s: &str, p: &str, o: &str) -> usize {
        self.counts
            .get(&(s.to_owned(), p.to_owned(), o.to_owned()))
            .copied()
            .unwrap_or(0)
    }
}

/// Generate the full question set.
pub fn generate_questions(
    images: &[SyntheticImage],
    kg: &Graph,
    seed: u64,
    counts: QuestionCounts,
) -> (Vec<QaPair>, Vec<QuestionSpec>) {
    let gt = GroundTruth::new(images, kg);
    let stats = TripleStats::collect(images);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut pairs = Vec::new();
    let mut specs = Vec::new();
    let mut seen_questions: HashSet<String> = HashSet::new();
    let push = |spec: QuestionSpec,
                    gt: &GroundTruth,
                    pairs: &mut Vec<QaPair>,
                    specs: &mut Vec<QuestionSpec>,
                    seen: &mut HashSet<String>|
     -> bool {
        if !seen.insert(spec.text.clone()) {
            return false;
        }
        let answer = gt.eval(&spec.chain, &spec.links, spec.qtype, spec.answer_side);
        let heads: Vec<&str> = spec
            .chain
            .iter()
            .flat_map(|c| [c.sub.as_str(), c.obj.as_str()])
            .filter(|h| !h.is_empty())
            .collect();
        pairs.push(QaPair {
            question: spec.text.clone(),
            qtype: spec.qtype,
            answer,
            clauses: spec.chain.len(),
            spo_keys: spec
                .chain
                .iter()
                .map(|c| format!("{}|{}|{}", c.sub, c.pred, c.obj))
                .collect(),
            images_needed: gt.images_involved(&heads),
            adversarial: false,
        });
        specs.push(spec);
        true
    };

    // ---------- Judgment: 26 two-clause + 14 three-clause ----------
    let two_clause_target = counts.judgment.saturating_mul(26) / 40;
    let mut made = 0usize;
    let freq = stats.frequent(3);
    let mut want_yes = true;
    'outer_j2: for (k1, _) in &freq {
        if made >= two_clause_target {
            break;
        }
        let (a, p1, b) = (&k1.0, &k1.1, &k1.2);
        if svqa_vision::scene::supertype(a) == "scenery" {
            continue; // "how many grasses…" — mass scenery is not a subject
        }
        // A second predicate for the main clause, realizable.
        for (k2, _) in &freq {
            if &k2.0 != a || k2 == k1 {
                continue;
            }
            let (p2, c) = (&k2.1, &k2.2);
            if !SPATIAL.contains(&p2.as_str()) && base_form(p2).is_none() {
                continue;
            }
            // For "no" questions, swap C for a category never in that
            // relation with A.
            let (obj_c, expected_yes) = if want_yes {
                (c.clone(), true)
            } else {
                let mut cats: Vec<&String> = stats.categories.iter().collect();
                cats.sort();
                cats.shuffle(&mut rng);
                match cats
                    .into_iter()
                    .find(|cc| *cc != c && stats.count(a, p2, cc) == 0 && stats.count(a, p1, cc) == 0)
                {
                    Some(cc) => (cc.clone(), false),
                    None => continue,
                }
            };
            let main_text = if SPATIAL.contains(&p2.as_str()) {
                format!("appear {p2} the {obj_c}")
            } else {
                format!("{} the {obj_c}", base_form(p2).expect("checked"))
            };
            let text = format!("Does the {a} that is {p1} the {b} {main_text}?");
            let spec = QuestionSpec {
                text,
                qtype: QuestionType::Judgment,
                chain: vec![
                    ChainClause { sub: a.clone(), pred: p2.clone(), obj: obj_c.clone(), most_frequent: false },
                    ChainClause { sub: a.clone(), pred: p1.clone(), obj: b.clone(), most_frequent: false },
                ],
                links: vec![ChainLink { provider: 1, consumer: 0, consumer_side: Side::Sub, provider_side: Side::Sub }],
                answer_side: Side::Sub,
            };
            let answer = gt.eval(&spec.chain, &spec.links, spec.qtype, spec.answer_side);
            if answer != GtAnswer::YesNo(expected_yes) {
                continue;
            }
            if push(spec, &gt, &mut pairs, &mut specs, &mut seen_questions) {
                made += 1;
                want_yes = !want_yes;
            }
            if made >= two_clause_target {
                break 'outer_j2;
            }
        }
    }
    // Three-clause judgments: add a relative clause on C.
    let three_clause_target = counts.judgment - made;
    let mut made3 = 0usize;
    'outer_j3: for (k1, _) in &freq {
        if made3 >= three_clause_target {
            break;
        }
        let (a, p1, b) = (&k1.0, &k1.1, &k1.2);
        if svqa_vision::scene::supertype(a) == "scenery" {
            continue; // "how many grasses…" — mass scenery is not a subject
        }
        for (k2, _) in &freq {
            if &k2.0 != a || k2 == k1 || !SPATIAL.contains(&k2.1.as_str()) {
                continue;
            }
            let (p2, c) = (&k2.1, &k2.2);
            for (k3, _) in &freq {
                if &k3.0 != c || (&k3.1, &k3.2) == (p2, a) {
                    continue;
                }
                let (p3, d) = (&k3.1, &k3.2);
                let text = format!(
                    "Does the {a} that is {p1} the {b} appear {p2} the {c} that is {p3} the {d}?"
                );
                let spec = QuestionSpec {
                    text,
                    qtype: QuestionType::Judgment,
                    chain: vec![
                        ChainClause { sub: a.clone(), pred: p2.clone(), obj: c.clone(), most_frequent: false },
                        ChainClause { sub: a.clone(), pred: p1.clone(), obj: b.clone(), most_frequent: false },
                        ChainClause { sub: c.clone(), pred: p3.clone(), obj: d.clone(), most_frequent: false },
                    ],
                    links: vec![
                        ChainLink { provider: 1, consumer: 0, consumer_side: Side::Sub, provider_side: Side::Sub },
                        ChainLink { provider: 2, consumer: 0, consumer_side: Side::Obj, provider_side: Side::Sub },
                    ],
                    answer_side: Side::Sub,
                };
                if push(spec, &gt, &mut pairs, &mut specs, &mut seen_questions) {
                    made3 += 1;
                }
                if made3 >= three_clause_target {
                    break 'outer_j3;
                }
            }
        }
    }

    // ---------- Counting: 13 two-clause + 3 three-clause ----------
    // Each *answer triple* (the clause actually counted) is used at most
    // once, so one perception weakness cannot repeat across the whole
    // counting score.
    let c2_target = counts.counting.saturating_mul(13) / 16;
    let mut cmade = 0usize;
    let mut counted_triples: HashSet<(String, String, String)> = HashSet::new();
    // Escalating count cap: prefer small, exactly-countable answers; widen
    // only if the corpus cannot fill the quota with them.
    'caps_c2: for count_cap in [5usize, 9, 15] {
    'outer_c2: for (k1, n1) in &freq {
        if cmade >= c2_target {
            break 'caps_c2;
        }
        let (a, p1, b) = (&k1.0, &k1.1, &k1.2);
        if svqa_vision::scene::supertype(a) == "scenery" {
            continue; // "how many grasses…" — mass scenery is not a subject
        }
        if *n1 < 2 {
            continue;
        }
        for (k2, _) in &freq {
            if &k2.0 != a || k2 == k1 || !SPATIAL.contains(&k2.1.as_str()) {
                continue;
            }
            let (p2, c) = (&k2.1, &k2.2);
            if counted_triples.contains(&(a.clone(), p2.clone(), c.clone())) {
                continue;
            }
            let text = format!(
                "How many {} that are {p1} the {b} are {p2} the {c}?",
                plural(a)
            );
            let spec = QuestionSpec {
                text,
                qtype: QuestionType::Counting,
                chain: vec![
                    ChainClause { sub: a.clone(), pred: p2.clone(), obj: c.clone(), most_frequent: false },
                    ChainClause { sub: a.clone(), pred: p1.clone(), obj: b.clone(), most_frequent: false },
                ],
                links: vec![ChainLink { provider: 1, consumer: 0, consumer_side: Side::Sub, provider_side: Side::Sub }],
                answer_side: Side::Sub,
            };
            let answer = gt.eval(&spec.chain, &spec.links, spec.qtype, spec.answer_side);
            if !matches!(answer, GtAnswer::Count(n) if n >= 1 && n <= count_cap) {
                continue;
            }
            if push(spec, &gt, &mut pairs, &mut specs, &mut seen_questions) {
                cmade += 1;
                counted_triples.insert((a.clone(), p2.clone(), c.clone()));
            }
            if cmade >= c2_target {
                break 'outer_c2;
            }
        }
    }
    }
    // Three-clause counting.
    let c3_target = counts.counting - cmade;
    let mut c3made = 0usize;
    'caps_c3: for count_cap in [5usize, 9, 15] {
    'outer_c3: for (k1, _) in &freq {
        if c3made >= c3_target {
            break 'caps_c3;
        }
        let (a, p1, b) = (&k1.0, &k1.1, &k1.2);
        if svqa_vision::scene::supertype(a) == "scenery" {
            continue; // "how many grasses…" — mass scenery is not a subject
        }
        for (k2, _) in &freq {
            if &k2.0 != a || k2 == k1 || !SPATIAL.contains(&k2.1.as_str()) {
                continue;
            }
            let (p2, c) = (&k2.1, &k2.2);
            if counted_triples.contains(&(a.clone(), p2.clone(), c.clone())) {
                continue;
            }
            for (k3, _) in &freq {
                if &k3.0 != c {
                    continue;
                }
                let (p3, d) = (&k3.1, &k3.2);
                let text = format!(
                    "How many {} that are {p1} the {b} are {p2} the {c} that is {p3} the {d}?",
                    plural(a)
                );
                let spec = QuestionSpec {
                    text,
                    qtype: QuestionType::Counting,
                    chain: vec![
                        ChainClause { sub: a.clone(), pred: p2.clone(), obj: c.clone(), most_frequent: false },
                        ChainClause { sub: a.clone(), pred: p1.clone(), obj: b.clone(), most_frequent: false },
                        ChainClause { sub: c.clone(), pred: p3.clone(), obj: d.clone(), most_frequent: false },
                    ],
                    links: vec![
                        ChainLink { provider: 1, consumer: 0, consumer_side: Side::Sub, provider_side: Side::Sub },
                        ChainLink { provider: 2, consumer: 0, consumer_side: Side::Obj, provider_side: Side::Sub },
                    ],
                    answer_side: Side::Sub,
                };
                let answer = gt.eval(&spec.chain, &spec.links, spec.qtype, spec.answer_side);
                if !matches!(answer, GtAnswer::Count(n) if n >= 1 && n <= count_cap) {
                    continue;
                }
                if push(spec, &gt, &mut pairs, &mut specs, &mut seen_questions) {
                    c3made += 1;
                    counted_triples.insert((a.clone(), p2.clone(), c.clone()));
                }
                if c3made >= c3_target {
                    break 'outer_c3;
                }
            }
        }
    }
    }

    // ---------- Reasoning: 42 two-clause + 2 character questions ----------
    // Character questions first (the paper's flagship Example 1 pattern).
    let mut rmade = 0usize;
    let character_target = 2usize.min(counts.reasoning);
    for &(partner, relation, owner) in CHARACTER_RELATIONS {
        if rmade >= character_target {
            break;
        }
        if !matches!(relation, "girlfriend of" | "boyfriend of") {
            continue;
        }
        let _ = partner;
        let rel_noun = relation.trim_end_matches(" of");
        let text = format!(
            "What kind of clothes are worn by the wizard who is most frequently hanging out with {owner}'s {rel_noun}?"
        );
        let spec = QuestionSpec {
            text,
            qtype: QuestionType::Reasoning,
            chain: vec![
                ChainClause { sub: "wizard".into(), pred: "wearing".into(), obj: "clothes".into(), most_frequent: false },
                ChainClause { sub: "wizard".into(), pred: "near".into(), obj: String::new(), most_frequent: true },
                ChainClause { sub: String::new(), pred: relation.into(), obj: owner.into(), most_frequent: false },
            ],
            links: vec![
                ChainLink { provider: 2, consumer: 1, consumer_side: Side::Obj, provider_side: Side::Sub },
                ChainLink { provider: 1, consumer: 0, consumer_side: Side::Sub, provider_side: Side::Sub },
            ],
            answer_side: Side::Obj,
        };
        if !gt.reasoning_is_stable(&spec.chain, &spec.links, spec.answer_side) {
            continue;
        }
        if push(spec, &gt, &mut pairs, &mut specs, &mut seen_questions) {
            rmade += 1;
        }
    }
    // Two-clause reasoning: passive object questions and subject questions.
    'outer_r: for (k1, _) in &freq {
        if rmade >= counts.reasoning {
            break;
        }
        let (a, p1, o) = (&k1.0, &k1.1, &k1.2);
        if svqa_vision::scene::supertype(a) == "scenery" {
            continue;
        }
        // Object-answer form (needs a passive-formable predicate and a
        // class for the object).
        if let (Some(pass), Some(o_class)) = (passive_form(p1), class_of(o)) {
            for (k2, _) in &freq {
                if &k2.0 != a || k2 == k1 {
                    continue;
                }
                let (p2, b) = (&k2.1, &k2.2);
                // Generalize the subject to its class half the time for
                // variety ("the pets" vs "the dog").
                let (sub_text, sub_head) = if rmade.is_multiple_of(2) {
                    match class_of(a) {
                        Some(cl) => (format!("the {}", plural(cl)), cl.to_owned()),
                        None => (format!("the {a}"), a.clone()),
                    }
                } else {
                    (format!("the {a}"), a.clone())
                };
                let text = format!(
                    "What kind of {} is {pass} by {sub_text} that is {p2} the {b}?",
                    plural(o_class)
                );
                let spec = QuestionSpec {
                    text,
                    qtype: QuestionType::Reasoning,
                    chain: vec![
                        ChainClause { sub: sub_head.clone(), pred: p1.clone(), obj: o_class.to_owned(), most_frequent: false },
                        ChainClause { sub: sub_head.clone(), pred: p2.clone(), obj: b.clone(), most_frequent: false },
                    ],
                    links: vec![ChainLink { provider: 1, consumer: 0, consumer_side: Side::Sub, provider_side: Side::Sub }],
                    answer_side: Side::Obj,
                };
                if !gt.reasoning_is_stable(&spec.chain, &spec.links, spec.answer_side) {
                    continue;
                }
                if push(spec, &gt, &mut pairs, &mut specs, &mut seen_questions) {
                    rmade += 1;
                }
                if rmade >= counts.reasoning {
                    break 'outer_r;
                }
            }
        }
        // Subject-answer form: "What kind of <class(A)>s are <p1> the <B>
        // that is <p2> the <C>?"
        if let Some(a_class) = class_of(a) {
            if SPATIAL.contains(&p1.as_str()) || p1 == "watching" || p1 == "sitting on" {
                for (k2, _) in &freq {
                    if &k2.0 != o || k2 == k1 {
                        continue;
                    }
                    let (p2, c) = (&k2.1, &k2.2);
                    let text = format!(
                        "What kind of {} are {p1} the {o} that is {p2} the {c}?",
                        plural(a_class)
                    );
                    let spec = QuestionSpec {
                        text,
                        qtype: QuestionType::Reasoning,
                        chain: vec![
                            ChainClause { sub: a_class.to_owned(), pred: p1.clone(), obj: o.clone(), most_frequent: false },
                            ChainClause { sub: o.clone(), pred: p2.clone(), obj: c.clone(), most_frequent: false },
                        ],
                        links: vec![ChainLink { provider: 1, consumer: 0, consumer_side: Side::Obj, provider_side: Side::Sub }],
                        answer_side: Side::Sub,
                    };
                    if !gt.reasoning_is_stable(&spec.chain, &spec.links, spec.answer_side) {
                        continue;
                    }
                    if push(spec, &gt, &mut pairs, &mut specs, &mut seen_questions) {
                        rmade += 1;
                    }
                    if rmade >= counts.reasoning {
                        break 'outer_r;
                    }
                }
            }
        }
    }

    apply_lexical_adversity(&mut pairs, &mut specs);
    (pairs, specs)
}

/// Rare-synonym swaps applied to every 7th question (§VII error analysis:
/// the paper's handwritten questions contain words like "canis" that the
/// POS tagger treats as foreign). Most synonyms survive through the
/// embedding fallback; Latinate ones reproduce the Fig. 8a failure.
const SYNONYM_SWAPS: &[(&str, &str)] = &[
    ("dog", "canis"),
    ("cat", "feline"),
    ("car", "automobile"),
    ("couch", "sofa"),
    ("motorcycle", "motorbike"),
    ("airplane", "plane"),
    ("tv", "television"),
    ("bicycle", "bike"),
    ("frisbee", "disc"),
    ("boat", "ship"),
];

fn apply_lexical_adversity(pairs: &mut [QaPair], specs: &mut [QuestionSpec]) {
    for (i, (pair, spec)) in pairs.iter_mut().zip(specs.iter_mut()).enumerate() {
        if i % 7 != 3 {
            continue;
        }
        for &(orig, syn) in SYNONYM_SWAPS {
            let needle = format!(" {orig} ");
            if let Some(pos) = pair.question.find(&needle) {
                pair.question
                    .replace_range(pos + 1..pos + 1 + orig.len(), syn);
                spec.text = pair.question.clone();
                pair.adversarial = true;
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kg::build_knowledge_graph;
    use crate::scenes::generate_images;

    fn small_dataset() -> (Vec<SyntheticImage>, Graph) {
        (generate_images(1200, 2024), build_knowledge_graph())
    }

    #[test]
    fn generates_the_requested_composition() {
        let (images, kg) = small_dataset();
        let (pairs, specs) = generate_questions(&images, &kg, 7, QuestionCounts::default());
        assert_eq!(pairs.len(), 100, "generated {}", pairs.len());
        assert_eq!(specs.len(), 100);
        let j = pairs.iter().filter(|p| p.qtype == QuestionType::Judgment).count();
        let c = pairs.iter().filter(|p| p.qtype == QuestionType::Counting).count();
        let r = pairs.iter().filter(|p| p.qtype == QuestionType::Reasoning).count();
        assert_eq!((j, c, r), (40, 16, 44));
    }

    #[test]
    fn judgment_answers_are_mixed() {
        let (images, kg) = small_dataset();
        let (pairs, _) = generate_questions(&images, &kg, 7, QuestionCounts::default());
        let yes = pairs
            .iter()
            .filter(|p| p.answer == GtAnswer::YesNo(true))
            .count();
        let no = pairs
            .iter()
            .filter(|p| p.answer == GtAnswer::YesNo(false))
            .count();
        assert!(yes >= 5, "yes = {yes}");
        assert!(no >= 5, "no = {no}");
    }

    #[test]
    fn every_question_parses_into_the_expected_clause_count() {
        let (images, kg) = small_dataset();
        let (pairs, _) = generate_questions(&images, &kg, 7, QuestionCounts::default());
        let gen = svqa_qparser::QueryGraphGenerator::new();
        // Adversarial questions (rare-synonym swaps) are *allowed* to trip
        // the parser — that is the Fig. 8a failure mode they exist for.
        for p in pairs.iter().filter(|p| !p.adversarial) {
            let gq = gen
                .generate(&p.question)
                .unwrap_or_else(|e| panic!("{:?} failed: {e}", p.question));
            assert_eq!(
                gq.question_type, p.qtype,
                "type mismatch for {:?}",
                p.question
            );
            assert_eq!(
                gq.len(),
                p.clauses,
                "clause mismatch for {:?}: {:#?}",
                p.question,
                gq.vertices
            );
        }
    }

    #[test]
    fn questions_are_deterministic_per_seed() {
        let (images, kg) = small_dataset();
        let (a, _) = generate_questions(&images, &kg, 7, QuestionCounts::default());
        let (b, _) = generate_questions(&images, &kg, 7, QuestionCounts::default());
        assert_eq!(a, b);
    }

    #[test]
    fn counting_answers_are_positive() {
        let (images, kg) = small_dataset();
        let (pairs, _) = generate_questions(&images, &kg, 7, QuestionCounts::default());
        for p in pairs.iter().filter(|p| p.qtype == QuestionType::Counting) {
            assert!(matches!(p.answer, GtAnswer::Count(n) if n >= 1));
        }
    }

    #[test]
    fn reasoning_answers_are_non_empty() {
        let (images, kg) = small_dataset();
        let (pairs, _) = generate_questions(&images, &kg, 7, QuestionCounts::default());
        for p in pairs.iter().filter(|p| p.qtype == QuestionType::Reasoning) {
            assert!(matches!(&p.answer, GtAnswer::Entity(e) if !e.is_empty()));
        }
    }

    #[test]
    fn character_questions_present() {
        let (images, kg) = small_dataset();
        let (pairs, _) = generate_questions(&images, &kg, 7, QuestionCounts::default());
        let hp = pairs
            .iter()
            .filter(|p| p.question.contains("most frequently hanging out"))
            .count();
        assert!(hp >= 1, "no character questions generated");
    }

    #[test]
    fn clause_totals_match_table2() {
        let (images, kg) = small_dataset();
        let (pairs, _) = generate_questions(&images, &kg, 7, QuestionCounts::default());
        let total: usize = pairs.iter().map(|p| p.clauses).sum();
        // Table II: 219 clauses over 100 questions (avg 2.2), from a target
        // mix of 26×2+14×3 + 13×2+3×3 + 42×2+2×3 = 94+35+90 = 219. A
        // three-clause slot degrades to two clauses when the sampled scenes
        // lack a qualifying relation chain, and scene content follows the
        // RNG stream, so we assert the mix lands near the target rather
        // than on an exact stream-dependent constant.
        assert!(
            (213..=225).contains(&total),
            "clause total {total} strays from the Table II target of 219"
        );
    }

    #[test]
    fn images_needed_is_populated() {
        let (images, kg) = small_dataset();
        let (pairs, _) = generate_questions(&images, &kg, 7, QuestionCounts::default());
        assert!(pairs.iter().all(|p| p.images_needed > 0));
    }
}
