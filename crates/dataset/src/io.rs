//! Dataset persistence.
//!
//! MVQA worlds save to a directory of JSON files (images, questions,
//! specs, config) plus the knowledge graph — the artifact a downstream
//! user would actually download instead of regenerating. Loading
//! re-validates the knowledge graph and checks the question/spec files
//! agree.

use crate::kg::build_knowledge_graph;
use crate::mvqa::{Mvqa, MvqaConfig};
use crate::questions::{QaPair, QuestionSpec};
use std::fmt;
use std::path::Path;
use svqa_vision::scene::SyntheticImage;

/// Errors from dataset persistence.
#[derive(Debug)]
pub enum DatasetIoError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// Malformed JSON.
    Json(serde_json::Error),
    /// The files do not form a consistent dataset.
    Inconsistent(String),
}

impl fmt::Display for DatasetIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetIoError::Io(e) => write!(f, "io: {e}"),
            DatasetIoError::Json(e) => write!(f, "json: {e}"),
            DatasetIoError::Inconsistent(m) => write!(f, "inconsistent dataset: {m}"),
        }
    }
}

impl std::error::Error for DatasetIoError {}

impl From<std::io::Error> for DatasetIoError {
    fn from(e: std::io::Error) -> Self {
        DatasetIoError::Io(e)
    }
}

impl From<serde_json::Error> for DatasetIoError {
    fn from(e: serde_json::Error) -> Self {
        DatasetIoError::Json(e)
    }
}

/// Save a dataset into `dir` (created if missing).
pub fn save(mvqa: &Mvqa, dir: &Path) -> Result<(), DatasetIoError> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(
        dir.join("images.json"),
        serde_json::to_string(&mvqa.images)?,
    )?;
    std::fs::write(
        dir.join("questions.json"),
        serde_json::to_string_pretty(&mvqa.questions)?,
    )?;
    std::fs::write(
        dir.join("specs.json"),
        serde_json::to_string(&mvqa.specs)?,
    )?;
    std::fs::write(
        dir.join("config.json"),
        serde_json::to_string_pretty(&mvqa.config)?,
    )?;
    Ok(())
}

/// Load a dataset from `dir`. The knowledge graph is rebuilt (it is code,
/// not data) and the files are cross-checked.
pub fn load(dir: &Path) -> Result<Mvqa, DatasetIoError> {
    let images: Vec<SyntheticImage> =
        serde_json::from_str(&std::fs::read_to_string(dir.join("images.json"))?)?;
    let questions: Vec<QaPair> =
        serde_json::from_str(&std::fs::read_to_string(dir.join("questions.json"))?)?;
    let specs: Vec<QuestionSpec> =
        serde_json::from_str(&std::fs::read_to_string(dir.join("specs.json"))?)?;
    let config: MvqaConfig =
        serde_json::from_str(&std::fs::read_to_string(dir.join("config.json"))?)?;
    if questions.len() != specs.len() {
        return Err(DatasetIoError::Inconsistent(format!(
            "{} questions but {} specs",
            questions.len(),
            specs.len()
        )));
    }
    if images.len() != config.image_count {
        return Err(DatasetIoError::Inconsistent(format!(
            "{} images on disk but config says {}",
            images.len(),
            config.image_count
        )));
    }
    Ok(Mvqa {
        images,
        kg: build_knowledge_graph(),
        questions,
        specs,
        config,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("svqa-dataset-io-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip() {
        let dir = tmpdir("roundtrip");
        let mvqa = Mvqa::generate_small(120, 3);
        save(&mvqa, &dir).unwrap();
        let back = load(&dir).unwrap();
        assert_eq!(back.images.len(), mvqa.images.len());
        assert_eq!(back.questions, mvqa.questions);
        assert_eq!(back.specs, mvqa.specs);
        assert_eq!(back.config, mvqa.config);
        // The reloaded world answers ground truth identically.
        let gt = crate::GroundTruth::new(&back.images, &back.kg);
        for (q, spec) in back.questions.iter().zip(&back.specs) {
            assert_eq!(
                gt.eval(&spec.chain, &spec.links, spec.qtype, spec.answer_side),
                q.answer
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_is_io_error() {
        let err = load(Path::new("/definitely/not/here")).unwrap_err();
        assert!(matches!(err, DatasetIoError::Io(_)));
    }

    #[test]
    fn inconsistent_files_detected() {
        let dir = tmpdir("inconsistent");
        let mvqa = Mvqa::generate_small(60, 4);
        save(&mvqa, &dir).unwrap();
        // Truncate the specs file to a single entry.
        let specs: Vec<QuestionSpec> =
            serde_json::from_str(&std::fs::read_to_string(dir.join("specs.json")).unwrap())
                .unwrap();
        std::fs::write(
            dir.join("specs.json"),
            serde_json::to_string(&specs[..1].to_vec()).unwrap(),
        )
        .unwrap();
        let err = load(&dir).unwrap_err();
        assert!(matches!(err, DatasetIoError::Inconsistent(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
