//! Optimized multi-query scheduling (§V-B) and parallel execution.
//!
//! Before executing N query graphs, each distinct SPOC vertex key is
//! counted across the batch; every query graph gets a score = sum of its
//! vertices' frequency ratios, and the batch executes in descending score
//! order so queries with highly shared vertices run first and seed the
//! cache for the rest (Fig. 6). "We parallelize our algorithm to further
//! improve its performance" — with `threads > 1` a worker pool drains the
//! ordered queue, sharing one key-centric cache behind a mutex.

use crate::answer::Answer;
use crate::cache::{CacheGranularity, CacheStats, EvictionPolicy, ShardedCache};
use crate::executor::{ExecError, ExecutorConfig, QueryGraphExecutor};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use svqa_graph::Graph;
use svqa_qparser::QueryGraph;

/// Batch execution configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchedulerConfig {
    /// Cache granularity (No/Scope/Path/Both — Fig. 10b).
    pub granularity: CacheGranularity,
    /// Eviction policy (LFU/LRU — Fig. 11).
    pub policy: EvictionPolicy,
    /// Cache pool size in items (Fig. 11).
    pub pool_size: usize,
    /// Cache shards: the pool is split across this many key-hashed shards,
    /// each behind its own lock, so parallel workers don't serialize on a
    /// single cache mutex.
    pub shards: usize,
    /// Worker threads; 1 = sequential.
    pub threads: usize,
    /// Whether to apply the frequency-ratio ordering (ablation switch; off
    /// = FIFO order).
    pub frequency_sort: bool,
    /// Executor tuning.
    pub executor: ExecutorConfig,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            granularity: CacheGranularity::Both,
            policy: EvictionPolicy::Lfu,
            pool_size: 100,
            shards: 8,
            threads: 1,
            frequency_sort: true,
            executor: ExecutorConfig::default(),
        }
    }
}

/// Results of a batch run.
#[derive(Debug)]
pub struct BatchReport {
    /// Per-query answers, in the *original* submission order.
    pub answers: Vec<Result<Answer, ExecError>>,
    /// Per-query execution time, in the original order.
    pub per_query: Vec<Duration>,
    /// Wall-clock time of the whole batch.
    pub total: Duration,
    /// Cache hit/miss counters accumulated over the batch.
    pub cache_stats: CacheStats,
    /// Execution order used (indices into the original batch).
    pub order: Vec<usize>,
    /// Frequency-ratio score per query, in the original order — the
    /// scheduler's reuse rationale, regardless of whether frequency
    /// ordering was actually applied.
    pub scores: Vec<f64>,
}

/// The multi-query scheduler.
#[derive(Debug, Clone, Default)]
pub struct QueryScheduler {
    config: SchedulerConfig,
}

impl QueryScheduler {
    /// Build a scheduler.
    pub fn new(config: SchedulerConfig) -> Self {
        QueryScheduler { config }
    }

    /// The configuration.
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// The frequency-ratio ordering of §V-B: vertex keys are counted across
    /// the batch; each query's score is the sum of its vertices' frequency
    /// ratios; descending score (stable on ties).
    pub fn order(queries: &[QueryGraph]) -> Vec<usize> {
        Self::order_with_scores(queries).0
    }

    /// [`order`](Self::order) plus the per-query frequency-ratio scores in
    /// the *original* submission order — the reuse rationale surfaced by
    /// `EXPLAIN ANALYZE` and `BatchReport`.
    pub fn order_with_scores(queries: &[QueryGraph]) -> (Vec<usize>, Vec<f64>) {
        Self::order_with_scores_hinted(queries, None)
    }

    /// [`order_with_scores`](Self::order_with_scores) with optional static
    /// cost hints (per query, original order — e.g. `qlint`'s cardinality
    /// estimates). Frequency ratio stays the primary key; among queries
    /// with equal reuse potential, the cheaper estimated plan runs first so
    /// it seeds the cache sooner, and the hint breaks ties *before* the
    /// submission index does.
    pub fn order_with_scores_hinted(
        queries: &[QueryGraph],
        cost_hints: Option<&[f64]>,
    ) -> (Vec<usize>, Vec<f64>) {
        let mut freq: HashMap<String, usize> = HashMap::new();
        let mut total = 0usize;
        for q in queries {
            for v in &q.vertices {
                *freq.entry(vertex_key(v)).or_insert(0) += 1;
                total += 1;
            }
        }
        let score = |q: &QueryGraph| -> f64 {
            if total == 0 {
                return 0.0;
            }
            q.vertices
                .iter()
                .map(|v| freq[&vertex_key(v)] as f64 / total as f64)
                .sum()
        };
        let mut idx: Vec<usize> = (0..queries.len()).collect();
        let scores: Vec<f64> = queries.iter().map(score).collect();
        let cost = |i: usize| -> f64 {
            cost_hints
                .and_then(|h| h.get(i))
                .copied()
                .unwrap_or(0.0)
        };
        // `total_cmp`, not `partial_cmp().expect()`: a NaN score must not
        // panic the whole batch (it sorts last), and the index tie-break
        // keeps the order stable.
        idx.sort_by(|&a, &b| {
            scores[b]
                .total_cmp(&scores[a])
                .then(cost(a).total_cmp(&cost(b)))
                .then(a.cmp(&b))
        });
        (idx, scores)
    }

    /// Build the sharded cache this scheduler's configuration describes —
    /// what [`run`](Self::run) uses per batch, and what a long-lived caller
    /// (the query service) constructs once and feeds to
    /// [`run_with_cache`](Self::run_with_cache) forever.
    pub fn build_cache(&self) -> ShardedCache {
        ShardedCache::new(
            self.config.granularity,
            self.config.policy,
            self.config.pool_size,
            self.config.shards,
        )
    }

    /// Execute a batch of query graphs over the merged graph with a fresh
    /// per-batch cache.
    pub fn run(&self, graph: &Graph, queries: &[QueryGraph]) -> BatchReport {
        self.run_with_cache(graph, queries, &self.build_cache())
    }

    /// Execute a batch against a caller-owned [`ShardedCache`], so cache
    /// state persists across batches (and across requests when the cache
    /// belongs to the serving layer). The report's `cache_stats` are the
    /// *delta* this batch produced, not the cache's lifetime counters.
    pub fn run_with_cache(
        &self,
        graph: &Graph,
        queries: &[QueryGraph],
        cache: &ShardedCache,
    ) -> BatchReport {
        self.run_with_cache_hinted(graph, queries, cache, None)
    }

    /// [`run_with_cache`](Self::run_with_cache) with optional per-query
    /// cost hints forwarded to the frequency ordering (see
    /// [`order_with_scores_hinted`](Self::order_with_scores_hinted)).
    pub fn run_with_cache_hinted(
        &self,
        graph: &Graph,
        queries: &[QueryGraph],
        cache: &ShardedCache,
        cost_hints: Option<&[f64]>,
    ) -> BatchReport {
        let (order, scores) = {
            let _span = svqa_telemetry::Span::enter(svqa_telemetry::stage::SCHEDULE);
            let (sorted, scores) = Self::order_with_scores_hinted(queries, cost_hints);
            if self.config.frequency_sort {
                (sorted, scores)
            } else {
                ((0..queries.len()).collect(), scores)
            }
        };
        let stats_before = cache.stats();
        let executor = QueryGraphExecutor::with_config(graph, self.config.executor);

        let mut answers: Vec<Option<Result<Answer, ExecError>>> =
            (0..queries.len()).map(|_| None).collect();
        let mut per_query = vec![Duration::ZERO; queries.len()];
        let start = Instant::now();

        if self.config.threads <= 1 {
            for &qi in &order {
                let t0 = Instant::now();
                let result = executor
                    .execute_cached(&queries[qi], Some(cache))
                    .map(|(a, _)| a);
                per_query[qi] = t0.elapsed();
                answers[qi] = Some(result);
            }
        } else {
            // Work-stealing over the ordered queue; results collected per
            // worker and merged afterwards (answers are Send, the graph is
            // shared immutably, the cache sharded behind per-shard locks).
            let next = AtomicUsize::new(0);
            type WorkerResult = (usize, Result<Answer, ExecError>, Duration);
            let results: Mutex<Vec<WorkerResult>> =
                Mutex::new(Vec::with_capacity(queries.len()));
            std::thread::scope(|scope| {
                for _ in 0..self.config.threads {
                    scope.spawn(|| {
                        loop {
                            let slot = next.fetch_add(1, Ordering::Relaxed);
                            if slot >= order.len() {
                                break;
                            }
                            let qi = order[slot];
                            let t0 = Instant::now();
                            let result = executor
                                .execute_cached(&queries[qi], Some(cache))
                                .map(|(a, _)| a);
                            results.lock().push((qi, result, t0.elapsed()));
                        }
                    });
                }
            });
            for (qi, result, dt) in results.into_inner() {
                answers[qi] = Some(result);
                per_query[qi] = dt;
            }
        }

        let cache_stats = cache.stats().delta_since(&stats_before);
        BatchReport {
            answers: answers
                .into_iter()
                .map(|a| a.expect("every query executed"))
                .collect(),
            per_query,
            total: start.elapsed(),
            cache_stats,
            order,
            scores,
        }
    }
}

/// A vertex's identity for frequency counting: its SPOC key.
fn vertex_key(v: &svqa_qparser::Spoc) -> String {
    format!(
        "{}|{}|{}",
        v.subject.phrase, v.predicate, v.object.phrase
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use svqa_graph::GraphBuilder;
    use svqa_qparser::QueryGraphGenerator;

    fn graph() -> Graph {
        let mut b = GraphBuilder::new();
        b.triple("dog", "is a", "pet").triple("cat", "is a", "pet");
        let mut g = b.build();
        let d = g.add_vertex("dog");
        let c = g.add_vertex("car");
        g.add_edge(d, c, "in").unwrap();
        let kg_dog = g.vertices_with_label("dog")[0];
        g.add_edge(d, kg_dog, "same as").unwrap();
        g.add_edge(kg_dog, d, "same as").unwrap();
        g
    }

    fn queries(texts: &[&str]) -> Vec<QueryGraph> {
        let gen = QueryGraphGenerator::new();
        texts.iter().map(|q| gen.generate(q).unwrap()).collect()
    }

    #[test]
    fn order_puts_most_shared_first() {
        let qs = queries(&[
            "Does the cat appear in the car?", // unique vertices
            "Does the dog appear in the car?", // shared with q2 below
            "Does the dog appear in the car?",
        ]);
        let order = QueryScheduler::order(&qs);
        // The duplicated dog queries score higher than the cat query.
        assert_eq!(*order.last().unwrap(), 0, "order = {order:?}");
    }

    #[test]
    fn run_returns_answers_in_original_order() {
        let g = graph();
        let qs = queries(&[
            "Does the cat appear in the car?",
            "Does the dog appear in the car?",
        ]);
        let report = QueryScheduler::new(SchedulerConfig::default()).run(&g, &qs);
        assert_eq!(report.answers.len(), 2);
        assert_eq!(report.answers[0], Ok(Answer::Judgment(false)));
        assert_eq!(report.answers[1], Ok(Answer::Judgment(true)));
        assert!(report.total >= report.per_query.iter().copied().max().unwrap_or_default() / 2);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = graph();
        let qs = queries(&[
            "Does the dog appear in the car?",
            "Does the cat appear in the car?",
            "How many dogs are in the car?",
            "Does the dog appear in the car?",
        ]);
        let seq = QueryScheduler::new(SchedulerConfig::default()).run(&g, &qs);
        let par = QueryScheduler::new(SchedulerConfig {
            threads: 4,
            ..SchedulerConfig::default()
        })
        .run(&g, &qs);
        assert_eq!(seq.answers, par.answers);
    }

    #[test]
    fn duplicate_queries_hit_the_cache() {
        let g = graph();
        let qs = queries(&[
            "Does the dog appear in the car?",
            "Does the dog appear in the car?",
            "Does the dog appear in the car?",
        ]);
        let report = QueryScheduler::new(SchedulerConfig::default()).run(&g, &qs);
        // Path hits short-circuit the whole query stage (scope lookups are
        // skipped entirely on a hit), so repeats register as path hits.
        let ph = report.cache_stats.path_hits;
        assert!(ph >= 2, "path hits = {ph}");
    }

    #[test]
    fn fifo_mode_keeps_submission_order() {
        let qs = queries(&[
            "Does the cat appear in the car?",
            "Does the dog appear in the car?",
        ]);
        let report = QueryScheduler::new(SchedulerConfig {
            frequency_sort: false,
            ..SchedulerConfig::default()
        })
        .run(&graph(), &qs);
        assert_eq!(report.order, vec![0, 1]);
    }

    #[test]
    fn scores_explain_the_order() {
        let qs = queries(&[
            "Does the cat appear in the car?",
            "Does the dog appear in the car?",
            "Does the dog appear in the car?",
        ]);
        let (order, scores) = QueryScheduler::order_with_scores(&qs);
        assert_eq!(scores.len(), 3);
        // Shared dog queries score higher than the unique cat query.
        assert!(scores[1] > scores[0] && (scores[1] - scores[2]).abs() < 1e-12);
        // The order is exactly descending score (stable on ties).
        for w in order.windows(2) {
            assert!(scores[w[0]] >= scores[w[1]], "order={order:?} scores={scores:?}");
        }
        // The report carries them through in original order.
        let report = QueryScheduler::new(SchedulerConfig::default()).run(&graph(), &qs);
        assert_eq!(report.scores, scores);
    }

    /// A caller-owned cache persists across batches: the second identical
    /// batch is served from cache state seeded by the first, and each
    /// report carries only its own delta.
    #[test]
    fn shared_cache_persists_across_batches() {
        let g = graph();
        let qs = queries(&["Does the dog appear in the car?"]);
        let scheduler = QueryScheduler::new(SchedulerConfig::default());
        let cache = scheduler.build_cache();
        let first = scheduler.run_with_cache(&g, &qs, &cache);
        assert_eq!(first.cache_stats.path_hits, 0);
        assert!(first.cache_stats.path_misses > 0);
        let second = scheduler.run_with_cache(&g, &qs, &cache);
        assert!(
            second.cache_stats.path_hits > 0,
            "second batch must hit the persistent cache: {:?}",
            second.cache_stats
        );
        assert_eq!(second.cache_stats.path_misses, 0);
        assert_eq!(first.answers, second.answers);
    }

    /// Regression for the score sort: exact ties must keep submission
    /// order (stable index tie-break), run after run.
    #[test]
    fn equal_scores_keep_submission_order() {
        let qs = queries(&[
            "Does the dog appear in the car?",
            "Does the dog appear in the car?",
            "Does the dog appear in the car?",
        ]);
        for _ in 0..4 {
            let (order, scores) = QueryScheduler::order_with_scores(&qs);
            assert_eq!(order, vec![0, 1, 2]);
            assert!(scores.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-12));
        }
    }

    /// Among equal frequency scores, the cost hint decides: cheaper plans
    /// run first. Without hints the submission index still breaks ties.
    #[test]
    fn cost_hints_break_frequency_ties() {
        let qs = queries(&[
            "Does the dog appear in the car?",
            "Does the dog appear in the car?",
            "Does the dog appear in the car?",
        ]);
        let (order, _) =
            QueryScheduler::order_with_scores_hinted(&qs, Some(&[3.0, 1.0, 2.0]));
        assert_eq!(order, vec![1, 2, 0]);
        // Hints must never override the frequency ordering itself.
        let mixed = queries(&[
            "Does the cat appear in the car?",
            "Does the dog appear in the car?",
            "Does the dog appear in the car?",
        ]);
        let (order, scores) =
            QueryScheduler::order_with_scores_hinted(&mixed, Some(&[0.0, 9.0, 9.0]));
        assert_eq!(*order.last().unwrap(), 0, "order={order:?} scores={scores:?}");
    }

    #[test]
    fn empty_batch() {
        let report = QueryScheduler::new(SchedulerConfig::default()).run(&graph(), &[]);
        assert!(report.answers.is_empty());
        assert!(report.order.is_empty());
    }
}
