//! `matchVertex` and `getRelationpairs` (Algorithm 3, lines 21–26).
//!
//! `matchVertex` "uses the Levenshtein Distance to find `v ∈ V_mg` whose
//! distance is less than the empirical threshold"; for non-simple nouns it
//! falls back to the main noun and, failing that, cosine similarity of
//! embeddings. Matched vertices are then *semantically expanded*: following
//! the aggregator's `same as` link edges (scene instance ↔ knowledge
//! entity) and incoming taxonomy (`is a`) edges, so that a query about
//! "pets" reaches the scene-graph `dog` vertices through the knowledge
//! graph — the cross-source reasoning step the paper's Example 1 builds on.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::fmt;
use svqa_nlp::lev::levenshtein_similarity;
use svqa_nlp::Embedder;
use svqa_graph::{EdgeId, Graph, VertexId};

/// The edge label linking scene instances to knowledge entities (must match
/// the aggregator's `link_label`).
pub const SAME_AS: &str = "same as";

/// The taxonomy edge label in the knowledge graph.
pub const IS_A: &str = "is a";

/// Which rung of the `matchVertex` ladder produced a match — recorded in
/// execution profiles so `EXPLAIN ANALYZE` can say *how* a phrase reached
/// the graph, not just how many vertices it hit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum MatchMethod {
    /// Exact label match on the full phrase.
    Exact,
    /// Levenshtein similarity over distinct labels.
    Levenshtein,
    /// Exact match after falling back to the main noun.
    HeadExact,
    /// Levenshtein match on the main noun.
    HeadLevenshtein,
    /// Embedding cosine-similarity fallback.
    Embedding,
    /// Every rung failed: empty candidate set.
    #[default]
    NoMatch,
}

impl fmt::Display for MatchMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MatchMethod::Exact => "exact",
            MatchMethod::Levenshtein => "levenshtein",
            MatchMethod::HeadExact => "head-exact",
            MatchMethod::HeadLevenshtein => "head-levenshtein",
            MatchMethod::Embedding => "embedding",
            MatchMethod::NoMatch => "no-match",
        })
    }
}

/// A relation pair `(Sub, e, Obj)` — one element of `RP`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RelationPair {
    /// Subject-side vertex.
    pub sub: VertexId,
    /// The connecting edge.
    pub edge: EdgeId,
    /// Object-side vertex.
    pub obj: VertexId,
}

/// Vertex matching over the merged graph.
pub struct VertexMatcher<'g> {
    graph: &'g Graph,
    embedder: Embedder,
    /// Minimum Levenshtein similarity for a label match.
    pub lev_threshold: f64,
    /// Minimum cosine similarity for the embedding fallback.
    pub embed_threshold: f32,
}

impl<'g> VertexMatcher<'g> {
    /// Build a matcher over `graph` with the default thresholds.
    pub fn new(graph: &'g Graph) -> Self {
        VertexMatcher {
            graph,
            embedder: Embedder::new(),
            lev_threshold: 0.8,
            embed_threshold: 0.6,
        }
    }

    /// The embedder (shared with `maxScore` in the executor).
    pub fn embedder(&self) -> &Embedder {
        &self.embedder
    }

    /// `matchVertex(label, G_mg)`: vertices whose label matches the phrase.
    ///
    /// 1. exact label match;
    /// 2. Levenshtein similarity ≥ threshold over distinct labels;
    /// 3. main-noun retry for multi-word phrases;
    /// 4. embedding cosine fallback.
    pub fn match_vertex(&self, phrase: &str, head: &str) -> Vec<VertexId> {
        self.match_vertex_traced(phrase, head).0
    }

    /// [`match_vertex`](Self::match_vertex) plus which ladder rung matched —
    /// the profiling entry point.
    pub fn match_vertex_traced(&self, phrase: &str, head: &str) -> (Vec<VertexId>, MatchMethod) {
        let exact = self.graph.vertices_with_label(phrase);
        if !exact.is_empty() {
            return (exact.to_vec(), MatchMethod::Exact);
        }
        let by_lev = self.match_distinct_labels(|label| {
            levenshtein_similarity(label, phrase) >= self.lev_threshold
        });
        if !by_lev.is_empty() {
            return (by_lev, MatchMethod::Levenshtein);
        }
        // Non-simple noun: retry with the main noun (§V-A).
        if head != phrase && !head.is_empty() {
            let exact = self.graph.vertices_with_label(head);
            if !exact.is_empty() {
                return (exact.to_vec(), MatchMethod::HeadExact);
            }
            let by_lev = self.match_distinct_labels(|label| {
                levenshtein_similarity(label, head) >= self.lev_threshold
            });
            if !by_lev.is_empty() {
                return (by_lev, MatchMethod::HeadLevenshtein);
            }
        }
        // Embedding fallback on the head noun.
        let probe = if head.is_empty() { phrase } else { head };
        let mut best: Vec<(f32, &str)> = Vec::new();
        for (label, _) in self.graph.vertex_label_counts() {
            let sim = self.embedder.similarity(probe, label);
            if sim >= self.embed_threshold {
                best.push((sim, label));
            }
        }
        // `total_cmp` never panics (a NaN similarity is an ordinary — if
        // worthless — value, not a crash), and the label tie-break makes
        // equal-similarity candidates independent of `HashMap` iteration
        // order, so embedding-fallback results are deterministic.
        best.sort_by(|a, b| b.0.total_cmp(&a.0).then_with(|| a.1.cmp(b.1)));
        let found: Vec<VertexId> = best
            .iter()
            .flat_map(|(_, label)| self.graph.vertices_with_label(label))
            .copied()
            .collect();
        if found.is_empty() {
            (found, MatchMethod::NoMatch)
        } else {
            (found, MatchMethod::Embedding)
        }
    }

    fn match_distinct_labels(&self, pred: impl Fn(&str) -> bool) -> Vec<VertexId> {
        let mut out = Vec::new();
        for (label, _) in self.graph.vertex_label_counts() {
            if pred(label) {
                out.extend_from_slice(self.graph.vertices_with_label(label));
            }
        }
        out
    }

    /// Semantic expansion: close the set under `same as` links (both
    /// directions) and *incoming* `is a` edges (instances and subtypes of a
    /// matched concept are also matches).
    pub fn expand_semantic(&self, seed: &[VertexId]) -> Vec<VertexId> {
        let mut seen: HashSet<VertexId> = seed.iter().copied().collect();
        let mut stack: Vec<VertexId> = seed.to_vec();
        while let Some(v) = stack.pop() {
            for (_, e) in self.graph.out_edges(v) {
                if e.label() == SAME_AS && seen.insert(e.dst()) {
                    stack.push(e.dst());
                }
            }
            for (_, e) in self.graph.in_edges(v) {
                if (e.label() == SAME_AS || e.label() == IS_A) && seen.insert(e.src()) {
                    stack.push(e.src());
                }
            }
        }
        let mut out: Vec<VertexId> = seen.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// `getRelations(Sub, Obj)`: the edges from any subject-side vertex to
    /// any object-side vertex (excluding structural `same as`/`is a` links),
    /// as relation pairs.
    pub fn relations_between(&self, subs: &[VertexId], objs: &[VertexId]) -> Vec<RelationPair> {
        self.relations_between_counted(subs, objs).0
    }

    /// [`relations_between`](Self::relations_between) plus the number of
    /// candidate edges examined (the profiling "edges scanned" figure).
    pub fn relations_between_counted(
        &self,
        subs: &[VertexId],
        objs: &[VertexId],
    ) -> (Vec<RelationPair>, usize) {
        let obj_set: HashSet<VertexId> = objs.iter().copied().collect();
        let mut pairs = Vec::new();
        let mut scanned = 0usize;
        for &s in subs {
            for (eid, e) in self.graph.out_edges(s) {
                scanned += 1;
                if e.label() == SAME_AS || e.label() == IS_A {
                    continue;
                }
                if obj_set.contains(&e.dst()) {
                    pairs.push(RelationPair {
                        sub: s,
                        edge: eid,
                        obj: e.dst(),
                    });
                }
            }
        }
        (pairs, scanned)
    }

    /// Relation pairs when one side is a wildcard: every non-structural
    /// edge incident to the constrained side.
    pub fn relations_around(
        &self,
        anchors: &[VertexId],
        anchor_is_subject: bool,
    ) -> Vec<RelationPair> {
        self.relations_around_counted(anchors, anchor_is_subject).0
    }

    /// [`relations_around`](Self::relations_around) plus the number of
    /// incident edges examined.
    pub fn relations_around_counted(
        &self,
        anchors: &[VertexId],
        anchor_is_subject: bool,
    ) -> (Vec<RelationPair>, usize) {
        let mut pairs = Vec::new();
        let mut scanned = 0usize;
        for &a in anchors {
            if anchor_is_subject {
                for (eid, e) in self.graph.out_edges(a) {
                    scanned += 1;
                    if e.label() != SAME_AS && e.label() != IS_A {
                        pairs.push(RelationPair {
                            sub: a,
                            edge: eid,
                            obj: e.dst(),
                        });
                    }
                }
            } else {
                for (eid, e) in self.graph.in_edges(a) {
                    scanned += 1;
                    if e.label() != SAME_AS && e.label() != IS_A {
                        pairs.push(RelationPair {
                            sub: e.src(),
                            edge: eid,
                            obj: a,
                        });
                    }
                }
            }
        }
        (pairs, scanned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svqa_graph::GraphBuilder;

    /// A miniature merged graph: KG taxonomy + one scene.
    fn merged() -> Graph {
        let mut b = GraphBuilder::new();
        // Knowledge graph.
        b.triple("dog", "is a", "pet")
            .triple("cat", "is a", "pet")
            .triple("pet", "is a", "animal")
            .triple("ginny weasley", "girlfriend of", "harry potter");
        let mut g = b.build();
        // Scene instances (duplicate labels are distinct vertices).
        let scene_dog = g.add_vertex("dog");
        let scene_car = g.add_vertex("car");
        g.add_edge(scene_dog, scene_car, "in").unwrap();
        // Aggregator links.
        let kg_dog = g.vertices_with_label("dog")[0];
        g.add_edge(scene_dog, kg_dog, SAME_AS).unwrap();
        g.add_edge(kg_dog, scene_dog, SAME_AS).unwrap();
        g
    }

    #[test]
    fn exact_match() {
        let g = merged();
        let m = VertexMatcher::new(&g);
        let found = m.match_vertex("dog", "dog");
        assert_eq!(found.len(), 2); // KG dog + scene dog
    }

    #[test]
    fn levenshtein_tolerates_typos_and_inflection() {
        let g = merged();
        let m = VertexMatcher::new(&g);
        // "dogs" normalizes to "dog" upstream, but even the raw plural
        // passes the Levenshtein threshold (sim 0.75 < 0.8? "dogs"/"dog" =
        // 1 edit over 4 chars = 0.75) — it instead hits the embedding
        // fallback, which maps synonyms too.
        let found = m.match_vertex("puppy", "puppy");
        assert!(!found.is_empty(), "puppy should reach dog via embeddings");
        assert!(found
            .iter()
            .all(|&v| g.vertex_label(v) == Some("dog")));
    }

    /// Regression for the NaN-unsafe, tie-unstable embedding sort: two
    /// distinct labels that embed identically ("Puppy" vs "puppy" — the
    /// embedder lowercases) tie exactly on similarity, and the order used
    /// to leak `HashMap` iteration order, which varies per `Graph`
    /// instance. With `total_cmp` + label tie-break the candidate order is
    /// identical across rebuilds.
    #[test]
    fn embedding_fallback_is_deterministic_on_ties() {
        let build = || {
            let mut g = Graph::default();
            // Force the embedding rung: nothing matches "hound" exactly or
            // within the Levenshtein threshold, but both labels live in the
            // "dog" concept cluster.
            for label in ["Puppy", "puppy", "canine", "kitten"] {
                g.add_vertex(label);
            }
            g
        };
        let mut orders: Vec<Vec<String>> = Vec::new();
        for _ in 0..8 {
            let g = build();
            let m = VertexMatcher::new(&g);
            let (found, method) = m.match_vertex_traced("hound", "hound");
            assert_eq!(method, MatchMethod::Embedding);
            assert!(found.len() >= 2, "both puppy spellings should match");
            orders.push(
                found
                    .iter()
                    .map(|&v| g.vertex_label(v).unwrap().to_owned())
                    .collect(),
            );
        }
        for order in &orders[1..] {
            assert_eq!(order, &orders[0], "candidate order must not vary");
        }
    }

    #[test]
    fn main_noun_retry() {
        let g = merged();
        let m = VertexMatcher::new(&g);
        let found = m.match_vertex("kind of dog", "dog");
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn no_match_is_empty() {
        let g = merged();
        let m = VertexMatcher::new(&g);
        assert!(m.match_vertex("spaceship", "spaceship").is_empty());
    }

    #[test]
    fn expansion_reaches_instances_through_taxonomy() {
        let g = merged();
        let m = VertexMatcher::new(&g);
        // "pet" → KG pet → (incoming is-a) dog, cat → (same as) scene dog.
        let seed = m.match_vertex("pet", "pet");
        let expanded = m.expand_semantic(&seed);
        let labels: Vec<_> = expanded
            .iter()
            .map(|&v| g.vertex_label(v).unwrap())
            .collect();
        assert!(labels.contains(&"dog"));
        assert!(labels.contains(&"cat"));
        // Both dog vertices (KG + scene) present.
        assert_eq!(labels.iter().filter(|&&l| l == "dog").count(), 2);
    }

    #[test]
    fn relations_between_skips_structural_edges() {
        let g = merged();
        let m = VertexMatcher::new(&g);
        let dogs = m.expand_semantic(&m.match_vertex("pet", "pet"));
        let cars = m.match_vertex("car", "car");
        let pairs = m.relations_between(&dogs, &cars);
        assert_eq!(pairs.len(), 1);
        assert_eq!(g.edge_label(pairs[0].edge), Some("in"));
    }

    #[test]
    fn wildcard_object_side() {
        let g = merged();
        let m = VertexMatcher::new(&g);
        let harry = m.match_vertex("harry potter", "harry potter");
        let pairs = m.relations_around(&harry, false);
        assert_eq!(pairs.len(), 1);
        assert_eq!(g.edge_label(pairs[0].edge), Some("girlfriend of"));
        assert_eq!(g.vertex_label(pairs[0].sub), Some("ginny weasley"));
    }

    #[test]
    fn wildcard_subject_side() {
        let g = merged();
        let m = VertexMatcher::new(&g);
        let scene_dog = vec![g.vertices_with_label("dog")[1]];
        let pairs = m.relations_around(&scene_dog, true);
        assert_eq!(pairs.len(), 1);
        assert_eq!(g.vertex_label(pairs[0].obj), Some("car"));
    }

    #[test]
    fn traced_matching_reports_the_ladder_rung() {
        let g = merged();
        let m = VertexMatcher::new(&g);
        assert_eq!(m.match_vertex_traced("dog", "dog").1, MatchMethod::Exact);
        assert_eq!(
            m.match_vertex_traced("kind of dog", "dog").1,
            MatchMethod::HeadExact
        );
        assert_eq!(
            m.match_vertex_traced("puppy", "puppy").1,
            MatchMethod::Embedding
        );
        let (found, method) = m.match_vertex_traced("spaceship", "spaceship");
        assert!(found.is_empty());
        assert_eq!(method, MatchMethod::NoMatch);
        // The traced and plain entry points agree.
        assert_eq!(
            m.match_vertex("pet", "pet"),
            m.match_vertex_traced("pet", "pet").0
        );
    }

    #[test]
    fn counted_scans_cover_all_incident_edges() {
        let g = merged();
        let m = VertexMatcher::new(&g);
        let dogs = m.expand_semantic(&m.match_vertex("pet", "pet"));
        let cars = m.match_vertex("car", "car");
        let (pairs, scanned) = m.relations_between_counted(&dogs, &cars);
        assert_eq!(pairs, m.relations_between(&dogs, &cars));
        // Structural (same as / is a) edges are scanned even though they
        // never become pairs, so scanned strictly exceeds the pair count.
        assert!(scanned > pairs.len(), "scanned={scanned}");

        let scene_dog = vec![g.vertices_with_label("dog")[1]];
        let (pairs, scanned) = m.relations_around_counted(&scene_dog, true);
        assert_eq!(pairs.len(), 1);
        assert!(scanned >= pairs.len());
    }

    #[test]
    fn expansion_is_idempotent() {
        let g = merged();
        let m = VertexMatcher::new(&g);
        let once = m.expand_semantic(&m.match_vertex("pet", "pet"));
        let twice = m.expand_semantic(&once);
        assert_eq!(once, twice);
    }
}
