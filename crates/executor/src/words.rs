//! The predefined constraint word set `𝕊` (Algorithm 3 input, after
//! Luo et al.'s complex-query-graph encoding cited by the paper).

use serde::{Deserialize, Serialize};
use svqa_nlp::Embedder;

/// A recognized constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Constraint {
    /// Keep the answer(s) whose supporting evidence is most frequent.
    MostFrequent,
    /// Keep the answer(s) whose supporting evidence is least frequent.
    LeastFrequent,
    /// Frequency comparison `≥ n` (kept for extension queries).
    AtLeast,
    /// Frequency comparison `≤ n`.
    AtMost,
    /// Frequency comparison `= n`.
    Exactly,
}

impl Constraint {
    /// The canonical phrase of each constraint — the members of `𝕊`.
    pub fn phrase(self) -> &'static str {
        match self {
            Constraint::MostFrequent => "most frequently",
            Constraint::LeastFrequent => "least frequently",
            Constraint::AtLeast => "at least",
            Constraint::AtMost => "at most",
            Constraint::Exactly => "exactly",
        }
    }

    /// All constraints, i.e. the word set `𝕊`.
    pub const ALL: [Constraint; 5] = [
        Constraint::MostFrequent,
        Constraint::LeastFrequent,
        Constraint::AtLeast,
        Constraint::AtMost,
        Constraint::Exactly,
    ];

    /// `maxScore(L(c_c), 𝕊)` — Algorithm 3 line 9: the constraint keyword
    /// most similar to the query's `c_c`.
    pub fn max_score(text: &str, embedder: &Embedder) -> Constraint {
        // The numeric operand is parsed separately; keeping it in the
        // embedded phrase would drag "at least 2" away from "at least".
        let keyword_only: String = text
            .split_whitespace()
            .filter(|t| t.parse::<usize>().is_err() && Self::parse_operand(t).is_none())
            .collect::<Vec<_>>()
            .join(" ");
        let probe = if keyword_only.is_empty() { text } else { &keyword_only };
        let (idx, _) = embedder
            .max_score(probe, Constraint::ALL.iter().map(|c| c.phrase()))
            .expect("𝕊 is non-empty");
        Constraint::ALL[idx]
    }

    /// Extract the numeric operand of a comparative constraint ("at least
    /// three times" → 3). Digits and the common number words both work;
    /// `None` when the constraint carries no number (the frequency
    /// superlatives never do).
    pub fn parse_operand(text: &str) -> Option<usize> {
        const WORDS: [(&str, usize); 12] = [
            ("one", 1), ("two", 2), ("three", 3), ("four", 4), ("five", 5),
            ("six", 6), ("seven", 7), ("eight", 8), ("nine", 9), ("ten", 10),
            ("once", 1), ("twice", 2),
        ];
        for token in text.split_whitespace() {
            if let Ok(n) = token.parse::<usize>() {
                return Some(n);
            }
            if let Some(&(_, n)) = WORDS.iter().find(|(w, _)| *w == token) {
                return Some(n);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_phrases_resolve_to_themselves() {
        let e = Embedder::new();
        for c in Constraint::ALL {
            assert_eq!(Constraint::max_score(c.phrase(), &e), c);
        }
    }

    #[test]
    fn operand_extraction() {
        assert_eq!(Constraint::parse_operand("at least three times"), Some(3));
        assert_eq!(Constraint::parse_operand("at most 5"), Some(5));
        assert_eq!(Constraint::parse_operand("exactly twice"), Some(2));
        assert_eq!(Constraint::parse_operand("most frequently"), None);
    }

    #[test]
    fn paraphrases_resolve() {
        let e = Embedder::new();
        assert_eq!(
            Constraint::max_score("most often", &e),
            Constraint::MostFrequent
        );
        assert_eq!(
            Constraint::max_score("least often", &e),
            Constraint::LeastFrequent
        );
    }
}
