//! Answer forms.
//!
//! §V: "We have three types of questions: counting, reasoning, and
//! judgment questions … corresponding to answers in the form of a number,
//! an entity, and a judgment word (i.e., Yes/No)".

use serde::{Deserialize, Serialize};
use std::fmt;

/// The answer to a complex query.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Answer {
    /// Yes/no (judgment questions).
    Judgment(bool),
    /// A number (counting questions).
    Count(usize),
    /// An entity (reasoning questions): the top label plus lower-ranked
    /// alternatives.
    Entity {
        /// The selected answer label.
        label: String,
        /// Other candidate labels, best first.
        alternatives: Vec<String>,
    },
    /// The query executed but matched nothing (distinct from "No": the
    /// evidence was absent, not negative).
    Unknown,
}

impl Answer {
    /// Build an entity answer from ranked labels.
    pub fn entity_from_ranked(mut labels: Vec<String>) -> Answer {
        if labels.is_empty() {
            return Answer::Unknown;
        }
        let label = labels.remove(0);
        Answer::Entity {
            label,
            alternatives: labels,
        }
    }

    /// Whether this is a positive judgment.
    pub fn is_yes(&self) -> bool {
        matches!(self, Answer::Judgment(true))
    }

    /// The entity label, if this is an entity answer.
    pub fn entity_label(&self) -> Option<&str> {
        match self {
            Answer::Entity { label, .. } => Some(label),
            _ => None,
        }
    }

    /// The count, if this is a counting answer.
    pub fn count(&self) -> Option<usize> {
        match self {
            Answer::Count(n) => Some(*n),
            _ => None,
        }
    }
}

impl fmt::Display for Answer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Answer::Judgment(true) => write!(f, "Yes"),
            Answer::Judgment(false) => write!(f, "No"),
            Answer::Count(n) => write!(f, "{n}"),
            Answer::Entity { label, .. } => write!(f, "{label}"),
            Answer::Unknown => write!(f, "Unknown"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert_eq!(Answer::Judgment(true).to_string(), "Yes");
        assert_eq!(Answer::Judgment(false).to_string(), "No");
        assert_eq!(Answer::Count(3).to_string(), "3");
        assert_eq!(
            Answer::Entity {
                label: "dog".into(),
                alternatives: vec![]
            }
            .to_string(),
            "dog"
        );
        assert_eq!(Answer::Unknown.to_string(), "Unknown");
    }

    #[test]
    fn entity_from_ranked() {
        let a = Answer::entity_from_ranked(vec!["robe".into(), "hat".into()]);
        assert_eq!(a.entity_label(), Some("robe"));
        match a {
            Answer::Entity { alternatives, .. } => assert_eq!(alternatives, vec!["hat"]),
            _ => panic!(),
        }
        assert_eq!(Answer::entity_from_ranked(vec![]), Answer::Unknown);
    }

    #[test]
    fn accessors() {
        assert!(Answer::Judgment(true).is_yes());
        assert!(!Answer::Judgment(false).is_yes());
        assert_eq!(Answer::Count(7).count(), Some(7));
        assert_eq!(Answer::Judgment(true).count(), None);
        assert_eq!(Answer::Count(7).entity_label(), None);
    }
}
