//! Key-centric caching (§V-B).
//!
//! Two item kinds, named as in the paper:
//! * **scope** — the result of `matchVertex` (+ semantic expansion) for a
//!   noun phrase: "matchVertex requires to compare with all the labels of
//!   V_mg to obtain the corresponding vertex set Sub and Obj, and we named
//!   it as 'scope'";
//! * **path** — the relation pairs `RP` between two scopes: "getRelationpairs
//!   needs to traverse all neighbors … so that all relation pairs RP are
//!   returned, and we named it as 'path'".
//!
//! The pool is bounded by a total *item count* (Fig. 11 sizes pools this
//! way) shared across both kinds, with LFU (the paper's choice) or LRU
//! eviction.

use crate::matching::RelationPair;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use svqa_graph::VertexId;
pub use svqa_telemetry::CacheStats;

/// Eviction policy for the bounded pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// Least-frequently-used (the paper's default).
    Lfu,
    /// Least-recently-used (the Fig. 11 comparison point).
    Lru,
}

/// Which item kinds are cached — the Fig. 10(b) ablation axis
/// (No / Scope / Path / Both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheGranularity {
    /// Caching disabled.
    None,
    /// Only scope items.
    Scope,
    /// Only path items.
    Path,
    /// Both (the paper's full mechanism).
    Both,
}

#[derive(Debug, Clone)]
struct Entry<V> {
    value: V,
    freq: u64,
    last_used: u64,
}

/// One bounded key-value store.
#[derive(Debug)]
struct Pool<V> {
    map: HashMap<String, Entry<V>>,
    hits: u64,
    misses: u64,
}

impl<V> Pool<V> {
    fn new() -> Self {
        Pool {
            map: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    fn get(&mut self, key: &str, tick: u64) -> Option<&V> {
        match self.map.get_mut(key) {
            Some(e) => {
                e.freq += 1;
                e.last_used = tick;
                self.hits += 1;
                Some(&e.value)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// `(key, freq, last_used)` of the eviction candidate under `policy`.
    fn eviction_candidate(&self, policy: EvictionPolicy) -> Option<(String, u64, u64)> {
        self.map
            .iter()
            .min_by_key(|(_, e)| match policy {
                EvictionPolicy::Lfu => (e.freq, e.last_used),
                EvictionPolicy::Lru => (e.last_used, e.freq),
            })
            .map(|(k, e)| (k.clone(), e.freq, e.last_used))
    }
}

/// The shared scope + path cache.
#[derive(Debug)]
pub struct KeyCentricCache {
    granularity: CacheGranularity,
    policy: EvictionPolicy,
    /// Total item budget across both pools.
    pool_size: usize,
    scope: Pool<Arc<Vec<VertexId>>>,
    path: Pool<Arc<Vec<RelationPair>>>,
    tick: u64,
}

impl KeyCentricCache {
    /// Build a cache.
    pub fn new(granularity: CacheGranularity, policy: EvictionPolicy, pool_size: usize) -> Self {
        KeyCentricCache {
            granularity,
            policy,
            pool_size,
            scope: Pool::new(),
            path: Pool::new(),
            tick: 0,
        }
    }

    /// A disabled cache (granularity `None`).
    pub fn disabled() -> Self {
        Self::new(CacheGranularity::None, EvictionPolicy::Lfu, 0)
    }

    fn scope_enabled(&self) -> bool {
        matches!(
            self.granularity,
            CacheGranularity::Scope | CacheGranularity::Both
        )
    }

    fn path_enabled(&self) -> bool {
        matches!(
            self.granularity,
            CacheGranularity::Path | CacheGranularity::Both
        )
    }

    /// Look up a scope item (cheap `Arc` clone — the vertex sets over a
    /// 4,233-image merged graph run to tens of thousands of ids, and deep
    /// copies on every hit would eat the savings).
    pub fn scope_get(&mut self, key: &str) -> Option<Arc<Vec<VertexId>>> {
        if !self.scope_enabled() {
            return None;
        }
        self.tick += 1;
        let tick = self.tick;
        self.scope.get(key, tick).cloned()
    }

    /// Store a scope item. Overwriting an existing key updates the value
    /// in place — preserving its LFU frequency history and evicting
    /// nothing, since the pool does not grow.
    pub fn scope_put(&mut self, key: &str, value: Arc<Vec<VertexId>>) {
        if !self.scope_enabled() || self.pool_size == 0 {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.scope.map.get_mut(key) {
            e.value = value;
            e.last_used = tick;
            return;
        }
        self.make_room();
        self.scope.map.insert(
            key.to_owned(),
            Entry {
                value,
                freq: 1,
                last_used: tick,
            },
        );
    }

    /// Look up a path item (cheap `Arc` clone).
    pub fn path_get(&mut self, key: &str) -> Option<Arc<Vec<RelationPair>>> {
        if !self.path_enabled() {
            return None;
        }
        self.tick += 1;
        let tick = self.tick;
        self.path.get(key, tick).cloned()
    }

    /// Store a path item. Overwrites update in place (frequency preserved,
    /// no eviction), exactly like [`scope_put`](Self::scope_put).
    pub fn path_put(&mut self, key: &str, value: Arc<Vec<RelationPair>>) {
        if !self.path_enabled() || self.pool_size == 0 {
            return;
        }
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.path.map.get_mut(key) {
            e.value = value;
            e.last_used = tick;
            return;
        }
        self.make_room();
        self.path.map.insert(
            key.to_owned(),
            Entry {
                value,
                freq: 1,
                last_used: tick,
            },
        );
    }

    /// Evict until one slot is free, choosing the globally least-valuable
    /// entry under the policy.
    fn make_room(&mut self) {
        while self.len() >= self.pool_size && !self.is_empty() {
            let scope_cand = self.scope.eviction_candidate(self.policy);
            let path_cand = self.path.eviction_candidate(self.policy);
            let evict_scope = match (&scope_cand, &path_cand) {
                (Some(s), Some(p)) => match self.policy {
                    EvictionPolicy::Lfu => (s.1, s.2) <= (p.1, p.2),
                    EvictionPolicy::Lru => (s.2, s.1) <= (p.2, p.1),
                },
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => return,
            };
            if evict_scope {
                let key = scope_cand.expect("checked above").0;
                self.scope.map.remove(&key);
            } else {
                let key = path_cand.expect("checked above").0;
                self.path.map.remove(&key);
            }
        }
    }

    /// Items currently held (scope + path).
    pub fn len(&self) -> usize {
        self.scope.map.len() + self.path.map.len()
    }

    /// Whether the cache holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss counters for both pools since construction.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            scope_hits: self.scope.hits,
            scope_misses: self.scope.misses,
            path_hits: self.path.hits,
            path_misses: self.path.misses,
        }
    }

    /// Approximate heap bytes held by cached values (a scope item is a
    /// vertex-id vector; a path item a relation-pair vector — the paper
    /// reports ≈6 KB and ≈96 KB per item on MVQA).
    pub fn value_bytes(&self) -> usize {
        let scope: usize = self
            .scope
            .map
            .values()
            .map(|e| e.value.len() * std::mem::size_of::<VertexId>())
            .sum();
        let path: usize = self
            .path
            .map
            .values()
            .map(|e| e.value.len() * std::mem::size_of::<RelationPair>())
            .sum();
        scope + path
    }

    /// The configured granularity.
    pub fn granularity(&self) -> CacheGranularity {
        self.granularity
    }

    /// The configured policy.
    pub fn policy(&self) -> EvictionPolicy {
        self.policy
    }

    /// The LFU frequency of a scope entry, without touching it (does not
    /// count as a use and does not bump hit/miss counters). `None` when the
    /// key is absent. Exposed so tests and cache introspection can verify
    /// eviction history survives overwrites.
    pub fn scope_frequency(&self, key: &str) -> Option<u64> {
        self.scope.map.get(key).map(|e| e.freq)
    }

    /// The LFU frequency of a path entry, without touching it.
    pub fn path_frequency(&self, key: &str) -> Option<u64> {
        self.path.map.get(key).map(|e| e.freq)
    }

    /// The configured item budget.
    pub fn pool_size(&self) -> usize {
        self.pool_size
    }

    /// Every key currently resident in either pool (scope first).
    fn resident_keys(&self) -> impl Iterator<Item = &str> {
        self.scope
            .map
            .keys()
            .chain(self.path.map.keys())
            .map(String::as_str)
    }
}

/// A key-hashed, shard-per-lock view of the key-centric cache.
///
/// The paper's single pool (§V-B) is kept per shard: keys are hashed to one
/// of `N` shards, each holding its own [`KeyCentricCache`] behind its own
/// mutex, with the total item budget split across shards. Callers see the
/// same scope/path API as the single pool but with `&self` methods, so one
/// long-lived `ShardedCache` can back the query service and parallel
/// scheduler workers without serializing every lookup on a single lock.
///
/// Stats are the merge of per-shard counters
/// ([`CacheStats::merge`]); eviction stays shard-local, which approximates
/// the paper's global LFU/LRU minimum (documented in DESIGN.md).
#[derive(Debug)]
pub struct ShardedCache {
    shards: Vec<Mutex<KeyCentricCache>>,
    /// The caller's total item budget (what the shard budgets must sum to).
    pool_size: usize,
}

impl ShardedCache {
    /// Build a sharded cache: `pool_size` items total, split as evenly as
    /// possible across `shards` key-hashed shards (the first
    /// `pool_size % shards` shards take the remainder). The shard count is
    /// clamped to `max(1, min(shards, pool_size))` so no shard gets a zero
    /// budget while the total budget is non-zero.
    pub fn new(
        granularity: CacheGranularity,
        policy: EvictionPolicy,
        pool_size: usize,
        shards: usize,
    ) -> Self {
        let n = shards.min(pool_size).max(1);
        let base = pool_size / n;
        let remainder = pool_size % n;
        let cache = ShardedCache {
            shards: (0..n)
                .map(|i| {
                    let budget = base + usize::from(i < remainder);
                    Mutex::new(KeyCentricCache::new(granularity, policy, budget))
                })
                .collect(),
            pool_size,
        };
        cache.debug_assert_invariants();
        cache
    }

    /// A single-shard cache — the exact semantics of the paper's one pool,
    /// behind the shared-handle API.
    pub fn single(granularity: CacheGranularity, policy: EvictionPolicy, pool_size: usize) -> Self {
        Self::new(granularity, policy, pool_size, 1)
    }

    /// A disabled cache (granularity `None`, zero budget).
    pub fn disabled() -> Self {
        Self::new(CacheGranularity::None, EvictionPolicy::Lfu, 0, 1)
    }

    fn shard_index(&self, key: &str) -> usize {
        // SipHash with the default (fixed) keys: deterministic across runs,
        // well-mixed across shards.
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() % self.shards.len() as u64) as usize
    }

    fn shard(&self, key: &str) -> &Mutex<KeyCentricCache> {
        &self.shards[self.shard_index(key)]
    }

    /// Injection gate shared by the four cache entry points. Lookups and
    /// inserts are infallible, so `Error` and `DropResult` both degrade to
    /// "the cache did nothing" (forced miss / dropped insert); `Latency`
    /// stalls the caller; `CorruptLabel` has no cache meaning and is inert.
    fn faulted(site: &'static str) -> bool {
        match svqa_fault::draw(site) {
            Some(svqa_fault::FaultKind::Error | svqa_fault::FaultKind::DropResult) => true,
            Some(svqa_fault::FaultKind::Latency(ms)) => {
                svqa_fault::apply_latency(ms, None);
                false
            }
            Some(svqa_fault::FaultKind::CorruptLabel) | None => false,
        }
    }

    /// Look up a scope item in the key's shard.
    pub fn scope_get(&self, key: &str) -> Option<Arc<Vec<VertexId>>> {
        if Self::faulted(svqa_fault::site::CACHE_GET) {
            return None;
        }
        self.shard(key).lock().scope_get(key)
    }

    /// Store a scope item in the key's shard.
    pub fn scope_put(&self, key: &str, value: Arc<Vec<VertexId>>) {
        if Self::faulted(svqa_fault::site::CACHE_PUT) {
            return;
        }
        self.shard(key).lock().scope_put(key, value);
    }

    /// Look up a path item in the key's shard.
    pub fn path_get(&self, key: &str) -> Option<Arc<Vec<RelationPair>>> {
        if Self::faulted(svqa_fault::site::CACHE_GET) {
            return None;
        }
        self.shard(key).lock().path_get(key)
    }

    /// Store a path item in the key's shard.
    pub fn path_put(&self, key: &str, value: Arc<Vec<RelationPair>>) {
        if Self::faulted(svqa_fault::site::CACHE_PUT) {
            return;
        }
        self.shard(key).lock().path_put(key, value);
    }

    /// Hit/miss counters merged across all shards.
    pub fn stats(&self) -> CacheStats {
        let mut total = CacheStats::new();
        for shard in &self.shards {
            total.merge(&shard.lock().stats());
        }
        total
    }

    /// Items currently held across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate heap bytes held by cached values, across all shards.
    pub fn value_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().value_bytes()).sum()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The LFU frequency of a scope entry (non-touching; see
    /// [`KeyCentricCache::scope_frequency`]).
    pub fn scope_frequency(&self, key: &str) -> Option<u64> {
        self.shard(key).lock().scope_frequency(key)
    }

    /// The LFU frequency of a path entry (non-touching).
    pub fn path_frequency(&self, key: &str) -> Option<u64> {
        self.shard(key).lock().path_frequency(key)
    }

    /// Run the [`invariants`] suite. Compiles to a no-op in release builds;
    /// under `debug_assertions` a violation panics with the broken
    /// invariant. Called at construction and by the property tests after
    /// every mutation.
    pub fn debug_assert_invariants(&self) {
        #[cfg(debug_assertions)]
        invariants::check(self);
    }
}

/// Debug-assertions invariants for [`ShardedCache`] — the structural
/// properties the sharding layer must preserve over the paper's single
/// pool, checked exhaustively in debug builds (proptests run them after
/// every operation) and compiled out of release binaries.
#[cfg(debug_assertions)]
mod invariants {
    use super::ShardedCache;

    /// All invariants, in one sweep over the shards.
    pub(super) fn check(cache: &ShardedCache) {
        budget_conserved(cache);
        no_cross_shard_leakage(cache);
    }

    /// The per-shard budgets sum exactly to the configured pool size, no
    /// shard has a zero budget while the pool is non-empty, and no shard
    /// holds more items than its own budget (so the global `len() ≤
    /// pool_size` bound follows shard-locally).
    fn budget_conserved(cache: &ShardedCache) {
        let mut total_budget = 0;
        for (i, shard) in cache.shards.iter().enumerate() {
            let shard = shard.lock();
            assert!(
                cache.pool_size == 0 || shard.pool_size() > 0,
                "shard {i} has a zero budget inside a pool of {}",
                cache.pool_size
            );
            assert!(
                shard.len() <= shard.pool_size(),
                "shard {i} holds {} items over its budget of {}",
                shard.len(),
                shard.pool_size()
            );
            total_budget += shard.pool_size();
        }
        assert_eq!(
            total_budget, cache.pool_size,
            "shard budgets sum to {total_budget}, configured pool is {}",
            cache.pool_size
        );
    }

    /// Every resident key hashes back to the shard that holds it: routing
    /// is a function of the key alone, so a key can never be resident in
    /// two shards at once (no stale aliases after eviction/overwrite).
    fn no_cross_shard_leakage(cache: &ShardedCache) {
        for (i, shard) in cache.shards.iter().enumerate() {
            let shard = shard.lock();
            for key in shard.resident_keys() {
                assert_eq!(
                    cache.shard_index(key),
                    i,
                    "key {key:?} resident in shard {i} but routes to shard {}",
                    cache.shard_index(key)
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vid(i: usize) -> VertexId {
        VertexId::from_index(i)
    }

    #[test]
    fn disabled_cache_never_stores() {
        let mut c = KeyCentricCache::disabled();
        c.scope_put("dog", Arc::new(vec![vid(1)]));
        c.path_put("dog|car", Arc::new(vec![]));
        assert!(c.is_empty());
        assert_eq!(c.scope_get("dog"), None);
    }

    #[test]
    fn scope_roundtrip_and_stats() {
        let mut c = KeyCentricCache::new(CacheGranularity::Both, EvictionPolicy::Lfu, 10);
        assert_eq!(c.scope_get("dog"), None); // miss
        c.scope_put("dog", Arc::new(vec![vid(1), vid(2)]));
        assert_eq!(c.scope_get("dog"), Some(Arc::new(vec![vid(1), vid(2)]))); // hit
        let stats = c.stats();
        assert_eq!((stats.scope_hits, stats.scope_misses), (1, 1));
        assert!((stats.scope_hit_rate() - 0.5).abs() < 1e-12);
        assert!(c.value_bytes() > 0);
    }

    #[test]
    fn granularity_scope_only() {
        let mut c = KeyCentricCache::new(CacheGranularity::Scope, EvictionPolicy::Lfu, 10);
        c.scope_put("dog", Arc::new(vec![vid(1)]));
        c.path_put("k", Arc::new(vec![]));
        assert_eq!(c.len(), 1);
        assert!(c.scope_get("dog").is_some());
        assert!(c.path_get("k").is_none());
    }

    #[test]
    fn lfu_evicts_least_frequent() {
        let mut c = KeyCentricCache::new(CacheGranularity::Scope, EvictionPolicy::Lfu, 2);
        c.scope_put("a", Arc::new(vec![vid(1)]));
        c.scope_put("b", Arc::new(vec![vid(2)]));
        // Touch "a" twice so "b" is least frequent.
        c.scope_get("a");
        c.scope_get("a");
        c.scope_put("c", Arc::new(vec![vid(3)]));
        assert!(c.scope_get("a").is_some());
        assert!(c.scope_get("b").is_none());
        assert!(c.scope_get("c").is_some());
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = KeyCentricCache::new(CacheGranularity::Scope, EvictionPolicy::Lru, 2);
        c.scope_put("a", Arc::new(vec![vid(1)]));
        c.scope_put("b", Arc::new(vec![vid(2)]));
        // "a" used many times long ago; "b" used once, recently.
        c.scope_get("a");
        c.scope_get("a");
        c.scope_get("b");
        c.scope_put("c", Arc::new(vec![vid(3)]));
        // LRU evicts "a" (older last_used) despite higher frequency.
        assert!(c.scope_get("a").is_none());
        assert!(c.scope_get("b").is_some());
    }

    #[test]
    fn shared_budget_across_pools() {
        let mut c = KeyCentricCache::new(CacheGranularity::Both, EvictionPolicy::Lfu, 2);
        c.scope_put("a", Arc::new(vec![vid(1)]));
        c.path_put("p", Arc::new(vec![]));
        assert_eq!(c.len(), 2);
        c.scope_put("b", Arc::new(vec![vid(2)]));
        assert_eq!(c.len(), 2); // one of the old entries was evicted
    }

    #[test]
    fn zero_pool_accepts_nothing() {
        let mut c = KeyCentricCache::new(CacheGranularity::Both, EvictionPolicy::Lfu, 0);
        c.scope_put("a", Arc::new(vec![vid(1)]));
        assert!(c.is_empty());
    }

    #[test]
    fn overwrite_same_key_keeps_len() {
        let mut c = KeyCentricCache::new(CacheGranularity::Scope, EvictionPolicy::Lfu, 5);
        c.scope_put("a", Arc::new(vec![vid(1)]));
        c.scope_put("a", Arc::new(vec![vid(2)]));
        assert_eq!(c.len(), 1);
        assert_eq!(c.scope_get("a"), Some(Arc::new(vec![vid(2)])));
    }

    /// Regression: overwriting a key in a *full* cache used to call
    /// `make_room()` and evict an unrelated entry even though the pool was
    /// not growing.
    #[test]
    fn overwrite_in_full_cache_evicts_nothing() {
        let mut c = KeyCentricCache::new(CacheGranularity::Both, EvictionPolicy::Lfu, 2);
        c.scope_put("a", Arc::new(vec![vid(1)]));
        c.path_put("p", Arc::new(vec![]));
        assert_eq!(c.len(), 2); // full
        c.scope_put("a", Arc::new(vec![vid(9)]));
        assert_eq!(c.len(), 2);
        assert!(c.scope_frequency("a").is_some());
        assert!(c.path_frequency("p").is_some(), "unrelated entry evicted");
        assert_eq!(c.scope_get("a"), Some(Arc::new(vec![vid(9)])));
    }

    /// Regression: overwriting used to reset `freq` to 1, destroying the
    /// LFU history that decides the next eviction.
    #[test]
    fn overwrite_preserves_lfu_history() {
        let mut c = KeyCentricCache::new(CacheGranularity::Scope, EvictionPolicy::Lfu, 2);
        c.scope_put("hot", Arc::new(vec![vid(1)]));
        c.scope_get("hot");
        c.scope_get("hot"); // freq 3
        c.scope_put("cold", Arc::new(vec![vid(2)])); // freq 1
        c.scope_put("hot", Arc::new(vec![vid(3)])); // overwrite, freq stays 3
        assert_eq!(c.scope_frequency("hot"), Some(3));
        c.scope_put("new", Arc::new(vec![vid(4)]));
        // LFU must evict "cold" (freq 1), not "hot".
        assert!(c.scope_frequency("hot").is_some());
        assert!(c.scope_frequency("cold").is_none());
    }

    #[test]
    fn sharded_cache_roundtrip_and_merged_stats() {
        let c = ShardedCache::new(CacheGranularity::Both, EvictionPolicy::Lfu, 64, 4);
        assert_eq!(c.shard_count(), 4);
        assert_eq!(c.scope_get("dog"), None); // miss
        c.scope_put("dog", Arc::new(vec![vid(1)]));
        c.path_put("dog|car", Arc::new(vec![]));
        assert_eq!(c.scope_get("dog"), Some(Arc::new(vec![vid(1)])));
        assert!(c.path_get("dog|car").is_some());
        assert_eq!(c.len(), 2);
        assert!(c.value_bytes() > 0);
        let stats = c.stats();
        assert_eq!((stats.scope_hits, stats.scope_misses), (1, 1));
        assert_eq!((stats.path_hits, stats.path_misses), (1, 0));
    }

    #[test]
    fn sharded_cache_budget_split_covers_pool_size() {
        // 10 items over 4 shards: budgets 3,3,2,2 — total exactly 10.
        let c = ShardedCache::new(CacheGranularity::Scope, EvictionPolicy::Lfu, 10, 4);
        for i in 0..100 {
            c.scope_put(&format!("k{i}"), Arc::new(vec![vid(i)]));
        }
        assert!(c.len() <= 10, "len {} exceeds total budget", c.len());
        // Shard count clamps so no shard gets a zero budget.
        let tiny = ShardedCache::new(CacheGranularity::Scope, EvictionPolicy::Lfu, 2, 8);
        assert_eq!(tiny.shard_count(), 2);
        tiny.scope_put("a", Arc::new(vec![vid(1)]));
        assert_eq!(tiny.len(), 1);
    }

    #[test]
    fn sharded_disabled_accepts_nothing() {
        let c = ShardedCache::disabled();
        c.scope_put("a", Arc::new(vec![vid(1)]));
        assert!(c.is_empty());
        assert_eq!(c.scope_get("a"), None);
    }
}
