//! # svqa-executor
//!
//! The Query Executor of the SVQA reproduction (§V, Algorithm 3): runs a
//! query graph `G_q` over the merged graph `G_mg` and produces the answer.
//!
//! * [`matching`] — `matchVertex` (Levenshtein + embedding lookup of SPOC
//!   noun phrases in the merged graph, with semantic expansion along
//!   `same as` links and taxonomy edges) and `getRelationpairs`;
//! * [`executor`] — the `QueryGraphExecutor` loop: query stage (relation
//!   pairs → `maxScore` predicate filter → constraint filter) and update
//!   stage (answer propagation along S2S/S2O/O2S/O2O edges);
//! * [`answer`] — the three answer forms (judgment / counting / reasoning,
//!   §V: "corresponding to answers in the form of a number, an entity, and
//!   a judgment word");
//! * [`cache`] — the key-centric cache of §V-B: *scope* items (vertex match
//!   sets) and *path* items (relation-pair sets), bounded pools with LFU or
//!   LRU eviction;
//! * [`scheduler`] — optimized multi-query scheduling: frequency-ratio
//!   scoring, descending execution order, shared cache, and parallel
//!   execution on `std::thread` scoped threads;
//! * [`profile`] — `EXPLAIN ANALYZE`: per-quadruple plan profiles
//!   (candidate-set funnel, cache classification, edge scans, timings)
//!   rendered as a text tree or JSON;
//! * [`words`] — the predefined constraint word set `𝕊`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod answer;
pub mod cache;
pub mod executor;
pub mod explain;
pub mod matching;
pub mod profile;
pub mod scheduler;
pub mod words;

pub use answer::Answer;
pub use cache::{CacheGranularity, CacheStats, EvictionPolicy, KeyCentricCache, ShardedCache};
pub use executor::{
    CacheOutcome, ExecError, ExecutorConfig, QueryGraphExecutor, SlotSource, SlotTrace,
    VertexTrace,
};
pub use explain::{Explanation, SupportFact};
pub use matching::{MatchMethod, VertexMatcher};
pub use profile::{ExecutionProfile, ProfiledRun, QuadPlan, ScheduleInfo};
pub use scheduler::{BatchReport, QueryScheduler, SchedulerConfig};
pub use words::Constraint;
