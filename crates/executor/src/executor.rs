//! Algorithm 3: `QueryGraphExecutor`.
//!
//! Processes the query graph's vertices in dependency order. For each
//! vertex `u = [c_s, c_p, c_o, c_c]`:
//!
//! * **Query stage** — resolve `Sub`/`Obj` via `matchVertex` + semantic
//!   expansion (or a binding propagated from an earlier vertex), collect
//!   the relation pairs `RP` between them, pick the predicate label `P`
//!   with `maxScore(L(c_p), T)` and the constraint with
//!   `maxScore(L(c_c), 𝕊)`, and filter `RP` down to `AP`;
//! * **Update stage** — push `AP`'s subject or object vertices into the
//!   dependent slots of neighbouring vertices (S2S/S2O/O2S/O2O);
//! * **`getFinalanswer`** — shape the answer by question type (yes/no,
//!   count of scene instances, or ranked entity labels).

use crate::answer::Answer;
use crate::cache::ShardedCache;
use crate::matching::{MatchMethod, RelationPair, VertexMatcher};
use crate::words::Constraint;
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::collections::HashMap;
use std::fmt;
use std::time::Instant;
use svqa_graph::{Graph, VertexId};
use svqa_qparser::{AnswerRole, Dependency, NounPhrase, QueryGraph, QuestionType};

/// Executor tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutorConfig {
    /// Levenshtein similarity threshold for `matchVertex`.
    pub lev_threshold: f64,
    /// Embedding similarity threshold for the `matchVertex` fallback.
    pub embed_threshold: f32,
    /// Predicate filter slack: keep pairs whose edge-label similarity is
    /// within this margin of the best label's similarity.
    pub filter_slack: f32,
    /// Absolute predicate similarity floor: a pair is kept only if its edge
    /// label clears this similarity to `c_p` outright. Without it, a query
    /// whose true predicate is absent from `RP` would keep every pair
    /// matching the best *wrong* label.
    pub min_predicate_similarity: f32,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        ExecutorConfig {
            lev_threshold: 0.8,
            embed_threshold: 0.6,
            filter_slack: 0.25,
            min_predicate_similarity: 0.45,
        }
    }
}

/// Structural execution errors (empty answers are *not* errors — they
/// produce `No` / `0` / `Unknown`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The query graph has no vertices.
    EmptyQueryGraph,
    /// The dependency edges form a cycle.
    CyclicQueryGraph,
    /// An installed `FaultPlan` failed this execution (transient from the
    /// caller's point of view: the degradation policy may retry it).
    Injected,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::EmptyQueryGraph => write!(f, "empty query graph"),
            ExecError::CyclicQueryGraph => write!(f, "cyclic query graph"),
            ExecError::Injected => write!(f, "injected fault (relation scan)"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Where a SPOC slot's candidate scope came from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SlotSource {
    /// The slot is empty (wildcard) — no scope was resolved.
    #[default]
    Wildcard,
    /// A binding propagated from an upstream vertex (S2S/S2O/O2S/O2O).
    Binding,
    /// Served from the scope cache.
    CacheHit,
    /// Resolved by a fresh `matchVertex` call.
    Matched,
}

impl fmt::Display for SlotSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SlotSource::Wildcard => "wildcard",
            SlotSource::Binding => "binding",
            SlotSource::CacheHit => "cache-hit",
            SlotSource::Matched => "matched",
        })
    }
}

/// What the path cache did for a vertex's relation-pair lookup.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum CacheOutcome {
    /// Relation pairs served from the path cache (scope lookups skipped).
    Hit,
    /// Looked up, absent; computed and inserted.
    Miss,
    /// Not consulted: a binding makes the key non-reusable.
    Bypassed,
    /// No cache attached to this execution.
    #[default]
    NoCache,
}

impl fmt::Display for CacheOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Bypassed => "bypassed",
            CacheOutcome::NoCache => "no-cache",
        })
    }
}

/// How one SPOC slot (subject or object) was resolved.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SlotTrace {
    /// Scope provenance.
    pub source: SlotSource,
    /// Which `matchVertex` ladder rung matched (only for `Matched`).
    pub method: Option<MatchMethod>,
    /// Candidates before semantic expansion (0 for cache hits, whose
    /// pre-expansion seed is unknown).
    pub seed: usize,
    /// Candidates after semantic expansion — the working scope size.
    pub expanded: usize,
}

/// Per-vertex execution trace (for examples, error analysis, and the
/// `EXPLAIN ANALYZE` profile).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VertexTrace {
    /// Subject-scope size after expansion.
    pub sub_count: usize,
    /// Object-scope size after expansion.
    pub obj_count: usize,
    /// Relation pairs before filtering.
    pub rp_count: usize,
    /// The predicate label `P` chosen by `maxScore`.
    pub chosen_predicate: Option<String>,
    /// Relation pairs after filtering (`AP`).
    pub ap_count: usize,
    /// Subject-slot resolution detail.
    #[serde(default)]
    pub sub: SlotTrace,
    /// Object-slot resolution detail.
    #[serde(default)]
    pub obj: SlotTrace,
    /// Path-cache classification for this vertex.
    #[serde(default)]
    pub path_cache: CacheOutcome,
    /// Candidate edges examined while collecting relation pairs (0 on a
    /// path-cache hit: nothing was scanned).
    #[serde(default)]
    pub edges_scanned: usize,
    /// Pair count after the predicate filter, before any constraint.
    #[serde(default)]
    pub ap_after_predicate: usize,
    /// The constraint applied, if the SPOC carried one.
    #[serde(default)]
    pub constraint: Option<String>,
    /// Start offset of this vertex's work, ns from the start of `run`.
    #[serde(default)]
    pub start_ns: u64,
    /// Wall-clock time spent on this vertex, ns.
    #[serde(default)]
    pub elapsed_ns: u64,
}

/// Internal result of one Algorithm-3 run: answer, per-vertex traces, and
/// per-vertex accepted pairs.
type RunOutput = (Answer, Vec<VertexTrace>, Vec<Vec<RelationPair>>);

/// The executor.
pub struct QueryGraphExecutor<'g> {
    graph: &'g Graph,
    matcher: VertexMatcher<'g>,
    config: ExecutorConfig,
    /// `T ← getLabels(E_mg)` (Algorithm 3 line 2), computed once.
    edge_labels: Vec<String>,
}

impl<'g> QueryGraphExecutor<'g> {
    /// Build an executor over a merged graph with default configuration.
    pub fn new(graph: &'g Graph) -> Self {
        Self::with_config(graph, ExecutorConfig::default())
    }

    /// Build an executor with explicit configuration.
    pub fn with_config(graph: &'g Graph, config: ExecutorConfig) -> Self {
        let mut matcher = VertexMatcher::new(graph);
        matcher.lev_threshold = config.lev_threshold;
        matcher.embed_threshold = config.embed_threshold;
        let mut edge_labels: Vec<String> = graph
            .edge_label_counts()
            .map(|(l, _)| l.to_owned())
            .collect();
        edge_labels.sort();
        QueryGraphExecutor {
            graph,
            matcher,
            config,
            edge_labels,
        }
    }

    /// Execute a query graph without caching.
    pub fn execute(&self, gq: &QueryGraph) -> Result<Answer, ExecError> {
        self.execute_cached(gq, None).map(|(a, _)| a)
    }

    /// Execute and return the answer together with its provenance (the
    /// support facts behind every query-graph vertex).
    pub fn execute_explained(
        &self,
        gq: &QueryGraph,
    ) -> Result<(Answer, crate::explain::Explanation), ExecError> {
        let (answer, _traces, aps) = self.run(gq, None)?;
        Ok((answer, crate::explain::Explanation::from_aps(self.graph, &aps)))
    }

    /// Execute and return the full `EXPLAIN ANALYZE` bundle: the answer,
    /// a per-quadruple [`ExecutionProfile`](crate::profile::ExecutionProfile)
    /// (candidate counts, cache classification, timings), and the answer's
    /// provenance. Cache counters in the profile are the *delta* this
    /// query produced, so a shared batch cache attributes correctly.
    pub fn execute_profiled(
        &self,
        gq: &QueryGraph,
        cache: Option<&ShardedCache>,
    ) -> Result<crate::profile::ProfiledRun, ExecError> {
        let cache_before = cache.map(ShardedCache::stats).unwrap_or_default();
        let t0 = Instant::now();
        let (answer, traces, aps) = self.run(gq, cache)?;
        let total_ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let cache_delta = cache
            .map(|c| c.stats().delta_since(&cache_before))
            .unwrap_or_default();
        let order = gq.execution_order().expect("run() validated acyclicity");
        let explanation = crate::explain::Explanation::from_aps(self.graph, &aps);
        let profile = crate::profile::ExecutionProfile::assemble(
            gq,
            &answer,
            order,
            traces,
            total_ns,
            cache_delta,
        );
        Ok(crate::profile::ProfiledRun {
            answer,
            profile,
            explanation,
        })
    }

    /// Execute with an optional shared key-centric cache (sharded, so
    /// parallel callers do not serialize on one lock); returns the answer
    /// and the per-vertex trace.
    pub fn execute_cached(
        &self,
        gq: &QueryGraph,
        cache: Option<&ShardedCache>,
    ) -> Result<(Answer, Vec<VertexTrace>), ExecError> {
        let (answer, traces, _aps) = self.run(gq, cache)?;
        Ok((answer, traces))
    }

    /// The Algorithm 3 main loop, returning the answer, traces, and every
    /// vertex's accepted pairs.
    fn run(
        &self,
        gq: &QueryGraph,
        cache: Option<&ShardedCache>,
    ) -> Result<RunOutput, ExecError> {
        let _span = svqa_telemetry::Span::enter(svqa_telemetry::stage::MATCH);
        if gq.is_empty() {
            return Err(ExecError::EmptyQueryGraph);
        }
        let order = gq.execution_order().ok_or(ExecError::CyclicQueryGraph)?;

        let n = gq.len();
        let mut sub_binding: Vec<Option<Vec<VertexId>>> = vec![None; n];
        let mut obj_binding: Vec<Option<Vec<VertexId>>> = vec![None; n];
        let mut aps: Vec<Vec<RelationPair>> = vec![Vec::new(); n];
        let mut traces = vec![VertexTrace::default(); n];

        let run_start = Instant::now();
        for &u in &order {
            let spoc = &gq.vertices[u];
            let vertex_start = Instant::now();
            traces[u].start_ns =
                u64::try_from((vertex_start - run_start).as_nanos()).unwrap_or(u64::MAX);
            // --- Query stage ---
            // A path-cache hit short-circuits the whole stage: the cached
            // relation pairs subsume the scope lookups, so neither
            // `matchVertex` runs (this is why path items are the heavier
            // savings in Fig. 10b).
            let cacheable = sub_binding[u].is_none() && obj_binding[u].is_none();
            let path_key = format!("{}|{}", spoc.subject.phrase, spoc.object.phrase);
            let cached_rp = if cacheable {
                cache.and_then(|c| c.path_get(&path_key))
            } else {
                None
            };
            traces[u].path_cache = match (cache, cacheable, cached_rp.is_some()) {
                (None, _, _) => CacheOutcome::NoCache,
                (Some(_), false, _) => CacheOutcome::Bypassed,
                (Some(_), true, true) => CacheOutcome::Hit,
                (Some(_), true, false) => CacheOutcome::Miss,
            };
            let rp: Arc<Vec<RelationPair>> = match cached_rp {
                Some(hit) => hit,
                None => {
                    let (subs, sub_trace) =
                        self.resolve_slot(&spoc.subject, sub_binding[u].as_deref(), cache);
                    let (objs, obj_trace) =
                        self.resolve_slot(&spoc.object, obj_binding[u].as_deref(), cache);
                    traces[u].sub = sub_trace;
                    traces[u].obj = obj_trace;
                    let sub_slice = subs.as_ref().map(|v| v.as_slice());
                    let obj_slice = objs.as_ref().map(|v| v.as_slice());
                    traces[u].sub_count = sub_slice.map_or(0, <[VertexId]>::len);
                    traces[u].obj_count = obj_slice.map_or(0, <[VertexId]>::len);
                    let fault = svqa_fault::draw(svqa_fault::site::RELATION_SCAN);
                    if fault == Some(svqa_fault::FaultKind::Error) {
                        return Err(ExecError::Injected);
                    }
                    if let Some(svqa_fault::FaultKind::Latency(ms)) = fault {
                        svqa_fault::apply_latency(ms, None);
                    }
                    let (mut rp, scanned) = if fault == Some(svqa_fault::FaultKind::DropResult) {
                        (Vec::new(), 0)
                    } else {
                        match (sub_slice, obj_slice) {
                            (Some(s), Some(o)) => self.matcher.relations_between_counted(s, o),
                            (Some(s), None) => self.matcher.relations_around_counted(s, true),
                            (None, Some(o)) => self.matcher.relations_around_counted(o, false),
                            (None, None) => (Vec::new(), 0),
                        }
                    };
                    if fault == Some(svqa_fault::FaultKind::CorruptLabel) {
                        // Corrupt the scan by reversing every relation's
                        // direction — structurally valid, semantically wrong.
                        for pair in &mut rp {
                            std::mem::swap(&mut pair.sub, &mut pair.obj);
                        }
                    }
                    traces[u].edges_scanned = scanned;
                    let rp = Arc::new(rp);
                    if cacheable {
                        if let Some(c) = cache {
                            c.path_put(&path_key, Arc::clone(&rp));
                        }
                    }
                    rp
                }
            };
            traces[u].rp_count = rp.len();

            // maxScore(L(c_p), T) over the labels actually present in RP.
            let mut ap = self.filter_by_predicate(&spoc.predicate, rp.as_ref().clone(), &mut traces[u]);
            traces[u].ap_after_predicate = ap.len();

            // Constraint (maxScore over 𝕊 + frequency aggregation).
            if let Some(cc) = &spoc.constraint {
                let constraint = Constraint::max_score(cc, self.matcher.embedder());
                let operand = Constraint::parse_operand(cc);
                let side = self.constrained_side(gq, u);
                ap = apply_constraint(self.graph, ap, constraint, side, operand);
                traces[u].constraint = Some(cc.clone());
            }
            traces[u].ap_count = ap.len();

            // --- Update stage ---
            for edge in gq.out_edges(u) {
                let provided: Vec<VertexId> = match edge.dependency {
                    Dependency::S2S | Dependency::O2S => {
                        dedup(ap.iter().map(|p| p.sub).collect())
                    }
                    Dependency::S2O | Dependency::O2O => {
                        dedup(ap.iter().map(|p| p.obj).collect())
                    }
                };
                let slot = match edge.dependency {
                    Dependency::S2S | Dependency::S2O => &mut sub_binding[edge.consumer],
                    Dependency::O2S | Dependency::O2O => &mut obj_binding[edge.consumer],
                };
                *slot = Some(match slot.take() {
                    // Two providers constrain the same slot: intersect.
                    Some(existing) => existing
                        .into_iter()
                        .filter(|v| provided.contains(v))
                        .collect(),
                    None => provided,
                });
            }
            aps[u] = ap;
            traces[u].elapsed_ns =
                u64::try_from(vertex_start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        }

        // --- getFinalanswer ---
        let answer_vertex = gq.answer_vertex();
        let ap = &aps[answer_vertex];
        let spoc = &gq.vertices[answer_vertex];
        let side = spoc.answer_role.unwrap_or(AnswerRole::Object);
        let answer_vertices: Vec<VertexId> = dedup(match side {
            AnswerRole::Subject => ap.iter().map(|p| p.sub).collect(),
            AnswerRole::Object => ap.iter().map(|p| p.obj).collect(),
        });
        let answer = match gq.question_type {
            // Every clause is a conjunct: the judgment holds only if every
            // vertex found supporting evidence (bindings already force
            // chained clauses; this additionally covers disconnected
            // conjuncts).
            QuestionType::Judgment => {
                Answer::Judgment(aps.iter().all(|a| !a.is_empty()))
            }
            // (answer construction continues below)
            QuestionType::Counting => {
                Answer::Count(self.count_scene_instances(&answer_vertices))
            }
            QuestionType::Reasoning => {
                Answer::entity_from_ranked(self.ranked_labels(&answer_vertices))
            }
        };
        Ok((answer, traces, aps))
    }

    /// Resolve a SPOC slot to its vertex scope: a propagated binding
    /// (expanded), a cached scope, or a fresh `matchVertex` + expansion.
    /// `None` = wildcard. The returned [`SlotTrace`] records which of
    /// those paths ran and the candidate counts before/after expansion.
    fn resolve_slot(
        &self,
        np: &NounPhrase,
        binding: Option<&[VertexId]>,
        cache: Option<&ShardedCache>,
    ) -> (Option<Arc<Vec<VertexId>>>, SlotTrace) {
        if let Some(bound) = binding {
            let expanded = self.matcher.expand_semantic(bound);
            let trace = SlotTrace {
                source: SlotSource::Binding,
                method: None,
                seed: bound.len(),
                expanded: expanded.len(),
            };
            return (Some(Arc::new(expanded)), trace);
        }
        if np.is_empty() {
            return (None, SlotTrace::default());
        }
        if let Some(cache) = cache {
            if let Some(hit) = cache.scope_get(&np.phrase) {
                let trace = SlotTrace {
                    source: SlotSource::CacheHit,
                    method: None,
                    seed: 0,
                    expanded: hit.len(),
                };
                return (Some(hit), trace);
            }
        }
        let (matched, method) = self.matcher.match_vertex_traced(&np.phrase, &np.head);
        let seed = matched.len();
        let expanded = Arc::new(self.matcher.expand_semantic(&matched));
        if let Some(cache) = cache {
            cache.scope_put(&np.phrase, Arc::clone(&expanded));
        }
        let trace = SlotTrace {
            source: SlotSource::Matched,
            method: Some(method),
            seed,
            expanded: expanded.len(),
        };
        (Some(expanded), trace)
    }

    /// The `maxScore`/`filter` pair of Algorithm 3 lines 8 and 10: find the
    /// edge label most similar to `c_p` among the labels present in `RP`,
    /// keep pairs within `filter_slack` of that best similarity.
    fn filter_by_predicate(
        &self,
        predicate: &str,
        rp: Vec<RelationPair>,
        trace: &mut VertexTrace,
    ) -> Vec<RelationPair> {
        if rp.is_empty() || predicate.is_empty() {
            return rp;
        }
        // Distinct labels present in RP (usually a handful).
        let mut label_sims: HashMap<&str, f32> = HashMap::new();
        for p in &rp {
            let label = self.graph.edge_label(p.edge).expect("edge exists");
            label_sims.entry(label).or_insert_with(|| {
                self.matcher.embedder().similarity(predicate, label)
            });
        }
        let (&best_label, &best_sim) = label_sims
            .iter()
            // NaN-safe and deterministic: ties on similarity break to the
            // lexicographically smallest label, not HashMap iteration order.
            .max_by(|a, b| a.1.total_cmp(b.1).then_with(|| b.0.cmp(a.0)))
            .expect("rp non-empty");
        trace.chosen_predicate = Some(best_label.to_owned());
        let cutoff = (best_sim - self.config.filter_slack)
            .max(self.config.min_predicate_similarity);
        rp.into_iter()
            .filter(|p| {
                let label = self.graph.edge_label(p.edge).expect("edge exists");
                label_sims[label] >= cutoff
            })
            .collect()
    }

    /// Which AP side a constraint aggregates over: the side this vertex
    /// provides downstream, else its answer side, else the subject.
    fn constrained_side(&self, gq: &QueryGraph, u: usize) -> AnswerRole {
        if let Some(edge) = gq.out_edges(u).next() {
            return match edge.dependency {
                Dependency::S2S | Dependency::O2S => AnswerRole::Subject,
                Dependency::S2O | Dependency::O2O => AnswerRole::Object,
            };
        }
        gq.vertices[u].answer_role.unwrap_or(AnswerRole::Subject)
    }

    /// Count distinct scene-instance vertices (those carrying an `image`
    /// property) — counting questions accumulate visual evidence, not
    /// knowledge-graph concepts.
    fn count_scene_instances(&self, vertices: &[VertexId]) -> usize {
        let instances = vertices
            .iter()
            .filter(|&&v| {
                self.graph
                    .vertex(v)
                    .is_some_and(|vx| vx.props().get("image").is_some())
            })
            .count();
        if instances > 0 {
            instances
        } else {
            vertices.len()
        }
    }

    /// Labels of the answer vertices ranked by support (count desc, then
    /// alphabetically).
    fn ranked_labels(&self, vertices: &[VertexId]) -> Vec<String> {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for &v in vertices {
            if let Some(label) = self.graph.vertex_label(v) {
                *counts.entry(label).or_insert(0) += 1;
            }
        }
        let mut ranked: Vec<(&str, usize)> = counts.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        ranked.into_iter().map(|(l, _)| l.to_owned()).collect()
    }

    /// The edge-label inventory `T` of the merged graph.
    pub fn edge_labels(&self) -> &[String] {
        &self.edge_labels
    }
}

/// Frequency-constraint application: group `AP` by the label of the
/// constrained side, keep the group(s) with max/min support.
fn apply_constraint(
    graph: &Graph,
    ap: Vec<RelationPair>,
    constraint: Constraint,
    side: AnswerRole,
    operand: Option<usize>,
) -> Vec<RelationPair> {
    // All constraints aggregate support per label of the constrained side.
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for p in &ap {
        let v = match side {
            AnswerRole::Subject => p.sub,
            AnswerRole::Object => p.obj,
        };
        if let Some(label) = graph.vertex_label(v) {
            *counts.entry(label).or_insert(0) += 1;
        }
    }
    let keep = |count: usize| -> bool {
        match constraint {
            Constraint::MostFrequent => Some(count) == counts.values().max().copied(),
            Constraint::LeastFrequent => Some(count) == counts.values().min().copied(),
            // Numeric comparators without an operand pass everything
            // through (a malformed question should degrade, not filter
            // arbitrarily).
            Constraint::AtLeast => operand.is_none_or(|n| count >= n),
            Constraint::AtMost => operand.is_none_or(|n| count <= n),
            Constraint::Exactly => operand.is_none_or(|n| count == n),
        }
    };
    if counts.is_empty() {
        return ap;
    }
    ap.into_iter()
        .filter(|p| {
            let v = match side {
                AnswerRole::Subject => p.sub,
                AnswerRole::Object => p.obj,
            };
            graph
                .vertex_label(v)
                .is_some_and(|l| counts.get(l).copied().is_some_and(&keep))
        })
        .collect()
}

fn dedup(mut v: Vec<VertexId>) -> Vec<VertexId> {
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use svqa_graph::{GraphBuilder, Properties, PropValue};
    use svqa_qparser::QueryGraphGenerator;

    /// Build a miniature merged graph realizing the paper's Example 1:
    /// a knowledge graph of Harry Potter characters plus scene instances
    /// across "images".
    fn example1_graph() -> Graph {
        let mut b = GraphBuilder::new();
        // Knowledge graph.
        b.triple("ginny weasley", "girlfriend of", "harry potter")
            .triple("cho chang", "girlfriend of", "harry potter")
            .triple("neville", "is a", "wizard")
            .triple("ron", "is a", "wizard")
            .triple("harry potter", "is a", "wizard")
            .triple("robe", "is a", "clothes")
            .triple("hat", "is a", "clothes")
            .triple("dog", "is a", "pet")
            .triple("cat", "is a", "pet")
            .triple("pet", "is a", "animal")
            .triple("bird", "is a", "animal");
        let mut g = b.build();

        // Scene instances: helper that adds an instance with image prop and
        // a same-as link to the KG entity.
        let add_instance = |g: &mut Graph, label: &str, image: i64| {
            let props: Properties = [("image", PropValue::Int(image))].into_iter().collect();
            let v = g.add_vertex_with_props(label, props);
            if let Some(&kg) = g.vertices_with_label(label).first() {
                if kg != v {
                    g.add_edge(v, kg, "same as").unwrap();
                    g.add_edge(kg, v, "same as").unwrap();
                }
            }
            v
        };

        // Image 1: neville near ginny. Image 2: neville near ginny.
        // Image 3: ron near cho. Image 4: neville wearing a robe.
        let n1 = add_instance(&mut g, "neville", 1);
        let g1 = add_instance(&mut g, "ginny weasley", 1);
        g.add_edge(n1, g1, "near").unwrap();
        let n2 = add_instance(&mut g, "neville", 2);
        let g2 = add_instance(&mut g, "ginny weasley", 2);
        g.add_edge(n2, g2, "near").unwrap();
        let r3 = add_instance(&mut g, "ron", 3);
        let c3 = add_instance(&mut g, "cho chang", 3);
        g.add_edge(r3, c3, "near").unwrap();
        let n4 = add_instance(&mut g, "neville", 4);
        let robe4 = add_instance(&mut g, "robe", 4);
        g.add_edge(n4, robe4, "wearing").unwrap();
        // Distractor: ron wearing a hat.
        let r5 = add_instance(&mut g, "ron", 5);
        let hat5 = add_instance(&mut g, "hat", 5);
        g.add_edge(r5, hat5, "wearing").unwrap();
        g
    }

    fn run(graph: &Graph, question: &str) -> Answer {
        let gq = QueryGraphGenerator::new().generate(question).unwrap();
        QueryGraphExecutor::new(graph).execute(&gq).unwrap()
    }

    #[test]
    fn example1_end_to_end() {
        // "What kind of clothes are worn by the wizard who is most
        // frequently hanging out with Harry Potter's girlfriend?"
        // Ginny/Cho are HP's girlfriends; neville co-appears with them
        // twice, ron once → neville; neville wears a robe.
        let g = example1_graph();
        let a = run(
            &g,
            "What kind of clothes are worn by the wizard who is most frequently hanging out with Harry Potter's girlfriend?",
        );
        assert_eq!(a.entity_label(), Some("robe"), "{a:?}");
    }

    #[test]
    fn judgment_yes_and_no() {
        let g = example1_graph();
        let yes = run(&g, "Does the wizard appear near Harry Potter's girlfriend?");
        assert!(yes.is_yes(), "{yes:?}");
        let no = run(&g, "Does the dog appear near Harry Potter's girlfriend?");
        assert_eq!(no, Answer::Judgment(false));
    }

    #[test]
    fn counting_counts_scene_instances() {
        let g = example1_graph();
        // Ginny AND Cho are Harry's girlfriends (Example 1); wizard
        // instances near either: n1, n2 (near ginny) and r3 (near cho).
        let a = run(&g, "How many wizards are near Harry Potter's girlfriend?");
        assert_eq!(a, Answer::Count(3), "{a:?}");
    }

    #[test]
    fn reasoning_without_constraint_ranks_by_support() {
        let g = example1_graph();
        let a = run(&g, "What kind of clothes are worn by the wizard?");
        // Both robe and hat are worn by wizards; ranked answer includes
        // both with a deterministic top.
        match a {
            Answer::Entity { label, alternatives } => {
                let mut all = vec![label];
                all.extend(alternatives);
                all.sort();
                assert_eq!(all, vec!["hat", "robe"]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_query_graph_is_error() {
        let g = example1_graph();
        let gq = QueryGraph {
            vertices: vec![],
            edges: vec![],
            question_type: QuestionType::Reasoning,
            question: String::new(),
        };
        assert_eq!(
            QueryGraphExecutor::new(&g).execute(&gq),
            Err(ExecError::EmptyQueryGraph)
        );
    }

    #[test]
    fn unknown_entity_yields_unknown() {
        let g = example1_graph();
        let a = run(&g, "What kind of clothes are worn by the elephant?");
        assert_eq!(a, Answer::Unknown);
    }

    #[test]
    fn cache_speeds_up_and_preserves_answers() {
        use crate::cache::{CacheGranularity, EvictionPolicy};
        let g = example1_graph();
        let gen = QueryGraphGenerator::new();
        let exec = QueryGraphExecutor::new(&g);
        let questions = [
            "What kind of clothes are worn by the wizard?",
            "What kind of clothes are worn by the wizard?",
            "Does the wizard appear near Harry Potter's girlfriend?",
        ];
        let cache = ShardedCache::new(CacheGranularity::Both, EvictionPolicy::Lfu, 100, 4);
        let mut cached_answers = Vec::new();
        for q in &questions {
            let gq = gen.generate(q).unwrap();
            cached_answers.push(exec.execute_cached(&gq, Some(&cache)).unwrap().0);
        }
        let mut plain_answers = Vec::new();
        for q in &questions {
            let gq = gen.generate(q).unwrap();
            plain_answers.push(exec.execute(&gq).unwrap());
        }
        assert_eq!(cached_answers, plain_answers);
        let stats = cache.stats();
        assert!(stats.scope_hits > 0, "expected scope hits, stats={stats:?}");
        assert!(stats.path_hits > 0, "expected path hits");
    }

    #[test]
    fn numeric_constraints_filter_by_support() {
        // neville appears near girlfriends twice (images 1+2), ron once
        // (image 3). "at least 2" keeps only neville's pairs; "exactly 1"
        // keeps only ron's.
        let g = example1_graph();
        let build = |constraint: &str| {
            svqa_qparser::QueryBuilder::counting()
                .clause("wizard", "near", "girlfriend")
                .constraint(constraint)
                .answer_is_subject()
                .wildcard_subject_clause("girlfriend of", "harry potter")
                .depend(1, 0, Dependency::O2S)
                .build()
                .unwrap()
        };
        let exec = QueryGraphExecutor::new(&g);
        let at_least_2 = exec.execute(&build("at least 2")).unwrap();
        assert_eq!(at_least_2, Answer::Count(2), "{at_least_2:?}"); // n1, n2
        let exactly_1 = exec.execute(&build("exactly 1")).unwrap();
        assert_eq!(exactly_1, Answer::Count(1), "{exactly_1:?}"); // r3
        let at_most_1 = exec.execute(&build("at most 1")).unwrap();
        assert_eq!(at_most_1, Answer::Count(1), "{at_most_1:?}");
    }

    #[test]
    fn traces_record_pipeline_sizes() {
        let g = example1_graph();
        let gq = QueryGraphGenerator::new()
            .generate("What kind of clothes are worn by the wizard?")
            .unwrap();
        let (_, traces) = QueryGraphExecutor::new(&g)
            .execute_cached(&gq, None)
            .unwrap();
        assert_eq!(traces.len(), 1);
        assert!(traces[0].sub_count > 0);
        assert!(traces[0].obj_count > 0);
        assert_eq!(traces[0].chosen_predicate.as_deref(), Some("wearing"));
        assert!(traces[0].ap_count > 0);
    }
}
