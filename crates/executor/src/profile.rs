//! `EXPLAIN ANALYZE` for Algorithm 3.
//!
//! An [`ExecutionProfile`] is the plan-level story of one query: for every
//! SPOC quadruple, the candidate-set sizes before/after each pruning step
//! (matchVertex seed → semantic expansion → relation pairs → predicate
//! filter → constraint), how the key-centric cache behaved (scope/path
//! hit, miss, bypass), how many merged-graph edges were scanned, and the
//! per-quadruple wall time — plus the execution order and the scheduler's
//! rationale when the query ran inside a batch.
//!
//! Two renderings: [`render_tree`](ExecutionProfile::render_tree) is the
//! human-readable `EXPLAIN ANALYZE` text behind `svqa-cli explain`;
//! [`to_json_pretty`](ExecutionProfile::to_json_pretty) is the
//! machine-readable form pushed into the telemetry profile ring and served
//! at `/profiles/recent`. [`query_trace`](ExecutionProfile::query_trace)
//! bridges to the Chrome-trace exporter.
//!
//! This is *plan* provenance (how the answer was computed); the
//! [`explain`](crate::explain) module is *answer* provenance (which merged
//! graph facts support it).

use crate::answer::Answer;
use crate::cache::CacheStats;
use crate::executor::{CacheOutcome, SlotSource, SlotTrace, VertexTrace};
use crate::explain::Explanation;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use svqa_qparser::QueryGraph;
use svqa_telemetry::{stage, QueryTrace, StageTiming};

/// The plan node for one SPOC quadruple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuadPlan {
    /// Vertex index in the query graph (the `v<n>` in rendered plans).
    pub index: usize,
    /// The quadruple rendered as `⟨subject, predicate, object⟩`.
    pub spoc: String,
    /// Everything the executor recorded while processing it.
    pub trace: VertexTrace,
}

/// Why the scheduler placed this query where it did in a batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleInfo {
    /// 0-based rank in the chosen execution order.
    pub position: usize,
    /// Number of queries in the batch.
    pub batch_size: usize,
    /// The frequency-ratio score (§V-B): sum of this query's vertex-key
    /// frequency ratios across the batch. Higher runs earlier.
    pub score: f64,
    /// Whether frequency ordering was active (false = FIFO ablation).
    pub frequency_sorted: bool,
}

/// The full `EXPLAIN ANALYZE` document for one executed query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExecutionProfile {
    /// The question text.
    pub question: String,
    /// Question type name (`Judgment` / `Counting` / `Reasoning`).
    pub question_type: String,
    /// The answer, rendered.
    pub answer: String,
    /// Execution order over the quadruples (vertex indices).
    pub order: Vec<usize>,
    /// Per-quadruple plans, in execution order.
    pub quads: Vec<QuadPlan>,
    /// Stage timing tree: the `match` stage with one child per quadruple;
    /// upstream stages (parse) are prepended by the pipeline.
    pub stages: Vec<StageTiming>,
    /// Total profiled time across the recorded stages, ns.
    pub total_ns: u64,
    /// Cache traffic this query produced (delta, not the shared total).
    pub cache: CacheStats,
    /// Batch-scheduling rationale, when the query ran inside a batch.
    #[serde(default)]
    pub schedule: Option<ScheduleInfo>,
    /// Non-fatal lint diagnostics (warnings/hints) the query-graph linter
    /// raised before execution; error-severity findings short-circuit and
    /// never reach a profile.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub lint: Vec<svqa_qlint::Diagnostic>,
}

/// What `execute_profiled` returns: the answer plus both provenance
/// artifacts (the plan profile and the supporting facts).
#[derive(Debug, Clone)]
pub struct ProfiledRun {
    /// The answer.
    pub answer: Answer,
    /// Plan-level profile (this module).
    pub profile: ExecutionProfile,
    /// Answer-level provenance (support facts).
    pub explanation: Explanation,
}

impl ExecutionProfile {
    /// Assemble a profile from one `run()`'s outputs. `traces` is indexed
    /// by vertex; `order` is the execution order actually used.
    pub fn assemble(
        gq: &QueryGraph,
        answer: &Answer,
        order: Vec<usize>,
        traces: Vec<VertexTrace>,
        total_ns: u64,
        cache: CacheStats,
    ) -> ExecutionProfile {
        let quads: Vec<QuadPlan> = order
            .iter()
            .map(|&u| QuadPlan {
                index: u,
                spoc: gq.vertices[u].display(),
                trace: traces[u].clone(),
            })
            .collect();
        let mut match_stage = StageTiming::leaf(stage::MATCH, 0, total_ns);
        for q in &quads {
            match_stage.push_child(StageTiming::leaf(
                format!("v{} {}", q.index, q.spoc),
                q.trace.start_ns,
                q.trace.elapsed_ns,
            ));
        }
        ExecutionProfile {
            question: gq.question.clone(),
            question_type: gq.question_type.name().to_owned(),
            answer: answer.to_string(),
            order,
            quads,
            stages: vec![match_stage],
            total_ns,
            cache,
            schedule: None,
            lint: Vec::new(),
        }
    }

    /// Prepend an upstream stage (e.g. `parse`) that ran before the
    /// recorded ones: existing stages shift right, the total grows.
    pub fn prepend_stage(&mut self, stage: &str, nanos: u64) {
        for s in &mut self.stages {
            s.start_ns += nanos;
        }
        self.stages.insert(0, StageTiming::leaf(stage, 0, nanos));
        self.total_ns += nanos;
    }

    /// Attach the batch-scheduling rationale.
    pub fn set_schedule(&mut self, info: ScheduleInfo) {
        self.schedule = Some(info);
    }

    /// Attach the linter's non-fatal diagnostics.
    pub fn set_lint(&mut self, diagnostics: Vec<svqa_qlint::Diagnostic>) {
        self.lint = diagnostics;
    }

    /// The profile as a [`QueryTrace`] (stage tree + cache stats), ready
    /// for [`ChromeTrace`](svqa_telemetry::ChromeTrace).
    pub fn query_trace(&self) -> QueryTrace {
        let mut t = QueryTrace::new(&self.question);
        for s in &self.stages {
            t.record_stage_tree(s.clone());
        }
        t.cache = self.cache;
        t
    }

    /// Machine-readable JSON.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("profile serializes infallibly")
    }

    /// The profile as a JSON value (for the telemetry profile ring).
    pub fn to_json_value(&self) -> serde_json::Value {
        serde_json::to_value(self)
    }

    /// The human-readable `EXPLAIN ANALYZE` tree.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "EXPLAIN ANALYZE  {}", self.question);
        let _ = writeln!(
            out,
            "  type: {}   answer: {}   total: {}",
            self.question_type,
            self.answer,
            fmt_ns(self.total_ns)
        );
        let _ = writeln!(
            out,
            "  cache: scope {}/{} hits, path {}/{} hits",
            self.cache.scope_hits,
            self.cache.scope_hits + self.cache.scope_misses,
            self.cache.path_hits,
            self.cache.path_hits + self.cache.path_misses,
        );
        if let Some(s) = &self.schedule {
            let _ = writeln!(
                out,
                "  schedule: rank {}/{} ({}), frequency score {:.4}",
                s.position + 1,
                s.batch_size,
                if s.frequency_sorted {
                    "frequency-sorted"
                } else {
                    "fifo"
                },
                s.score,
            );
        }
        for s in &self.stages {
            if s.children.is_empty() {
                let _ = writeln!(out, "  stage {}: {}", s.stage, fmt_ns(s.nanos));
            }
        }
        if !self.lint.is_empty() {
            let _ = writeln!(out, "  lint:");
            for d in &self.lint {
                let _ = writeln!(out, "    {d}");
            }
        }
        let order: Vec<String> = self.order.iter().map(|u| format!("v{u}")).collect();
        let _ = writeln!(out, "  plan (execution order: {}):", order.join(" → "));
        for (pos, q) in self.quads.iter().enumerate() {
            let _ = writeln!(
                out,
                "  #{}  v{} {}   {}",
                pos + 1,
                q.index,
                q.spoc,
                fmt_ns(q.trace.elapsed_ns)
            );
            let t = &q.trace;
            if t.path_cache == CacheOutcome::Hit {
                let _ = writeln!(
                    out,
                    "      ├─ path cache: hit (scope lookups and edge scan skipped)"
                );
            } else {
                let _ = writeln!(out, "      ├─ sub: {}", slot_line(&t.sub));
                let _ = writeln!(out, "      ├─ obj: {}", slot_line(&t.obj));
                let _ = writeln!(
                    out,
                    "      ├─ path cache: {}   edges scanned: {}",
                    t.path_cache, t.edges_scanned
                );
            }
            let mut pairs = format!(
                "pairs: {} RP → {} after predicate",
                t.rp_count, t.ap_after_predicate
            );
            if let Some(p) = &t.chosen_predicate {
                let _ = write!(pairs, " \"{p}\"");
            }
            if let Some(c) = &t.constraint {
                let _ = write!(pairs, " → {} after constraint \"{}\"", t.ap_count, c);
            }
            let _ = writeln!(out, "      └─ {pairs}   (AP = {})", t.ap_count);
        }
        out
    }
}

fn slot_line(s: &SlotTrace) -> String {
    match s.source {
        SlotSource::Wildcard => "wildcard".to_owned(),
        SlotSource::Binding => format!(
            "binding: {} bound → {} after expansion",
            s.seed, s.expanded
        ),
        SlotSource::CacheHit => format!("scope-cache hit → {} candidates", s.expanded),
        SlotSource::Matched => format!(
            "matched via {}: {} seed → {} after expansion",
            s.method.map(|m| m.to_string()).unwrap_or_default(),
            s.seed,
            s.expanded
        ),
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{CacheGranularity, EvictionPolicy, ShardedCache};
    use crate::executor::QueryGraphExecutor;
    use svqa_graph::{Graph, GraphBuilder};
    use svqa_qparser::QueryGraphGenerator;

    fn graph() -> Graph {
        let mut b = GraphBuilder::new();
        b.triple("dog", "is a", "pet").triple("cat", "is a", "pet");
        let mut g = b.build();
        let d = g.add_vertex("dog");
        let c = g.add_vertex("car");
        g.add_edge(d, c, "in").unwrap();
        let kg_dog = g.vertices_with_label("dog")[0];
        g.add_edge(d, kg_dog, "same as").unwrap();
        g.add_edge(kg_dog, d, "same as").unwrap();
        g
    }

    fn profiled(
        g: &Graph,
        question: &str,
        cache: Option<&ShardedCache>,
    ) -> ProfiledRun {
        let gq = QueryGraphGenerator::new().generate(question).unwrap();
        QueryGraphExecutor::new(g)
            .execute_profiled(&gq, cache)
            .unwrap()
    }

    #[test]
    fn profile_records_pruning_funnel_and_timings() {
        let g = graph();
        let run = profiled(&g, "Does the dog appear in the car?", None);
        assert_eq!(run.answer, Answer::Judgment(true));
        let p = &run.profile;
        assert_eq!(p.question, "Does the dog appear in the car?");
        assert_eq!(p.question_type, "Judgment");
        assert_eq!(p.answer, "Yes");
        assert_eq!(p.quads.len(), 1);
        let t = &p.quads[0].trace;
        assert_eq!(t.sub.source, SlotSource::Matched);
        assert!(t.sub.seed > 0 && t.sub.expanded >= t.sub.seed);
        assert!(t.edges_scanned >= t.rp_count);
        assert!(t.ap_after_predicate >= t.ap_count);
        assert_eq!(t.path_cache, CacheOutcome::NoCache);
        assert!(p.total_ns > 0);
        // The match stage carries one child per quadruple.
        assert_eq!(p.stages.len(), 1);
        assert_eq!(p.stages[0].children.len(), 1);
    }

    #[test]
    fn cache_outcomes_flip_from_miss_to_hit() {
        let g = graph();
        let cache = ShardedCache::new(CacheGranularity::Both, EvictionPolicy::Lfu, 100, 4);
        let cold = profiled(&g, "Does the dog appear in the car?", Some(&cache));
        assert_eq!(cold.profile.quads[0].trace.path_cache, CacheOutcome::Miss);
        assert!(cold.profile.cache.path_misses > 0);
        let warm = profiled(&g, "Does the dog appear in the car?", Some(&cache));
        assert_eq!(warm.profile.quads[0].trace.path_cache, CacheOutcome::Hit);
        // Delta attribution: the warm run must not re-count cold misses.
        assert_eq!(warm.profile.cache.path_misses, 0);
        assert!(warm.profile.cache.path_hits > 0);
        assert_eq!(cold.answer, warm.answer);
    }

    #[test]
    fn render_tree_shows_counts_cache_and_timing() {
        let g = graph();
        let cache = ShardedCache::new(CacheGranularity::Both, EvictionPolicy::Lfu, 100, 4);
        let run = profiled(&g, "Does the dog appear in the car?", Some(&cache));
        let text = run.profile.render_tree();
        assert!(text.contains("EXPLAIN ANALYZE"), "{text}");
        assert!(text.contains("answer: Yes"), "{text}");
        assert!(text.contains("path cache: miss"), "{text}");
        assert!(text.contains("edges scanned:"), "{text}");
        assert!(text.contains("matched via"), "{text}");
        assert!(text.contains("after predicate"), "{text}");
        assert!(text.contains("plan (execution order: v0)"), "{text}");
    }

    #[test]
    fn json_round_trips_and_prepend_shifts_stages() {
        let g = graph();
        let mut p = profiled(&g, "How many dogs are in the car?", None).profile;
        let match_ns = p.total_ns;
        p.prepend_stage(stage::PARSE, 5_000);
        p.set_schedule(ScheduleInfo {
            position: 0,
            batch_size: 3,
            score: 0.5,
            frequency_sorted: true,
        });
        assert_eq!(p.total_ns, match_ns + 5_000);
        assert_eq!(p.stages[0].stage, stage::PARSE);
        assert_eq!(p.stages[1].start_ns, 5_000);

        let back: ExecutionProfile = serde_json::from_str(&p.to_json_pretty()).unwrap();
        assert_eq!(back.question, p.question);
        assert_eq!(back.quads[0].trace, p.quads[0].trace);
        assert_eq!(back.schedule, p.schedule);
        assert!(back.render_tree().contains("rank 1/3"));

        // The trace bridge carries the stage tree across.
        let qt = p.query_trace();
        assert_eq!(qt.stages.len(), 2);
        assert!(qt.stages[1].node_count() >= 2);
    }
}
