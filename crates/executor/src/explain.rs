//! Answer provenance.
//!
//! A cross-source answer is only as trustworthy as its evidence. This
//! module renders the answer vertex's accepted relation pairs (`AP`) into
//! human-readable *support facts* — which images (or knowledge-graph
//! entries) back the answer, through which matched triple. The paper's
//! Example 5 walks exactly this evidence chain by hand; here it is a
//! first-class API (`QueryGraphExecutor::execute_explained`).

use crate::matching::RelationPair;
use serde::{Deserialize, Serialize};
use svqa_graph::Graph;

/// One piece of supporting evidence behind an answer.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SupportFact {
    /// Image id when the fact is visual evidence; `None` for
    /// knowledge-graph facts.
    pub image: Option<i64>,
    /// Subject label.
    pub subject: String,
    /// Matched edge label.
    pub predicate: String,
    /// Object label.
    pub object: String,
}

impl SupportFact {
    /// Render like the paper's triple notation.
    pub fn display(&self) -> String {
        match self.image {
            Some(img) => format!(
                "{{{}, {}, {}}} @ image {}",
                self.subject, self.predicate, self.object, img
            ),
            None => format!(
                "{{{}, {}, {}}} @ knowledge graph",
                self.subject, self.predicate, self.object
            ),
        }
    }
}

/// The full explanation of an answer: per-clause support facts, clause 0
/// (the answer clause) first.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Explanation {
    /// Per-query-graph-vertex supporting facts.
    pub per_vertex: Vec<Vec<SupportFact>>,
}

impl Explanation {
    /// Build from the executor's accepted pairs.
    pub(crate) fn from_aps(graph: &Graph, aps: &[Vec<RelationPair>]) -> Self {
        let per_vertex = aps
            .iter()
            .map(|ap| {
                let mut facts: Vec<SupportFact> = ap
                    .iter()
                    .map(|p| SupportFact {
                        image: graph
                            .vertex(p.sub)
                            .and_then(|v| v.props().get("image"))
                            .and_then(|x| x.as_int())
                            .or_else(|| {
                                graph
                                    .vertex(p.obj)
                                    .and_then(|v| v.props().get("image"))
                                    .and_then(|x| x.as_int())
                            }),
                        subject: graph.vertex_label(p.sub).unwrap_or("?").to_owned(),
                        predicate: graph.edge_label(p.edge).unwrap_or("?").to_owned(),
                        object: graph.vertex_label(p.obj).unwrap_or("?").to_owned(),
                    })
                    .collect();
                facts.sort();
                facts.dedup();
                facts
            })
            .collect();
        Explanation { per_vertex }
    }

    /// Facts supporting the final answer (vertex 0 by query-graph
    /// convention; falls back to the first non-empty vertex).
    pub fn answer_support(&self) -> &[SupportFact] {
        self.per_vertex
            .first()
            .filter(|f| !f.is_empty())
            .or_else(|| self.per_vertex.iter().find(|f| !f.is_empty()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Distinct image ids cited anywhere in the explanation.
    pub fn cited_images(&self) -> Vec<i64> {
        let mut ids: Vec<i64> = self
            .per_vertex
            .iter()
            .flatten()
            .filter_map(|f| f.image)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }

    /// Total number of support facts.
    pub fn fact_count(&self) -> usize {
        self.per_vertex.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::QueryGraphExecutor;
    use svqa_graph::{Properties, PropValue};
    use svqa_qparser::QueryGraphGenerator;

    fn world() -> Graph {
        let mut g = Graph::new();
        let kg_dog = g.add_vertex("dog");
        let props: Properties = [("image", PropValue::Int(7))].into_iter().collect();
        let scene_dog = g.add_vertex_with_props("dog", props);
        let props: Properties = [("image", PropValue::Int(7))].into_iter().collect();
        let car = g.add_vertex_with_props("car", props);
        g.add_edge(scene_dog, car, "in").unwrap();
        g.add_edge(scene_dog, kg_dog, "same as").unwrap();
        g.add_edge(kg_dog, scene_dog, "same as").unwrap();
        g
    }

    #[test]
    fn explanation_cites_the_supporting_image() {
        let g = world();
        let gq = QueryGraphGenerator::new()
            .generate("Does the dog appear in the car?")
            .unwrap();
        let ex = QueryGraphExecutor::new(&g);
        let (answer, explanation) = ex.execute_explained(&gq).unwrap();
        assert!(answer.is_yes());
        assert_eq!(explanation.cited_images(), vec![7]);
        let support = explanation.answer_support();
        assert_eq!(support.len(), 1);
        assert_eq!(support[0].predicate, "in");
        assert!(support[0].display().contains("image 7"));
    }

    #[test]
    fn negative_answers_have_no_support() {
        let g = world();
        let gq = QueryGraphGenerator::new()
            .generate("Does the cat appear in the car?")
            .unwrap();
        let (answer, explanation) = QueryGraphExecutor::new(&g)
            .execute_explained(&gq)
            .unwrap();
        assert_eq!(answer, crate::Answer::Judgment(false));
        assert_eq!(explanation.fact_count(), 0);
        assert!(explanation.answer_support().is_empty());
    }

    #[test]
    fn kg_facts_have_no_image() {
        let fact = SupportFact {
            image: None,
            subject: "ginny weasley".into(),
            predicate: "girlfriend of".into(),
            object: "harry potter".into(),
        };
        assert!(fact.display().contains("knowledge graph"));
    }
}
