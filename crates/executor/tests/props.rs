//! Property-based tests for the executor: cache invariants, matcher
//! behaviour, and answer-shape guarantees.

use std::sync::Arc;
use proptest::prelude::*;
use svqa_executor::cache::{CacheGranularity, EvictionPolicy, KeyCentricCache, ShardedCache};
use svqa_executor::executor::QueryGraphExecutor;
use svqa_executor::matching::VertexMatcher;
use svqa_executor::Answer;
use svqa_graph::{Graph, VertexId};
use svqa_qparser::{NounPhrase, QueryGraph, QuestionType, Spoc};

/// A cache operation script.
#[derive(Debug, Clone)]
enum Op {
    ScopeGet(u8),
    ScopePut(u8, u8),
    PathGet(u8),
    PathPut(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..16).prop_map(Op::ScopeGet),
        (0u8..16, 0u8..8).prop_map(|(k, v)| Op::ScopePut(k, v)),
        (0u8..16).prop_map(Op::PathGet),
        (0u8..16).prop_map(Op::PathPut),
    ]
}

proptest! {
    #[test]
    fn cache_never_exceeds_pool_size(
        ops in proptest::collection::vec(arb_op(), 0..200),
        pool in 0usize..12,
        lfu in any::<bool>(),
    ) {
        let policy = if lfu { EvictionPolicy::Lfu } else { EvictionPolicy::Lru };
        let mut cache = KeyCentricCache::new(CacheGranularity::Both, policy, pool);
        for op in ops {
            match op {
                Op::ScopeGet(k) => { cache.scope_get(&format!("s{k}")); }
                Op::ScopePut(k, v) => {
                    cache.scope_put(&format!("s{k}"), Arc::new(vec![VertexId::from_index(v as usize)]));
                }
                Op::PathGet(k) => { cache.path_get(&format!("p{k}")); }
                Op::PathPut(k) => { cache.path_put(&format!("p{k}"), Arc::new(vec![])); }
            }
            prop_assert!(cache.len() <= pool, "len {} > pool {}", cache.len(), pool);
        }
        // Value accounting never goes negative/overflows.
        let _ = cache.value_bytes();
    }

    #[test]
    fn cache_get_returns_last_put(
        key in 0u8..8,
        values in proptest::collection::vec(0u8..32, 1..10),
    ) {
        let mut cache = KeyCentricCache::new(CacheGranularity::Scope, EvictionPolicy::Lfu, 64);
        let k = format!("s{key}");
        let mut last = None;
        for v in values {
            let stored = Arc::new(vec![VertexId::from_index(v as usize)]);
            cache.scope_put(&k, Arc::clone(&stored));
            last = Some(stored);
        }
        prop_assert_eq!(cache.scope_get(&k), last);
    }

    #[test]
    fn disabled_granularities_store_nothing(keys in proptest::collection::vec(0u8..8, 0..20)) {
        let mut cache = KeyCentricCache::new(CacheGranularity::Scope, EvictionPolicy::Lru, 16);
        for k in &keys {
            cache.path_put(&format!("p{}", k), Arc::new(vec![]));
        }
        for k in &keys {
            let got = cache.path_get(&format!("p{}", k));
            prop_assert!(got.is_none());
        }
    }
}

proptest! {
    /// Overwriting a key that is already cached must not evict anything
    /// and must keep the entry's LFU frequency history (the seed version
    /// called `make_room()` unconditionally and re-inserted with freq 1).
    #[test]
    fn overwrite_preserves_frequency_and_length(
        pool in 1usize..6,
        touches in 0usize..5,
    ) {
        let mut cache = KeyCentricCache::new(CacheGranularity::Scope, EvictionPolicy::Lfu, pool);
        for i in 0..pool {
            cache.scope_put(&format!("k{i}"), Arc::new(vec![]));
        }
        for _ in 0..touches {
            prop_assert!(cache.scope_get("k0").is_some());
        }
        let freq_before = cache.scope_frequency("k0").unwrap();
        let len_before = cache.len();

        let replacement = Arc::new(vec![VertexId::from_index(9)]);
        cache.scope_put("k0", Arc::clone(&replacement));

        prop_assert_eq!(cache.scope_frequency("k0"), Some(freq_before));
        prop_assert_eq!(cache.len(), len_before);
        prop_assert_eq!(cache.scope_get("k0"), Some(replacement));
        // No unrelated entry paid for the overwrite.
        for i in 1..pool {
            prop_assert!(cache.scope_frequency(&format!("k{i}")).is_some(), "k{} evicted", i);
        }
    }

    /// When a fresh insert forces an eviction, the victim is exactly the
    /// policy minimum: min (freq, last_used) under LFU, min (last_used,
    /// freq) under LRU. Ticks are unique, so the minimum is unambiguous
    /// and the model predicts the victim exactly.
    #[test]
    fn eviction_picks_the_policy_minimum(
        pool in 2usize..8,
        gets in proptest::collection::vec(0usize..8, 0..40),
        lfu in any::<bool>(),
    ) {
        let policy = if lfu { EvictionPolicy::Lfu } else { EvictionPolicy::Lru };
        let mut cache = KeyCentricCache::new(CacheGranularity::Scope, policy, pool);
        // Model: (key, freq, last_used), mirroring the cache's tick clock
        // (every get and put advances it by one).
        let mut tick = 0u64;
        let mut model: Vec<(String, u64, u64)> = Vec::new();
        for i in 0..pool {
            let k = format!("k{i}");
            tick += 1;
            cache.scope_put(&k, Arc::new(vec![]));
            model.push((k, 1, tick));
        }
        for g in gets {
            let idx = g % pool;
            tick += 1;
            prop_assert!(cache.scope_get(&model[idx].0).is_some());
            model[idx].1 += 1;
            model[idx].2 = tick;
        }

        cache.scope_put("fresh", Arc::new(vec![]));

        let victim = model
            .iter()
            .min_by_key(|(_, f, t)| match policy {
                EvictionPolicy::Lfu => (*f, *t),
                EvictionPolicy::Lru => (*t, *f),
            })
            .unwrap()
            .0
            .clone();
        prop_assert!(cache.scope_frequency(&victim).is_none(), "{} should be the victim", victim);
        prop_assert!(cache.scope_frequency("fresh").is_some());
        for (k, _, _) in model.iter().filter(|(k, _, _)| *k != victim) {
            prop_assert!(cache.scope_frequency(k).is_some(), "{} wrongly evicted", k);
        }
        prop_assert_eq!(cache.len(), pool);
    }

    /// The sharded cache obeys the same global invariants as a single
    /// pool: total length never exceeds the budget, and any key still
    /// resident returns the last value put for it (routing is stable).
    #[test]
    fn sharded_cache_respects_budget_and_routing(
        ops in proptest::collection::vec(arb_op(), 0..200),
        pool in 0usize..16,
        shards in 1usize..6,
        lfu in any::<bool>(),
    ) {
        let policy = if lfu { EvictionPolicy::Lfu } else { EvictionPolicy::Lru };
        let cache = ShardedCache::new(CacheGranularity::Both, policy, pool, shards);
        let mut last_scope: std::collections::HashMap<String, Arc<Vec<VertexId>>> =
            std::collections::HashMap::new();
        for op in ops {
            match op {
                Op::ScopeGet(k) => { cache.scope_get(&format!("s{k}")); }
                Op::ScopePut(k, v) => {
                    let key = format!("s{k}");
                    let value = Arc::new(vec![VertexId::from_index(v as usize)]);
                    cache.scope_put(&key, Arc::clone(&value));
                    last_scope.insert(key, value);
                }
                Op::PathGet(k) => { cache.path_get(&format!("p{k}")); }
                Op::PathPut(k) => { cache.path_put(&format!("p{k}"), Arc::new(vec![])); }
            }
            prop_assert!(cache.len() <= pool, "len {} > pool {}", cache.len(), pool);
            // Shard budgets keep summing to the pool budget and no key
            // leaks into a foreign shard, after every single operation.
            cache.debug_assert_invariants();
        }
        for (key, value) in &last_scope {
            if let Some(got) = cache.scope_get(key) {
                prop_assert_eq!(&got, value, "stale value for {}", key);
            }
        }
        // Merged stats account for every lookup made above.
        let _ = cache.stats().total_lookups();
        let _ = cache.value_bytes();
    }
}

/// A small random merged-graph-like world for executor properties.
fn arb_world() -> impl Strategy<Value = Graph> {
    proptest::collection::vec((0usize..6, 0usize..6, 0usize..4), 1..30).prop_map(|edges| {
        const LABELS: [&str; 6] = ["dog", "cat", "man", "grass", "car", "hat"];
        const PREDS: [&str; 4] = ["on", "near", "in", "wearing"];
        let mut g = Graph::new();
        let ids: Vec<_> = LABELS.iter().map(|l| g.add_vertex(*l)).collect();
        for (a, b, p) in edges {
            if a != b {
                g.add_edge(ids[a], ids[b], PREDS[p]).unwrap();
            }
        }
        g
    })
}

fn spoc(s: &str, p: &str, o: &str) -> Spoc {
    Spoc {
        subject: if s.is_empty() {
            NounPhrase::default()
        } else {
            NounPhrase::simple(s)
        },
        predicate: p.to_owned(),
        object: if o.is_empty() {
            NounPhrase::default()
        } else {
            NounPhrase::simple(o)
        },
        ..Spoc::default()
    }
}

proptest! {
    #[test]
    fn judgment_answers_are_always_boolean(
        g in arb_world(),
        si in 0usize..6, pi in 0usize..4, oi in 0usize..6,
    ) {
        const LABELS: [&str; 6] = ["dog", "cat", "man", "grass", "car", "hat"];
        const PREDS: [&str; 4] = ["on", "near", "in", "wearing"];
        let gq = QueryGraph {
            vertices: vec![spoc(LABELS[si], PREDS[pi], LABELS[oi])],
            edges: vec![],
            question_type: QuestionType::Judgment,
            question: String::new(),
        };
        let ex = QueryGraphExecutor::new(&g);
        let a = ex.execute(&gq).unwrap();
        prop_assert!(matches!(a, Answer::Judgment(_)));
    }

    #[test]
    fn cached_execution_equals_uncached(
        g in arb_world(),
        si in 0usize..6, pi in 0usize..4, oi in 0usize..6,
    ) {
        const LABELS: [&str; 6] = ["dog", "cat", "man", "grass", "car", "hat"];
        const PREDS: [&str; 4] = ["on", "near", "in", "wearing"];
        let gq = QueryGraph {
            vertices: vec![spoc(LABELS[si], PREDS[pi], LABELS[oi])],
            edges: vec![],
            question_type: QuestionType::Counting,
            question: String::new(),
        };
        let ex = QueryGraphExecutor::new(&g);
        let plain = ex.execute(&gq).unwrap();
        let cache = ShardedCache::new(CacheGranularity::Both, EvictionPolicy::Lfu, 64, 4);
        // Run twice so the second pass reads from a warm cache.
        let first = ex.execute_cached(&gq, Some(&cache)).unwrap().0;
        let second = ex.execute_cached(&gq, Some(&cache)).unwrap().0;
        prop_assert_eq!(&plain, &first);
        prop_assert_eq!(&first, &second);
    }

    #[test]
    fn matcher_exact_labels_always_match(g in arb_world(), li in 0usize..6) {
        const LABELS: [&str; 6] = ["dog", "cat", "man", "grass", "car", "hat"];
        let m = VertexMatcher::new(&g);
        let found = m.match_vertex(LABELS[li], LABELS[li]);
        prop_assert!(!found.is_empty());
        for v in &found {
            prop_assert_eq!(g.vertex_label(*v), Some(LABELS[li]));
        }
        // Expansion is a superset and idempotent.
        let once = m.expand_semantic(&found);
        for v in &found {
            prop_assert!(once.contains(v));
        }
        prop_assert_eq!(m.expand_semantic(&once), once);
    }
}
