//! Property-based tests for the executor: cache invariants, matcher
//! behaviour, and answer-shape guarantees.

use parking_lot::Mutex;
use std::sync::Arc;
use proptest::prelude::*;
use svqa_executor::cache::{CacheGranularity, EvictionPolicy, KeyCentricCache};
use svqa_executor::executor::QueryGraphExecutor;
use svqa_executor::matching::VertexMatcher;
use svqa_executor::Answer;
use svqa_graph::{Graph, VertexId};
use svqa_qparser::{NounPhrase, QueryGraph, QuestionType, Spoc};

/// A cache operation script.
#[derive(Debug, Clone)]
enum Op {
    ScopeGet(u8),
    ScopePut(u8, u8),
    PathGet(u8),
    PathPut(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..16).prop_map(Op::ScopeGet),
        (0u8..16, 0u8..8).prop_map(|(k, v)| Op::ScopePut(k, v)),
        (0u8..16).prop_map(Op::PathGet),
        (0u8..16).prop_map(Op::PathPut),
    ]
}

proptest! {
    #[test]
    fn cache_never_exceeds_pool_size(
        ops in proptest::collection::vec(arb_op(), 0..200),
        pool in 0usize..12,
        lfu in any::<bool>(),
    ) {
        let policy = if lfu { EvictionPolicy::Lfu } else { EvictionPolicy::Lru };
        let mut cache = KeyCentricCache::new(CacheGranularity::Both, policy, pool);
        for op in ops {
            match op {
                Op::ScopeGet(k) => { cache.scope_get(&format!("s{k}")); }
                Op::ScopePut(k, v) => {
                    cache.scope_put(&format!("s{k}"), Arc::new(vec![VertexId::from_index(v as usize)]));
                }
                Op::PathGet(k) => { cache.path_get(&format!("p{k}")); }
                Op::PathPut(k) => { cache.path_put(&format!("p{k}"), Arc::new(vec![])); }
            }
            prop_assert!(cache.len() <= pool, "len {} > pool {}", cache.len(), pool);
        }
        // Value accounting never goes negative/overflows.
        let _ = cache.value_bytes();
    }

    #[test]
    fn cache_get_returns_last_put(
        key in 0u8..8,
        values in proptest::collection::vec(0u8..32, 1..10),
    ) {
        let mut cache = KeyCentricCache::new(CacheGranularity::Scope, EvictionPolicy::Lfu, 64);
        let k = format!("s{key}");
        let mut last = None;
        for v in values {
            let stored = Arc::new(vec![VertexId::from_index(v as usize)]);
            cache.scope_put(&k, Arc::clone(&stored));
            last = Some(stored);
        }
        prop_assert_eq!(cache.scope_get(&k), last);
    }

    #[test]
    fn disabled_granularities_store_nothing(keys in proptest::collection::vec(0u8..8, 0..20)) {
        let mut cache = KeyCentricCache::new(CacheGranularity::Scope, EvictionPolicy::Lru, 16);
        for k in &keys {
            cache.path_put(&format!("p{}", k), Arc::new(vec![]));
        }
        for k in &keys {
            let got = cache.path_get(&format!("p{}", k));
            prop_assert!(got.is_none());
        }
    }
}

/// A small random merged-graph-like world for executor properties.
fn arb_world() -> impl Strategy<Value = Graph> {
    proptest::collection::vec((0usize..6, 0usize..6, 0usize..4), 1..30).prop_map(|edges| {
        const LABELS: [&str; 6] = ["dog", "cat", "man", "grass", "car", "hat"];
        const PREDS: [&str; 4] = ["on", "near", "in", "wearing"];
        let mut g = Graph::new();
        let ids: Vec<_> = LABELS.iter().map(|l| g.add_vertex(*l)).collect();
        for (a, b, p) in edges {
            if a != b {
                g.add_edge(ids[a], ids[b], PREDS[p]).unwrap();
            }
        }
        g
    })
}

fn spoc(s: &str, p: &str, o: &str) -> Spoc {
    Spoc {
        subject: if s.is_empty() {
            NounPhrase::default()
        } else {
            NounPhrase::simple(s)
        },
        predicate: p.to_owned(),
        object: if o.is_empty() {
            NounPhrase::default()
        } else {
            NounPhrase::simple(o)
        },
        ..Spoc::default()
    }
}

proptest! {
    #[test]
    fn judgment_answers_are_always_boolean(
        g in arb_world(),
        si in 0usize..6, pi in 0usize..4, oi in 0usize..6,
    ) {
        const LABELS: [&str; 6] = ["dog", "cat", "man", "grass", "car", "hat"];
        const PREDS: [&str; 4] = ["on", "near", "in", "wearing"];
        let gq = QueryGraph {
            vertices: vec![spoc(LABELS[si], PREDS[pi], LABELS[oi])],
            edges: vec![],
            question_type: QuestionType::Judgment,
            question: String::new(),
        };
        let ex = QueryGraphExecutor::new(&g);
        let a = ex.execute(&gq).unwrap();
        prop_assert!(matches!(a, Answer::Judgment(_)));
    }

    #[test]
    fn cached_execution_equals_uncached(
        g in arb_world(),
        si in 0usize..6, pi in 0usize..4, oi in 0usize..6,
    ) {
        const LABELS: [&str; 6] = ["dog", "cat", "man", "grass", "car", "hat"];
        const PREDS: [&str; 4] = ["on", "near", "in", "wearing"];
        let gq = QueryGraph {
            vertices: vec![spoc(LABELS[si], PREDS[pi], LABELS[oi])],
            edges: vec![],
            question_type: QuestionType::Counting,
            question: String::new(),
        };
        let ex = QueryGraphExecutor::new(&g);
        let plain = ex.execute(&gq).unwrap();
        let cache = Mutex::new(KeyCentricCache::new(
            CacheGranularity::Both,
            EvictionPolicy::Lfu,
            64,
        ));
        // Run twice so the second pass reads from a warm cache.
        let first = ex.execute_cached(&gq, Some(&cache)).unwrap().0;
        let second = ex.execute_cached(&gq, Some(&cache)).unwrap().0;
        prop_assert_eq!(&plain, &first);
        prop_assert_eq!(&first, &second);
    }

    #[test]
    fn matcher_exact_labels_always_match(g in arb_world(), li in 0usize..6) {
        const LABELS: [&str; 6] = ["dog", "cat", "man", "grass", "car", "hat"];
        let m = VertexMatcher::new(&g);
        let found = m.match_vertex(LABELS[li], LABELS[li]);
        prop_assert!(!found.is_empty());
        for v in &found {
            prop_assert_eq!(g.vertex_label(*v), Some(LABELS[li]));
        }
        // Expansion is a superset and idempotent.
        let once = m.expand_semantic(&found);
        for v in &found {
            prop_assert!(once.contains(v));
        }
        prop_assert_eq!(m.expand_semantic(&once), once);
    }
}
