//! Graph algorithms over the undirected structure.
//!
//! Used by the dataset reports (how connected is the merged graph?) and by
//! the knowledge-graph tooling; the merged graph's connectivity is what
//! makes cross-source reasoning possible at all — an image whose scene
//! graph ends up in its own component can never contribute to a
//! knowledge-anchored answer.

use crate::graph::Graph;
use crate::ids::VertexId;
use crate::traverse::Bfs;

/// Assign every vertex a connected-component id (undirected reachability).
/// Returns `(component ids, component count)`; ids are dense starting at 0
/// in first-seen order.
pub fn connected_components(graph: &Graph) -> (Vec<usize>, usize) {
    let n = graph.vertex_count();
    let mut component = vec![usize::MAX; n];
    let mut next = 0usize;
    for start in 0..n {
        if component[start] != usize::MAX {
            continue;
        }
        for (v, _) in Bfs::new(graph, VertexId::from_index(start)) {
            component[v.index()] = next;
        }
        next += 1;
    }
    (component, next)
}

/// Size of the largest connected component (0 for an empty graph).
pub fn largest_component_size(graph: &Graph) -> usize {
    let (components, count) = connected_components(graph);
    let mut sizes = vec![0usize; count];
    for c in components {
        sizes[c] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

/// Shortest hop distance between two vertices over the undirected
/// structure; `None` if disconnected (or either id is foreign).
pub fn hop_distance(graph: &Graph, from: VertexId, to: VertexId) -> Option<usize> {
    if from == to && from.index() < graph.vertex_count() {
        return Some(0);
    }
    Bfs::new(graph, from)
        .find(|&(v, _)| v == to)
        .map(|(_, d)| d)
}

/// Degree distribution: `histogram[d]` = number of vertices with total
/// degree `d`.
pub fn degree_distribution(graph: &Graph) -> Vec<usize> {
    let mut histogram = Vec::new();
    for (_, v) in graph.vertices() {
        let d = v.degree();
        if histogram.len() <= d {
            histogram.resize(d + 1, 0);
        }
        histogram[d] += 1;
    }
    histogram
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_islands() -> (Graph, Vec<VertexId>) {
        let mut g = Graph::new();
        let ids: Vec<_> = (0..6).map(|i| g.add_vertex(format!("v{i}"))).collect();
        g.add_edge(ids[0], ids[1], "e").unwrap();
        g.add_edge(ids[1], ids[2], "e").unwrap();
        g.add_edge(ids[3], ids[4], "e").unwrap();
        // ids[5] is isolated.
        (g, ids)
    }

    #[test]
    fn component_counting() {
        let (g, ids) = two_islands();
        let (components, count) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(components[ids[0].index()], components[ids[2].index()]);
        assert_eq!(components[ids[3].index()], components[ids[4].index()]);
        assert_ne!(components[ids[0].index()], components[ids[3].index()]);
        assert_ne!(components[ids[5].index()], components[ids[0].index()]);
        assert_eq!(largest_component_size(&g), 3);
    }

    #[test]
    fn hop_distances() {
        let (g, ids) = two_islands();
        assert_eq!(hop_distance(&g, ids[0], ids[0]), Some(0));
        assert_eq!(hop_distance(&g, ids[0], ids[2]), Some(2));
        // Direction-agnostic.
        assert_eq!(hop_distance(&g, ids[2], ids[0]), Some(2));
        // Disconnected.
        assert_eq!(hop_distance(&g, ids[0], ids[4]), None);
    }

    #[test]
    fn degree_histogram() {
        let (g, _) = two_islands();
        let h = degree_distribution(&g);
        // ids[5]: degree 0; ids[0], ids[2], ids[3], ids[4]: degree 1;
        // ids[1]: degree 2.
        assert_eq!(h, vec![1, 4, 1]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new();
        assert_eq!(connected_components(&g).1, 0);
        assert_eq!(largest_component_size(&g), 0);
        assert!(degree_distribution(&g).is_empty());
    }
}
