//! # svqa-graph
//!
//! A directed labeled property graph store — the storage substrate of the
//! SVQA reproduction ("Across Images and Graphs for Question Answering",
//! ICDE 2024).
//!
//! The paper defines a graph `G = (V, E, L)` where `V` is a set of vertices,
//! `E` a set of directed edges, and `L(v)` / `L(e)` label functions (§II).
//! Everything downstream — scene graphs, the merged graph `G_mg`, the cached
//! induced subgraphs `G[S(t, k)]` of Algorithm 1 — is stored in this
//! structure.
//!
//! Design notes (informed by the performance guide):
//! * vertices and edges live in flat arenas indexed by `u32` ids — no
//!   per-vertex allocation beyond its label/property storage;
//! * adjacency is held as per-vertex out/in edge id lists, giving `O(deg)`
//!   neighbourhood scans;
//! * a label index maps each label to its vertices so `matchVertex`-style
//!   lookups (§V) do not scan the arena;
//! * induced subgraphs are *views* (bitsets over the parent graph), matching
//!   the paper's remark that `G[S(t,k)]` "does not store a part of G
//!   independently; instead, it adds an index to G".
//!
//! ```
//! use svqa_graph::Graph;
//!
//! let mut g = Graph::new();
//! let harry = g.add_vertex("harry potter");
//! let ginny = g.add_vertex("ginny weasley");
//! g.add_edge(ginny, harry, "girlfriend of").unwrap();
//! assert_eq!(g.out_neighbors(ginny).count(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algo;
pub mod binio;
pub mod builder;
pub mod edge;
pub mod error;
pub mod graph;
pub mod ids;
pub mod io;
pub mod props;
pub mod stats;
pub mod subgraph;
pub mod traverse;
pub mod vertex;

pub use algo::{connected_components, degree_distribution, hop_distance, largest_component_size};
pub use builder::GraphBuilder;
pub use edge::Edge;
pub use error::GraphError;
pub use graph::Graph;
pub use ids::{EdgeId, VertexId};
pub use props::{PropValue, Properties};
pub use stats::{GraphStats, LabelHistogram};
pub use subgraph::SubgraphView;
pub use traverse::{induced_subgraph, k_hop_neighborhood, Bfs};
pub use vertex::Vertex;
