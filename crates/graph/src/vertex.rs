//! Vertex storage.

use crate::ids::EdgeId;
use crate::props::Properties;
use serde::{Deserialize, Serialize};

/// A vertex of a directed labeled graph, `v ∈ V` with label `L(v)` (§II of
/// the paper).
///
/// The adjacency lists are owned by the vertex so that a neighbourhood scan
/// touches one arena slot; they store *edge* ids, and the edge records hold
/// the endpoint vertex ids.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Vertex {
    label: String,
    props: Properties,
    pub(crate) out_edges: Vec<EdgeId>,
    pub(crate) in_edges: Vec<EdgeId>,
}

impl Vertex {
    pub(crate) fn new(label: String, props: Properties) -> Self {
        Vertex {
            label,
            props,
            out_edges: Vec::new(),
            in_edges: Vec::new(),
        }
    }

    /// The label `L(v)`.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Immutable access to the vertex's properties.
    pub fn props(&self) -> &Properties {
        &self.props
    }

    /// Mutable access to the vertex's properties.
    pub fn props_mut(&mut self) -> &mut Properties {
        &mut self.props
    }

    /// Outgoing edge ids.
    pub fn out_edge_ids(&self) -> &[EdgeId] {
        &self.out_edges
    }

    /// Incoming edge ids.
    pub fn in_edge_ids(&self) -> &[EdgeId] {
        &self.in_edges
    }

    /// Out-degree of this vertex.
    pub fn out_degree(&self) -> usize {
        self.out_edges.len()
    }

    /// In-degree of this vertex.
    pub fn in_degree(&self) -> usize {
        self.in_edges.len()
    }

    /// Total degree (in + out).
    pub fn degree(&self) -> usize {
        self.out_edges.len() + self.in_edges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_vertex_has_no_edges() {
        let v = Vertex::new("dog".into(), Properties::new());
        assert_eq!(v.label(), "dog");
        assert_eq!(v.out_degree(), 0);
        assert_eq!(v.in_degree(), 0);
        assert_eq!(v.degree(), 0);
    }

    #[test]
    fn props_are_mutable() {
        let mut v = Vertex::new("dog".into(), Properties::new());
        v.props_mut().set("image", 9u32);
        assert_eq!(
            v.props().get("image").and_then(|p| p.as_int()),
            Some(9)
        );
    }
}
