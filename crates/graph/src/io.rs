//! Graph (de)serialization.
//!
//! Graphs persist as JSON (the arenas only; the label indexes are rebuilt on
//! load). Deserialized graphs are validated before use so a corrupt file
//! surfaces as [`GraphError::CorruptGraph`] rather than a panic deep inside a
//! query.

use crate::error::GraphError;
use crate::graph::Graph;

/// Serialize a graph to a JSON string.
pub fn to_json(graph: &Graph) -> String {
    serde_json::to_string(graph).expect("graph serialization is infallible")
}

/// Serialize a graph to pretty-printed JSON (for dataset files meant to be
/// read by humans).
pub fn to_json_pretty(graph: &Graph) -> String {
    serde_json::to_string_pretty(graph).expect("graph serialization is infallible")
}

/// Deserialize a graph from JSON, rebuild its indexes, and validate it.
pub fn from_json(json: &str) -> Result<Graph, GraphError> {
    let mut graph: Graph =
        serde_json::from_str(json).map_err(|e| GraphError::CorruptGraph(e.to_string()))?;
    graph.rebuild_indexes();
    graph.validate()?;
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let d = g.add_vertex("dog");
        let m = g.add_vertex("man");
        g.add_edge(d, m, "in front of").unwrap();
        g
    }

    #[test]
    fn roundtrip_preserves_structure_and_indexes() {
        let g = sample();
        let back = from_json(&to_json(&g)).unwrap();
        assert_eq!(back.vertex_count(), 2);
        assert_eq!(back.edge_count(), 1);
        // Indexes were rebuilt.
        assert_eq!(back.vertices_with_label("dog").len(), 1);
        assert_eq!(
            back.edge_label_counts().collect::<Vec<_>>(),
            vec![("in front of", 1)]
        );
    }

    #[test]
    fn pretty_json_is_parseable() {
        let g = sample();
        let back = from_json(&to_json_pretty(&g)).unwrap();
        assert_eq!(back.vertex_count(), 2);
    }

    #[test]
    fn malformed_json_is_an_error() {
        assert!(matches!(
            from_json("{not json"),
            Err(GraphError::CorruptGraph(_))
        ));
    }

    #[test]
    fn dangling_edge_is_detected() {
        // Handcraft a JSON graph whose edge points at vertex 5 that does not
        // exist.
        let json = r#"{
            "vertices": [
                {"label":"a","props":{"entries":[]},"out_edges":[0],"in_edges":[]}
            ],
            "edges": [
                {"src":0,"dst":5,"label":"x","props":{"entries":[]}}
            ]
        }"#;
        assert!(matches!(
            from_json(json),
            Err(GraphError::CorruptGraph(_))
        ));
    }

    #[test]
    fn inconsistent_adjacency_is_detected() {
        // Edge exists but the source vertex does not list it.
        let json = r#"{
            "vertices": [
                {"label":"a","props":{"entries":[]},"out_edges":[],"in_edges":[]},
                {"label":"b","props":{"entries":[]},"out_edges":[],"in_edges":[0]}
            ],
            "edges": [
                {"src":0,"dst":1,"label":"x","props":{"entries":[]}}
            ]
        }"#;
        assert!(matches!(
            from_json(json),
            Err(GraphError::CorruptGraph(_))
        ));
    }
}
