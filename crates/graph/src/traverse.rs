//! Traversal primitives: BFS, k-hop neighbourhoods (`S(t, k)`, Definition 1)
//! and induced subgraphs (`G[S(t, k)]`, Definition 2).

use crate::graph::Graph;
use crate::ids::VertexId;
use crate::subgraph::SubgraphView;
use std::collections::VecDeque;

/// A breadth-first traversal over the *undirected* structure of a graph
/// (edges are followed both ways), yielding `(vertex, depth)` pairs.
///
/// The paper's Example 3 treats neighbourhood membership symmetrically
/// (`Fence → Man` puts "Man" in `S("Fence", 1)` even though the edge also
/// runs the other way), so hop counting ignores direction.
pub struct Bfs<'g> {
    graph: &'g Graph,
    queue: VecDeque<(VertexId, usize)>,
    visited: Vec<bool>,
    max_depth: Option<usize>,
}

impl<'g> Bfs<'g> {
    /// Start a BFS from `start` with no depth bound.
    pub fn new(graph: &'g Graph, start: VertexId) -> Self {
        Self::with_max_depth(graph, start, None)
    }

    /// Start a BFS from `start` that does not expand beyond `max_depth` hops.
    pub fn with_max_depth(graph: &'g Graph, start: VertexId, max_depth: Option<usize>) -> Self {
        let mut visited = vec![false; graph.vertex_count()];
        let mut queue = VecDeque::new();
        if start.index() < graph.vertex_count() {
            visited[start.index()] = true;
            queue.push_back((start, 0));
        }
        Bfs {
            graph,
            queue,
            visited,
            max_depth,
        }
    }
}

impl Iterator for Bfs<'_> {
    type Item = (VertexId, usize);

    fn next(&mut self) -> Option<Self::Item> {
        let (v, depth) = self.queue.pop_front()?;
        let expand = self.max_depth.is_none_or(|m| depth < m);
        if expand {
            for n in self.graph.neighbors(v) {
                if !self.visited[n.index()] {
                    self.visited[n.index()] = true;
                    self.queue.push_back((n, depth + 1));
                }
            }
        }
        Some((v, depth))
    }
}

/// `S(t, k)`: the vertices reachable from `t` within `k` hops, including `t`
/// itself (Definition 1). Returned in BFS order.
pub fn k_hop_neighborhood(graph: &Graph, t: VertexId, k: usize) -> Vec<VertexId> {
    Bfs::with_max_depth(graph, t, Some(k))
        .map(|(v, _)| v)
        .collect()
}

/// `G[S(t, k)]`: the subgraph of `graph` induced by the k-hop neighbourhood
/// of `t` (Definition 2), as an index view over the parent graph.
pub fn induced_subgraph(graph: &Graph, t: VertexId, k: usize) -> SubgraphView {
    SubgraphView::from_vertices(graph, k_hop_neighborhood(graph, t, k))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Example 3 from the paper: `Fence → Man` and `Man → Fence`; the 1-hop
    /// neighbourhood of "Fence" holds both vertices and both edges.
    fn fence_man() -> (Graph, VertexId, VertexId) {
        let mut g = Graph::new();
        let fence = g.add_vertex("fence");
        let man = g.add_vertex("man");
        g.add_edge(fence, man, "behind").unwrap();
        g.add_edge(man, fence, "in front of").unwrap();
        (g, fence, man)
    }

    #[test]
    fn example3_one_hop() {
        let (g, fence, man) = fence_man();
        let s = k_hop_neighborhood(&g, fence, 1);
        assert_eq!(s, vec![fence, man]);
        let sub = induced_subgraph(&g, fence, 1);
        assert_eq!(sub.vertex_count(), 2);
        assert_eq!(sub.edge_count(), 2);
    }

    fn chain(n: usize) -> (Graph, Vec<VertexId>) {
        let mut g = Graph::new();
        let ids: Vec<_> = (0..n).map(|i| g.add_vertex(format!("v{i}"))).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], "next").unwrap();
        }
        (g, ids)
    }

    #[test]
    fn k_hop_respects_bound() {
        let (g, ids) = chain(6);
        assert_eq!(k_hop_neighborhood(&g, ids[0], 0), vec![ids[0]]);
        assert_eq!(k_hop_neighborhood(&g, ids[0], 2), ids[..3].to_vec());
        // From the middle, hops run both ways.
        let s = k_hop_neighborhood(&g, ids[3], 1);
        assert_eq!(s, vec![ids[3], ids[4], ids[2]]);
    }

    #[test]
    fn bfs_depths_are_shortest_hop_counts() {
        let (g, ids) = chain(5);
        let depths: Vec<_> = Bfs::new(&g, ids[0]).collect();
        for (i, (v, d)) in depths.iter().enumerate() {
            assert_eq!(*v, ids[i]);
            assert_eq!(*d, i);
        }
    }

    #[test]
    fn bfs_from_foreign_vertex_is_empty() {
        let (g, _) = chain(3);
        let mut bfs = Bfs::new(&g, VertexId::from_index(999));
        assert!(bfs.next().is_none());
    }

    #[test]
    fn bfs_handles_cycles() {
        let mut g = Graph::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        g.add_edge(a, b, "x").unwrap();
        g.add_edge(b, a, "y").unwrap();
        let visited: Vec<_> = Bfs::new(&g, a).map(|(v, _)| v).collect();
        assert_eq!(visited, vec![a, b]);
    }

    #[test]
    fn induced_subgraph_excludes_external_edges() {
        let (g, ids) = chain(4);
        let sub = induced_subgraph(&g, ids[0], 1);
        // Vertices v0, v1; edge v0→v1 only (v1→v2 leaves the set).
        assert_eq!(sub.vertex_count(), 2);
        assert_eq!(sub.edge_count(), 1);
    }

    #[test]
    fn disconnected_component_not_reached() {
        let mut g = Graph::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        let c = g.add_vertex("island");
        g.add_edge(a, b, "x").unwrap();
        let s = k_hop_neighborhood(&g, a, 10);
        assert!(!s.contains(&c));
    }
}
