//! Property storage for vertices and edges.
//!
//! Scene-graph vertices carry bounding boxes and image provenance, knowledge
//! graph vertices carry entity metadata, and the aggregator marks vertices
//! with the subgraph-cache index (Algorithm 1). Properties are a small sorted
//! `(key, value)` list: the observed property counts are tiny (≤ 8), where a
//! sorted vec beats a hash map on both memory and lookup cost.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A property value. The variants cover everything SVQA stores on the graph:
/// strings (labels, categories), integers (image ids, counts), floats
/// (bounding-box coordinates, confidences) and booleans (flags such as
/// "cached").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PropValue {
    /// UTF-8 string value.
    Str(String),
    /// Signed integer value.
    Int(i64),
    /// 64-bit float value.
    Float(f64),
    /// Boolean flag.
    Bool(bool),
}

impl PropValue {
    /// Borrow the string payload, if this is a [`PropValue::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            PropValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extract the integer payload, if this is a [`PropValue::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            PropValue::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extract the float payload; integers are widened for convenience.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            PropValue::Float(f) => Some(*f),
            PropValue::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Extract the boolean payload, if this is a [`PropValue::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            PropValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl fmt::Display for PropValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropValue::Str(s) => write!(f, "{s}"),
            PropValue::Int(i) => write!(f, "{i}"),
            PropValue::Float(x) => write!(f, "{x}"),
            PropValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<&str> for PropValue {
    fn from(s: &str) -> Self {
        PropValue::Str(s.to_owned())
    }
}

impl From<String> for PropValue {
    fn from(s: String) -> Self {
        PropValue::Str(s)
    }
}

impl From<i64> for PropValue {
    fn from(i: i64) -> Self {
        PropValue::Int(i)
    }
}

impl From<u32> for PropValue {
    fn from(i: u32) -> Self {
        PropValue::Int(i64::from(i))
    }
}

impl From<f64> for PropValue {
    fn from(f: f64) -> Self {
        PropValue::Float(f)
    }
}

impl From<bool> for PropValue {
    fn from(b: bool) -> Self {
        PropValue::Bool(b)
    }
}

/// A small key-sorted property map.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Properties {
    entries: Vec<(String, PropValue)>,
}

impl Properties {
    /// An empty property set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of stored properties.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no properties are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert or overwrite a property. Returns the previous value if the key
    /// was already present.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<PropValue>) -> Option<PropValue> {
        let key = key.into();
        let value = value.into();
        match self.entries.binary_search_by(|(k, _)| k.as_str().cmp(&key)) {
            Ok(pos) => Some(std::mem::replace(&mut self.entries[pos].1, value)),
            Err(pos) => {
                self.entries.insert(pos, (key, value));
                None
            }
        }
    }

    /// Look up a property by key.
    pub fn get(&self, key: &str) -> Option<&PropValue> {
        self.entries
            .binary_search_by(|(k, _)| k.as_str().cmp(key))
            .ok()
            .map(|pos| &self.entries[pos].1)
    }

    /// Remove a property by key, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<PropValue> {
        match self.entries.binary_search_by(|(k, _)| k.as_str().cmp(key)) {
            Ok(pos) => Some(self.entries.remove(pos).1),
            Err(_) => None,
        }
    }

    /// Iterate over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &PropValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl<K: Into<String>, V: Into<PropValue>> FromIterator<(K, V)> for Properties {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        let mut props = Properties::new();
        for (k, v) in iter {
            props.set(k, v);
        }
        props
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_remove() {
        let mut p = Properties::new();
        assert!(p.is_empty());
        assert_eq!(p.set("image", 3u32), None);
        assert_eq!(p.set("category", "dog"), None);
        assert_eq!(p.get("image").and_then(PropValue::as_int), Some(3));
        assert_eq!(p.get("category").and_then(PropValue::as_str), Some("dog"));
        assert_eq!(p.len(), 2);
        let prev = p.set("image", 4u32);
        assert_eq!(prev.and_then(|v| v.as_int()), Some(3));
        assert_eq!(p.remove("image").and_then(|v| v.as_int()), Some(4));
        assert_eq!(p.get("image"), None);
    }

    #[test]
    fn keys_stay_sorted() {
        let mut p = Properties::new();
        p.set("z", 1i64);
        p.set("a", 2i64);
        p.set("m", 3i64);
        let keys: Vec<&str> = p.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "m", "z"]);
    }

    #[test]
    fn float_widening() {
        let v = PropValue::Int(7);
        assert_eq!(v.as_float(), Some(7.0));
        assert_eq!(PropValue::Float(1.5).as_float(), Some(1.5));
        assert_eq!(PropValue::Str("x".into()).as_float(), None);
    }

    #[test]
    fn from_iterator_dedups_keys() {
        let p: Properties = [("k", 1i64), ("k", 2i64)].into_iter().collect();
        assert_eq!(p.len(), 1);
        assert_eq!(p.get("k").and_then(PropValue::as_int), Some(2));
    }

    #[test]
    fn display_forms() {
        assert_eq!(PropValue::from("dog").to_string(), "dog");
        assert_eq!(PropValue::from(3i64).to_string(), "3");
        assert_eq!(PropValue::from(true).to_string(), "true");
    }

    #[test]
    fn serde_roundtrip() {
        let p: Properties = [("category", "dog")].into_iter().collect();
        let json = serde_json::to_string(&p).unwrap();
        let back: Properties = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
    }
}
