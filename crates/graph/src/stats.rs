//! Graph statistics.
//!
//! Algorithm 1's initial stage runs `statistics({G_sg(I)})` to count how
//! often each object category appears across the scene graphs, then sorts
//! the categories in descending order and caches subgraphs for the frequent
//! ones. [`LabelHistogram`] is that statistic; [`GraphStats`] adds the
//! size/degree summary used by the dataset reports (Tables I–II).

use crate::graph::Graph;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A frequency histogram over labels, sorted descending by count
/// (ties broken alphabetically so reports are deterministic).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelHistogram {
    entries: Vec<(String, usize)>,
}

impl LabelHistogram {
    /// Count vertex labels across a collection of graphs — Algorithm 1 line 2
    /// (`T ← statistics({G_sg(I) | ∀I ∈ 𝕀})`).
    pub fn from_vertex_labels<'a>(graphs: impl IntoIterator<Item = &'a Graph>) -> Self {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for g in graphs {
            for (_, v) in g.vertices() {
                *counts.entry(v.label().to_owned()).or_insert(0) += 1;
            }
        }
        Self::from_counts(counts)
    }

    /// Count edge labels across a collection of graphs.
    pub fn from_edge_labels<'a>(graphs: impl IntoIterator<Item = &'a Graph>) -> Self {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for g in graphs {
            for (_, e) in g.edges() {
                *counts.entry(e.label().to_owned()).or_insert(0) += 1;
            }
        }
        Self::from_counts(counts)
    }

    fn from_counts(counts: HashMap<String, usize>) -> Self {
        let mut entries: Vec<_> = counts.into_iter().collect();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        LabelHistogram { entries }
    }

    /// `(label, count)` pairs in descending count order.
    pub fn entries(&self) -> &[(String, usize)] {
        &self.entries
    }

    /// Count for one label (0 if absent).
    pub fn count(&self, label: &str) -> usize {
        self.entries
            .iter()
            .find(|(l, _)| l == label)
            .map_or(0, |(_, c)| *c)
    }

    /// Labels whose count strictly exceeds `threshold` — Algorithm 1's
    /// `c > c'` test selecting which categories get cached subgraphs.
    pub fn above_threshold(&self, threshold: usize) -> impl Iterator<Item = (&str, usize)> {
        self.entries
            .iter()
            .take_while(move |(_, c)| *c > threshold)
            .map(|(l, c)| (l.as_str(), *c))
    }

    /// Total number of counted items.
    pub fn total(&self) -> usize {
        self.entries.iter().map(|(_, c)| c).sum()
    }

    /// Number of distinct labels.
    pub fn distinct(&self) -> usize {
        self.entries.len()
    }

    /// Fraction of *distinct labels* whose count exceeds `threshold`.
    /// The paper reports "approximately 58% of vertex types occur more than
    /// 5 times" for MVQA — this is that figure.
    pub fn fraction_of_labels_above(&self, threshold: usize) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.above_threshold(threshold).count() as f64 / self.distinct() as f64
    }

    /// Fraction of *items* whose label's count exceeds `threshold` ("nearly
    /// 82% of vertices are covered in finally generated subgraphs").
    pub fn fraction_of_items_above(&self, threshold: usize) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let covered: usize = self.above_threshold(threshold).map(|(_, c)| c).sum();
        covered as f64 / total as f64
    }
}

/// Structural summary of a single graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphStats {
    /// `|V|`.
    pub vertex_count: usize,
    /// `|E|`.
    pub edge_count: usize,
    /// Number of distinct vertex labels.
    pub distinct_vertex_labels: usize,
    /// Number of distinct edge labels.
    pub distinct_edge_labels: usize,
    /// Mean total degree.
    pub mean_degree: f64,
    /// Maximum total degree.
    pub max_degree: usize,
}

impl GraphStats {
    /// Compute the summary for `graph`.
    pub fn of(graph: &Graph) -> Self {
        let mut max_degree = 0;
        let mut degree_sum = 0usize;
        for (_, v) in graph.vertices() {
            let d = v.degree();
            degree_sum += d;
            max_degree = max_degree.max(d);
        }
        GraphStats {
            vertex_count: graph.vertex_count(),
            edge_count: graph.edge_count(),
            distinct_vertex_labels: graph.vertex_label_counts().count(),
            distinct_edge_labels: graph.edge_label_counts().count(),
            mean_degree: if graph.vertex_count() == 0 {
                0.0
            } else {
                degree_sum as f64 / graph.vertex_count() as f64
            },
            max_degree,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_graphs() -> Vec<Graph> {
        let mut g1 = Graph::new();
        let d = g1.add_vertex("dog");
        let m = g1.add_vertex("man");
        g1.add_edge(d, m, "near").unwrap();
        let mut g2 = Graph::new();
        let d2 = g2.add_vertex("dog");
        let c = g2.add_vertex("car");
        g2.add_edge(d2, c, "in").unwrap();
        vec![g1, g2]
    }

    #[test]
    fn vertex_histogram_sorted_descending() {
        let gs = sample_graphs();
        let h = LabelHistogram::from_vertex_labels(&gs);
        assert_eq!(h.entries()[0], ("dog".to_owned(), 2));
        assert_eq!(h.count("man"), 1);
        assert_eq!(h.count("ghost"), 0);
        assert_eq!(h.total(), 4);
        assert_eq!(h.distinct(), 3);
    }

    #[test]
    fn threshold_selection() {
        let gs = sample_graphs();
        let h = LabelHistogram::from_vertex_labels(&gs);
        let above: Vec<_> = h.above_threshold(1).collect();
        assert_eq!(above, vec![("dog", 2)]);
        assert!((h.fraction_of_labels_above(1) - 1.0 / 3.0).abs() < 1e-12);
        assert!((h.fraction_of_items_above(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn edge_histogram() {
        let gs = sample_graphs();
        let h = LabelHistogram::from_edge_labels(&gs);
        assert_eq!(h.count("near"), 1);
        assert_eq!(h.count("in"), 1);
    }

    #[test]
    fn empty_histogram_fractions_are_zero() {
        let h = LabelHistogram::from_vertex_labels(std::iter::empty());
        assert_eq!(h.fraction_of_labels_above(5), 0.0);
        assert_eq!(h.fraction_of_items_above(5), 0.0);
    }

    #[test]
    fn graph_stats() {
        let gs = sample_graphs();
        let s = GraphStats::of(&gs[0]);
        assert_eq!(s.vertex_count, 2);
        assert_eq!(s.edge_count, 1);
        assert_eq!(s.distinct_vertex_labels, 2);
        assert_eq!(s.distinct_edge_labels, 1);
        assert!((s.mean_degree - 1.0).abs() < 1e-12);
        assert_eq!(s.max_degree, 1);
    }

    #[test]
    fn stats_of_empty_graph() {
        let s = GraphStats::of(&Graph::new());
        assert_eq!(s.vertex_count, 0);
        assert_eq!(s.mean_degree, 0.0);
    }
}
