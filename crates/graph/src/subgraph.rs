//! Induced-subgraph views.
//!
//! Algorithm 1 caches `G[S(t, k)]` for frequent categories `t`. The paper is
//! explicit that these are *not* copies: "our extraction method for
//! `G[S(t,k)]` does not store a part of G independently; instead, it adds an
//! index to G". `SubgraphView` realizes that: a vertex membership bitset plus
//! the member vertex/edge id lists, borrowing nothing and copying no labels.

use crate::graph::Graph;
use crate::ids::{EdgeId, VertexId};
use serde::{Deserialize, Serialize};

/// An induced subgraph of a parent [`Graph`], stored as an index (vertex
/// bitset + member id lists). Valid only against the graph it was built
/// from; since graphs are append-only, a view stays valid as the parent
/// grows (new vertices are simply outside the view).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubgraphView {
    /// Membership bitset over the parent's vertex arena at build time.
    membership: Vec<u64>,
    vertices: Vec<VertexId>,
    edges: Vec<EdgeId>,
}

impl SubgraphView {
    /// Build the subgraph induced by `vertices` (Definition 2): it keeps an
    /// edge iff both endpoints are members.
    pub fn from_vertices(graph: &Graph, vertices: Vec<VertexId>) -> Self {
        let words = graph.vertex_count().div_ceil(64);
        let mut membership = vec![0u64; words];
        for v in &vertices {
            if v.index() < graph.vertex_count() {
                membership[v.index() / 64] |= 1 << (v.index() % 64);
            }
        }
        let contains = |v: VertexId| -> bool {
            membership
                .get(v.index() / 64)
                .is_some_and(|w| w & (1 << (v.index() % 64)) != 0)
        };
        let mut edges = Vec::new();
        for &v in &vertices {
            for (eid, e) in graph.out_edges(v) {
                if contains(e.dst()) {
                    edges.push(eid);
                }
            }
        }
        SubgraphView {
            membership,
            vertices,
            edges,
        }
    }

    /// Whether `v` is a member vertex.
    pub fn contains_vertex(&self, v: VertexId) -> bool {
        self.membership
            .get(v.index() / 64)
            .is_some_and(|w| w & (1 << (v.index() % 64)) != 0)
    }

    /// Member vertices (BFS order when built by
    /// [`crate::traverse::induced_subgraph`]).
    pub fn vertex_ids(&self) -> &[VertexId] {
        &self.vertices
    }

    /// Member edges (both endpoints inside the view).
    pub fn edge_ids(&self) -> &[EdgeId] {
        &self.edges
    }

    /// Number of member vertices.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of member edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Find members of the view carrying `label` in the parent graph.
    /// Resolution goes through the parent's label index and then filters by
    /// membership, so cost is `O(matches)` not `O(|view|)`.
    pub fn vertices_with_label<'a>(
        &'a self,
        graph: &'a Graph,
        label: &str,
    ) -> impl Iterator<Item = VertexId> + 'a {
        graph
            .vertices_with_label(label)
            .iter()
            .copied()
            .filter(|&v| self.contains_vertex(v))
    }

    /// Approximate heap size of the index itself, in bytes. Exp-5 sizes the
    /// cache pool in items; this helper lets callers report bytes too.
    pub fn index_size_bytes(&self) -> usize {
        self.membership.len() * 8 + self.vertices.len() * 4 + self.edges.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traverse::induced_subgraph;

    fn star() -> (Graph, VertexId, Vec<VertexId>) {
        let mut g = Graph::new();
        let hub = g.add_vertex("hub");
        let spokes: Vec<_> = (0..5).map(|i| g.add_vertex(format!("s{i}"))).collect();
        for &s in &spokes {
            g.add_edge(hub, s, "spoke").unwrap();
        }
        (g, hub, spokes)
    }

    #[test]
    fn membership_bitset() {
        let (g, hub, spokes) = star();
        let view = SubgraphView::from_vertices(&g, vec![hub, spokes[0]]);
        assert!(view.contains_vertex(hub));
        assert!(view.contains_vertex(spokes[0]));
        assert!(!view.contains_vertex(spokes[1]));
        assert!(!view.contains_vertex(VertexId::from_index(1000)));
        assert_eq!(view.edge_count(), 1);
    }

    #[test]
    fn view_stays_valid_as_parent_grows() {
        let (mut g, hub, _) = star();
        let view = induced_subgraph(&g, hub, 1);
        let before = view.vertex_count();
        let newcomer = g.add_vertex("late");
        assert!(!view.contains_vertex(newcomer));
        assert_eq!(view.vertex_count(), before);
    }

    #[test]
    fn label_lookup_filters_by_membership() {
        let mut g = Graph::new();
        let d1 = g.add_vertex("dog");
        let d2 = g.add_vertex("dog");
        g.add_edge(d1, d2, "near").unwrap();
        let view = SubgraphView::from_vertices(&g, vec![d1]);
        let found: Vec<_> = view.vertices_with_label(&g, "dog").collect();
        assert_eq!(found, vec![d1]);
    }

    #[test]
    fn size_accounting_is_positive() {
        let (g, hub, _) = star();
        let view = induced_subgraph(&g, hub, 1);
        assert!(view.index_size_bytes() > 0);
    }

    #[test]
    fn empty_view() {
        let g = Graph::new();
        let view = SubgraphView::from_vertices(&g, vec![]);
        assert_eq!(view.vertex_count(), 0);
        assert_eq!(view.edge_count(), 0);
    }
}
