//! Compact binary graph snapshots.
//!
//! A 4,233-image merged graph serialized as JSON is tens of megabytes; the
//! binary snapshot format here is a fraction of that and loads without
//! parsing overhead — the right format for shipping a prebuilt `G_mg`
//! alongside a deployment (the offline/online split of Fig. 2).
//!
//! Format (little-endian):
//! ```text
//! magic "SVQG" | u16 version | u32 vertex count | u32 edge count
//! label table:  u32 count, then (u16 len, bytes) per label
//! vertices:     u32 label-id, u16 prop count, props
//! edges:        u32 src, u32 dst, u32 label-id, u16 prop count, props
//! prop:         u16 key-len, key bytes, u8 tag, payload
//! ```
//! Vertex/edge labels are interned in a shared label table (scene graphs
//! repeat "dog" thousands of times). Adjacency and indexes are rebuilt on
//! load, and the result is validated like the JSON path.

use crate::error::GraphError;
use crate::graph::Graph;
use crate::props::{PropValue, Properties};
use crate::VertexId;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::collections::HashMap;

const MAGIC: &[u8; 4] = b"SVQG";
const VERSION: u16 = 1;

/// Serialize a graph into the binary snapshot format.
pub fn to_bytes(graph: &Graph) -> Bytes {
    // Intern every label into a shared table (one pass each over vertices
    // and edges).
    let mut labels: Vec<String> = Vec::new();
    let mut label_ids: HashMap<String, u32> = HashMap::new();
    let intern = |label: &str, labels: &mut Vec<String>, ids: &mut HashMap<String, u32>| {
        if let Some(&id) = ids.get(label) {
            return id;
        }
        let id = labels.len() as u32;
        labels.push(label.to_owned());
        ids.insert(label.to_owned(), id);
        id
    };
    let mut vertex_label_ids = Vec::with_capacity(graph.vertex_count());
    for (_, v) in graph.vertices() {
        vertex_label_ids.push(intern(v.label(), &mut labels, &mut label_ids));
    }
    let mut edge_label_ids = Vec::with_capacity(graph.edge_count());
    for (_, e) in graph.edges() {
        edge_label_ids.push(intern(e.label(), &mut labels, &mut label_ids));
    }

    let mut buf = BytesMut::with_capacity(64 + graph.vertex_count() * 8 + graph.edge_count() * 16);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(graph.vertex_count() as u32);
    buf.put_u32_le(graph.edge_count() as u32);
    buf.put_u32_le(labels.len() as u32);
    for label in &labels {
        buf.put_u16_le(label.len() as u16);
        buf.put_slice(label.as_bytes());
    }
    for ((_, v), &lid) in graph.vertices().zip(&vertex_label_ids) {
        buf.put_u32_le(lid);
        write_props(&mut buf, v.props());
    }
    for ((_, e), &lid) in graph.edges().zip(&edge_label_ids) {
        buf.put_u32_le(e.src().index() as u32);
        buf.put_u32_le(e.dst().index() as u32);
        buf.put_u32_le(lid);
        write_props(&mut buf, e.props());
    }
    buf.freeze()
}

fn write_props(buf: &mut BytesMut, props: &Properties) {
    buf.put_u16_le(props.len() as u16);
    for (key, value) in props.iter() {
        buf.put_u16_le(key.len() as u16);
        buf.put_slice(key.as_bytes());
        match value {
            PropValue::Str(s) => {
                buf.put_u8(0);
                buf.put_u16_le(s.len() as u16);
                buf.put_slice(s.as_bytes());
            }
            PropValue::Int(i) => {
                buf.put_u8(1);
                buf.put_i64_le(*i);
            }
            PropValue::Float(f) => {
                buf.put_u8(2);
                buf.put_f64_le(*f);
            }
            PropValue::Bool(b) => {
                buf.put_u8(3);
                buf.put_u8(u8::from(*b));
            }
        }
    }
}

/// Deserialize a binary snapshot, rebuild indexes, and validate.
pub fn from_bytes(mut data: Bytes) -> Result<Graph, GraphError> {
    let corrupt = |msg: &str| GraphError::CorruptGraph(msg.to_owned());
    let need = |data: &Bytes, n: usize, what: &str| -> Result<(), GraphError> {
        if data.remaining() < n {
            Err(GraphError::CorruptGraph(format!("truncated snapshot at {what}")))
        } else {
            Ok(())
        }
    };

    need(&data, 4 + 2 + 4 + 4 + 4, "header")?;
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(corrupt("bad magic"));
    }
    let version = data.get_u16_le();
    if version != VERSION {
        return Err(GraphError::CorruptGraph(format!(
            "unsupported snapshot version {version}"
        )));
    }
    let vertex_count = data.get_u32_le() as usize;
    let edge_count = data.get_u32_le() as usize;
    let label_count = data.get_u32_le() as usize;

    let mut labels = Vec::with_capacity(label_count);
    for _ in 0..label_count {
        need(&data, 2, "label length")?;
        let len = data.get_u16_le() as usize;
        need(&data, len, "label body")?;
        let bytes = data.copy_to_bytes(len);
        labels.push(
            String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("label not UTF-8"))?,
        );
    }
    let label = |id: u32| -> Result<&str, GraphError> {
        labels
            .get(id as usize)
            .map(String::as_str)
            .ok_or_else(|| corrupt("label id out of range"))
    };

    let mut graph = Graph::with_capacity(vertex_count, edge_count);
    for _ in 0..vertex_count {
        need(&data, 4, "vertex label id")?;
        let lid = data.get_u32_le();
        let props = read_props(&mut data)?;
        graph.add_vertex_with_props(label(lid)?, props);
    }
    for _ in 0..edge_count {
        need(&data, 12, "edge header")?;
        let src = data.get_u32_le() as usize;
        let dst = data.get_u32_le() as usize;
        let lid = data.get_u32_le();
        let props = read_props(&mut data)?;
        graph
            .add_edge_with_props(
                VertexId::from_index(src),
                VertexId::from_index(dst),
                label(lid)?,
                props,
            )
            .map_err(|e| GraphError::CorruptGraph(format!("dangling edge: {e}")))?;
    }
    graph.validate()?;
    Ok(graph)
}

fn read_props(data: &mut Bytes) -> Result<Properties, GraphError> {
    let corrupt = |msg: &str| GraphError::CorruptGraph(msg.to_owned());
    if data.remaining() < 2 {
        return Err(corrupt("truncated props"));
    }
    let count = data.get_u16_le() as usize;
    let mut props = Properties::new();
    for _ in 0..count {
        if data.remaining() < 2 {
            return Err(corrupt("truncated prop key length"));
        }
        let klen = data.get_u16_le() as usize;
        if data.remaining() < klen + 1 {
            return Err(corrupt("truncated prop key"));
        }
        let key = String::from_utf8(data.copy_to_bytes(klen).to_vec())
            .map_err(|_| corrupt("prop key not UTF-8"))?;
        let tag = data.get_u8();
        let value = match tag {
            0 => {
                if data.remaining() < 2 {
                    return Err(corrupt("truncated string prop"));
                }
                let len = data.get_u16_le() as usize;
                if data.remaining() < len {
                    return Err(corrupt("truncated string prop body"));
                }
                PropValue::Str(
                    String::from_utf8(data.copy_to_bytes(len).to_vec())
                        .map_err(|_| corrupt("prop value not UTF-8"))?,
                )
            }
            1 => {
                if data.remaining() < 8 {
                    return Err(corrupt("truncated int prop"));
                }
                PropValue::Int(data.get_i64_le())
            }
            2 => {
                if data.remaining() < 8 {
                    return Err(corrupt("truncated float prop"));
                }
                PropValue::Float(data.get_f64_le())
            }
            3 => {
                if data.remaining() < 1 {
                    return Err(corrupt("truncated bool prop"));
                }
                PropValue::Bool(data.get_u8() != 0)
            }
            other => {
                return Err(GraphError::CorruptGraph(format!(
                    "unknown prop tag {other}"
                )))
            }
        };
        props.set(key, value);
    }
    Ok(props)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        let mut g = Graph::new();
        let props: Properties = [
            ("image", PropValue::Int(3)),
            ("x", PropValue::Float(0.25)),
            ("flag", PropValue::Bool(true)),
            ("note", PropValue::Str("hello".into())),
        ]
        .into_iter()
        .collect();
        let d = g.add_vertex_with_props("dog", props);
        let m = g.add_vertex("man");
        let c = g.add_vertex("dog"); // repeated label exercises interning
        g.add_edge(d, m, "near").unwrap();
        g.add_edge(c, m, "near").unwrap();
        g.add_edge(m, d, "watching").unwrap();
        g
    }

    #[test]
    fn roundtrip_preserves_structure_labels_and_props() {
        let g = sample();
        let back = from_bytes(to_bytes(&g)).unwrap();
        assert_eq!(back.vertex_count(), g.vertex_count());
        assert_eq!(back.edge_count(), g.edge_count());
        for (vid, v) in g.vertices() {
            let bv = back.vertex(vid).unwrap();
            assert_eq!(bv.label(), v.label());
            assert_eq!(bv.props(), v.props());
        }
        for (eid, e) in g.edges() {
            let be = back.edge(eid).unwrap();
            assert_eq!((be.src(), be.dst(), be.label()), (e.src(), e.dst(), e.label()));
        }
        // Indexes rebuilt.
        assert_eq!(back.vertices_with_label("dog").len(), 2);
    }

    #[test]
    fn binary_is_smaller_than_json_for_label_heavy_graphs() {
        let mut g = Graph::new();
        let hub = g.add_vertex("dog");
        for _ in 0..500 {
            let v = g.add_vertex("dog");
            g.add_edge(v, hub, "near").unwrap();
        }
        let bin = to_bytes(&g);
        let json = crate::io::to_json(&g);
        assert!(
            bin.len() * 2 < json.len(),
            "binary {} vs json {}",
            bin.len(),
            json.len()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let err = from_bytes(Bytes::from_static(b"NOPE\x01\x00")).unwrap_err();
        assert!(matches!(err, GraphError::CorruptGraph(_)));
    }

    #[test]
    fn truncation_is_detected_not_panicking() {
        let full = to_bytes(&sample());
        for cut in 0..full.len() {
            let sliced = full.slice(..cut);
            assert!(
                from_bytes(sliced).is_err(),
                "truncation at {cut} accepted"
            );
        }
    }

    #[test]
    fn unknown_version_rejected() {
        let mut data = BytesMut::new();
        data.put_slice(MAGIC);
        data.put_u16_le(99);
        data.put_u32_le(0);
        data.put_u32_le(0);
        data.put_u32_le(0);
        let err = from_bytes(data.freeze()).unwrap_err();
        assert!(err.to_string().contains("version"));
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = Graph::new();
        let back = from_bytes(to_bytes(&g)).unwrap();
        assert!(back.is_empty());
    }
}
