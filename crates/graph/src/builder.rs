//! Fluent graph construction, used heavily by tests and the dataset
//! generator.

use crate::graph::Graph;
use crate::ids::VertexId;
use crate::props::Properties;
use std::collections::HashMap;

/// Builds a graph from `(subject, predicate, object)` triples, reusing a
/// vertex per distinct label. Knowledge graphs in SVQA are entity graphs —
/// one vertex per entity name — so label-keyed construction is the natural
/// fit (scene graphs, where two "dog" vertices must stay distinct, are built
/// directly on [`Graph`]).
#[derive(Debug, Default)]
pub struct GraphBuilder {
    graph: Graph,
    by_label: HashMap<String, VertexId>,
}

impl GraphBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the vertex for `label`.
    pub fn vertex(&mut self, label: &str) -> VertexId {
        if let Some(&id) = self.by_label.get(label) {
            return id;
        }
        let id = self.graph.add_vertex(label);
        self.by_label.insert(label.to_owned(), id);
        id
    }

    /// Get or create the vertex for `label`, attaching `props` on creation
    /// (existing vertices keep their properties).
    pub fn vertex_with_props(&mut self, label: &str, props: Properties) -> VertexId {
        if let Some(&id) = self.by_label.get(label) {
            return id;
        }
        let id = self.graph.add_vertex_with_props(label, props);
        self.by_label.insert(label.to_owned(), id);
        id
    }

    /// Add the triple `subject —predicate→ object`, creating the endpoint
    /// vertices if needed. Duplicate triples are skipped.
    pub fn triple(&mut self, subject: &str, predicate: &str, object: &str) -> &mut Self {
        let s = self.vertex(subject);
        let o = self.vertex(object);
        if !self.graph.has_edge(s, o, predicate) {
            self.graph
                .add_edge(s, o, predicate)
                .expect("builder vertices are valid");
        }
        self
    }

    /// Add the triple in both directions with the same predicate (for
    /// symmetric relations like "near").
    pub fn symmetric(&mut self, a: &str, predicate: &str, b: &str) -> &mut Self {
        self.triple(a, predicate, b).triple(b, predicate, a)
    }

    /// Number of vertices created so far.
    pub fn vertex_count(&self) -> usize {
        self.graph.vertex_count()
    }

    /// Finish and return the graph.
    pub fn build(self) -> Graph {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triples_reuse_vertices() {
        let mut b = GraphBuilder::new();
        b.triple("harry", "friend of", "ron")
            .triple("harry", "friend of", "hermione")
            .triple("ron", "friend of", "hermione");
        let g = b.build();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
    }

    #[test]
    fn duplicate_triples_skipped() {
        let mut b = GraphBuilder::new();
        b.triple("a", "x", "b").triple("a", "x", "b");
        assert_eq!(b.build().edge_count(), 1);
    }

    #[test]
    fn symmetric_adds_both_directions() {
        let mut b = GraphBuilder::new();
        b.symmetric("dog", "near", "man");
        let g = b.build();
        let dog = g.vertices_with_label("dog")[0];
        let man = g.vertices_with_label("man")[0];
        assert!(g.has_edge(dog, man, "near"));
        assert!(g.has_edge(man, dog, "near"));
    }

    #[test]
    fn props_attached_on_creation_only() {
        let mut b = GraphBuilder::new();
        let props: Properties = [("kind", "entity")].into_iter().collect();
        let v1 = b.vertex_with_props("dog", props);
        let v2 = b.vertex_with_props("dog", Properties::new());
        assert_eq!(v1, v2);
        let g = b.build();
        assert_eq!(
            g.vertex(v1)
                .unwrap()
                .props()
                .get("kind")
                .and_then(|p| p.as_str()),
            Some("entity")
        );
    }
}
