//! Edge storage.

use crate::ids::VertexId;
use crate::props::Properties;
use serde::{Deserialize, Serialize};

/// A directed labeled edge `e ∈ E` with label `L(e)` (§II of the paper).
///
/// In the merged graph the edge label carries the relation predicate
/// ("wearing", "in front of", "girlfriend of", ...), which `maxScore` in
/// Algorithm 3 matches against the query's predicate `c_p`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Edge {
    src: VertexId,
    dst: VertexId,
    label: String,
    props: Properties,
}

impl Edge {
    pub(crate) fn new(src: VertexId, dst: VertexId, label: String, props: Properties) -> Self {
        Edge {
            src,
            dst,
            label,
            props,
        }
    }

    /// Source vertex id.
    pub fn src(&self) -> VertexId {
        self.src
    }

    /// Destination vertex id.
    pub fn dst(&self) -> VertexId {
        self.dst
    }

    /// The label `L(e)` (the relation predicate).
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Immutable access to the edge's properties.
    pub fn props(&self) -> &Properties {
        &self.props
    }

    /// Mutable access to the edge's properties.
    pub fn props_mut(&mut self) -> &mut Properties {
        &mut self.props
    }

    /// Given one endpoint, return the other; `None` if `v` is not an
    /// endpoint of this edge.
    pub fn other_endpoint(&self, v: VertexId) -> Option<VertexId> {
        if v == self.src {
            Some(self.dst)
        } else if v == self.dst {
            Some(self.src)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VertexId;

    #[test]
    fn endpoints() {
        let a = VertexId::from_index(0);
        let b = VertexId::from_index(1);
        let c = VertexId::from_index(2);
        let e = Edge::new(a, b, "wearing".into(), Properties::new());
        assert_eq!(e.src(), a);
        assert_eq!(e.dst(), b);
        assert_eq!(e.label(), "wearing");
        assert_eq!(e.other_endpoint(a), Some(b));
        assert_eq!(e.other_endpoint(b), Some(a));
        assert_eq!(e.other_endpoint(c), None);
    }
}
