//! Strongly-typed vertex and edge identifiers.
//!
//! Ids are indexes into the graph's flat arenas. They are `u32` internally:
//! the paper's largest graph (the merged graph over 4,233 scene graphs plus
//! the knowledge graph) holds well under a million vertices, and 32-bit ids
//! halve index memory versus `usize` on 64-bit hosts.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a vertex inside one [`crate::Graph`].
///
/// Ids are only meaningful relative to the graph that issued them; using a
/// `VertexId` from one graph against another is a logic error that the
/// accessors surface as `None` / [`crate::GraphError::UnknownVertex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct VertexId(pub(crate) u32);

/// Identifier of an edge inside one [`crate::Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(transparent)]
pub struct EdgeId(pub(crate) u32);

impl VertexId {
    /// Numeric index of this vertex in the arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Build an id from a raw index. Intended for deserialization and for
    /// test fixtures; passing an out-of-range index yields an id the graph
    /// will reject.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        VertexId(index as u32)
    }
}

impl EdgeId {
    /// Numeric index of this edge in the arena.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Build an id from a raw index (see [`VertexId::from_index`]).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        EdgeId(index as u32)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let id = VertexId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(id.to_string(), "v42");
    }

    #[test]
    fn edge_id_roundtrip() {
        let id = EdgeId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "e7");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(VertexId::from_index(1) < VertexId::from_index(2));
        assert!(EdgeId::from_index(0) < EdgeId::from_index(9));
    }

    #[test]
    fn ids_serialize_transparently() {
        let id = VertexId::from_index(5);
        assert_eq!(serde_json::to_string(&id).unwrap(), "5");
        let back: VertexId = serde_json::from_str("5").unwrap();
        assert_eq!(back, id);
    }
}
