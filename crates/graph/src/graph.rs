//! The directed labeled property graph.

use crate::edge::Edge;
use crate::error::GraphError;
use crate::ids::{EdgeId, VertexId};
use crate::props::Properties;
use crate::vertex::Vertex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A directed labeled graph `G = (V, E, L)` (§II of the paper).
///
/// Vertices and edges are append-only: SVQA builds scene graphs, merges them
/// into the merged graph, and attaches cache indexes, but never deletes
/// structure mid-query; dropping deletion keeps ids stable and the arenas
/// dense.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    vertices: Vec<Vertex>,
    edges: Vec<Edge>,
    /// label → vertex ids carrying that label (in insertion order).
    #[serde(skip)]
    label_index: HashMap<String, Vec<VertexId>>,
    /// edge label → number of edges carrying it (Algorithm 3's
    /// `getLabels(E_mg)` reads this).
    #[serde(skip)]
    edge_label_counts: HashMap<String, usize>,
}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// An empty graph with pre-sized arenas, for bulk loads such as merging
    /// 4,233 scene graphs.
    pub fn with_capacity(vertices: usize, edges: usize) -> Self {
        Graph {
            vertices: Vec::with_capacity(vertices),
            edges: Vec::with_capacity(edges),
            label_index: HashMap::new(),
            edge_label_counts: HashMap::new(),
        }
    }

    /// Number of vertices `|V|`.
    pub fn vertex_count(&self) -> usize {
        self.vertices.len()
    }

    /// Number of edges `|E|`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the graph holds no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Add a vertex with the given label and no properties.
    pub fn add_vertex(&mut self, label: impl Into<String>) -> VertexId {
        self.add_vertex_with_props(label, Properties::new())
    }

    /// Add a vertex with the given label and properties.
    pub fn add_vertex_with_props(
        &mut self,
        label: impl Into<String>,
        props: Properties,
    ) -> VertexId {
        let label = label.into();
        let id = VertexId::from_index(self.vertices.len());
        self.label_index
            .entry(label.clone())
            .or_default()
            .push(id);
        self.vertices.push(Vertex::new(label, props));
        id
    }

    /// Add a directed edge `src → dst` with the given label.
    pub fn add_edge(
        &mut self,
        src: VertexId,
        dst: VertexId,
        label: impl Into<String>,
    ) -> Result<EdgeId, GraphError> {
        self.add_edge_with_props(src, dst, label, Properties::new())
    }

    /// Add a directed edge `src → dst` with the given label and properties.
    pub fn add_edge_with_props(
        &mut self,
        src: VertexId,
        dst: VertexId,
        label: impl Into<String>,
        props: Properties,
    ) -> Result<EdgeId, GraphError> {
        if src.index() >= self.vertices.len() {
            return Err(GraphError::UnknownVertex(src));
        }
        if dst.index() >= self.vertices.len() {
            return Err(GraphError::UnknownVertex(dst));
        }
        let label = label.into();
        let id = EdgeId::from_index(self.edges.len());
        *self.edge_label_counts.entry(label.clone()).or_insert(0) += 1;
        self.edges.push(Edge::new(src, dst, label, props));
        self.vertices[src.index()].out_edges.push(id);
        self.vertices[dst.index()].in_edges.push(id);
        Ok(id)
    }

    /// Look up a vertex by id.
    pub fn vertex(&self, id: VertexId) -> Option<&Vertex> {
        self.vertices.get(id.index())
    }

    /// Mutable vertex lookup.
    pub fn vertex_mut(&mut self, id: VertexId) -> Option<&mut Vertex> {
        self.vertices.get_mut(id.index())
    }

    /// Look up an edge by id.
    pub fn edge(&self, id: EdgeId) -> Option<&Edge> {
        self.edges.get(id.index())
    }

    /// Mutable edge lookup.
    pub fn edge_mut(&mut self, id: EdgeId) -> Option<&mut Edge> {
        self.edges.get_mut(id.index())
    }

    /// Label `L(v)` of a vertex; `None` for a foreign id.
    pub fn vertex_label(&self, id: VertexId) -> Option<&str> {
        self.vertex(id).map(Vertex::label)
    }

    /// Label `L(e)` of an edge; `None` for a foreign id.
    pub fn edge_label(&self, id: EdgeId) -> Option<&str> {
        self.edge(id).map(Edge::label)
    }

    /// Iterate all vertices with their ids.
    pub fn vertices(&self) -> impl Iterator<Item = (VertexId, &Vertex)> {
        self.vertices
            .iter()
            .enumerate()
            .map(|(i, v)| (VertexId::from_index(i), v))
    }

    /// Iterate all edges with their ids.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.edges
            .iter()
            .enumerate()
            .map(|(i, e)| (EdgeId::from_index(i), e))
    }

    /// Vertices carrying exactly this label, in insertion order. This is the
    /// index behind `matchVertex` (§V) and Algorithm 1's `find(t_sg, V)`.
    pub fn vertices_with_label(&self, label: &str) -> &[VertexId] {
        self.label_index
            .get(label)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Distinct vertex labels with their vertex counts.
    pub fn vertex_label_counts(&self) -> impl Iterator<Item = (&str, usize)> {
        self.label_index.iter().map(|(l, ids)| (l.as_str(), ids.len()))
    }

    /// Distinct edge labels with their edge counts — Algorithm 3's
    /// `T ← getLabels(E_mg)`.
    pub fn edge_label_counts(&self) -> impl Iterator<Item = (&str, usize)> {
        self.edge_label_counts.iter().map(|(l, c)| (l.as_str(), *c))
    }

    /// Outgoing edges of `v` as `(edge id, edge)` pairs.
    pub fn out_edges(&self, v: VertexId) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.vertex(v)
            .map(|vx| vx.out_edge_ids())
            .unwrap_or(&[])
            .iter()
            .map(move |&eid| (eid, &self.edges[eid.index()]))
    }

    /// Incoming edges of `v` as `(edge id, edge)` pairs.
    pub fn in_edges(&self, v: VertexId) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.vertex(v)
            .map(|vx| vx.in_edge_ids())
            .unwrap_or(&[])
            .iter()
            .map(move |&eid| (eid, &self.edges[eid.index()]))
    }

    /// Successor vertices of `v` (targets of its out-edges; may repeat under
    /// parallel edges).
    pub fn out_neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.out_edges(v).map(|(_, e)| e.dst())
    }

    /// Predecessor vertices of `v`.
    pub fn in_neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.in_edges(v).map(|(_, e)| e.src())
    }

    /// Neighbours in either direction (the paper's k-hop neighbourhoods are
    /// taken over the undirected structure — see Example 3, where both
    /// `Fence → Man` and `Man → Fence` land in `S("Fence", 1)`).
    pub fn neighbors(&self, v: VertexId) -> impl Iterator<Item = VertexId> + '_ {
        self.out_neighbors(v).chain(self.in_neighbors(v))
    }

    /// Edges from `src` to `dst` (directed), as `(edge id, edge)` pairs.
    pub fn edges_between(
        &self,
        src: VertexId,
        dst: VertexId,
    ) -> impl Iterator<Item = (EdgeId, &Edge)> {
        self.out_edges(src).filter(move |(_, e)| e.dst() == dst)
    }

    /// Whether an edge `src → dst` with this label exists.
    pub fn has_edge(&self, src: VertexId, dst: VertexId, label: &str) -> bool {
        self.edges_between(src, dst).any(|(_, e)| e.label() == label)
    }

    /// Rebuild the label and edge-label indexes from the arenas. Called after
    /// deserialization (the indexes are not persisted).
    pub(crate) fn rebuild_indexes(&mut self) {
        self.label_index.clear();
        self.edge_label_counts.clear();
        for (i, v) in self.vertices.iter().enumerate() {
            self.label_index
                .entry(v.label().to_owned())
                .or_default()
                .push(VertexId::from_index(i));
        }
        for e in &self.edges {
            *self
                .edge_label_counts
                .entry(e.label().to_owned())
                .or_insert(0) += 1;
        }
    }

    /// Validate internal consistency: every edge endpoint resolves, and every
    /// adjacency entry points back at the right vertex. Used after
    /// deserialization and available to tests.
    pub fn validate(&self) -> Result<(), GraphError> {
        for (i, e) in self.edges.iter().enumerate() {
            let eid = EdgeId::from_index(i);
            let src = self
                .vertex(e.src())
                .ok_or(GraphError::CorruptGraph(format!("edge {eid} has dangling src")))?;
            if !src.out_edge_ids().contains(&eid) {
                return Err(GraphError::CorruptGraph(format!(
                    "edge {eid} missing from src adjacency"
                )));
            }
            let dst = self
                .vertex(e.dst())
                .ok_or(GraphError::CorruptGraph(format!("edge {eid} has dangling dst")))?;
            if !dst.in_edge_ids().contains(&eid) {
                return Err(GraphError::CorruptGraph(format!(
                    "edge {eid} missing from dst adjacency"
                )));
            }
        }
        for (vid, v) in self.vertices() {
            for &eid in v.out_edge_ids() {
                match self.edge(eid) {
                    Some(e) if e.src() == vid => {}
                    _ => {
                        return Err(GraphError::CorruptGraph(format!(
                            "vertex {vid} lists out-edge {eid} it does not own"
                        )))
                    }
                }
            }
            for &eid in v.in_edge_ids() {
                match self.edge(eid) {
                    Some(e) if e.dst() == vid => {}
                    _ => {
                        return Err(GraphError::CorruptGraph(format!(
                            "vertex {vid} lists in-edge {eid} it does not own"
                        )))
                    }
                }
            }
        }
        Ok(())
    }

    /// Copy every vertex and edge of `other` into `self`, returning the
    /// vertex id translation table (`other` id index → new id). The basis of
    /// scene-graph merging in the aggregator.
    pub fn absorb(&mut self, other: &Graph) -> Vec<VertexId> {
        let mut mapping = Vec::with_capacity(other.vertex_count());
        for (_, v) in other.vertices() {
            let id = self.add_vertex_with_props(v.label().to_owned(), v.props().clone());
            mapping.push(id);
        }
        for (_, e) in other.edges() {
            // Endpoints are valid by construction of `mapping`.
            self.add_edge_with_props(
                mapping[e.src().index()],
                mapping[e.dst().index()],
                e.label().to_owned(),
                e.props().clone(),
            )
            .expect("absorbed endpoints are valid");
        }
        mapping
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (Graph, VertexId, VertexId, VertexId) {
        let mut g = Graph::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        let c = g.add_vertex("c");
        g.add_edge(a, b, "ab").unwrap();
        g.add_edge(b, c, "bc").unwrap();
        g.add_edge(c, a, "ca").unwrap();
        (g, a, b, c)
    }

    #[test]
    fn counts_and_lookup() {
        let (g, a, b, _) = triangle();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.vertex_label(a), Some("a"));
        assert!(g.has_edge(a, b, "ab"));
        assert!(!g.has_edge(b, a, "ab"));
    }

    #[test]
    fn unknown_endpoints_rejected() {
        let mut g = Graph::new();
        let a = g.add_vertex("a");
        let ghost = VertexId::from_index(99);
        assert_eq!(
            g.add_edge(a, ghost, "x"),
            Err(GraphError::UnknownVertex(ghost))
        );
        assert_eq!(
            g.add_edge(ghost, a, "x"),
            Err(GraphError::UnknownVertex(ghost))
        );
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn label_index_tracks_duplicates() {
        let mut g = Graph::new();
        let d1 = g.add_vertex("dog");
        let d2 = g.add_vertex("dog");
        g.add_vertex("man");
        assert_eq!(g.vertices_with_label("dog"), &[d1, d2]);
        assert_eq!(g.vertices_with_label("cat"), &[] as &[VertexId]);
        let mut counts: Vec<_> = g.vertex_label_counts().collect();
        counts.sort();
        assert_eq!(counts, vec![("dog", 2), ("man", 1)]);
    }

    #[test]
    fn adjacency_directions() {
        let (g, a, b, c) = triangle();
        assert_eq!(g.out_neighbors(a).collect::<Vec<_>>(), vec![b]);
        assert_eq!(g.in_neighbors(a).collect::<Vec<_>>(), vec![c]);
        let mut both: Vec<_> = g.neighbors(a).collect();
        both.sort();
        assert_eq!(both, vec![b, c]);
    }

    #[test]
    fn edge_label_statistics() {
        let mut g = Graph::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        g.add_edge(a, b, "near").unwrap();
        g.add_edge(b, a, "near").unwrap();
        g.add_edge(a, b, "wearing").unwrap();
        let mut labels: Vec<_> = g.edge_label_counts().collect();
        labels.sort();
        assert_eq!(labels, vec![("near", 2), ("wearing", 1)]);
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g = Graph::new();
        let a = g.add_vertex("a");
        let b = g.add_vertex("b");
        g.add_edge(a, b, "x").unwrap();
        g.add_edge(a, b, "y").unwrap();
        assert_eq!(g.edges_between(a, b).count(), 2);
    }

    #[test]
    fn absorb_preserves_structure() {
        let (g1, _, _, _) = triangle();
        let mut g2 = Graph::new();
        let z = g2.add_vertex("z");
        let mapping = g2.absorb(&g1);
        assert_eq!(g2.vertex_count(), 4);
        assert_eq!(g2.edge_count(), 3);
        assert_eq!(mapping.len(), 3);
        assert_ne!(mapping[0], z);
        assert_eq!(g2.vertex_label(mapping[0]), Some("a"));
        assert!(g2.has_edge(mapping[0], mapping[1], "ab"));
        g2.validate().unwrap();
    }

    #[test]
    fn validate_passes_on_well_formed_graph() {
        let (g, _, _, _) = triangle();
        g.validate().unwrap();
    }

    #[test]
    fn with_capacity_starts_empty() {
        let g = Graph::with_capacity(100, 200);
        assert!(g.is_empty());
        assert_eq!(g.edge_count(), 0);
    }
}
