//! Error type for graph operations.

use crate::ids::{EdgeId, VertexId};
use std::fmt;

/// Errors surfaced by [`crate::Graph`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex id did not resolve inside this graph.
    UnknownVertex(VertexId),
    /// An edge id did not resolve inside this graph.
    UnknownEdge(EdgeId),
    /// A serialized graph failed validation on load (dangling endpoint,
    /// inconsistent adjacency, ...). The payload describes the first
    /// violation found.
    CorruptGraph(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownVertex(v) => write!(f, "unknown vertex {v}"),
            GraphError::UnknownEdge(e) => write!(f, "unknown edge {e}"),
            GraphError::CorruptGraph(msg) => write!(f, "corrupt graph: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{EdgeId, VertexId};

    #[test]
    fn display_messages() {
        assert_eq!(
            GraphError::UnknownVertex(VertexId::from_index(3)).to_string(),
            "unknown vertex v3"
        );
        assert_eq!(
            GraphError::UnknownEdge(EdgeId::from_index(1)).to_string(),
            "unknown edge e1"
        );
        assert!(GraphError::CorruptGraph("dangling".into())
            .to_string()
            .contains("dangling"));
    }
}
