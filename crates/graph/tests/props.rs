//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use svqa_graph::{
    induced_subgraph, k_hop_neighborhood, Bfs, Graph, GraphBuilder, LabelHistogram, VertexId,
};

/// Strategy: a random small graph as (vertex labels, edge index pairs).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..40).prop_flat_map(|n| {
        let labels = proptest::collection::vec(0u8..12, n);
        let edges = proptest::collection::vec((0..n, 0..n, 0u8..5), 0..120);
        (labels, edges).prop_map(|(labels, edges)| {
            let mut g = Graph::new();
            let ids: Vec<_> = labels
                .into_iter()
                .map(|l| g.add_vertex(format!("l{l}")))
                .collect();
            for (a, b, e) in edges {
                g.add_edge(ids[a], ids[b], format!("e{e}")).unwrap();
            }
            g
        })
    })
}

proptest! {
    #[test]
    fn built_graphs_always_validate(g in arb_graph()) {
        g.validate().unwrap();
    }

    #[test]
    fn serde_roundtrip_preserves_everything(g in arb_graph()) {
        let back = svqa_graph::io::from_json(&svqa_graph::io::to_json(&g)).unwrap();
        prop_assert_eq!(back.vertex_count(), g.vertex_count());
        prop_assert_eq!(back.edge_count(), g.edge_count());
        for (vid, v) in g.vertices() {
            prop_assert_eq!(back.vertex_label(vid), Some(v.label()));
        }
        // Rebuilt label index answers identically.
        for (label, count) in g.vertex_label_counts() {
            prop_assert_eq!(back.vertices_with_label(label).len(), count);
        }
    }

    #[test]
    fn absorb_is_additive(g1 in arb_graph(), g2 in arb_graph()) {
        let mut merged = g1.clone();
        let mapping = merged.absorb(&g2);
        prop_assert_eq!(merged.vertex_count(), g1.vertex_count() + g2.vertex_count());
        prop_assert_eq!(merged.edge_count(), g1.edge_count() + g2.edge_count());
        prop_assert_eq!(mapping.len(), g2.vertex_count());
        merged.validate().unwrap();
        // Labels preserved through the mapping.
        for (vid, v) in g2.vertices() {
            prop_assert_eq!(merged.vertex_label(mapping[vid.index()]), Some(v.label()));
        }
    }

    #[test]
    fn bfs_visits_each_vertex_at_most_once(g in arb_graph()) {
        let start = VertexId::from_index(0);
        let visited: Vec<_> = Bfs::new(&g, start).map(|(v, _)| v).collect();
        let mut dedup = visited.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), visited.len());
        prop_assert!(visited.len() <= g.vertex_count());
    }

    #[test]
    fn bfs_depths_are_monotone(g in arb_graph()) {
        let start = VertexId::from_index(0);
        let depths: Vec<_> = Bfs::new(&g, start).map(|(_, d)| d).collect();
        for w in depths.windows(2) {
            prop_assert!(w[1] >= w[0], "BFS yields non-decreasing depths");
            prop_assert!(w[1] <= w[0] + 1, "depths increase by at most one");
        }
    }

    #[test]
    fn k_hop_is_monotone_in_k(g in arb_graph(), k in 0usize..6) {
        let start = VertexId::from_index(0);
        let smaller = k_hop_neighborhood(&g, start, k);
        let larger = k_hop_neighborhood(&g, start, k + 1);
        prop_assert!(smaller.len() <= larger.len());
        for v in &smaller {
            prop_assert!(larger.contains(v));
        }
    }

    #[test]
    fn induced_subgraph_edges_stay_internal(g in arb_graph(), k in 0usize..4) {
        let start = VertexId::from_index(0);
        let view = induced_subgraph(&g, start, k);
        for &eid in view.edge_ids() {
            let e = g.edge(eid).unwrap();
            prop_assert!(view.contains_vertex(e.src()));
            prop_assert!(view.contains_vertex(e.dst()));
        }
        for &v in view.vertex_ids() {
            prop_assert!(view.contains_vertex(v));
        }
    }

    #[test]
    fn histogram_total_equals_vertex_count(g in arb_graph()) {
        let h = LabelHistogram::from_vertex_labels([&g]);
        prop_assert_eq!(h.total(), g.vertex_count());
        // Entries are sorted descending.
        let entries = h.entries();
        for w in entries.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
        // Coverage fractions are proper fractions.
        for t in 0..5 {
            let f = h.fraction_of_items_above(t);
            prop_assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn builder_never_duplicates_label_vertices(
        triples in proptest::collection::vec((0u8..8, 0u8..4, 0u8..8), 0..60)
    ) {
        let mut b = GraphBuilder::new();
        for (s, p, o) in &triples {
            b.triple(&format!("n{s}"), &format!("p{p}"), &format!("n{o}"));
        }
        let g = b.build();
        for (label, count) in g.vertex_label_counts() {
            prop_assert_eq!(count, 1, "label {} duplicated", label);
        }
        g.validate().unwrap();
    }
}
