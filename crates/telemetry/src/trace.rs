//! Per-question traces.

use crate::CacheStats;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// How a question's journey through the pipeline ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryOutcome {
    /// Parsed, executed, and answered.
    Answered,
    /// Rejected by the question parser.
    ParseError,
    /// Parsed, but rejected by the query-graph linter before execution.
    LintError,
    /// Parsed, but execution failed.
    ExecError,
}

/// One named stage timing inside a [`QueryTrace`].
///
/// A timing may carry nested `children` — sub-steps that ran inside the
/// stage (e.g. the per-quadruple spans inside `match`). `start_ns` is the
/// offset from the *parent's* start (from the trace start for top-level
/// stages), which is what lets the Chrome-trace exporter place every node
/// on a real timeline.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name (see [`crate::stage`]).
    pub stage: String,
    /// Wall-clock time spent, in nanoseconds.
    pub nanos: u64,
    /// Offset from the parent's start (ns); 0 for the first stage.
    #[serde(default)]
    pub start_ns: u64,
    /// Nested sub-steps, each with `start_ns` relative to this stage.
    #[serde(default)]
    pub children: Vec<StageTiming>,
}

impl StageTiming {
    /// A leaf timing.
    pub fn leaf(stage: impl Into<String>, start_ns: u64, nanos: u64) -> StageTiming {
        StageTiming {
            stage: stage.into(),
            nanos,
            start_ns,
            children: Vec::new(),
        }
    }

    /// Append a nested child (its `start_ns` is relative to `self`).
    pub fn push_child(&mut self, child: StageTiming) {
        self.children.push(child);
    }

    /// Total number of nodes in this subtree (self + descendants).
    pub fn node_count(&self) -> usize {
        1 + self.children.iter().map(StageTiming::node_count).sum::<usize>()
    }
}

/// The telemetry story of a single question: which stages it passed
/// through, how long each took, what the cache did for it, and how it
/// ended. Collected per question by the pipeline and surfaced through
/// `BatchOutcome` and `svqa-cli repl --verbose`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryTrace {
    /// The question text.
    pub question: String,
    /// Stage timings in execution order.
    pub stages: Vec<StageTiming>,
    /// Cache traffic attributed to this question (batch-level counters
    /// may be apportioned, so treat as approximate under concurrency).
    pub cache: CacheStats,
    /// Terminal state.
    pub outcome: QueryOutcome,
}

impl QueryTrace {
    /// A trace for `question` with no recorded stages yet.
    pub fn new(question: impl Into<String>) -> Self {
        QueryTrace {
            question: question.into(),
            stages: Vec::new(),
            cache: CacheStats::new(),
            outcome: QueryOutcome::Answered,
        }
    }

    /// Append a stage timing. Stages are assumed sequential, so the new
    /// stage's `start_ns` is the sum of the previously recorded ones.
    pub fn record_stage(&mut self, stage: &str, elapsed: Duration) {
        let start_ns = self.stages.iter().map(|s| s.nanos).sum();
        self.stages.push(StageTiming::leaf(
            stage,
            start_ns,
            u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
        ));
    }

    /// Append a fully-formed stage timing (offsets and children intact).
    pub fn record_stage_tree(&mut self, timing: StageTiming) {
        self.stages.push(timing);
    }

    /// Nanoseconds recorded for a stage, if present.
    pub fn stage_nanos(&self, stage: &str) -> Option<u64> {
        self.stages
            .iter()
            .find(|s| s.stage == stage)
            .map(|s| s.nanos)
    }

    /// Total time across all recorded stages.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.stages.iter().map(|s| s.nanos).sum())
    }

    /// One-line human summary, used by `svqa-cli repl --verbose`.
    pub fn summary_line(&self) -> String {
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|s| format!("{} {}", s.stage, fmt_ns(s.nanos)))
            .collect();
        let cache = if self.cache.total_lookups() == 0 {
            "cache cold".to_owned()
        } else {
            format!(
                "cache {:.0}% hit ({}/{})",
                self.cache.hit_rate() * 100.0,
                self.cache.total_hits(),
                self.cache.total_lookups()
            )
        };
        format!(
            "[{}] total {} ({}) {}",
            match self.outcome {
                QueryOutcome::Answered => "ok",
                QueryOutcome::ParseError => "parse-error",
                QueryOutcome::LintError => "lint-error",
                QueryOutcome::ExecError => "exec-error",
            },
            fmt_ns(u64::try_from(self.total().as_nanos()).unwrap_or(u64::MAX)),
            stages.join(", "),
            cache
        )
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage;

    #[test]
    fn trace_accumulates_stages() {
        let mut t = QueryTrace::new("How many dogs?");
        t.record_stage(stage::PARSE, Duration::from_micros(120));
        t.record_stage(stage::MATCH, Duration::from_micros(880));
        assert_eq!(t.stage_nanos(stage::PARSE), Some(120_000));
        assert_eq!(t.stage_nanos(stage::AGGREGATE), None);
        assert_eq!(t.total(), Duration::from_micros(1000));
    }

    #[test]
    fn summary_line_mentions_outcome_stages_and_cache() {
        let mut t = QueryTrace::new("q");
        t.record_stage(stage::PARSE, Duration::from_micros(5));
        t.cache = CacheStats {
            scope_hits: 3,
            scope_misses: 1,
            path_hits: 0,
            path_misses: 0,
        };
        let line = t.summary_line();
        assert!(line.contains("[ok]"), "{line}");
        assert!(line.contains("parse"), "{line}");
        assert!(line.contains("75% hit (3/4)"), "{line}");

        t.outcome = QueryOutcome::ParseError;
        t.cache = CacheStats::new();
        let line = t.summary_line();
        assert!(line.contains("[parse-error]"), "{line}");
        assert!(line.contains("cache cold"), "{line}");
    }

    #[test]
    fn sequential_stages_get_cumulative_start_offsets() {
        let mut t = QueryTrace::new("q");
        t.record_stage(stage::PARSE, Duration::from_nanos(100));
        t.record_stage(stage::MATCH, Duration::from_nanos(50));
        assert_eq!(t.stages[0].start_ns, 0);
        assert_eq!(t.stages[1].start_ns, 100);
    }

    #[test]
    fn nested_children_round_trip_and_count() {
        let mut outer = StageTiming::leaf(stage::MATCH, 0, 1_000);
        let mut quad = StageTiming::leaf("v0", 10, 400);
        quad.push_child(StageTiming::leaf("scope", 0, 100));
        outer.push_child(quad);
        outer.push_child(StageTiming::leaf("v1", 500, 300));
        assert_eq!(outer.node_count(), 4);

        let mut t = QueryTrace::new("q");
        t.record_stage_tree(outer.clone());
        let json = serde_json::to_string(&t).unwrap();
        let back: QueryTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back.stages[0], outer);
        assert_eq!(back.stages[0].children[0].children[0].stage, "scope");
    }

    #[test]
    fn trace_round_trips_json() {
        let mut t = QueryTrace::new("q?");
        t.record_stage(stage::SCHEDULE, Duration::from_nanos(7));
        t.outcome = QueryOutcome::ExecError;
        let json = serde_json::to_string(&t).unwrap();
        let back: QueryTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back.question, "q?");
        assert_eq!(back.stages, t.stages);
        assert_eq!(back.outcome, QueryOutcome::ExecError);
    }
}
