//! Per-question traces.

use crate::CacheStats;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// How a question's journey through the pipeline ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QueryOutcome {
    /// Parsed, executed, and answered.
    Answered,
    /// Rejected by the question parser.
    ParseError,
    /// Parsed, but execution failed.
    ExecError,
}

/// One named stage timing inside a [`QueryTrace`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageTiming {
    /// Stage name (see [`crate::stage`]).
    pub stage: String,
    /// Wall-clock time spent, in nanoseconds.
    pub nanos: u64,
}

/// The telemetry story of a single question: which stages it passed
/// through, how long each took, what the cache did for it, and how it
/// ended. Collected per question by the pipeline and surfaced through
/// `BatchOutcome` and `svqa-cli repl --verbose`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QueryTrace {
    /// The question text.
    pub question: String,
    /// Stage timings in execution order.
    pub stages: Vec<StageTiming>,
    /// Cache traffic attributed to this question (batch-level counters
    /// may be apportioned, so treat as approximate under concurrency).
    pub cache: CacheStats,
    /// Terminal state.
    pub outcome: QueryOutcome,
}

impl QueryTrace {
    /// A trace for `question` with no recorded stages yet.
    pub fn new(question: impl Into<String>) -> Self {
        QueryTrace {
            question: question.into(),
            stages: Vec::new(),
            cache: CacheStats::new(),
            outcome: QueryOutcome::Answered,
        }
    }

    /// Append a stage timing.
    pub fn record_stage(&mut self, stage: &str, elapsed: Duration) {
        self.stages.push(StageTiming {
            stage: stage.to_owned(),
            nanos: u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX),
        });
    }

    /// Nanoseconds recorded for a stage, if present.
    pub fn stage_nanos(&self, stage: &str) -> Option<u64> {
        self.stages
            .iter()
            .find(|s| s.stage == stage)
            .map(|s| s.nanos)
    }

    /// Total time across all recorded stages.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.stages.iter().map(|s| s.nanos).sum())
    }

    /// One-line human summary, used by `svqa-cli repl --verbose`.
    pub fn summary_line(&self) -> String {
        let stages: Vec<String> = self
            .stages
            .iter()
            .map(|s| format!("{} {}", s.stage, fmt_ns(s.nanos)))
            .collect();
        let cache = if self.cache.total_lookups() == 0 {
            "cache cold".to_owned()
        } else {
            format!(
                "cache {:.0}% hit ({}/{})",
                self.cache.hit_rate() * 100.0,
                self.cache.total_hits(),
                self.cache.total_lookups()
            )
        };
        format!(
            "[{}] total {} ({}) {}",
            match self.outcome {
                QueryOutcome::Answered => "ok",
                QueryOutcome::ParseError => "parse-error",
                QueryOutcome::ExecError => "exec-error",
            },
            fmt_ns(u64::try_from(self.total().as_nanos()).unwrap_or(u64::MAX)),
            stages.join(", "),
            cache
        )
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage;

    #[test]
    fn trace_accumulates_stages() {
        let mut t = QueryTrace::new("How many dogs?");
        t.record_stage(stage::PARSE, Duration::from_micros(120));
        t.record_stage(stage::MATCH, Duration::from_micros(880));
        assert_eq!(t.stage_nanos(stage::PARSE), Some(120_000));
        assert_eq!(t.stage_nanos(stage::AGGREGATE), None);
        assert_eq!(t.total(), Duration::from_micros(1000));
    }

    #[test]
    fn summary_line_mentions_outcome_stages_and_cache() {
        let mut t = QueryTrace::new("q");
        t.record_stage(stage::PARSE, Duration::from_micros(5));
        t.cache = CacheStats {
            scope_hits: 3,
            scope_misses: 1,
            path_hits: 0,
            path_misses: 0,
        };
        let line = t.summary_line();
        assert!(line.contains("[ok]"), "{line}");
        assert!(line.contains("parse"), "{line}");
        assert!(line.contains("75% hit (3/4)"), "{line}");

        t.outcome = QueryOutcome::ParseError;
        t.cache = CacheStats::new();
        let line = t.summary_line();
        assert!(line.contains("[parse-error]"), "{line}");
        assert!(line.contains("cache cold"), "{line}");
    }

    #[test]
    fn trace_round_trips_json() {
        let mut t = QueryTrace::new("q?");
        t.record_stage(stage::SCHEDULE, Duration::from_nanos(7));
        t.outcome = QueryOutcome::ExecError;
        let json = serde_json::to_string(&t).unwrap();
        let back: QueryTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back.question, "q?");
        assert_eq!(back.stages, t.stages);
        assert_eq!(back.outcome, QueryOutcome::ExecError);
    }
}
