//! Chrome trace-event JSON export.
//!
//! Converts [`QueryTrace`]s (with their nested [`StageTiming`] trees) into
//! the Trace Event Format's *JSON array* flavour — the format
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev) open
//! directly. Every node becomes a *complete* (`"ph": "X"`) event with
//! `ts`/`dur` in **microseconds**, as the format requires; nesting falls
//! out of timestamp containment, so no matched B/E pairs are needed.

use crate::trace::{QueryTrace, StageTiming};
use serde::{Deserialize, Serialize};

/// One trace event in Chrome's Trace Event Format.
///
/// Only the fields the viewers actually consume are modelled; `ph` is
/// `"X"` (complete event) for everything this module emits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Event name (stage or sub-step).
    pub name: String,
    /// Comma-separated category list.
    pub cat: String,
    /// Event phase: `"X"` = complete (has `ts` + `dur`).
    pub ph: String,
    /// Start timestamp in microseconds.
    pub ts: f64,
    /// Duration in microseconds.
    pub dur: f64,
    /// Process id (constant: one SVQA process).
    pub pid: u64,
    /// Thread id — one lane per query so queries stack side by side.
    pub tid: u64,
}

/// A collection of trace events, serializable as the JSON array the
/// Chrome/Perfetto loaders accept.
#[derive(Debug, Clone, Default)]
pub struct ChromeTrace {
    events: Vec<TraceEvent>,
}

fn us(ns: u64) -> f64 {
    ns as f64 / 1_000.0
}

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> Self {
        ChromeTrace::default()
    }

    /// Append a complete (`"X"`) event. `ts`/`dur` in microseconds.
    pub fn complete(&mut self, name: &str, cat: &str, ts_us: f64, dur_us: f64, tid: u64) {
        self.events.push(TraceEvent {
            name: name.to_owned(),
            cat: cat.to_owned(),
            ph: "X".to_owned(),
            ts: ts_us,
            dur: dur_us,
            pid: 1,
            tid,
        });
    }

    /// Render a batch of query traces: each query gets its own `tid` lane;
    /// lanes share one timeline, queries laid out back to back (their
    /// stage offsets are per-query, not absolute wall-clock).
    pub fn from_query_traces(traces: &[QueryTrace]) -> ChromeTrace {
        let mut out = ChromeTrace::new();
        let mut base_ns = 0u64;
        for (qi, trace) in traces.iter().enumerate() {
            let tid = qi as u64 + 1;
            let total = trace
                .stages
                .iter()
                .map(|s| s.start_ns + s.nanos)
                .max()
                .unwrap_or(0);
            out.complete("query", "svqa.query", us(base_ns), us(total), tid);
            // One event per stage node, depth-first, offsets accumulated.
            for stage in &trace.stages {
                out.push_tree(stage, base_ns, tid, "svqa.stage");
            }
            base_ns += total.max(1);
        }
        out
    }

    fn push_tree(&mut self, node: &StageTiming, parent_start_ns: u64, tid: u64, cat: &str) {
        let start = parent_start_ns + node.start_ns;
        self.complete(&node.stage, cat, us(start), us(node.nanos), tid);
        for child in &node.children {
            self.push_tree(child, start, tid, "svqa.step");
        }
    }

    /// The events, in insertion order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Serialize as the JSON *array* flavour of the Trace Event Format
    /// (what `chrome://tracing` and Perfetto open without any wrapper).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.events).expect("events serialize infallibly")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage;
    use std::time::Duration;

    fn sample_trace() -> QueryTrace {
        let mut t = QueryTrace::new("How many dogs?");
        t.record_stage(stage::PARSE, Duration::from_micros(120));
        let mut m = StageTiming::leaf(stage::MATCH, 120_000, 880_000);
        let mut quad = StageTiming::leaf("v0 ⟨dog, in, car⟩", 1_000, 500_000);
        quad.push_child(StageTiming::leaf("scope:sub", 0, 200_000));
        m.push_child(quad);
        t.record_stage_tree(m);
        t
    }

    #[test]
    fn emits_only_complete_events_with_microsecond_units() {
        let trace = sample_trace();
        let ct = ChromeTrace::from_query_traces(std::slice::from_ref(&trace));
        assert!(!ct.events().is_empty());
        for e in ct.events() {
            assert_eq!(e.ph, "X");
            assert!(e.ts >= 0.0 && e.dur >= 0.0);
        }
        // The parse stage's 120µs duration survives the ns→µs conversion.
        let parse = ct
            .events()
            .iter()
            .find(|e| e.name == stage::PARSE)
            .expect("parse event");
        assert!((parse.dur - 120.0).abs() < 1e-9, "dur = {}", parse.dur);
    }

    #[test]
    fn children_are_contained_within_parents() {
        let trace = sample_trace();
        let ct = ChromeTrace::from_query_traces(std::slice::from_ref(&trace));
        let find = |name: &str| {
            ct.events()
                .iter()
                .find(|e| e.name == name)
                .unwrap_or_else(|| panic!("missing event {name}"))
        };
        let m = find(stage::MATCH);
        let quad = find("v0 ⟨dog, in, car⟩");
        let scope = find("scope:sub");
        assert!(quad.ts >= m.ts && quad.ts + quad.dur <= m.ts + m.dur);
        assert!(scope.ts >= quad.ts && scope.ts + scope.dur <= quad.ts + quad.dur);
    }

    #[test]
    fn json_is_a_parseable_array_and_queries_get_lanes() {
        let t1 = sample_trace();
        let mut t2 = QueryTrace::new("q2");
        t2.record_stage(stage::PARSE, Duration::from_micros(10));
        let ct = ChromeTrace::from_query_traces(&[t1, t2]);
        let json = ct.to_json();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        let arr = match v {
            serde_json::Value::Array(a) => a,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr.len(), ct.events().len());
        let tids: std::collections::BTreeSet<u64> =
            ct.events().iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 2, "one lane per query: {tids:?}");
        // The second query starts after the first ends.
        let q_events: Vec<&TraceEvent> =
            ct.events().iter().filter(|e| e.name == "query").collect();
        assert_eq!(q_events.len(), 2);
        assert!(q_events[1].ts >= q_events[0].ts + q_events[0].dur);
    }
}
