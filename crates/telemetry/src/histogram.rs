//! Log-bucketed latency histograms.

use serde::{Deserialize, Serialize};

/// Number of buckets: one for zero plus one per power of two up to
/// `u64::MAX` nanoseconds.
const BUCKETS: usize = 65;

/// A latency histogram with power-of-two nanosecond buckets.
///
/// Bucket 0 holds exact zeros; bucket `i > 0` holds durations in
/// `[2^(i-1), 2^i)` ns. Recording is O(1) and allocation-free; percentile
/// queries walk the fixed bucket array. Bucket resolution (a factor of
/// two) is the usual trade for unbounded range at constant memory — fine
/// for dashboards and regression checks, not for microsecond-exact SLOs.
#[derive(Debug, Clone)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bucket_index(nanos: u64) -> usize {
        match nanos.checked_ilog2() {
            None => 0, // nanos == 0
            Some(log) => log as usize + 1,
        }
    }

    /// Upper edge (exclusive) of bucket `i`, saturating at `u64::MAX`.
    fn bucket_upper(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            1u64 << i
        }
    }

    /// Record one observation in nanoseconds.
    pub fn record(&mut self, nanos: u64) {
        self.counts[Self::bucket_index(nanos)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(nanos);
        self.min = self.min.min(nanos);
        self.max = self.max.max(nanos);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations in nanoseconds.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The `q`-quantile (`q` in `[0, 1]`) as a representative value from
    /// the containing bucket, clamped to the observed min/max. Returns 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation (1-based), nearest-rank method.
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Representative: bucket midpoint, clamped to what was
                // actually observed so tiny samples stay honest.
                let upper = Self::bucket_upper(i);
                let lower = if i <= 1 { 0 } else { Self::bucket_upper(i - 1) };
                let mid = lower + (upper - lower) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Freeze into a serializable summary.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum_ns: self.sum,
            min_ns: if self.count == 0 { 0 } else { self.min },
            max_ns: self.max,
            mean_ns: self.sum.checked_div(self.count).unwrap_or(0),
            p50_ns: self.quantile(0.50),
            p95_ns: self.quantile(0.95),
            p99_ns: self.quantile(0.99),
            buckets: self
                .counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| BucketCount {
                    le_ns: Self::bucket_upper(i),
                    count: c,
                })
                .collect(),
        }
    }
}

/// One occupied histogram bucket: observations `<= le_ns` fall in this or
/// an earlier bucket. Counts are per-bucket (non-cumulative); the
/// Prometheus exposition layer accumulates them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketCount {
    /// Upper edge of the bucket in nanoseconds (inclusive for exposition
    /// purposes: the raw bucket is `[2^(i-1), 2^i)`, so every member is
    /// `<= 2^i`).
    pub le_ns: u64,
    /// Observations landing in this bucket.
    pub count: u64,
}

/// Serializable summary of a [`Histogram`].
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations (ns).
    pub sum_ns: u64,
    /// Smallest observation (ns).
    pub min_ns: u64,
    /// Largest observation (ns).
    pub max_ns: u64,
    /// Mean observation (ns).
    pub mean_ns: u64,
    /// Median (ns), bucket-resolution.
    pub p50_ns: u64,
    /// 95th percentile (ns), bucket-resolution.
    pub p95_ns: u64,
    /// 99th percentile (ns), bucket-resolution.
    pub p99_ns: u64,
    /// Occupied buckets in ascending `le_ns` order (absent in snapshots
    /// produced before this field existed).
    #[serde(default)]
    pub buckets: Vec<BucketCount>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap, HistogramSnapshot::default());
    }

    #[test]
    fn single_observation_pins_all_percentiles() {
        let mut h = Histogram::new();
        h.record(1000);
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert_eq!(snap.min_ns, 1000);
        assert_eq!(snap.max_ns, 1000);
        // Clamping to observed min/max makes one-sample quantiles exact.
        assert_eq!(snap.p50_ns, 1000);
        assert_eq!(snap.p99_ns, 1000);
    }

    #[test]
    fn percentiles_are_ordered_and_bucket_accurate() {
        let mut h = Histogram::new();
        // 90 fast observations around 1µs, 10 slow around 1ms.
        for _ in 0..90 {
            h.record(1_000);
        }
        for _ in 0..10 {
            h.record(1_000_000);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert!(snap.p50_ns <= snap.p95_ns && snap.p95_ns <= snap.p99_ns);
        // p50 lands in the 1µs bucket [512, 1024): within a factor of 2.
        assert!((512..2048).contains(&snap.p50_ns), "p50 = {}", snap.p50_ns);
        // p95 and p99 land in the 1ms bucket.
        assert!(
            (524_288..2_097_152).contains(&snap.p99_ns),
            "p99 = {}",
            snap.p99_ns
        );
    }

    #[test]
    fn zero_durations_are_representable() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(0);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        assert_eq!(snap.p50_ns, 0);
        assert_eq!(snap.max_ns, 0);
    }

    #[test]
    fn snapshot_buckets_cover_all_observations() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(3);
        h.record(3);
        h.record(1_000_000);
        let snap = h.snapshot();
        let total: u64 = snap.buckets.iter().map(|b| b.count).sum();
        assert_eq!(total, snap.count);
        // Ascending upper edges, and every edge bounds its bucket members.
        let mut last = None;
        for b in &snap.buckets {
            assert!(last.is_none_or(|l| b.le_ns > l), "{:?}", snap.buckets);
            last = Some(b.le_ns);
        }
        assert_eq!(snap.buckets[0], BucketCount { le_ns: 0, count: 1 });
        assert_eq!(snap.buckets[1], BucketCount { le_ns: 4, count: 2 });
    }

    #[test]
    fn quantile_monotone_in_q() {
        let mut h = Histogram::new();
        for i in 1..=1000u64 {
            h.record(i * 17);
        }
        let mut last = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(v >= last, "quantile({q}) = {v} < {last}");
            last = v;
        }
    }
}
