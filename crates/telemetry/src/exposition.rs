//! Prometheus text exposition (format version 0.0.4).
//!
//! Renders a [`MetricsSnapshot`] into the plain-text format Prometheus
//! scrapes: counters (`_total` suffix), gauges, and the span latency
//! histograms as one `svqa_span_duration_seconds` family labelled by
//! stage, with **cumulative** `le` buckets ending in `+Inf` as the format
//! requires. No client library — the format is a dozen lines of rules,
//! and this crate stays dependency-free.

use crate::recorder::MetricsSnapshot;
use std::fmt::Write as _;

/// Sanitize a metric-name fragment: `[a-zA-Z0-9_:]`, no leading digit.
fn metric_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for (i, c) in raw.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if ok && !(i == 0 && c.is_ascii_digit()) {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escape a label value: backslash, double-quote, and newline, per the
/// exposition format spec.
fn escape_label(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

fn secs(ns: u64) -> f64 {
    ns as f64 / 1e9
}

/// Render the snapshot in Prometheus text exposition format.
///
/// Families emitted:
/// * `svqa_<counter>_total` — every named counter, type `counter`;
/// * `svqa_<gauge>` — every named gauge, type `gauge`;
/// * `svqa_span_duration_seconds` — one histogram per span name
///   (`stage` label), cumulative buckets + `_sum` + `_count`;
/// * `svqa_cache_hit_rate` — derived scope/path/overall rates, `pool`
///   label, type `gauge`.
pub fn prometheus_text(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();

    for (name, value) in &snap.counters {
        let family = format!("svqa_{}_total", metric_name(name));
        let _ = writeln!(out, "# TYPE {family} counter");
        let _ = writeln!(out, "{family} {value}");
    }

    for (name, value) in &snap.gauges {
        let family = format!("svqa_{}", metric_name(name));
        let _ = writeln!(out, "# TYPE {family} gauge");
        let _ = writeln!(out, "{family} {value}");
    }

    if !snap.spans.is_empty() {
        let _ = writeln!(out, "# TYPE svqa_span_duration_seconds histogram");
        for (stage, h) in &snap.spans {
            let stage = escape_label(stage);
            let mut cumulative = 0u64;
            for bucket in &h.buckets {
                cumulative += bucket.count;
                let _ = writeln!(
                    out,
                    "svqa_span_duration_seconds_bucket{{stage=\"{stage}\",le=\"{}\"}} {cumulative}",
                    secs(bucket.le_ns)
                );
            }
            let _ = writeln!(
                out,
                "svqa_span_duration_seconds_bucket{{stage=\"{stage}\",le=\"+Inf\"}} {}",
                h.count
            );
            let _ = writeln!(
                out,
                "svqa_span_duration_seconds_sum{{stage=\"{stage}\"}} {}",
                secs(h.sum_ns)
            );
            let _ = writeln!(
                out,
                "svqa_span_duration_seconds_count{{stage=\"{stage}\"}} {}",
                h.count
            );
        }
    }

    let _ = writeln!(out, "# TYPE svqa_cache_hit_rate gauge");
    for (pool, rate) in [
        ("scope", snap.cache.scope_hit_rate),
        ("path", snap.cache.path_hit_rate),
        ("overall", snap.cache.overall_hit_rate),
    ] {
        let _ = writeln!(out, "svqa_cache_hit_rate{{pool=\"{pool}\"}} {rate}");
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Recorder;
    use std::collections::HashMap;
    use std::time::Duration;

    /// Parse `family{labels} value` sample lines into a map (tests only).
    fn samples(text: &str) -> HashMap<String, f64> {
        text.lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
            .map(|l| {
                let (key, value) = l.rsplit_once(' ').expect("sample line");
                (key.to_owned(), value.parse::<f64>().expect("numeric value"))
            })
            .collect()
    }

    #[test]
    fn counters_and_gauges_render_with_types() {
        let r = Recorder::new();
        r.incr_counter_by("questions_answered", 7);
        r.set_gauge("load", 0.5);
        let text = prometheus_text(&r.snapshot());
        assert!(text.contains("# TYPE svqa_questions_answered_total counter"));
        assert!(text.contains("svqa_questions_answered_total 7"));
        assert!(text.contains("# TYPE svqa_load gauge"));
        assert!(text.contains("svqa_load 0.5"));
    }

    #[test]
    fn metric_names_are_sanitized() {
        let r = Recorder::new();
        r.incr_counter("weird-name.with chars");
        r.incr_counter("0leading");
        let text = prometheus_text(&r.snapshot());
        assert!(text.contains("svqa_weird_name_with_chars_total 1"));
        assert!(text.contains("svqa__leading_total 1"), "{text}");
    }

    #[test]
    fn label_values_are_escaped() {
        let r = Recorder::new();
        r.record_span("odd\"stage\\with\nstuff", Duration::from_micros(5));
        let text = prometheus_text(&r.snapshot());
        assert!(
            text.contains(r#"stage="odd\"stage\\with\nstuff""#),
            "escaping failed:\n{text}"
        );
        // No raw newline may survive inside a label value: every sample
        // line must still end in a numeric value.
        let _ = samples(&text);
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_at_inf() {
        let r = Recorder::new();
        // Three different buckets: ~1µs ×3, ~1ms ×2, ~16ms ×1.
        for _ in 0..3 {
            r.record_span("match", Duration::from_micros(1));
        }
        for _ in 0..2 {
            r.record_span("match", Duration::from_millis(1));
        }
        r.record_span("match", Duration::from_millis(16));
        let text = prometheus_text(&r.snapshot());

        let mut last = 0.0f64;
        let mut bucket_lines = 0;
        for line in text.lines() {
            if line.starts_with("svqa_span_duration_seconds_bucket{stage=\"match\"") {
                bucket_lines += 1;
                let v: f64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
                assert!(v >= last, "non-cumulative bucket: {line}");
                last = v;
            }
        }
        assert!(bucket_lines >= 4, "3 occupied buckets + +Inf, got {bucket_lines}");
        assert!(text.contains("le=\"+Inf\"}} 6") || text.contains("le=\"+Inf\"} 6"));
        let map = samples(&text);
        assert_eq!(map["svqa_span_duration_seconds_count{stage=\"match\"}"], 6.0);
        assert!(map["svqa_span_duration_seconds_sum{stage=\"match\"}"] > 0.0);
        assert_eq!(last, 6.0, "last cumulative bucket equals count");
    }

    #[test]
    fn counters_are_monotone_across_scrapes() {
        let r = Recorder::new();
        r.incr_counter_by("hits", 3);
        let first = samples(&prometheus_text(&r.snapshot()));
        r.incr_counter_by("hits", 2);
        r.record_span("parse", Duration::from_micros(10));
        let second = samples(&prometheus_text(&r.snapshot()));
        for (key, v1) in &first {
            if key.contains("_total") || key.contains("_count") || key.contains("_bucket") {
                let v2 = second.get(key).copied().unwrap_or(f64::NAN);
                assert!(v2 >= *v1, "{key} went backwards: {v1} -> {v2}");
            }
        }
        assert_eq!(second["svqa_hits_total"], 5.0);
    }
}
