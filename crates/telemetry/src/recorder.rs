//! The metrics registry.

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::{counter, CacheStats};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::sync::OnceLock;
use std::time::Duration;

/// A thread-safe registry of counters, gauges, and span histograms.
///
/// Cloning is cheap (shared `Arc`); all methods take `&self`. One
/// process-global instance backs [`Span::enter`](crate::Span::enter) and
/// is returned by [`global()`]; tests and embedders can use their own.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Arc<Mutex<Inner>>,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    spans: BTreeMap<String, Histogram>,
}

impl Recorder {
    /// A fresh, empty recorder.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Add 1 to a named counter.
    pub fn incr_counter(&self, name: &str) {
        self.incr_counter_by(name, 1);
    }

    /// Add `by` to a named counter.
    pub fn incr_counter_by(&self, name: &str, by: u64) {
        if by == 0 {
            return;
        }
        let mut inner = self.inner.lock();
        *inner.counters.entry(name.to_owned()).or_insert(0) += by;
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Set a named gauge to a point-in-time value.
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.inner.lock().gauges.insert(name.to_owned(), value);
    }

    /// Record a span duration into the named latency histogram.
    pub fn record_span(&self, name: &str, elapsed: Duration) {
        let nanos = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        let mut inner = self.inner.lock();
        inner
            .spans
            .entry(name.to_owned())
            .or_default()
            .record(nanos);
    }

    /// Number of recorded durations for a span name.
    pub fn span_count(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .spans
            .get(name)
            .map_or(0, Histogram::count)
    }

    /// Sum of recorded durations for a span name, in nanoseconds.
    pub fn span_total_ns(&self, name: &str) -> u64 {
        self.inner.lock().spans.get(name).map_or(0, Histogram::sum)
    }

    /// Freeze the registry into a serializable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        let cache = CacheStats {
            scope_hits: *inner.counters.get(counter::CACHE_SCOPE_HITS).unwrap_or(&0),
            scope_misses: *inner
                .counters
                .get(counter::CACHE_SCOPE_MISSES)
                .unwrap_or(&0),
            path_hits: *inner.counters.get(counter::CACHE_PATH_HITS).unwrap_or(&0),
            path_misses: *inner
                .counters
                .get(counter::CACHE_PATH_MISSES)
                .unwrap_or(&0),
        };
        // The question counters are part of the snapshot contract: readers
        // (dashboards, the integration tests) can rely on the keys being
        // present even when nothing was counted yet.
        let mut counters = inner.counters.clone();
        for name in [
            counter::QUESTIONS_PARSED,
            counter::QUESTIONS_ANSWERED,
            counter::QUESTIONS_FAILED,
        ] {
            counters.entry(name.to_owned()).or_insert(0);
        }
        MetricsSnapshot {
            counters,
            gauges: inner.gauges.clone(),
            spans: inner
                .spans
                .iter()
                .map(|(k, h)| (k.clone(), h.snapshot()))
                .collect(),
            cache: CacheSummary::from_stats(cache),
        }
    }

    /// Clear all counters, gauges, and histograms.
    pub fn reset(&self) {
        let mut inner = self.inner.lock();
        *inner = Inner::default();
    }
}

/// The process-global recorder used by [`Span::enter`](crate::Span::enter)
/// and the default instrumentation.
pub fn global() -> &'static Recorder {
    static GLOBAL: OnceLock<Recorder> = OnceLock::new();
    GLOBAL.get_or_init(Recorder::new)
}

/// Serializable dump of a [`Recorder`]: what `svqa-cli --metrics` writes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Monotonic event counts.
    pub counters: BTreeMap<String, u64>,
    /// Point-in-time values.
    pub gauges: BTreeMap<String, f64>,
    /// Latency histograms keyed by span name.
    pub spans: BTreeMap<String, HistogramSnapshot>,
    /// Cache traffic, folded out of the cache counters.
    pub cache: CacheSummary,
}

impl MetricsSnapshot {
    /// Pretty-printed JSON for files and stdout.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization is infallible")
    }
}

/// Cache counters plus derived hit rates, for metrics output.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CacheSummary {
    /// Raw hit/miss counters.
    pub stats: CacheStats,
    /// Scope-pool hit rate in `[0, 1]`.
    pub scope_hit_rate: f64,
    /// Path-pool hit rate in `[0, 1]`.
    pub path_hit_rate: f64,
    /// Combined hit rate in `[0, 1]`.
    pub overall_hit_rate: f64,
}

impl CacheSummary {
    /// Compute rates from raw counters.
    pub fn from_stats(stats: CacheStats) -> Self {
        CacheSummary {
            stats,
            scope_hit_rate: stats.scope_hit_rate(),
            path_hit_rate: stats.path_hit_rate(),
            overall_hit_rate: stats.hit_rate(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stage;

    #[test]
    fn counters_and_gauges_accumulate() {
        let r = Recorder::new();
        r.incr_counter("q");
        r.incr_counter_by("q", 4);
        r.incr_counter_by("q", 0); // no-op, must not create churn
        r.set_gauge("load", 0.5);
        r.set_gauge("load", 0.75);
        assert_eq!(r.counter_value("q"), 5);
        assert_eq!(r.counter_value("absent"), 0);
        let snap = r.snapshot();
        assert_eq!(snap.counters["q"], 5);
        assert_eq!(snap.gauges["load"], 0.75);
    }

    #[test]
    fn snapshot_folds_cache_counters() {
        let r = Recorder::new();
        CacheStats {
            scope_hits: 6,
            scope_misses: 2,
            path_hits: 1,
            path_misses: 1,
        }
        .record_to(&r);
        let snap = r.snapshot();
        assert_eq!(snap.cache.stats.scope_hits, 6);
        assert!((snap.cache.scope_hit_rate - 0.75).abs() < 1e-12);
        assert!((snap.cache.overall_hit_rate - 0.7).abs() < 1e-12);
    }

    #[test]
    fn snapshot_json_is_parseable() {
        let r = Recorder::new();
        r.incr_counter("n");
        r.record_span(stage::PARSE, Duration::from_micros(42));
        let text = r.snapshot().to_json_pretty();
        let back: MetricsSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back.counters["n"], 1);
        assert_eq!(back.spans[stage::PARSE].count, 1);
        assert!(back.spans[stage::PARSE].p50_ns > 0);
    }

    #[test]
    fn reset_clears_everything() {
        let r = Recorder::new();
        r.incr_counter("x");
        r.record_span("s", Duration::from_nanos(10));
        r.reset();
        assert_eq!(r.counter_value("x"), 0);
        assert_eq!(r.span_count("s"), 0);
    }

    #[test]
    fn recorder_is_shared_across_clones_and_threads() {
        let r = Recorder::new();
        let clones: Vec<Recorder> = (0..4).map(|_| r.clone()).collect();
        std::thread::scope(|s| {
            for c in &clones {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.incr_counter("hits");
                    }
                });
            }
        });
        assert_eq!(r.counter_value("hits"), 4000);
    }
}
