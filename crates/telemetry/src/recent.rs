//! Ring buffer of recent query profiles.
//!
//! The executor pushes one JSON document per profiled query; the metrics
//! server exposes the buffer at `/profiles/recent`. Profiles are stored as
//! opaque [`serde_json::Value`]s so this crate doesn't depend on the
//! executor's `ExecutionProfile` type (the dependency points the other
//! way).

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};

/// Default capacity of the process-global ring.
const GLOBAL_CAPACITY: usize = 32;

/// A bounded FIFO of profile documents; pushing past capacity evicts the
/// oldest. Cloning shares the underlying buffer.
#[derive(Clone)]
pub struct ProfileRing {
    inner: Arc<Mutex<VecDeque<serde_json::Value>>>,
    capacity: usize,
}

impl ProfileRing {
    /// An empty ring holding at most `capacity` profiles (min 1).
    pub fn new(capacity: usize) -> Self {
        ProfileRing {
            inner: Arc::new(Mutex::new(VecDeque::new())),
            capacity: capacity.max(1),
        }
    }

    /// Maximum number of retained profiles.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append a profile, evicting the oldest when full.
    pub fn push(&self, profile: serde_json::Value) {
        let mut inner = self.inner.lock();
        if inner.len() == self.capacity {
            inner.pop_front();
        }
        inner.push_back(profile);
    }

    /// The retained profiles, oldest first.
    pub fn recent(&self) -> Vec<serde_json::Value> {
        self.inner.lock().iter().cloned().collect()
    }

    /// Number of retained profiles.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when nothing has been recorded (or everything was cleared).
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Drop all retained profiles.
    pub fn clear(&self) {
        self.inner.lock().clear();
    }

    /// The retained profiles as a pretty JSON array.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.recent()).expect("values serialize infallibly")
    }
}

/// The process-global profile ring, fed by `answer_profiled` and served at
/// `/profiles/recent`.
pub fn global_profiles() -> &'static ProfileRing {
    static GLOBAL: OnceLock<ProfileRing> = OnceLock::new();
    GLOBAL.get_or_init(|| ProfileRing::new(GLOBAL_CAPACITY))
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    #[test]
    fn push_and_recent_preserve_order() {
        let ring = ProfileRing::new(8);
        assert!(ring.is_empty());
        ring.push(json!({"q": 1}));
        ring.push(json!({"q": 2}));
        let got = ring.recent();
        assert_eq!(got.len(), 2);
        assert_eq!(got[0]["q"], json!(1));
        assert_eq!(got[1]["q"], json!(2));
    }

    #[test]
    fn capacity_evicts_oldest() {
        let ring = ProfileRing::new(3);
        for i in 0..5 {
            ring.push(json!({"q": i}));
        }
        assert_eq!(ring.len(), 3);
        let got = ring.recent();
        assert_eq!(got[0]["q"], json!(2));
        assert_eq!(got[2]["q"], json!(4));
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let ring = ProfileRing::new(0);
        assert_eq!(ring.capacity(), 1);
        ring.push(json!(1));
        ring.push(json!(2));
        assert_eq!(ring.recent(), vec![json!(2)]);
    }

    #[test]
    fn to_json_is_an_array() {
        let ring = ProfileRing::new(4);
        ring.push(json!({"question": "How many dogs?"}));
        let v: serde_json::Value = serde_json::from_str(&ring.to_json()).unwrap();
        match v {
            serde_json::Value::Array(a) => assert_eq!(a.len(), 1),
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn clones_share_the_buffer() {
        let ring = ProfileRing::new(4);
        let clone = ring.clone();
        clone.push(json!(7));
        assert_eq!(ring.len(), 1);
        ring.clear();
        assert!(clone.is_empty());
    }
}
