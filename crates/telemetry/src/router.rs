//! A minimal dependency-free HTTP/1.1 toolkit on `std::net`.
//!
//! Generalizes the metrics endpoint's hand-rolled request handling into a
//! small reusable layer shared by the metrics server and the query-serving
//! subsystem (`svqa serve`):
//!
//! * [`Request`] / [`Response`] — one request, one response, no streaming;
//! * [`read_request`] / [`write_response`] — the wire format (request line,
//!   headers, `Content-Length`-delimited bodies);
//! * [`Router`] — exact-path dispatch with automatic 404/405 handling;
//! * [`HttpServer`] — a bound listener that applies per-connection read and
//!   write timeouts, so one silent client cannot wedge a serial accept
//!   loop.
//!
//! Deliberately tiny: no chunked encoding, no keep-alive (every response
//! sends `Connection: close`), no TLS. Good enough for a Prometheus
//! scraper, `curl`, or a load generator hitting localhost.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// Upper bound on accepted request bodies. Requests advertising more are
/// answered with `413 Payload Too Large` by [`HttpServer`] handling, and
/// [`read_request`] refuses to buffer them.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Upper bound on the number of request headers (DoS hygiene).
const MAX_HEADERS: usize = 100;

/// Default per-connection read/write timeout.
pub const DEFAULT_IO_TIMEOUT: Duration = Duration::from_secs(5);

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, ...).
    pub method: String,
    /// Request path, query string included, exactly as sent.
    pub path: String,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl Request {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8, if it is UTF-8.
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// An HTTP response: status, content type, extra headers, body.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (200, 404, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: String,
    /// Additional headers (e.g. `Retry-After`).
    pub extra_headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A `text/plain` response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8".to_owned(),
            extra_headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// An `application/json` response.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json".to_owned(),
            extra_headers: Vec::new(),
            body: body.into().into_bytes(),
        }
    }

    /// Override the content type (builder style).
    pub fn with_content_type(mut self, content_type: &str) -> Response {
        content_type.clone_into(&mut self.content_type);
        self
    }

    /// Append an extra header (builder style).
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.extra_headers.push((name.to_owned(), value.to_owned()));
        self
    }

    /// The canonical reason phrase for this status code.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            204 => "No Content",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            408 => "Request Timeout",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            500 => "Internal Server Error",
            503 => "Service Unavailable",
            504 => "Gateway Timeout",
            _ => "",
        }
    }
}

/// Read and parse one request from `reader`.
///
/// Returns `Ok(None)` on a clean EOF before any bytes (client connected
/// and hung up), an error on malformed input, oversized bodies, or I/O
/// failure (including a read timeout from a silent client).
pub fn read_request(reader: &mut BufReader<TcpStream>) -> io::Result<Option<Request>> {
    let mut request_line = String::new();
    if reader.read_line(&mut request_line)? == 0 {
        return Ok(None);
    }
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let path = parts.next().unwrap_or("/").to_owned();
    if method.is_empty() {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "empty method"));
    }

    let mut headers = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "eof inside headers",
            ));
        }
        let line = line.trim_end_matches(['\r', '\n']);
        if line.is_empty() {
            break;
        }
        if headers.len() >= MAX_HEADERS {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "too many headers",
            ));
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_owned()));
        }
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "body exceeds MAX_BODY_BYTES",
        ));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;

    Ok(Some(Request {
        method,
        path,
        headers,
        body,
    }))
}

/// Write `response` to `stream` with `Connection: close` framing.
pub fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        response.status,
        response.reason(),
        response.content_type,
        response.body.len()
    )?;
    for (name, value) in &response.extra_headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"\r\n")?;
    stream.write_all(&response.body)?;
    stream.flush()
}

type Handler<'h> = Box<dyn Fn(&Request) -> Response + Send + Sync + 'h>;

/// Exact-path request dispatch.
///
/// A matching path with the wrong method yields `405` (with an `Allow`
/// header); an unknown path yields `404`. The handler lifetime is generic
/// so servers built on scoped threads can register handlers that borrow
/// local state.
#[derive(Default)]
pub struct Router<'h> {
    routes: Vec<(&'static str, String, Handler<'h>)>,
}

impl<'h> Router<'h> {
    /// An empty router.
    pub fn new() -> Router<'h> {
        Router { routes: Vec::new() }
    }

    /// Register a `GET` handler for `path` (builder style).
    pub fn get(self, path: &str, f: impl Fn(&Request) -> Response + Send + Sync + 'h) -> Self {
        self.route("GET", path, f)
    }

    /// Register a `POST` handler for `path` (builder style).
    pub fn post(self, path: &str, f: impl Fn(&Request) -> Response + Send + Sync + 'h) -> Self {
        self.route("POST", path, f)
    }

    /// Register a handler for an arbitrary method (builder style).
    pub fn route(
        mut self,
        method: &'static str,
        path: &str,
        f: impl Fn(&Request) -> Response + Send + Sync + 'h,
    ) -> Self {
        self.routes.push((method, path.to_owned(), Box::new(f)));
        self
    }

    /// Dispatch `request` to the matching handler, or synthesize the
    /// 404/405 response.
    pub fn dispatch(&self, request: &Request) -> Response {
        // Ignore any query string for matching purposes.
        let path = request.path.split('?').next().unwrap_or("/");
        let mut allowed: Vec<&'static str> = Vec::new();
        for (method, route, handler) in &self.routes {
            if route == path {
                if *method == request.method {
                    return handler(request);
                }
                allowed.push(method);
            }
        }
        if allowed.is_empty() {
            Response::text(404, format!("no route for {path}\n"))
        } else {
            Response::text(405, format!("{path} supports: {}\n", allowed.join(", ")))
                .with_header("Allow", &allowed.join(", "))
        }
    }
}

/// A bound TCP listener that reads requests with per-connection I/O
/// timeouts and answers them through a [`Router`].
pub struct HttpServer {
    listener: TcpListener,
    io_timeout: Option<Duration>,
}

impl HttpServer {
    /// Bind `addr` (port 0 picks a free port) with the
    /// [default I/O timeout](DEFAULT_IO_TIMEOUT).
    pub fn bind(addr: &str) -> io::Result<HttpServer> {
        Ok(HttpServer {
            listener: TcpListener::bind(addr)?,
            io_timeout: Some(DEFAULT_IO_TIMEOUT),
        })
    }

    /// The actual bound address (useful with port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Override the per-connection read/write timeout (`None` disables).
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) {
        self.io_timeout = timeout;
    }

    /// Block for one connection, with I/O timeouts already applied.
    pub fn accept(&self) -> io::Result<TcpStream> {
        let (stream, _) = self.listener.accept()?;
        stream.set_read_timeout(self.io_timeout)?;
        stream.set_write_timeout(self.io_timeout)?;
        Ok(stream)
    }

    /// Read one request off `stream`, dispatch it through `router`, and
    /// write the response. Malformed or oversized requests get a 400/413;
    /// a silent client trips the read timeout and is dropped.
    pub fn handle_connection(stream: TcpStream, router: &Router<'_>) -> io::Result<()> {
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut stream = stream;
        match read_request(&mut reader) {
            Ok(Some(request)) => write_response(&mut stream, &router.dispatch(&request)),
            Ok(None) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let status = if e.to_string().contains("MAX_BODY_BYTES") {
                    413
                } else {
                    400
                };
                write_response(&mut stream, &Response::text(status, format!("{e}\n")))
            }
            Err(e) => Err(e),
        }
    }

    /// Accept and answer connections forever, serially. Per-connection
    /// errors (including timeouts) are swallowed: one bad client must not
    /// kill the endpoint.
    pub fn serve_serial(&self, router: &Router<'_>) -> ! {
        loop {
            if let Ok(stream) = self.accept() {
                let _ = Self::handle_connection(stream, router);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(method: &str, path: &str, body: &[u8]) -> Request {
        Request {
            method: method.to_owned(),
            path: path.to_owned(),
            headers: vec![("content-length".to_owned(), body.len().to_string())],
            body: body.to_vec(),
        }
    }

    fn test_router() -> Router<'static> {
        Router::new()
            .get("/ping", |_| Response::text(200, "pong"))
            .post("/echo", |r: &Request| {
                Response::text(200, r.body_str().unwrap_or("").to_owned())
            })
    }

    #[test]
    fn router_dispatches_by_method_and_path() {
        let router = test_router();
        let ok = router.dispatch(&req("GET", "/ping", b""));
        assert_eq!(ok.status, 200);
        assert_eq!(ok.body, b"pong");

        let echoed = router.dispatch(&req("POST", "/echo", b"hello"));
        assert_eq!(echoed.body, b"hello");

        // Query strings are ignored for matching.
        let ok = router.dispatch(&req("GET", "/ping?x=1", b""));
        assert_eq!(ok.status, 200);
    }

    #[test]
    fn router_distinguishes_404_from_405() {
        let router = test_router();
        assert_eq!(router.dispatch(&req("GET", "/nope", b"")).status, 404);
        let wrong_method = router.dispatch(&req("POST", "/ping", b""));
        assert_eq!(wrong_method.status, 405);
        assert!(wrong_method
            .extra_headers
            .iter()
            .any(|(n, v)| n == "Allow" && v == "GET"));
    }

    #[test]
    fn end_to_end_request_with_body_over_tcp() {
        let server = HttpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let router = test_router();
            let stream = server.accept().unwrap();
            HttpServer::handle_connection(stream, &router).unwrap();
        });

        let mut client = TcpStream::connect(addr).unwrap();
        write!(
            client,
            "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello"
        )
        .unwrap();
        let mut response = String::new();
        client.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        assert!(response.ends_with("hello"), "{response}");
        t.join().unwrap();
    }

    #[test]
    fn silent_client_times_out_and_does_not_wedge_the_loop() {
        let mut server = HttpServer::bind("127.0.0.1:0").unwrap();
        server.set_io_timeout(Some(Duration::from_millis(100)));
        let addr = server.local_addr().unwrap();

        let t = std::thread::spawn(move || {
            // Serial loop: the silent connection must time out so the
            // second (real) client gets served.
            for _ in 0..2 {
                let router = test_router();
                if let Ok(stream) = server.accept() {
                    let _ = HttpServer::handle_connection(stream, &router);
                }
            }
        });

        let _silent = TcpStream::connect(addr).unwrap(); // never writes
        let mut client = TcpStream::connect(addr).unwrap();
        write!(client, "GET /ping HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        client.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
        t.join().unwrap();
    }

    #[test]
    fn oversized_bodies_are_rejected_with_413() {
        let server = HttpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let router = test_router();
            let stream = server.accept().unwrap();
            let _ = HttpServer::handle_connection(stream, &router);
        });

        let mut client = TcpStream::connect(addr).unwrap();
        write!(
            client,
            "POST /echo HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        )
        .unwrap();
        let mut response = String::new();
        client.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 413"), "{response}");
        t.join().unwrap();
    }
}
