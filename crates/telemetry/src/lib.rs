//! Observability for the SVQA pipeline: spans, metrics, per-query traces.
//!
//! The paper's pipeline (Fig. 2) runs a question through five stages —
//! parse, decompose, schedule, match, aggregate — on top of scene-graph
//! generation at build time. This crate gives every stage a name
//! ([`stage`]), a way to time it ([`Span`]), and a place to accumulate
//! counters, gauges, and latency histograms ([`Recorder`]). A
//! [`QueryTrace`] carries the per-question view; [`MetricsSnapshot`]
//! serializes the whole registry to JSON for `svqa-cli --metrics` and the
//! bench reports.
//!
//! Design rules:
//!
//! * **Zero heavy dependencies** — only `parking_lot`, `serde`,
//!   `serde_json`; cheap enough to instrument hot paths unconditionally.
//! * **Global by default, injectable for tests** — [`Span::enter`] and
//!   the counter helpers hit the process-global [`Recorder`] from
//!   [`global()`]; everything also works against an owned recorder.
//! * **Lock-light** — one short mutex hold per event; span timing itself
//!   happens outside any lock.
//!
//! ```
//! use svqa_telemetry::{global, stage, Span};
//!
//! let recorder = svqa_telemetry::Recorder::new();
//! {
//!     let _span = Span::enter_in(&recorder, stage::PARSE);
//!     // ... work ...
//! }
//! let snap = recorder.snapshot();
//! assert_eq!(snap.spans[stage::PARSE].count, 1);
//! let _ = global(); // the process-wide recorder used by `Span::enter`
//! ```

#![forbid(unsafe_code)]

mod exposition;
mod histogram;
mod http;
mod recent;
mod recorder;
pub mod router;
mod span;
mod trace;
mod trace_event;

pub use exposition::prometheus_text;
pub use histogram::{BucketCount, Histogram, HistogramSnapshot};
pub use http::{metrics_routes, MetricsServer};
pub use recent::{global_profiles, ProfileRing};
pub use recorder::{global, MetricsSnapshot, Recorder};
pub use router::{HttpServer, Request, Response, Router};
pub use span::Span;
pub use trace::{QueryOutcome, QueryTrace, StageTiming};
pub use trace_event::{ChromeTrace, TraceEvent};

use serde::{Deserialize, Serialize};

/// Canonical stage names, matching the paper's Fig. 2 pipeline.
pub mod stage {
    /// Question text → dependency parse (`qparser` front end).
    pub const PARSE: &str = "parse";
    /// Parse tree → query-graph vertices/edges (clause decomposition).
    pub const DECOMPOSE: &str = "decompose";
    /// Batch ordering and dispatch (`executor::scheduler`).
    pub const SCHEDULE: &str = "schedule";
    /// Query-graph matching against the merged graph (Algorithm 3).
    pub const MATCH: &str = "match";
    /// Scene-graph merging into the unified graph (`aggregator`).
    pub const AGGREGATE: &str = "aggregate";
    /// Scene-graph generation per image (`vision::sgg`, build time).
    pub const SGG: &str = "sgg";
    /// Static analysis of the query graph before execution (`qlint`).
    /// Deliberately not part of [`PIPELINE`]: it is a gate in front of the
    /// paper's Fig. 2 stages, not one of them.
    pub const LINT: &str = "lint";

    /// The five per-question pipeline stages, in paper order.
    pub const PIPELINE: [&str; 5] = [PARSE, DECOMPOSE, SCHEDULE, MATCH, AGGREGATE];
}

/// Well-known counter names.
pub mod counter {
    /// Questions successfully parsed into query graphs.
    pub const QUESTIONS_PARSED: &str = "questions_parsed";
    /// Questions answered end to end.
    pub const QUESTIONS_ANSWERED: &str = "questions_answered";
    /// Questions that failed (parse or execution error).
    pub const QUESTIONS_FAILED: &str = "questions_failed";
    /// Scene graphs generated at build time.
    pub const SCENE_GRAPHS_BUILT: &str = "scene_graphs_built";
    /// Scope-cache hits observed by finished batches.
    pub const CACHE_SCOPE_HITS: &str = "cache_scope_hits";
    /// Scope-cache misses observed by finished batches.
    pub const CACHE_SCOPE_MISSES: &str = "cache_scope_misses";
    /// Path-cache hits observed by finished batches.
    pub const CACHE_PATH_HITS: &str = "cache_path_hits";
    /// Path-cache misses observed by finished batches.
    pub const CACHE_PATH_MISSES: &str = "cache_path_misses";
    /// Requests accepted by the query server (`svqa serve`).
    pub const SERVER_REQUESTS: &str = "server_requests";
    /// Requests rejected with 429 because the admission queue was full.
    pub const SERVER_REJECTED: &str = "server_rejected";
    /// Requests that blew their deadline (answered with 504).
    pub const SERVER_DEADLINE_EXCEEDED: &str = "server_deadline_exceeded";
    /// Malformed requests answered with 400 (bad body, missing fields).
    pub const SERVER_REQUESTS_BAD: &str = "server_requests_bad";
    /// Error-severity lint diagnostics (questions rejected before
    /// execution).
    pub const LINT_ERRORS: &str = "lint_errors";
    /// Warning-severity lint diagnostics (executed anyway).
    pub const LINT_WARNINGS: &str = "lint_warnings";
    /// Faults fired by an installed `FaultPlan` (`svqa-fault`).
    pub const FAULTS_INJECTED: &str = "faults_injected";
    /// Transient-fault retries performed by the degradation policy.
    pub const FAULT_RETRIES: &str = "fault_retries";
    /// Answers served in degraded mode (one or more sources missing).
    pub const ANSWERS_DEGRADED: &str = "answers_degraded";
    /// Worker-thread panics caught and converted to 500s (`svqa serve`).
    pub const SERVER_WORKER_PANICS: &str = "server_worker_panics";
}

/// Well-known gauge names.
pub mod gauge {
    /// Query-server requests admitted but not yet answered.
    pub const SERVER_REQUESTS_IN_FLIGHT: &str = "server_requests_in_flight";
    /// Knowledge-graph-source breaker state (0 = closed, 1 = half-open,
    /// 2 = open).
    pub const BREAKER_STATE_KG: &str = "breaker_state_kg";
    /// Scene-graph-source breaker state (same encoding).
    pub const BREAKER_STATE_SCENE: &str = "breaker_state_scene";
}

/// Named hit/miss counters for the key-centric cache's two pools.
///
/// Replaces the positional `(u64, u64, u64, u64)` tuple the executor used
/// to expose; the names make call sites self-describing and the struct
/// serializes into metrics output.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Scope-cache (per-vertex candidate set) hits.
    pub scope_hits: u64,
    /// Scope-cache misses.
    pub scope_misses: u64,
    /// Path-cache (edge traversal) hits.
    pub path_hits: u64,
    /// Path-cache misses.
    pub path_misses: u64,
}

impl CacheStats {
    /// All-zero stats.
    pub fn new() -> Self {
        CacheStats::default()
    }

    /// Total lookups against either pool.
    pub fn total_lookups(&self) -> u64 {
        self.scope_hits + self.scope_misses + self.path_hits + self.path_misses
    }

    /// Total hits across both pools.
    pub fn total_hits(&self) -> u64 {
        self.scope_hits + self.path_hits
    }

    /// Scope-pool hit rate in `[0, 1]`; 0 when no lookups happened.
    pub fn scope_hit_rate(&self) -> f64 {
        rate(self.scope_hits, self.scope_hits + self.scope_misses)
    }

    /// Path-pool hit rate in `[0, 1]`; 0 when no lookups happened.
    pub fn path_hit_rate(&self) -> f64 {
        rate(self.path_hits, self.path_hits + self.path_misses)
    }

    /// Combined hit rate in `[0, 1]`; 0 when no lookups happened.
    pub fn hit_rate(&self) -> f64 {
        rate(self.total_hits(), self.total_lookups())
    }

    /// Accumulate `other`'s counters into `self` — the batch-runner's way
    /// to sum per-query stats without field-by-field code at every call
    /// site.
    pub fn merge(&mut self, other: &CacheStats) {
        self.scope_hits += other.scope_hits;
        self.scope_misses += other.scope_misses;
        self.path_hits += other.path_hits;
        self.path_misses += other.path_misses;
    }

    /// Counters accumulated after `earlier` was captured (saturating, so
    /// a reset cache yields zeros rather than wrapping).
    pub fn delta_since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            scope_hits: self.scope_hits.saturating_sub(earlier.scope_hits),
            scope_misses: self.scope_misses.saturating_sub(earlier.scope_misses),
            path_hits: self.path_hits.saturating_sub(earlier.path_hits),
            path_misses: self.path_misses.saturating_sub(earlier.path_misses),
        }
    }

    /// Push these counters into `recorder` as cache counter increments.
    pub fn record_to(&self, recorder: &Recorder) {
        recorder.incr_counter_by(counter::CACHE_SCOPE_HITS, self.scope_hits);
        recorder.incr_counter_by(counter::CACHE_SCOPE_MISSES, self.scope_misses);
        recorder.incr_counter_by(counter::CACHE_PATH_HITS, self.path_hits);
        recorder.incr_counter_by(counter::CACHE_PATH_MISSES, self.path_misses);
    }
}

impl std::ops::Add for CacheStats {
    type Output = CacheStats;
    fn add(self, rhs: CacheStats) -> CacheStats {
        CacheStats {
            scope_hits: self.scope_hits + rhs.scope_hits,
            scope_misses: self.scope_misses + rhs.scope_misses,
            path_hits: self.path_hits + rhs.path_hits,
            path_misses: self.path_misses + rhs.path_misses,
        }
    }
}

fn rate(hits: u64, lookups: u64) -> f64 {
    if lookups == 0 {
        0.0
    } else {
        hits as f64 / lookups as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_stats_rates() {
        let s = CacheStats {
            scope_hits: 3,
            scope_misses: 1,
            path_hits: 0,
            path_misses: 4,
        };
        assert_eq!(s.total_lookups(), 8);
        assert!((s.scope_hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(s.path_hit_rate(), 0.0);
        assert!((s.hit_rate() - 3.0 / 8.0).abs() < 1e-12);
        assert_eq!(CacheStats::new().hit_rate(), 0.0);
    }

    #[test]
    fn cache_stats_delta_and_add() {
        let earlier = CacheStats {
            scope_hits: 1,
            scope_misses: 1,
            path_hits: 1,
            path_misses: 1,
        };
        let later = CacheStats {
            scope_hits: 5,
            scope_misses: 2,
            path_hits: 1,
            path_misses: 3,
        };
        let delta = later.delta_since(&earlier);
        assert_eq!(
            delta,
            CacheStats {
                scope_hits: 4,
                scope_misses: 1,
                path_hits: 0,
                path_misses: 2,
            }
        );
        assert_eq!(earlier + delta, later);
        // Saturating: a cache reset between snapshots yields zeros.
        assert_eq!(earlier.delta_since(&later), CacheStats::new());
    }

    #[test]
    fn cache_stats_merge_sums_fields_and_matches_add() {
        let mut acc = CacheStats {
            scope_hits: 1,
            scope_misses: 2,
            path_hits: 3,
            path_misses: 4,
        };
        let other = CacheStats {
            scope_hits: 10,
            scope_misses: 20,
            path_hits: 30,
            path_misses: 40,
        };
        let by_add = acc + other;
        acc.merge(&other);
        assert_eq!(acc, by_add);
        assert_eq!(acc.total_lookups(), 110);
        // Merging zeros is a no-op.
        let before = acc;
        acc.merge(&CacheStats::new());
        assert_eq!(acc, before);
    }

    #[test]
    fn cache_stats_rates_are_zero_not_nan_without_lookups() {
        let empty = CacheStats::new();
        for r in [
            empty.scope_hit_rate(),
            empty.path_hit_rate(),
            empty.hit_rate(),
        ] {
            assert_eq!(r, 0.0, "zero-lookup rate must be 0.0, not NaN");
            assert!(!r.is_nan());
        }
    }

    #[test]
    fn cache_stats_round_trip_json() {
        let s = CacheStats {
            scope_hits: 9,
            scope_misses: 4,
            path_hits: 2,
            path_misses: 7,
        };
        let json = serde_json::to_string(&s).unwrap();
        let back: CacheStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
