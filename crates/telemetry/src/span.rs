//! RAII timing spans.

use crate::recorder::{global, Recorder};
use std::time::{Duration, Instant};

/// A wall-clock timing guard: created at stage entry, records its
/// duration into a [`Recorder`] histogram on drop.
///
/// Spans nest freely — each guard times its own scope independently, so
/// a parent span's duration includes its children's:
///
/// ```
/// use svqa_telemetry::{Recorder, Span};
///
/// let r = Recorder::new();
/// {
///     let _batch = Span::enter_in(&r, "batch");
///     for _ in 0..3 {
///         let _q = Span::enter_in(&r, "question");
///     }
/// }
/// assert_eq!(r.span_count("batch"), 1);
/// assert_eq!(r.span_count("question"), 3);
/// ```
#[must_use = "a span records on drop; binding it to `_` drops immediately"]
pub struct Span {
    recorder: Recorder,
    name: &'static str,
    start: Instant,
}

impl Span {
    /// Start a span recording into the process-global recorder.
    pub fn enter(name: &'static str) -> Span {
        Span::enter_in(global(), name)
    }

    /// Start a span recording into a specific recorder.
    pub fn enter_in(recorder: &Recorder, name: &'static str) -> Span {
        Span {
            recorder: recorder.clone(),
            name,
            start: Instant::now(),
        }
    }

    /// The stage name this span times.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Time elapsed since the span was entered.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.recorder.record_span(self.name, self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let r = Recorder::new();
        {
            let span = Span::enter_in(&r, "work");
            std::thread::sleep(Duration::from_millis(2));
            assert!(span.elapsed() >= Duration::from_millis(2));
        }
        assert_eq!(r.span_count("work"), 1);
        assert!(r.span_total_ns("work") >= 2_000_000);
    }

    #[test]
    fn nested_spans_record_inclusive_parent_time() {
        let r = Recorder::new();
        {
            let _outer = Span::enter_in(&r, "outer");
            for _ in 0..2 {
                let _inner = Span::enter_in(&r, "inner");
                std::thread::sleep(Duration::from_millis(1));
            }
        }
        assert_eq!(r.span_count("outer"), 1);
        assert_eq!(r.span_count("inner"), 2);
        // The parent encloses both children.
        assert!(r.span_total_ns("outer") >= r.span_total_ns("inner"));
    }

    #[test]
    fn global_span_hits_the_global_recorder() {
        let before = global().span_count("telemetry_test_global_span");
        {
            let _s = Span::enter("telemetry_test_global_span");
        }
        assert_eq!(global().span_count("telemetry_test_global_span"), before + 1);
    }
}
