//! Dependency-free metrics endpoint.
//!
//! A deliberately tiny HTTP/1.1 server built on the reusable
//! [`router`](crate::router) layer — no async runtime, no framework —
//! good enough for a Prometheus scraper or `curl` hitting localhost.
//! Routes:
//!
//! * `GET /metrics` — the live [`Recorder`] snapshot in Prometheus text
//!   exposition format;
//! * `GET /metrics.json` — the same snapshot as JSON;
//! * `GET /profiles/recent` — the [`ProfileRing`] contents as a JSON
//!   array (newest last);
//! * `GET /` — a plain-text index of the routes.
//!
//! Requests are served serially on the accept loop: a scrape is a few
//! milliseconds of formatting, and serial handling keeps the server free
//! of any thread-per-connection machinery. Per-connection read/write
//! timeouts (see [`HttpServer`]) guarantee one silent client cannot wedge
//! the loop.

use crate::exposition::prometheus_text;
use crate::recent::ProfileRing;
use crate::recorder::Recorder;
use crate::router::{HttpServer, Response, Router};
use std::net::SocketAddr;
use std::time::Duration;

/// A bound (but not yet serving) metrics server.
pub struct MetricsServer {
    server: HttpServer,
    recorder: Recorder,
    profiles: ProfileRing,
}

/// The route table shared by [`MetricsServer`] and the query server: both
/// expose the same observability surface, `svqa serve` just mounts it next
/// to its query routes.
pub fn metrics_routes<'h>(
    router: Router<'h>,
    recorder: &Recorder,
    profiles: &ProfileRing,
) -> Router<'h> {
    let text_recorder = recorder.clone();
    let json_recorder = recorder.clone();
    let profiles = profiles.clone();
    router
        .get("/metrics", move |_| {
            // The version parameter is part of the exposition format
            // contract; Prometheus keys parsing off it.
            Response::text(200, prometheus_text(&text_recorder.snapshot()))
                .with_content_type("text/plain; version=0.0.4; charset=utf-8")
        })
        .get("/metrics.json", move |_| {
            Response::json(200, json_recorder.snapshot().to_json_pretty())
        })
        .get("/profiles/recent", move |_| {
            Response::json(200, profiles.to_json())
        })
}

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9100"`; port 0 picks a free port)
    /// and serve snapshots of `recorder` and `profiles`.
    pub fn bind(
        addr: &str,
        recorder: Recorder,
        profiles: ProfileRing,
    ) -> std::io::Result<MetricsServer> {
        Ok(MetricsServer {
            server: HttpServer::bind(addr)?,
            recorder,
            profiles,
        })
    }

    /// The actual bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.server.local_addr()
    }

    /// Override the per-connection read/write timeout (`None` disables;
    /// the default is [`crate::router::DEFAULT_IO_TIMEOUT`]).
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) {
        self.server.set_io_timeout(timeout);
    }

    fn router(&self) -> Router<'_> {
        let router = Router::new().get("/", |_| {
            Response::text(
                200,
                "svqa metrics endpoint\n\n\
                 /metrics          Prometheus text exposition\n\
                 /metrics.json     metrics snapshot as JSON\n\
                 /profiles/recent  recent query profiles (JSON array)\n",
            )
        });
        metrics_routes(router, &self.recorder, &self.profiles)
    }

    /// Accept and answer connections forever (serially). Per-connection
    /// I/O errors are swallowed: a scraper hanging up mid-response must
    /// not kill the endpoint.
    pub fn serve_forever(&self) -> ! {
        self.server.serve_serial(&self.router())
    }

    /// Run `serve_forever` on a background thread, returning the bound
    /// address. The thread (and socket) live until process exit.
    pub fn spawn(self) -> std::io::Result<SocketAddr> {
        let addr = self.local_addr()?;
        std::thread::Builder::new()
            .name("svqa-metrics".to_owned())
            .spawn(move || self.serve_forever())?;
        Ok(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;
    use std::io::{Read, Write};
    use std::net::TcpStream;
    use std::time::Duration;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("header/body separator");
        (head.to_owned(), body.to_owned())
    }

    fn sample_server() -> MetricsServer {
        let recorder = Recorder::new();
        recorder.incr_counter_by("questions_answered", 3);
        recorder.record_span("parse", Duration::from_micros(50));
        let profiles = ProfileRing::new(4);
        profiles.push(json!({"question": "How many dogs?"}));
        MetricsServer::bind("127.0.0.1:0", recorder, profiles).expect("bind")
    }

    fn serve_sample() -> SocketAddr {
        sample_server().spawn().expect("spawn")
    }

    #[test]
    fn metrics_route_serves_prometheus_text() {
        let addr = serve_sample();
        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"), "{head}");
        assert!(body.contains("svqa_questions_answered_total 3"), "{body}");
        assert!(body.contains("svqa_span_duration_seconds_count"), "{body}");
    }

    #[test]
    fn json_and_profile_routes_serve_json() {
        let addr = serve_sample();
        let (head, body) = get(addr, "/metrics.json");
        assert!(head.contains("application/json"), "{head}");
        let snap: crate::MetricsSnapshot = serde_json::from_str(&body).unwrap();
        assert_eq!(snap.counters["questions_answered"], 3);

        let (_, body) = get(addr, "/profiles/recent");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        match v {
            serde_json::Value::Array(a) => {
                assert_eq!(a.len(), 1);
                assert_eq!(a[0]["question"], json!("How many dogs?"));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn unknown_route_is_404_and_server_survives() {
        let addr = serve_sample();
        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        // The serial accept loop must keep answering after an error path.
        let (head, _) = get(addr, "/");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    }

    #[test]
    fn post_to_metrics_is_405() {
        let addr = serve_sample();
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 405"), "{response}");
    }

    #[test]
    fn silent_scraper_cannot_wedge_the_endpoint() {
        let mut server = sample_server();
        server.set_io_timeout(Some(Duration::from_millis(100)));
        let addr = server.spawn().expect("spawn");

        // A client that connects and never sends a byte: before the read
        // timeout existed this parked the serial loop forever.
        let _silent = TcpStream::connect(addr).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let (head, _) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    }
}
