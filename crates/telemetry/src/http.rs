//! Dependency-free metrics endpoint.
//!
//! A deliberately tiny HTTP/1.1 server on `std::net::TcpListener` — no
//! async runtime, no framework — good enough for a Prometheus scraper or
//! `curl` hitting localhost. Routes:
//!
//! * `GET /metrics` — the live [`Recorder`] snapshot in Prometheus text
//!   exposition format;
//! * `GET /metrics.json` — the same snapshot as JSON;
//! * `GET /profiles/recent` — the [`ProfileRing`] contents as a JSON
//!   array (newest last);
//! * `GET /` — a plain-text index of the routes.
//!
//! Requests are served serially on the accept loop: a scrape is a few
//! milliseconds of formatting, and serial handling keeps the server free
//! of any thread-per-connection machinery.

use crate::exposition::prometheus_text;
use crate::recent::ProfileRing;
use crate::recorder::Recorder;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

/// A bound (but not yet serving) metrics server.
pub struct MetricsServer {
    listener: TcpListener,
    recorder: Recorder,
    profiles: ProfileRing,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9100"`; port 0 picks a free port)
    /// and serve snapshots of `recorder` and `profiles`.
    pub fn bind(
        addr: &str,
        recorder: Recorder,
        profiles: ProfileRing,
    ) -> std::io::Result<MetricsServer> {
        Ok(MetricsServer {
            listener: TcpListener::bind(addr)?,
            recorder,
            profiles,
        })
    }

    /// The actual bound address (useful with port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accept and answer connections forever (serially). Per-connection
    /// I/O errors are swallowed: a scraper hanging up mid-response must
    /// not kill the endpoint.
    pub fn serve_forever(&self) -> ! {
        loop {
            if let Ok((stream, _)) = self.listener.accept() {
                let _ = self.handle(stream);
            }
        }
    }

    /// Run `serve_forever` on a background thread, returning the bound
    /// address. The thread (and socket) live until process exit.
    pub fn spawn(self) -> std::io::Result<SocketAddr> {
        let addr = self.local_addr()?;
        std::thread::Builder::new()
            .name("svqa-metrics".to_owned())
            .spawn(move || self.serve_forever())?;
        Ok(addr)
    }

    fn handle(&self, mut stream: TcpStream) -> std::io::Result<()> {
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut request_line = String::new();
        reader.read_line(&mut request_line)?;
        // Drain headers so well-behaved clients see a clean close.
        let mut header = String::new();
        while reader.read_line(&mut header)? > 0 && header != "\r\n" && header != "\n" {
            header.clear();
        }

        let mut parts = request_line.split_whitespace();
        let method = parts.next().unwrap_or("");
        let path = parts.next().unwrap_or("/");

        let (status, content_type, body) = if method != "GET" {
            (
                "405 Method Not Allowed",
                "text/plain; charset=utf-8",
                "only GET is supported\n".to_owned(),
            )
        } else {
            match path {
                "/metrics" => (
                    "200 OK",
                    // The version parameter is part of the exposition
                    // format contract; Prometheus keys parsing off it.
                    "text/plain; version=0.0.4; charset=utf-8",
                    prometheus_text(&self.recorder.snapshot()),
                ),
                "/metrics.json" => (
                    "200 OK",
                    "application/json",
                    self.recorder.snapshot().to_json_pretty(),
                ),
                "/profiles/recent" => ("200 OK", "application/json", self.profiles.to_json()),
                "/" => (
                    "200 OK",
                    "text/plain; charset=utf-8",
                    "svqa metrics endpoint\n\n\
                     /metrics          Prometheus text exposition\n\
                     /metrics.json     metrics snapshot as JSON\n\
                     /profiles/recent  recent query profiles (JSON array)\n"
                        .to_owned(),
                ),
                _ => (
                    "404 Not Found",
                    "text/plain; charset=utf-8",
                    format!("no route for {path}\n"),
                ),
            }
        };

        write!(
            stream,
            "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        )?;
        stream.write_all(body.as_bytes())?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;
    use std::io::Read;
    use std::time::Duration;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).expect("connect");
        write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).expect("read response");
        let (head, body) = response
            .split_once("\r\n\r\n")
            .expect("header/body separator");
        (head.to_owned(), body.to_owned())
    }

    fn serve_sample() -> SocketAddr {
        let recorder = Recorder::new();
        recorder.incr_counter_by("questions_answered", 3);
        recorder.record_span("parse", Duration::from_micros(50));
        let profiles = ProfileRing::new(4);
        profiles.push(json!({"question": "How many dogs?"}));
        MetricsServer::bind("127.0.0.1:0", recorder, profiles)
            .expect("bind")
            .spawn()
            .expect("spawn")
    }

    #[test]
    fn metrics_route_serves_prometheus_text() {
        let addr = serve_sample();
        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"), "{head}");
        assert!(body.contains("svqa_questions_answered_total 3"), "{body}");
        assert!(body.contains("svqa_span_duration_seconds_count"), "{body}");
    }

    #[test]
    fn json_and_profile_routes_serve_json() {
        let addr = serve_sample();
        let (head, body) = get(addr, "/metrics.json");
        assert!(head.contains("application/json"), "{head}");
        let snap: crate::MetricsSnapshot = serde_json::from_str(&body).unwrap();
        assert_eq!(snap.counters["questions_answered"], 3);

        let (_, body) = get(addr, "/profiles/recent");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        match v {
            serde_json::Value::Array(a) => {
                assert_eq!(a.len(), 1);
                assert_eq!(a[0]["question"], json!("How many dogs?"));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn unknown_route_is_404_and_server_survives() {
        let addr = serve_sample();
        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
        // The serial accept loop must keep answering after an error path.
        let (head, _) = get(addr, "/");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    }
}
