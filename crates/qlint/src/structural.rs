//! Pass 1: structural checks on the dependency DAG and the SPOC slots.

use crate::diag::{codes, Diagnostic, Severity, Slot};
use svqa_qparser::{Dependency, QueryGraph, QuestionType};

/// Run the structural checks. Returns `true` when the graph is sound
/// enough for the semantic and cost passes to index vertices and walk an
/// execution order (no dangling edges, no cycles, at least one vertex).
pub(crate) fn check(gq: &QueryGraph, out: &mut Vec<Diagnostic>) -> bool {
    if gq.is_empty() {
        out.push(Diagnostic::new(
            codes::EMPTY_QUERY_GRAPH,
            Severity::Error,
            "the query graph has no SPOC vertices: nothing to execute",
        ));
        return false;
    }

    let n = gq.len();
    let mut dangling = false;
    for (i, e) in gq.edges.iter().enumerate() {
        if e.provider >= n || e.consumer >= n {
            dangling = true;
            out.push(Diagnostic::new(
                codes::DANGLING_EDGE,
                Severity::Error,
                format!(
                    "dependency edge #{i} ({} → {}, {}) points outside the {n}-vertex graph",
                    e.provider,
                    e.consumer,
                    e.dependency.as_str()
                ),
            ));
        } else if e.provider == e.consumer {
            dangling = true;
            out.push(
                Diagnostic::new(
                    codes::DANGLING_EDGE,
                    Severity::Error,
                    format!(
                        "dependency edge #{i} loops vertex {} onto itself",
                        e.provider
                    ),
                )
                .at_vertex(e.provider),
            );
        }
    }
    if dangling {
        // `execution_order` indexes edge endpoints unchecked; with dangling
        // edges present the remaining graph-shape checks are meaningless.
        return false;
    }

    if gq.execution_order().is_none() {
        out.push(Diagnostic::new(
            codes::CYCLIC_DEPENDENCY,
            Severity::Error,
            "the dependency edges form a cycle: no execution order exists",
        ));
        return false;
    }

    for (v, spoc) in gq.vertices.iter().enumerate() {
        if spoc.subject.is_empty() && spoc.object.is_empty() {
            out.push(
                Diagnostic::new(
                    codes::EMPTY_QUAD,
                    Severity::Error,
                    "both the subject and the object slot are empty: \
                     the quad matches nothing",
                )
                .at_vertex(v),
            );
        }
    }

    // Counting and reasoning questions name an answer variable; without an
    // `answer_role` the executor falls back to the last vertex in execution
    // order, which may not be what the question asked about.
    if gq.question_type != QuestionType::Judgment
        && !gq.vertices.iter().any(|s| s.answer_role.is_some())
    {
        out.push(Diagnostic::new(
            codes::UNBOUND_ANSWER_SLOT,
            Severity::Warning,
            format!(
                "no vertex of this {} question marks an answer slot; \
                 the executor will guess the last quad in execution order",
                gq.question_type.name().to_lowercase()
            ),
        ));
    }

    // A quad whose answers never flow (transitively) into the answer
    // vertex does not influence the result. Judgment questions are exempt:
    // conjoined clauses are legitimately disconnected and every conjunct
    // contributes to the verdict.
    if gq.question_type != QuestionType::Judgment && n > 1 {
        let answer = gq.answer_vertex();
        let mut reaches = vec![false; n];
        reaches[answer] = true;
        // Mark ancestors of the answer vertex by walking edges backwards
        // until a fixpoint (n passes bound the longest chain).
        for _ in 0..n {
            let mut changed = false;
            for e in &gq.edges {
                if reaches[e.consumer] && !reaches[e.provider] {
                    reaches[e.provider] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        for (v, reached) in reaches.iter().enumerate() {
            if !reached {
                out.push(
                    Diagnostic::new(
                        codes::UNREACHABLE_QUAD,
                        Severity::Warning,
                        format!(
                            "quad {v}'s answers never reach the answer vertex \
                             (vertex {answer}): it cannot influence the result"
                        ),
                    )
                    .at_vertex(v),
                );
            }
        }
    }

    true
}

/// Which consumer slot a dependency kind binds (Algorithm 3's replacement
/// table: `X2Y` replaces the consumer's slot `X`).
pub(crate) fn bound_slot(dep: Dependency) -> Slot {
    match dep {
        Dependency::S2S | Dependency::S2O => Slot::Subject,
        Dependency::O2S | Dependency::O2O => Slot::Object,
    }
}
