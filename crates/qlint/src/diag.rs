//! Typed diagnostics: severity, codes, and the lint report.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Stable diagnostic codes. Tests and tooling match on these strings, so
/// they are constants rather than ad-hoc literals.
pub mod codes {
    /// The query graph has no vertices at all.
    pub const EMPTY_QUERY_GRAPH: &str = "empty-query-graph";
    /// A dependency edge points at a vertex index that does not exist, or
    /// loops a vertex onto itself.
    pub const DANGLING_EDGE: &str = "dangling-edge";
    /// The dependency edges form a cycle: no execution order exists.
    pub const CYCLIC_DEPENDENCY: &str = "cyclic-dependency";
    /// Both the subject and the object slot of a quad are empty.
    pub const EMPTY_QUAD: &str = "empty-quad";
    /// A reasoning/counting question has no vertex marked with an answer
    /// role, so the executor falls back to guessing the answer slot.
    pub const UNBOUND_ANSWER_SLOT: &str = "unbound-answer-slot";
    /// A quad's answers never flow into the answer vertex.
    pub const UNREACHABLE_QUAD: &str = "unreachable-quad";
    /// A category head word is unknown to both the merged graph and the
    /// vocabulary: the executor's matcher cannot bind it.
    pub const UNKNOWN_CATEGORY: &str = "unknown-category";
    /// A vocabulary-known category with no counterpart in this merged
    /// graph: matches will be empty.
    pub const CATEGORY_NOT_IN_GRAPH: &str = "category-not-in-graph";
    /// A predicate unknown to both the merged graph's edge labels and the
    /// verb vocabulary: no relation can pass the similarity filter.
    pub const UNKNOWN_PREDICATE: &str = "unknown-predicate";
    /// A vocabulary-known predicate with no sufficiently similar edge label
    /// in this merged graph.
    pub const PREDICATE_NOT_IN_GRAPH: &str = "predicate-not-in-graph";
    /// A constraint string that matches none of the known constraint forms.
    pub const UNKNOWN_CONSTRAINT: &str = "unknown-constraint";
    /// The estimated subject×object pair scan for a quad is far above the
    /// vertex count: a cartesian blowup.
    pub const CARTESIAN_BLOWUP: &str = "cartesian-blowup";
    /// An unbound wildcard slot paired with a non-selective named slot:
    /// executable, but the scan is avoidably wide.
    pub const EXPENSIVE_WILDCARD: &str = "expensive-wildcard";
}

/// Diagnostic severity, ordered so `Error > Warning > Hint`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub enum Severity {
    /// Planner guidance; the plan is fine.
    Hint,
    /// The plan is suspicious or expensive but can produce answers.
    Warning,
    /// The plan cannot produce answers; execution is pointless.
    Error,
}

impl Severity {
    /// Lower-case display name ("error" / "warning" / "hint").
    pub fn name(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Hint => "hint",
        }
    }
}

/// Which SPOC slot a diagnostic points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Slot {
    /// The subject noun phrase.
    Subject,
    /// The predicate.
    Predicate,
    /// The object noun phrase.
    Object,
    /// The constraint.
    Constraint,
}

impl Slot {
    /// Lower-case display name.
    pub fn name(self) -> &'static str {
        match self {
            Slot::Subject => "subject",
            Slot::Predicate => "predicate",
            Slot::Object => "object",
            Slot::Constraint => "constraint",
        }
    }
}

/// One typed finding from a lint pass.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable machine-readable code (see [`codes`]).
    pub code: String,
    /// How bad it is.
    pub severity: Severity,
    /// The query-graph vertex the finding points at, if any.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub vertex: Option<usize>,
    /// The SPOC slot within that vertex, if any.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub slot: Option<Slot>,
    /// Human-readable explanation.
    pub message: String,
    /// "Did you mean …?" replacement, when a near-miss exists.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Construct a diagnostic with no vertex/slot/suggestion attached.
    pub fn new(code: &str, severity: Severity, message: impl Into<String>) -> Self {
        Diagnostic {
            code: code.to_owned(),
            severity,
            vertex: None,
            slot: None,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attach the vertex index the finding points at.
    pub fn at_vertex(mut self, vertex: usize) -> Self {
        self.vertex = Some(vertex);
        self
    }

    /// Attach the SPOC slot the finding points at.
    pub fn at_slot(mut self, slot: Slot) -> Self {
        self.slot = Some(slot);
        self
    }

    /// Attach a "did you mean" replacement.
    pub fn with_suggestion(mut self, suggestion: impl Into<String>) -> Self {
        self.suggestion = Some(suggestion.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity.name(), self.code)?;
        if let Some(v) = self.vertex {
            write!(f, " v{v}")?;
            if let Some(s) = self.slot {
                write!(f, ".{}", s.name())?;
            }
        }
        write!(f, ": {}", self.message)?;
        if let Some(s) = &self.suggestion {
            write!(f, " (did you mean \"{s}\"?)")?;
        }
        Ok(())
    }
}

/// Every diagnostic the linter produced for one query graph, sorted most
/// severe first.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LintReport {
    /// The findings, sorted by descending severity then vertex.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Whether any finding is an [`Severity::Error`] (execution would be
    /// pointless).
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// The error-severity findings, in report order.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// One-line-per-diagnostic human rendering; "no diagnostics" when
    /// clean.
    pub fn render(&self) -> String {
        if self.is_clean() {
            return "no diagnostics".to_owned();
        }
        let lines: Vec<String> = self.diagnostics.iter().map(|d| d.to_string()).collect();
        lines.join("\n")
    }

    /// Summary like "2 errors, 1 warning, 0 hints".
    pub fn summary(&self) -> String {
        fn plural(n: usize, word: &str) -> String {
            format!("{n} {word}{}", if n == 1 { "" } else { "s" })
        }
        format!(
            "{}, {}, {}",
            plural(self.count(Severity::Error), "error"),
            plural(self.count(Severity::Warning), "warning"),
            plural(self.count(Severity::Hint), "hint"),
        )
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}
