//! Schema extraction: the merged graph's vocabulary of categories and
//! predicates with occurrence counts, computed once after aggregation and
//! reused for every question.

use std::collections::HashMap;
use svqa_graph::Graph;

/// Statistics the lint passes need from a merged graph `G_mg`: which
/// category labels exist (and how many vertices carry each), which
/// predicate labels exist (and how many edges carry each), and the totals.
///
/// Extraction is a single pass over the graph's label indices — cheap
/// enough to rerun after every `add_images`, and self-contained so the
/// linter never touches the graph on the per-question path.
#[derive(Debug, Clone, Default)]
pub struct Schema {
    vertex_labels: HashMap<String, usize>,
    edge_labels: HashMap<String, usize>,
    vertex_total: usize,
    edge_total: usize,
}

impl Schema {
    /// Extract the schema from a merged graph.
    pub fn extract(graph: &Graph) -> Self {
        Schema {
            vertex_labels: graph
                .vertex_label_counts()
                .map(|(l, n)| (l.to_owned(), n))
                .collect(),
            edge_labels: graph
                .edge_label_counts()
                .map(|(l, n)| (l.to_owned(), n))
                .collect(),
            vertex_total: graph.vertex_count(),
            edge_total: graph.edge_count(),
        }
    }

    /// Number of vertices in the merged graph.
    pub fn vertex_total(&self) -> usize {
        self.vertex_total
    }

    /// Number of edges in the merged graph.
    pub fn edge_total(&self) -> usize {
        self.edge_total
    }

    /// Number of distinct category (vertex) labels.
    pub fn category_count(&self) -> usize {
        self.vertex_labels.len()
    }

    /// Number of distinct predicate (edge) labels.
    pub fn predicate_count(&self) -> usize {
        self.edge_labels.len()
    }

    /// How many vertices carry exactly this label.
    pub fn category_cardinality(&self, label: &str) -> usize {
        self.vertex_labels.get(label).copied().unwrap_or(0)
    }

    /// How many edges carry exactly this label.
    pub fn predicate_cardinality(&self, label: &str) -> usize {
        self.edge_labels.get(label).copied().unwrap_or(0)
    }

    /// All category labels with their cardinalities.
    pub fn categories(&self) -> impl Iterator<Item = (&str, usize)> {
        self.vertex_labels.iter().map(|(l, n)| (l.as_str(), *n))
    }

    /// All predicate labels with their cardinalities.
    pub fn predicates(&self) -> impl Iterator<Item = (&str, usize)> {
        self.edge_labels.iter().map(|(l, n)| (l.as_str(), *n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extracts_label_counts_and_totals() {
        let mut g = Graph::new();
        let a = g.add_vertex("dog");
        let b = g.add_vertex("dog");
        let c = g.add_vertex("car");
        g.add_edge(a, c, "in").unwrap();
        g.add_edge(b, c, "in").unwrap();

        let s = Schema::extract(&g);
        assert_eq!(s.vertex_total(), 3);
        assert_eq!(s.edge_total(), 2);
        assert_eq!(s.category_cardinality("dog"), 2);
        assert_eq!(s.category_cardinality("car"), 1);
        assert_eq!(s.category_cardinality("cat"), 0);
        assert_eq!(s.predicate_cardinality("in"), 2);
        assert_eq!(s.category_count(), 2);
        assert_eq!(s.predicate_count(), 1);
    }
}
