//! Pass 2: categories, predicates and constraints checked against the
//! schema, mirroring the executor's matching thresholds so an `Error` here
//! really means `matchVertex` / the predicate filter would come back empty.

use crate::diag::{codes, Diagnostic, Severity, Slot};
use crate::{Linter, structural::bound_slot};
use std::collections::HashSet;
use svqa_nlp::lev::{levenshtein, levenshtein_similarity};
use svqa_nlp::vocab;
use svqa_qparser::{NounPhrase, QueryGraph};

pub(crate) fn check(linter: &Linter, gq: &QueryGraph, out: &mut Vec<Diagnostic>) {
    // Slots fed by a dependency edge are rewritten with the provider's
    // answers at execution time (Algorithm 3); their surface text — e.g.
    // the "girlfriend" in ⟨wizard, hang out with, girlfriend⟩ — is not
    // matched against the graph, so it must not be vocabulary-checked.
    let bound: HashSet<(usize, Slot)> = gq
        .edges
        .iter()
        .map(|e| (e.consumer, bound_slot(e.dependency)))
        .collect();

    for (v, spoc) in gq.vertices.iter().enumerate() {
        for (slot, np) in [(Slot::Subject, &spoc.subject), (Slot::Object, &spoc.object)] {
            if np.is_empty() || bound.contains(&(v, slot)) {
                continue;
            }
            check_category(linter, v, slot, np, out);
        }
        check_predicate(linter, v, &spoc.predicate, out);
        if let Some(c) = &spoc.constraint {
            check_constraint(v, c, out);
        }
    }
}

/// A category slot is matchable when the executor's `matchVertex` would
/// bind it: exact label, Levenshtein-similar label, or embedding-similar
/// label (§V-A thresholds).
fn check_category(
    linter: &Linter,
    v: usize,
    slot: Slot,
    np: &NounPhrase,
    out: &mut Vec<Diagnostic>,
) {
    let schema = linter.schema();
    let head = np.head.trim().to_lowercase();
    let phrase = np.phrase.trim().to_lowercase();
    if schema.category_cardinality(&head) > 0 || schema.category_cardinality(&phrase) > 0 {
        return;
    }
    let matchable = schema.categories().any(|(label, _)| {
        levenshtein_similarity(&head, label) >= linter.config.lev_threshold
            || levenshtein_similarity(&phrase, label) >= linter.config.lev_threshold
            || linter.embedder.similarity(&head, label) >= linter.config.embed_threshold
    });
    if matchable {
        return;
    }

    if vocab::cluster_of(&head).is_some() || vocab::cluster_of(&phrase).is_some() {
        // A real word, just not in this world: the executor will scan and
        // find nothing, which is a legitimate (if suspicious) empty match.
        out.push(
            Diagnostic::new(
                codes::CATEGORY_NOT_IN_GRAPH,
                Severity::Warning,
                format!(
                    "category \"{head}\" does not occur in the merged graph; \
                     this quad will match nothing"
                ),
            )
            .at_vertex(v)
            .at_slot(slot),
        );
        return;
    }

    let mut candidates: Vec<&str> = schema.categories().map(|(l, _)| l).collect();
    for noun in vocab::known_nouns() {
        candidates.push(noun);
    }
    // A near-miss of a known label is a probable typo: hard Error, the
    // user meant something else. With no close neighbour the term is an
    // out-of-world entity (a proper noun from a missing knowledge graph,
    // say) — the executor degrades to an empty match, so only warn.
    match suggest(&head, candidates) {
        Some(s) => out.push(
            Diagnostic::new(
                codes::UNKNOWN_CATEGORY,
                Severity::Error,
                format!(
                    "category \"{head}\" is unknown to both the merged graph \
                     and the vocabulary: the matcher cannot bind it"
                ),
            )
            .at_vertex(v)
            .at_slot(slot)
            .with_suggestion(s),
        ),
        None => out.push(
            Diagnostic::new(
                codes::UNKNOWN_CATEGORY,
                Severity::Warning,
                format!(
                    "category \"{head}\" is unknown and resembles no known \
                     label; this quad will match nothing"
                ),
            )
            .at_vertex(v)
            .at_slot(slot),
        ),
    }
}

/// A predicate is matchable when some edge label in the graph passes the
/// executor's `maxScore` similarity filter (exact labels trivially do).
fn check_predicate(linter: &Linter, v: usize, predicate: &str, out: &mut Vec<Diagnostic>) {
    let schema = linter.schema();
    let pred = predicate.trim().to_lowercase();
    if pred.is_empty() || schema.predicate_cardinality(&pred) > 0 {
        return;
    }
    let matchable = schema.predicates().any(|(label, _)| {
        linter.embedder.similarity(&pred, label) >= linter.config.min_predicate_similarity
    });
    if matchable {
        return;
    }

    if vocab::cluster_of(&pred).is_some() {
        out.push(
            Diagnostic::new(
                codes::PREDICATE_NOT_IN_GRAPH,
                Severity::Warning,
                format!(
                    "predicate \"{pred}\" has no sufficiently similar edge \
                     label in the merged graph; this quad will match nothing"
                ),
            )
            .at_vertex(v)
            .at_slot(Slot::Predicate),
        );
        return;
    }

    let mut candidates: Vec<&str> = schema.predicates().map(|(l, _)| l).collect();
    for verb in vocab::known_verb_forms() {
        candidates.push(verb);
    }
    // Same typo-vs-unknown split as categories: Error only with a
    // plausible "did you mean" target.
    match suggest(&pred, candidates) {
        Some(s) => out.push(
            Diagnostic::new(
                codes::UNKNOWN_PREDICATE,
                Severity::Error,
                format!(
                    "predicate \"{pred}\" is unknown to both the merged graph's \
                     edge labels and the verb vocabulary: no relation can pass \
                     the similarity filter"
                ),
            )
            .at_vertex(v)
            .at_slot(Slot::Predicate)
            .with_suggestion(s),
        ),
        None => out.push(
            Diagnostic::new(
                codes::UNKNOWN_PREDICATE,
                Severity::Warning,
                format!(
                    "predicate \"{pred}\" is unknown and resembles no known \
                     relation; this quad will match nothing"
                ),
            )
            .at_vertex(v)
            .at_slot(Slot::Predicate),
        ),
    }
}

/// Constraints come from a closed vocabulary ("most frequently", "at
/// least", …); anything else is a hand-built string the executor's
/// constraint parser will ignore.
fn check_constraint(v: usize, constraint: &str, out: &mut Vec<Diagnostic>) {
    let c = constraint.trim().to_lowercase();
    let known = vocab::CONCEPT_CLUSTERS
        .iter()
        .filter(|cl| cl.parent == "constraint")
        .flat_map(|cl| cl.members.iter())
        .any(|form| c.contains(form));
    if !known {
        out.push(
            Diagnostic::new(
                codes::UNKNOWN_CONSTRAINT,
                Severity::Warning,
                format!("constraint \"{c}\" matches no known constraint form"),
            )
            .at_vertex(v)
            .at_slot(Slot::Constraint),
        );
    }
}

/// "Did you mean …?": the candidate at the smallest edit distance, accepted
/// when it is a plausible near-miss (distance ≤ 2, or similarity ≥ 0.6 for
/// longer words).
fn suggest<'a>(word: &str, candidates: impl IntoIterator<Item = &'a str>) -> Option<String> {
    let best = candidates
        .into_iter()
        .filter(|c| *c != word)
        .map(|c| (levenshtein(word, c), c))
        .min_by_key(|(d, c)| (*d, c.len()))?;
    let (distance, candidate) = best;
    if distance <= 2 || levenshtein_similarity(word, candidate) >= 0.6 {
        Some(candidate.to_owned())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::suggest;

    #[test]
    fn suggest_picks_nearest_and_rejects_far_misses() {
        assert_eq!(suggest("dgo", ["dog", "cat", "car"]), Some("dog".into()));
        assert_eq!(suggest("weer", ["wearing", "wear", "on"]), Some("wear".into()));
        assert_eq!(suggest("xqzvv", ["dog", "cat"]), None);
    }
}
