//! `svqa-qlint`: static analysis of query graphs before execution.
//!
//! The parser (§IV-B) emits SPOC query graphs that the executor would
//! otherwise run blindly — a typo'd predicate, a cyclic dependency edge, or
//! an unbound answer slot costs a full sub-graph-matching scan before
//! returning an empty answer. This crate lints a [`QueryGraph`] against the
//! merged graph's [`Schema`] (its vocabulary of categories and predicates,
//! extracted once after aggregation) and produces typed [`Diagnostic`]s in
//! microseconds, so garbage plans are rejected at the door.
//!
//! Three pass families:
//!
//! 1. **structural** — dangling/cyclic dependency edges, empty SPOC slots,
//!    unbound answer slots, quads unreachable from the answer vertex;
//! 2. **semantic** — subject/object categories and predicates checked
//!    against the schema, with edit-distance "did you mean" suggestions;
//! 3. **cost** — per-quad cardinality estimates from schema statistics,
//!    flagging cartesian blowups and feeding join-order hints to the
//!    scheduler.
//!
//! Severity policy: [`Severity::Error`] means the plan *cannot* produce
//! answers (the executor's own matching thresholds guarantee an empty
//! match), [`Severity::Warning`] means the plan is suspicious or expensive
//! but executable, [`Severity::Hint`] is planner guidance.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cost;
mod diag;
mod schema;
mod semantic;
mod structural;

pub use cost::{query_cost, QuadCost, QueryCost};
pub use diag::{codes, Diagnostic, LintReport, Severity, Slot};
pub use schema::Schema;

use svqa_qparser::QueryGraph;

/// Matching thresholds mirrored from the executor's defaults (§V-A). The
/// linter must agree with `matchVertex`: a slot it calls unmatchable has to
/// be one the executor would also fail to match, or lint errors would
/// reject answerable questions.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Levenshtein similarity at or above which a category label matches.
    pub lev_threshold: f64,
    /// Embedding cosine similarity at or above which a category matches.
    pub embed_threshold: f32,
    /// Minimum embedding similarity for a predicate to select an edge.
    pub min_predicate_similarity: f32,
    /// A quad whose estimated pair scan exceeds `blowup_factor *
    /// vertex_total` draws a cartesian-blowup warning.
    pub blowup_factor: f64,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            lev_threshold: 0.8,
            embed_threshold: 0.6,
            min_predicate_similarity: 0.45,
            blowup_factor: 64.0,
        }
    }
}

/// The query-graph linter: a [`Schema`] plus the executor-mirroring
/// thresholds, reused across questions.
#[derive(Debug, Clone)]
pub struct Linter {
    schema: Schema,
    config: LintConfig,
    embedder: svqa_nlp::Embedder,
}

impl Linter {
    /// Build a linter over an extracted schema with default thresholds.
    pub fn new(schema: Schema) -> Self {
        Linter::with_config(schema, LintConfig::default())
    }

    /// Build a linter with explicit thresholds.
    pub fn with_config(schema: Schema, config: LintConfig) -> Self {
        Linter {
            schema,
            config,
            embedder: svqa_nlp::Embedder::new(),
        }
    }

    /// The schema this linter checks against.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Run all three pass families over a query graph.
    pub fn lint(&self, gq: &QueryGraph) -> LintReport {
        let mut diagnostics = Vec::new();
        let structurally_sound = structural::check(gq, &mut diagnostics);
        // Semantic and cost checks index slots and walk execution order;
        // both are only meaningful on a structurally sound graph.
        if structurally_sound {
            semantic::check(self, gq, &mut diagnostics);
            cost::check(self, gq, &mut diagnostics);
        }
        diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then(a.vertex.cmp(&b.vertex))
                .then(a.code.cmp(&b.code))
        });
        LintReport { diagnostics }
    }

    /// Per-quad cost estimates for a query graph (the scheduler-hint feed);
    /// independent of diagnostics.
    pub fn cost(&self, gq: &QueryGraph) -> QueryCost {
        cost::query_cost(&self.schema, gq)
    }
}

#[cfg(test)]
mod tests;
