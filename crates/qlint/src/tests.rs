//! Unit tests: exact diagnostic codes for hand-built malformed graphs and
//! clean bills of health for well-formed ones.

use crate::{codes, query_cost, Linter, Schema, Severity};
use svqa_graph::Graph;
use svqa_qparser::{
    AnswerRole, Dependency, NounPhrase, QueryEdge, QueryGraph, QuestionType, Spoc,
};

fn small_world() -> Graph {
    let mut g = Graph::new();
    let d = g.add_vertex("dog");
    let c = g.add_vertex("car");
    let m = g.add_vertex("man");
    let h = g.add_vertex("hat");
    g.add_edge(d, c, "in").unwrap();
    g.add_edge(m, h, "wearing").unwrap();
    g
}

fn linter() -> Linter {
    Linter::new(Schema::extract(&small_world()))
}

fn spoc(s: &str, p: &str, o: &str) -> Spoc {
    Spoc {
        subject: if s.is_empty() {
            NounPhrase::default()
        } else {
            NounPhrase::simple(s)
        },
        predicate: p.to_owned(),
        object: if o.is_empty() {
            NounPhrase::default()
        } else {
            NounPhrase::simple(o)
        },
        ..Spoc::default()
    }
}

fn judgment(vertices: Vec<Spoc>, edges: Vec<QueryEdge>) -> QueryGraph {
    QueryGraph {
        vertices,
        edges,
        question_type: QuestionType::Judgment,
        question: "test".into(),
    }
}

fn codes_of(gq: &QueryGraph) -> Vec<String> {
    linter()
        .lint(gq)
        .diagnostics
        .iter()
        .map(|d| d.code.clone())
        .collect()
}

#[test]
fn clean_judgment_question_has_no_diagnostics() {
    let gq = judgment(vec![spoc("dog", "in", "car")], vec![]);
    let report = linter().lint(&gq);
    assert!(report.is_clean(), "{}", report.render());
}

#[test]
fn empty_graph_is_an_error() {
    let gq = judgment(vec![], vec![]);
    assert_eq!(codes_of(&gq), vec![codes::EMPTY_QUERY_GRAPH]);
}

#[test]
fn cyclic_dependency_is_detected() {
    let gq = judgment(
        vec![spoc("dog", "in", "car"), spoc("man", "wearing", "hat")],
        vec![
            QueryEdge { provider: 0, consumer: 1, dependency: Dependency::S2S },
            QueryEdge { provider: 1, consumer: 0, dependency: Dependency::O2O },
        ],
    );
    assert_eq!(codes_of(&gq), vec![codes::CYCLIC_DEPENDENCY]);
}

#[test]
fn dangling_and_self_loop_edges_are_errors() {
    let gq = judgment(
        vec![spoc("dog", "in", "car")],
        vec![QueryEdge { provider: 0, consumer: 7, dependency: Dependency::S2S }],
    );
    assert_eq!(codes_of(&gq), vec![codes::DANGLING_EDGE]);

    let gq = judgment(
        vec![spoc("dog", "in", "car")],
        vec![QueryEdge { provider: 0, consumer: 0, dependency: Dependency::S2S }],
    );
    assert_eq!(codes_of(&gq), vec![codes::DANGLING_EDGE]);
}

#[test]
fn empty_quad_is_an_error() {
    let gq = judgment(vec![spoc("", "in", "")], vec![]);
    let report = linter().lint(&gq);
    assert!(
        report.diagnostics.iter().any(|d| d.code == codes::EMPTY_QUAD),
        "{}",
        report.render()
    );
    assert!(report.has_errors());
}

#[test]
fn unbound_answer_slot_warns_on_reasoning_questions() {
    let gq = QueryGraph {
        vertices: vec![spoc("dog", "in", "car")],
        edges: vec![],
        question_type: QuestionType::Reasoning,
        question: "test".into(),
    };
    let report = linter().lint(&gq);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::UNBOUND_ANSWER_SLOT)
        .expect("unbound-answer-slot diagnostic");
    assert_eq!(d.severity, Severity::Warning);

    // The same graph with a marked answer slot is clean.
    let mut bound = gq;
    bound.vertices[0].answer_role = Some(AnswerRole::Subject);
    assert!(linter().lint(&bound).is_clean());
}

#[test]
fn quad_disconnected_from_answer_vertex_warns() {
    let mut gq = QueryGraph {
        vertices: vec![spoc("dog", "in", "car"), spoc("man", "wearing", "hat")],
        edges: vec![],
        question_type: QuestionType::Reasoning,
        question: "test".into(),
    };
    gq.vertices[0].answer_role = Some(AnswerRole::Subject);
    let report = linter().lint(&gq);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::UNREACHABLE_QUAD)
        .expect("unreachable-quad diagnostic");
    assert_eq!(d.vertex, Some(1));
}

#[test]
fn typo_category_is_an_error_with_a_suggestion() {
    let gq = judgment(vec![spoc("dgo", "in", "car")], vec![]);
    let report = linter().lint(&gq);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::UNKNOWN_CATEGORY)
        .expect("unknown-category diagnostic");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.suggestion.as_deref(), Some("dog"));
    assert!(report.has_errors());
}

#[test]
fn known_word_absent_from_world_is_a_warning_not_an_error() {
    // "kitten" is in the vocabulary (cat cluster) but this world has no
    // cats: the executor would legitimately scan and find nothing.
    let gq = judgment(vec![spoc("kitten", "in", "car")], vec![]);
    let report = linter().lint(&gq);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::CATEGORY_NOT_IN_GRAPH)
        .expect("category-not-in-graph diagnostic");
    assert_eq!(d.severity, Severity::Warning);
    assert!(!report.has_errors());
}

#[test]
fn typo_predicate_is_an_error_with_a_suggestion() {
    let gq = judgment(vec![spoc("man", "weer", "hat")], vec![]);
    let report = linter().lint(&gq);
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == codes::UNKNOWN_PREDICATE)
        .expect("unknown-predicate diagnostic");
    assert_eq!(d.severity, Severity::Error);
    assert_eq!(d.suggestion.as_deref(), Some("wear"));
}

#[test]
fn bound_slots_are_not_vocabulary_checked() {
    // ⟨wizard, hang out with, girlfriend⟩ ← the "girlfriend" object is fed
    // by the provider's answers; its surface text must not be linted.
    let mut g = Graph::new();
    let w = g.add_vertex("harry potter");
    let x = g.add_vertex("cho chang");
    g.add_edge(x, w, "girlfriend of").unwrap();
    let linter = Linter::new(Schema::extract(&g));

    let gq = QueryGraph {
        vertices: vec![
            spoc("", "girlfriend of", "harry potter"),
            spoc("harry potter", "girlfriend of", "girlfriend"),
        ],
        edges: vec![QueryEdge { provider: 0, consumer: 1, dependency: Dependency::O2S }],
        question_type: QuestionType::Judgment,
        question: "test".into(),
    };
    let report = linter.lint(&gq);
    assert!(
        !report.diagnostics.iter().any(|d| d.code == codes::UNKNOWN_CATEGORY),
        "{}",
        report.render()
    );
}

#[test]
fn unknown_constraint_warns() {
    let mut v = spoc("dog", "in", "car");
    v.constraint = Some("upside down".into());
    let report = linter().lint(&judgment(vec![v], vec![]));
    assert!(
        report.diagnostics.iter().any(|d| d.code == codes::UNKNOWN_CONSTRAINT),
        "{}",
        report.render()
    );
    let mut v = spoc("dog", "in", "car");
    v.constraint = Some("at least 2".into());
    assert!(linter().lint(&judgment(vec![v], vec![])).is_clean());
}

fn wide_world() -> Graph {
    let mut g = Graph::new();
    for _ in 0..300 {
        g.add_vertex("dog");
        g.add_vertex("car");
    }
    g
}

#[test]
fn cartesian_blowup_warns_on_wide_pair_scans() {
    let linter = Linter::new(Schema::extract(&wide_world()));
    let report = linter.lint(&judgment(vec![spoc("dog", "in", "car")], vec![]));
    assert!(
        report.diagnostics.iter().any(|d| d.code == codes::CARTESIAN_BLOWUP),
        "{}",
        report.render()
    );
    assert!(!report.has_errors(), "cost findings must stay warnings");
}

#[test]
fn wide_wildcard_scan_gets_a_hint() {
    let linter = Linter::new(Schema::extract(&wide_world()));
    let report = linter.lint(&judgment(vec![spoc("", "in", "car")], vec![]));
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.code == codes::EXPENSIVE_WILDCARD && d.severity == Severity::Hint),
        "{}",
        report.render()
    );
}

#[test]
fn query_cost_orders_cheap_before_expensive() {
    let schema = Schema::extract(&wide_world());
    let cheap = judgment(vec![spoc("dog", "in", "dog")], vec![]);
    let wide = judgment(vec![spoc("", "in", "")], vec![]);
    let c = query_cost(&schema, &cheap).total;
    let w = query_cost(&schema, &wide).total;
    assert!(c < w, "cheap {c} should undercut wildcard {w}");
    assert_eq!(query_cost(&schema, &wide).quads[0].pairs, 600.0 * 600.0);
}

#[test]
fn bound_slot_inherits_provider_cardinality() {
    let schema = Schema::extract(&wide_world());
    let gq = QueryGraph {
        vertices: vec![
            spoc("dog", "in", "car"),
            // Subject fed by provider 0's subject answers (≤300 dogs), so
            // this quad is not a 600-wide wildcard scan.
            spoc("", "in", "car"),
        ],
        edges: vec![QueryEdge { provider: 0, consumer: 1, dependency: Dependency::S2S }],
        question_type: QuestionType::Reasoning,
        question: "test".into(),
    };
    let qc = query_cost(&schema, &gq);
    assert_eq!(qc.quads[1].subject_card, 300);
}

#[test]
fn report_sorts_errors_first_and_renders_summary() {
    let gq = QueryGraph {
        vertices: vec![spoc("dgo", "in", "car"), spoc("man", "wearing", "hat")],
        edges: vec![],
        question_type: QuestionType::Reasoning,
        question: "test".into(),
    };
    let report = linter().lint(&gq);
    assert!(report.has_errors());
    assert_eq!(report.diagnostics[0].severity, Severity::Error);
    assert!(report.summary().contains("1 error"), "{}", report.summary());
    assert!(report.render().contains("did you mean"), "{}", report.render());

    // Diagnostics survive a serde round trip (the serve path ships them).
    let json = serde_json::to_string(&report).unwrap();
    let back: crate::LintReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back, report);
}
