//! Pass 3: per-quad cardinality estimation from schema statistics — the
//! cartesian-blowup check and the scheduler's join-order hint feed.

use crate::diag::{codes, Diagnostic, Severity, Slot};
use crate::schema::Schema;
use crate::{Linter, structural::bound_slot};
use std::collections::HashMap;
use svqa_nlp::lev::levenshtein_similarity;
use svqa_nlp::vocab;
use svqa_qparser::{NounPhrase, QueryGraph};

/// Estimated work for one quad: the candidate-set sizes of both slots and
/// the implied pair-scan size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadCost {
    /// Query-graph vertex index.
    pub vertex: usize,
    /// Estimated subject candidate count.
    pub subject_card: usize,
    /// Estimated object candidate count.
    pub object_card: usize,
    /// `subject_card × object_card`, the pair-scan bound.
    pub pairs: f64,
}

/// Estimated work for a whole query graph.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryCost {
    /// Per-quad estimates, indexed like `gq.vertices`.
    pub quads: Vec<QuadCost>,
    /// Sum of all pair scans — the scalar the scheduler sorts on.
    pub total: f64,
}

/// Estimate the cost of every quad. Bound slots inherit the provider's
/// answer-side estimate (walked in execution order); wildcard slots scan
/// every vertex; named slots use exact, fuzzy, or cluster cardinalities
/// from the schema.
pub fn query_cost(schema: &Schema, gq: &QueryGraph) -> QueryCost {
    let Some(order) = gq.execution_order() else {
        // Cyclic/dangling graphs are rejected by the structural pass; a
        // zero cost keeps this function total for direct callers.
        return QueryCost::default();
    };

    // (vertex, is_subject) → resolved cardinality, filled providers-first.
    let mut cards: HashMap<(usize, bool), usize> = HashMap::new();
    let mut quads = vec![
        QuadCost { vertex: 0, subject_card: 0, object_card: 0, pairs: 0.0 };
        gq.len()
    ];
    for v in order {
        let spoc = &gq.vertices[v];
        for (is_subject, np) in [(true, &spoc.subject), (false, &spoc.object)] {
            let slot = if is_subject { Slot::Subject } else { Slot::Object };
            let fed_by: Option<usize> = gq
                .in_edges(v)
                .filter(|e| bound_slot(e.dependency) == slot)
                .map(|e| {
                    let provider_is_subject = matches!(
                        e.dependency,
                        svqa_qparser::Dependency::S2S | svqa_qparser::Dependency::O2S
                    );
                    cards
                        .get(&(e.provider, provider_is_subject))
                        .copied()
                        .unwrap_or(0)
                })
                .min();
            let card = match fed_by {
                Some(provided) => provided,
                None => slot_cardinality(schema, np),
            };
            cards.insert((v, is_subject), card);
        }
        let subject_card = cards[&(v, true)];
        let object_card = cards[&(v, false)];
        quads[v] = QuadCost {
            vertex: v,
            subject_card,
            object_card,
            pairs: subject_card as f64 * object_card as f64,
        };
    }
    let total = quads.iter().map(|q| q.pairs).sum();
    QueryCost { quads, total }
}

/// Candidate-set size for one unbound slot.
fn slot_cardinality(schema: &Schema, np: &NounPhrase) -> usize {
    if np.is_empty() {
        // Wildcard: the executor scans every vertex.
        return schema.vertex_total();
    }
    let head = np.head.trim().to_lowercase();
    let phrase = np.phrase.trim().to_lowercase();
    let exact = schema.category_cardinality(&head) + if phrase != head {
        schema.category_cardinality(&phrase)
    } else {
        0
    };
    if exact > 0 {
        return exact;
    }
    // Fuzzy: everything a Levenshtein or same-cluster match could bind.
    let cluster = vocab::cluster_of(&head);
    schema
        .categories()
        .filter(|(label, _)| {
            levenshtein_similarity(&head, label) >= 0.8
                || cluster.is_some_and(|c| c.members.contains(label))
        })
        .map(|(_, n)| n)
        .sum()
}

pub(crate) fn check(linter: &Linter, gq: &QueryGraph, out: &mut Vec<Diagnostic>) {
    let schema = linter.schema();
    let vertex_total = schema.vertex_total().max(1);
    let blowup = linter.config.blowup_factor * vertex_total as f64;
    let wide = (vertex_total / 10).max(64);

    for q in &query_cost(schema, gq).quads {
        let spoc = &gq.vertices[q.vertex];
        if q.pairs > blowup && q.subject_card > 1 && q.object_card > 1 {
            out.push(
                Diagnostic::new(
                    codes::CARTESIAN_BLOWUP,
                    Severity::Warning,
                    format!(
                        "estimated {}×{} pair scan (~{:.0} pairs) over a \
                         {vertex_total}-vertex graph",
                        q.subject_card, q.object_card, q.pairs
                    ),
                )
                .at_vertex(q.vertex),
            );
        }
        for (slot, np, own, other) in [
            (Slot::Subject, &spoc.subject, q.subject_card, q.object_card),
            (Slot::Object, &spoc.object, q.object_card, q.subject_card),
        ] {
            // A wildcard that survived cost resolution at full vertex count
            // (i.e. not narrowed by a dependency edge) against a wide other
            // side: executable, but the scan is avoidably broad.
            if np.is_empty() && own == schema.vertex_total() && other >= wide {
                out.push(
                    Diagnostic::new(
                        codes::EXPENSIVE_WILDCARD,
                        Severity::Hint,
                        format!(
                            "wildcard {} scans all {vertex_total} vertices \
                             against {other} candidates on the other side",
                            slot.name()
                        ),
                    )
                    .at_vertex(q.vertex)
                    .at_slot(slot),
                );
            }
        }
    }
}
