//! Property-based tests for the query-graph generator: on template-shaped
//! inputs the generator must produce well-formed, executable query graphs;
//! on arbitrary word soup it must fail cleanly, never panic.

use proptest::prelude::*;
use svqa_qparser::{QueryGraphGenerator, QuestionType};

const NOUNS: [&str; 8] = ["dog", "cat", "man", "woman", "wizard", "car", "bed", "hat"];
const REL_PREDS: [&str; 6] = ["sitting on", "in", "near", "holding", "wearing", "carrying"];
const SPATIAL: [&str; 4] = ["near", "in front of", "behind", "in"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn judgment_templates_always_parse(
        a in prop::sample::select(&NOUNS[..]),
        p1 in prop::sample::select(&REL_PREDS[..]),
        b in prop::sample::select(&NOUNS[..]),
        p2 in prop::sample::select(&SPATIAL[..]),
        c in prop::sample::select(&NOUNS[..]),
    ) {
        let q = format!("Does the {a} that is {p1} the {b} appear {p2} the {c}?");
        let gq = QueryGraphGenerator::new().generate(&q).unwrap();
        prop_assert_eq!(gq.question_type, QuestionType::Judgment);
        prop_assert_eq!(gq.len(), 2, "{:#?}", gq.vertices);
        // Well-formed DAG with the inner clause as provider.
        let order = gq.execution_order().unwrap();
        prop_assert_eq!(order.len(), 2);
        prop_assert_eq!(*order.last().unwrap(), 0);
        // Subjects share the head noun.
        prop_assert_eq!(&gq.vertices[0].subject.head, &gq.vertices[1].subject.head);
    }

    #[test]
    fn counting_templates_always_parse(
        a in prop::sample::select(&["dog", "cat", "man", "hat"][..]),
        p1 in prop::sample::select(&REL_PREDS[..]),
        b in prop::sample::select(&NOUNS[..]),
        p2 in prop::sample::select(&SPATIAL[..]),
        c in prop::sample::select(&NOUNS[..]),
    ) {
        let q = format!("How many {a}s that are {p1} the {b} are {p2} the {c}?");
        let gq = QueryGraphGenerator::new().generate(&q).unwrap();
        prop_assert_eq!(gq.question_type, QuestionType::Counting);
        prop_assert_eq!(gq.len(), 2, "{:?} -> {:#?}", q, gq.vertices);
        let answer = &gq.vertices[gq.answer_vertex()];
        prop_assert!(answer.answer_role.is_some(), "{:?}", q);
    }

    #[test]
    fn reasoning_templates_always_parse(
        class in prop::sample::select(&["animals", "vehicles", "clothes"][..]),
        pass in prop::sample::select(&["carried", "held", "worn", "watched"][..]),
        a in prop::sample::select(&NOUNS[..]),
        p2 in prop::sample::select(&REL_PREDS[..]),
        b in prop::sample::select(&NOUNS[..]),
    ) {
        let q = format!("What kind of {class} is {pass} by the {a} that is {p2} the {b}?");
        let gq = QueryGraphGenerator::new().generate(&q).unwrap();
        prop_assert_eq!(gq.question_type, QuestionType::Reasoning);
        prop_assert_eq!(gq.len(), 2, "{:?} -> {:#?}", q, gq.vertices);
        let main = &gq.vertices[0];
        prop_assert!(main.asks_kind, "{:?}", q);
        // Voice normalization: the agent is the subject.
        prop_assert_eq!(main.subject.head.as_str(), a);
    }

    #[test]
    fn word_soup_never_panics(words in proptest::collection::vec("[a-z]{1,8}", 0..12)) {
        let q = words.join(" ");
        // Any outcome is fine except a panic.
        let _ = QueryGraphGenerator::new().generate(&q);
    }

    #[test]
    fn generated_graphs_are_acyclic(
        a in prop::sample::select(&NOUNS[..]),
        p1 in prop::sample::select(&REL_PREDS[..]),
        b in prop::sample::select(&NOUNS[..]),
    ) {
        let q = format!(
            "What kind of clothes are worn by the {a} that is {p1} the {b} that is near the man?"
        );
        if let Ok(gq) = QueryGraphGenerator::new().generate(&q) {
            prop_assert!(gq.execution_order().is_some(), "cyclic graph for {:?}", q);
            for e in &gq.edges {
                prop_assert!(e.provider < gq.len() && e.consumer < gq.len());
                prop_assert_ne!(e.provider, e.consumer);
            }
        }
    }
}
