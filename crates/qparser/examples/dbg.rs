fn main() {
    for q in ["Does the dog that is on the grass appear in front of the tv?"] {
        let tagger = svqa_nlp::PosTagger::new();
        let tree = svqa_nlp::RuleDependencyParser::new().parse(&tagger.tag(q)).unwrap();
        print!("{}", tree.to_conll());
        match svqa_qparser::QueryGraphGenerator::new().generate(q) {
            Ok(g) => for v in &g.vertices { println!("{}", v.display()); },
            Err(e) => println!("ERR {e}"),
        }
    }
}
