//! Algorithm 2: complex query → query graph.

use crate::clause::{segment, Clause};
use crate::qgraph::{Dependency, QueryEdge, QueryGraph, QuestionType};
use crate::spoc::{AnswerRole, NounPhrase, Spoc};
use std::fmt;
use svqa_nlp::dep::{DepLabel, DepTree, ParseError};
use svqa_nlp::vocab;
use svqa_nlp::{Lemmatizer, PosTag, PosTagger, RuleDependencyParser};

/// Errors from query-graph generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryParseError {
    /// The underlying dependency parse failed (e.g. the Fig. 8a foreign-word
    /// mis-tag cascading into a verbless analysis).
    Nlp(ParseError),
    /// A clause produced an empty SPOC (no subject *and* no object could be
    /// extracted).
    EmptySpoc {
        /// Index of the offending clause.
        clause: usize,
    },
}

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryParseError::Nlp(e) => write!(f, "dependency parse failed: {e}"),
            QueryParseError::EmptySpoc { clause } => {
                write!(f, "clause {clause} yielded an empty SPOC")
            }
        }
    }
}

impl std::error::Error for QueryParseError {}

impl From<ParseError> for QueryParseError {
    fn from(e: ParseError) -> Self {
        QueryParseError::Nlp(e)
    }
}

/// Relational nouns whose possessive form expands into a knowledge-graph
/// sub-query ("Harry Potter's girlfriend" → `⟨*, girlfriend of, harry
/// potter⟩`).
const RELATIONAL_NOUNS: &[&str] = &[
    "girlfriend", "boyfriend", "friend", "wife", "husband", "spouse",
    "sibling", "brother", "sister", "mentor", "teacher", "enemy", "rival",
    "owner",
];

/// Aggregator head nouns: "what kind of X" asks for X's category.
const KIND_NOUNS: &[&str] = &["kind", "type", "sort"];

/// Verb particles kept inside the predicate ("hang out").
const PARTICLES: &[&str] = &["out", "up", "down", "off", "away", "together"];

/// Light verbs whose oblique case *is* the predicate ("appear in front of
/// the car" → predicate "in front of").
const LIGHT_VERBS: &[&str] = &["be", "appear"];

/// The query graph generator (Algorithm 2 driver).
pub struct QueryGraphGenerator {
    tagger: PosTagger,
    parser: RuleDependencyParser,
    lemmatizer: Lemmatizer,
}

impl Default for QueryGraphGenerator {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryGraphGenerator {
    /// Build a generator (constructs the tagger lexicon once).
    pub fn new() -> Self {
        QueryGraphGenerator {
            tagger: PosTagger::new(),
            parser: RuleDependencyParser::new(),
            lemmatizer: Lemmatizer::new(),
        }
    }

    /// Algorithm 2: parse `question` into a query graph.
    pub fn generate(&self, question: &str) -> Result<QueryGraph, QueryParseError> {
        // --- Initial stage: POS + dependency tree. ---
        let tree = {
            let _span = svqa_telemetry::Span::enter(svqa_telemetry::stage::PARSE);
            let tagged = self.tagger.tag(question);
            self.parser.parse(&tagged)?
        };
        let _span = svqa_telemetry::Span::enter(svqa_telemetry::stage::DECOMPOSE);
        let question_type = detect_question_type(&tree);

        // --- Parse stage: clause segmentation + SPOC state machine. ---
        let clauses = segment(&tree);
        let mut vertices: Vec<Spoc> = Vec::new();
        let mut edges: Vec<QueryEdge> = Vec::new();
        // clause index → vertex index (auxiliary possessive vertices shift
        // positions).
        let mut clause_vertex = Vec::with_capacity(clauses.len());
        for (ci, clause) in clauses.iter().enumerate() {
            let (spoc, aux) = self.extract_spoc(&tree, clause, question_type)?;
            if spoc.subject.is_empty() && spoc.object.is_empty() {
                return Err(QueryParseError::EmptySpoc { clause: ci });
            }
            let vid = vertices.len();
            vertices.push(spoc);
            clause_vertex.push(vid);
            // Auxiliary vertices (possessive expansions) feed this clause.
            for (aux_spoc, consumer_role) in aux {
                let aux_id = vertices.len();
                vertices.push(aux_spoc);
                edges.push(QueryEdge {
                    provider: aux_id,
                    consumer: vid,
                    dependency: match consumer_role {
                        AnswerRole::Subject => Dependency::S2S,
                        AnswerRole::Object => Dependency::O2S,
                    },
                });
            }
        }

        // --- Connect stage: antecedent links + generic shared-noun links. ---
        for (ci, clause) in clauses.iter().enumerate() {
            let Some(ant) = clause.antecedent else { continue };
            let ant_head = self.lemmatizer.noun_lemma(tree.text(ant));
            let provider = clause_vertex[ci];
            // The consumer is the clause whose SPOC mentions the antecedent
            // and that is shallower than this one.
            let consumer = clauses
                .iter()
                .enumerate()
                .filter(|(cj, other)| *cj != ci && other.depth < clause.depth)
                .map(|(cj, _)| clause_vertex[cj])
                .find(|&vj| role_of(&vertices[vj], &ant_head).is_some());
            let Some(consumer) = consumer else { continue };
            let provider_role = role_of(&vertices[provider], &ant_head);
            let consumer_role = role_of(&vertices[consumer], &ant_head);
            if let (Some(p), Some(c)) = (provider_role, consumer_role) {
                edges.push(QueryEdge {
                    provider,
                    consumer,
                    dependency: dependency_of(c, p),
                });
            }
        }
        // Generic sharing between clauses not already connected (S2S and
        // friends across coordinate clauses).
        for i in 0..clauses.len() {
            for j in 0..clauses.len() {
                if i == j || clauses[i].depth <= clauses[j].depth {
                    continue;
                }
                let (vp, vc) = (clause_vertex[i], clause_vertex[j]);
                if edges
                    .iter()
                    .any(|e| e.provider == vp && e.consumer == vc)
                {
                    continue;
                }
                let provider = &vertices[vp];
                let consumer = &vertices[vc];
                let shared = [&provider.subject.head, &provider.object.head]
                    .into_iter()
                    .filter(|h| !h.is_empty())
                    .find(|h| role_of(consumer, h).is_some());
                if let Some(shared) = shared {
                    let p = role_of(provider, shared).expect("shared came from provider");
                    let c = role_of(consumer, shared).expect("role_of checked above");
                    edges.push(QueryEdge {
                        provider: vp,
                        consumer: vc,
                        dependency: dependency_of(c, p),
                    });
                }
            }
        }

        svqa_telemetry::global().incr_counter(svqa_telemetry::counter::QUESTIONS_PARSED);
        Ok(QueryGraph {
            vertices,
            edges,
            question_type,
            question: question.to_owned(),
        })
    }

    /// The SPOC extraction state machine (§IV-B) for one clause. Returns
    /// the SPOC plus auxiliary `(spoc, consumer role)` possessive
    /// expansions.
    fn extract_spoc(
        &self,
        tree: &DepTree,
        clause: &Clause,
        question_type: QuestionType,
    ) -> Result<(Spoc, Vec<(Spoc, AnswerRole)>), QueryParseError> {
        let verb = clause.verb;
        let passive = tree
            .children_with_label(verb, DepLabel::AuxPass)
            .next()
            .is_some();

        // Grammatical arguments.
        let nsubj = tree
            .child_with_label(verb, DepLabel::Nsubj)
            .or_else(|| tree.child_with_label(verb, DepLabel::NsubjPass));
        let obj = tree.child_with_label(verb, DepLabel::Obj);
        let obls: Vec<usize> = tree.children_with_label(verb, DepLabel::Obl).collect();
        let by_agent = obls
            .iter()
            .copied()
            .find(|&o| case_phrase(tree, o).as_deref() == Some("by"));
        let other_obl = obls.iter().copied().find(|&o| Some(o) != by_agent);

        // WH replenishment (the `acl` cross-clause reference of §IV-B).
        let resolve = |tok: Option<usize>| -> Option<usize> {
            let tok = tok?;
            if tree.tag(tok).is_wh() {
                clause.antecedent
            } else {
                Some(tok)
            }
        };
        let nsubj = resolve(nsubj);
        let obj = resolve(obj);

        // Semantic (voice-normalized) roles.
        let verb_lemma = self.lemmatizer.verb_lemma(tree.text(verb));
        let (sem_subject, sem_object, obl_as_object) = if passive {
            match (by_agent, obj.or(other_obl)) {
                // "carried by the pets": agent → subject, patient → object.
                (Some(agent), _) => (Some(agent), nsubj, None),
                // Stative passive, "situated in the car": patient →
                // subject, oblique → object.
                (None, Some(rest)) => (nsubj, Some(rest), other_obl),
                // Bare passive: patient stays object, subject is a
                // wildcard.
                (None, None) => (None, nsubj, None),
            }
        } else {
            match (obj, other_obl) {
                (Some(o), _) => (nsubj, Some(o), None),
                (None, Some(o)) => (nsubj, Some(o), Some(o)),
                (None, None) => (nsubj, None, None),
            }
        };

        // Predicate: lemma + particles, or case-joined / light-verb form.
        let mut predicate = verb_lemma.clone();
        for child in tree.children_with_label(verb, DepLabel::Advmod) {
            if child == verb + 1 && PARTICLES.contains(&tree.text(child)) {
                predicate.push(' ');
                predicate.push_str(tree.text(child));
            }
        }
        if let Some(obl_obj) = obl_as_object.or(match sem_object {
            Some(o) if obls.contains(&o) && Some(o) != by_agent => Some(o),
            _ => None,
        }) {
            if let Some(cp) = case_phrase(tree, obl_obj) {
                if LIGHT_VERBS.contains(&verb_lemma.as_str()) {
                    predicate = cp;
                } else {
                    // Prefer a known surface collocation ("situated in")
                    // over the lemma join ("situate in") when the taxonomy
                    // has it — keeps maxScore sharp.
                    let surface = format!("{} {}", tree.text(verb), cp);
                    predicate = if vocab::cluster_of(&surface).is_some() {
                        surface
                    } else {
                        format!("{predicate} {cp}")
                    };
                }
            }
        }

        // Constraint: non-particle adverbial span on the verb.
        let constraint = extract_constraint(tree, verb);

        // Render the noun phrases.
        let mut aux = Vec::new();
        let (subject, s_flags) = match sem_subject {
            Some(tok) => self.render_np(tree, tok),
            None => (NounPhrase::default(), NpFlags::default()),
        };
        let (object, o_flags) = match sem_object {
            Some(tok) => self.render_np(tree, tok),
            None => (NounPhrase::default(), NpFlags::default()),
        };

        // Possessive expansions become auxiliary vertices.
        if let Some((rel, owner)) = s_flags.possessive.clone() {
            aux.push((possessive_spoc(&rel, &owner), AnswerRole::Subject));
        }
        if let Some((rel, owner)) = o_flags.possessive.clone() {
            aux.push((possessive_spoc(&rel, &owner), AnswerRole::Object));
        }

        // Answer variable.
        let answer_role = if clause.depth == 0 {
            if s_flags.answer_marker {
                Some(AnswerRole::Subject)
            } else if o_flags.answer_marker {
                Some(AnswerRole::Object)
            } else if question_type == QuestionType::Counting {
                // "how many dogs ..." — the counting target NP.
                if s_flags.counting {
                    Some(AnswerRole::Subject)
                } else if o_flags.counting {
                    Some(AnswerRole::Object)
                } else {
                    None
                }
            } else {
                None
            }
        } else {
            None
        };

        Ok((
            Spoc {
                subject,
                predicate,
                object,
                constraint,
                answer_role,
                asks_kind: s_flags.asks_kind || o_flags.asks_kind,
            },
            aux,
        ))
    }

    /// Render a noun phrase rooted at `head` and report its markers.
    fn render_np(&self, tree: &DepTree, head: usize) -> (NounPhrase, NpFlags) {
        let mut flags = NpFlags::default();
        let head_text = tree.text(head);
        let head_lemma = self.lemmatizer.noun_lemma(head_text);

        // Determiner markers.
        for det in tree.children_with_label(head, DepLabel::Det) {
            if matches!(tree.text(det), "what" | "which") {
                flags.answer_marker = true;
            }
        }
        // Counting marker: amod "many" (itself carrying advmod "how").
        for amod in tree.children_with_label(head, DepLabel::Amod) {
            if tree.text(amod) == "many"
                && tree
                    .children_with_label(amod, DepLabel::Advmod)
                    .any(|a| tree.text(a) == "how")
            {
                flags.counting = true;
            }
        }

        // "kind of X": delegate to X.
        if KIND_NOUNS.contains(&head_lemma.as_str()) {
            if let Some(nmod) = tree.child_with_label(head, DepLabel::Nmod) {
                let (inner, inner_flags) = self.render_np(tree, nmod);
                flags.asks_kind = true;
                flags.counting |= inner_flags.counting;
                flags.possessive = inner_flags.possessive;
                return (
                    NounPhrase {
                        phrase: format!("{head_lemma} of {}", inner.phrase),
                        head: inner.head,
                    },
                    flags,
                );
            }
        }

        // Possessive: relational head + nmod:poss owner → KG sub-query.
        if let Some(owner) = tree.child_with_label(head, DepLabel::NmodPoss) {
            let owner_phrase = self.render_flat(tree, owner);
            if RELATIONAL_NOUNS.contains(&head_lemma.as_str()) {
                flags.possessive = Some((format!("{head_lemma} of"), owner_phrase.clone()));
            }
            return (
                NounPhrase {
                    phrase: format!("{owner_phrase}'s {head_lemma}"),
                    head: head_lemma,
                },
                flags,
            );
        }
        // "Y of X" relational form ("owner of the dog").
        if RELATIONAL_NOUNS.contains(&head_lemma.as_str()) {
            if let Some(nmod) = tree.child_with_label(head, DepLabel::Nmod) {
                let owner_phrase = self.render_flat(tree, nmod);
                flags.possessive = Some((format!("{head_lemma} of"), owner_phrase.clone()));
                return (
                    NounPhrase {
                        phrase: format!("{head_lemma} of {owner_phrase}"),
                        head: head_lemma,
                    },
                    flags,
                );
            }
        }

        // Plain NP: compounds + adjectives + head (+ "of" complement).
        // Compound names ("ginny weasley") must render fully so exact label
        // matching in the merged graph works.
        let mut part_tokens: Vec<usize> = tree
            .children_with_label(head, DepLabel::Compound)
            .chain(
                tree.children_with_label(head, DepLabel::Amod)
                    .filter(|&a| tree.text(a) != "many"),
            )
            .collect();
        part_tokens.sort_unstable();
        let mut parts: Vec<String> =
            part_tokens.iter().map(|&t| tree.text(t).to_owned()).collect();
        parts.push(head_lemma.clone());
        let mut phrase = parts.join(" ");
        let head_lemma = if part_tokens.iter().any(|&t| tree.tag(t).is_noun()) {
            // A compound name's "head" for matching purposes is the whole
            // name (its last word alone is meaningless).
            phrase.clone()
        } else {
            head_lemma
        };
        if let Some(nmod) = tree.child_with_label(head, DepLabel::Nmod) {
            let (inner, _) = self.render_np(tree, nmod);
            phrase = format!("{phrase} of {}", inner.phrase);
        }
        (
            NounPhrase {
                phrase,
                head: head_lemma,
            },
            flags,
        )
    }

    /// Flat rendering of a compound name ("harry potter").
    fn render_flat(&self, tree: &DepTree, head: usize) -> String {
        let mut tokens: Vec<usize> = tree
            .children_with_label(head, DepLabel::Compound)
            .collect();
        tokens.push(head);
        tokens.sort_unstable();
        tokens
            .into_iter()
            .map(|t| tree.text(t))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// Per-NP markers found during rendering.
#[derive(Debug, Clone, Default)]
struct NpFlags {
    answer_marker: bool,
    counting: bool,
    asks_kind: bool,
    /// `(relation, owner phrase)` for relational possessives.
    possessive: Option<(String, String)>,
}

/// Auxiliary SPOC for a possessive expansion: `⟨*, relation, owner⟩`,
/// answered on the subject side.
fn possessive_spoc(relation: &str, owner: &str) -> Spoc {
    Spoc {
        subject: NounPhrase::default(),
        predicate: relation.to_owned(),
        object: NounPhrase::simple(owner),
        ..Spoc::default()
    }
}

/// The case phrase of an oblique, with `fixed` continuations joined
/// ("in front of").
fn case_phrase(tree: &DepTree, obl: usize) -> Option<String> {
    let case = tree.child_with_label(obl, DepLabel::Case)?;
    let mut tokens: Vec<usize> = vec![case];
    tokens.extend(tree.children_with_label(case, DepLabel::Fixed));
    tokens.sort_unstable();
    Some(
        tokens
            .into_iter()
            .map(|t| tree.text(t))
            .collect::<Vec<_>>()
            .join(" "),
    )
}

/// Constraint adverbials: the joined non-particle advmod span of the verb,
/// kept only when it contains a constraint keyword.
fn extract_constraint(tree: &DepTree, verb: usize) -> Option<String> {
    let mut tokens: Vec<usize> = Vec::new();
    for adv in tree.children_with_label(verb, DepLabel::Advmod) {
        if PARTICLES.contains(&tree.text(adv)) || tree.tag(adv) == PosTag::WRB {
            continue;
        }
        for sub in tree.children_with_label(adv, DepLabel::Advmod) {
            tokens.push(sub);
        }
        tokens.push(adv);
    }
    if tokens.is_empty() {
        return None;
    }
    tokens.sort_unstable();
    let text = tokens
        .iter()
        .map(|&t| tree.text(t))
        .collect::<Vec<_>>()
        .join(" ");
    const KEYWORDS: [&str; 5] = ["most", "least", "exactly", "at least", "at most"];
    KEYWORDS
        .iter()
        .any(|k| text.contains(k))
        .then_some(text)
}

/// Role of a head lemma inside a SPOC, if mentioned.
fn role_of(spoc: &Spoc, head: &str) -> Option<AnswerRole> {
    if spoc.subject.head == head {
        Some(AnswerRole::Subject)
    } else if spoc.object.head == head {
        Some(AnswerRole::Object)
    } else {
        None
    }
}

/// Map `(consumer role, provider role)` to the edge label (Algorithm 3's
/// table convention).
fn dependency_of(consumer: AnswerRole, provider: AnswerRole) -> Dependency {
    match (consumer, provider) {
        (AnswerRole::Subject, AnswerRole::Subject) => Dependency::S2S,
        (AnswerRole::Subject, AnswerRole::Object) => Dependency::S2O,
        (AnswerRole::Object, AnswerRole::Subject) => Dependency::O2S,
        (AnswerRole::Object, AnswerRole::Object) => Dependency::O2O,
    }
}

/// Question-type detection: "how many" → counting; sentence-initial
/// auxiliary → judgment; otherwise reasoning.
fn detect_question_type(tree: &DepTree) -> QuestionType {
    for i in 0..tree.len().saturating_sub(1) {
        if tree.text(i) == "how" && tree.text(i + 1) == "many" {
            return QuestionType::Counting;
        }
    }
    if !tree.is_empty()
        && matches!(
            tree.text(0),
            "do" | "does" | "did" | "is" | "are" | "was" | "were"
        )
    {
        return QuestionType::Judgment;
    }
    QuestionType::Reasoning
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generate(q: &str) -> QueryGraph {
        QueryGraphGenerator::new()
            .generate(q)
            .unwrap_or_else(|e| panic!("generate failed for {q:?}: {e}"))
    }

    #[test]
    fn example1_full_question() {
        // The running example of the paper (Example 1 / Figure 4).
        let g = generate(
            "What kind of clothes are worn by the wizard who is most frequently hanging out with Harry Potter's girlfriend?",
        );
        assert_eq!(g.question_type, QuestionType::Reasoning);
        // Three vertices: main clause, relative clause, possessive aux.
        assert_eq!(g.len(), 3, "{:#?}", g.vertices);

        let main = &g.vertices[0];
        assert_eq!(main.subject.head, "wizard");
        assert_eq!(main.predicate, "wear");
        assert_eq!(main.object.head, "clothes");
        assert_eq!(main.object.phrase, "kind of clothes");
        assert!(main.asks_kind);
        assert_eq!(main.answer_role, Some(AnswerRole::Object));

        let rel = &g.vertices[1];
        assert_eq!(rel.subject.head, "wizard");
        assert_eq!(rel.predicate, "hang out with");
        assert_eq!(rel.object.head, "girlfriend");
        assert_eq!(rel.constraint.as_deref(), Some("most frequently"));

        let aux = &g.vertices[2];
        assert!(aux.subject.is_empty());
        assert_eq!(aux.predicate, "girlfriend of");
        assert_eq!(aux.object.phrase, "harry potter");

        // Edges: aux → rel (O2S: rel's object ← aux's subject answers),
        // rel → main (S2S on the shared "wizard").
        assert_eq!(g.edges.len(), 2, "{:?}", g.edges);
        assert!(g.edges.contains(&QueryEdge {
            provider: 2,
            consumer: 1,
            dependency: Dependency::O2S
        }));
        assert!(g.edges.contains(&QueryEdge {
            provider: 1,
            consumer: 0,
            dependency: Dependency::S2S
        }));
        // Execution: aux first, then rel, then main.
        assert_eq!(g.execution_order(), Some(vec![2, 1, 0]));
    }

    #[test]
    fn example7_two_clause_question() {
        // Figure 7: "What kind of animals is carried by the pets that were
        // situated in the car?"
        let g = generate("What kind of animals is carried by the pets that were situated in the car?");
        assert_eq!(g.len(), 2);
        let main = &g.vertices[0];
        assert_eq!(main.subject.head, "pet");
        assert_eq!(main.predicate, "carry");
        assert_eq!(main.object.head, "animal");
        assert!(main.asks_kind);
        let rel = &g.vertices[1];
        assert_eq!(rel.subject.head, "pet");
        assert_eq!(rel.predicate, "situated in");
        assert_eq!(rel.object.head, "car");
        assert_eq!(
            g.edges,
            vec![QueryEdge {
                provider: 1,
                consumer: 0,
                dependency: Dependency::S2S
            }]
        );
    }

    #[test]
    fn judgment_question() {
        let g = generate("Does the dog that is sitting on the bed appear in front of the tv?");
        assert_eq!(g.question_type, QuestionType::Judgment);
        assert_eq!(g.len(), 2);
        let main = &g.vertices[0];
        assert_eq!(main.subject.head, "dog");
        assert_eq!(main.predicate, "in front of");
        assert_eq!(main.object.head, "tv");
        assert_eq!(main.answer_role, None);
        let rel = &g.vertices[1];
        assert_eq!(rel.predicate, "sitting on");
        assert_eq!(rel.object.head, "bed");
    }

    #[test]
    fn counting_question() {
        let g = generate("How many dogs are sitting on the grass near the man?");
        assert_eq!(g.question_type, QuestionType::Counting);
        let main = &g.vertices[0];
        assert_eq!(main.subject.head, "dog");
        assert_eq!(main.answer_role, Some(AnswerRole::Subject));
        assert_eq!(main.predicate, "sitting on");
        assert_eq!(main.object.head, "grass");
    }

    #[test]
    fn single_clause_reasoning() {
        let g = generate("What kind of animals is carried by the dog?");
        assert_eq!(g.len(), 1);
        let v = &g.vertices[0];
        assert_eq!(v.subject.head, "dog");
        assert_eq!(v.predicate, "carry");
        assert_eq!(v.object.head, "animal");
        assert!(g.edges.is_empty());
        assert_eq!(g.answer_vertex(), 0);
    }

    #[test]
    fn stative_passive_subject_is_patient() {
        let g = generate("Which pets were situated in the car?");
        let v = &g.vertices[0];
        assert_eq!(v.subject.head, "pet");
        assert_eq!(v.predicate, "situated in");
        assert_eq!(v.object.head, "car");
        assert_eq!(v.answer_role, Some(AnswerRole::Subject));
    }

    #[test]
    fn three_clause_chain() {
        let g = generate(
            "What kind of clothes are worn by the wizard who is watching the dog that is sitting on the grass?",
        );
        assert_eq!(g.len(), 3);
        let order = g.execution_order().unwrap();
        // Innermost (sitting) first, main (worn) last.
        assert_eq!(*order.last().unwrap(), 0);
        // All three question clauses connected.
        assert_eq!(g.edges.len(), 2);
    }

    #[test]
    fn conjoined_judgment_clauses() {
        // "Combining two related simple questions into a complex question"
        // (the paper's modified-VQAv2 construction).
        let g = generate("Does the dog appear in the car and does the man appear near the bus?");
        assert_eq!(g.question_type, QuestionType::Judgment);
        assert_eq!(g.len(), 2, "{:#?}", g.vertices);
        let heads: Vec<(&str, &str, &str)> = g
            .vertices
            .iter()
            .map(|v| (v.subject.head.as_str(), v.predicate.as_str(), v.object.head.as_str()))
            .collect();
        assert!(heads.contains(&("dog", "in", "car")), "{heads:?}");
        assert!(heads.contains(&("man", "near", "bus")), "{heads:?}");
        // Independent conjuncts: no dependency edges.
        assert!(g.edges.is_empty(), "{:?}", g.edges);
    }

    #[test]
    fn foreign_word_degrades_parse() {
        // Fig. 8a: "canis" → FW. The SPOC survives but with a degraded
        // subject (the FW token is invisible to NP extraction), or the
        // parse fails outright — either way the pipeline yields a query
        // that cannot match the intended vertex.
        let result = QueryGraphGenerator::new()
            .generate("Does the kind of canis that is sitting on the bed appear in front of the vehicle?");
        #[allow(clippy::single_match)]
        match result {
            Ok(g) => {
                let heads: Vec<_> = g
                    .vertices
                    .iter()
                    .flat_map(|v| [v.subject.head.clone(), v.object.head.clone()])
                    .collect();
                assert!(
                    !heads.contains(&"canis".to_owned()),
                    "FW token should not survive as an NP head: {heads:?}"
                );
            }
            Err(_) => {} // also an acceptable degradation
        }
    }

    #[test]
    fn constraint_absent_when_no_keyword() {
        let g = generate("What kind of clothes are worn by the wizard?");
        assert_eq!(g.vertices[0].constraint, None);
    }

    #[test]
    fn unparseable_input_is_error() {
        let r = QueryGraphGenerator::new().generate("the red dog");
        assert!(matches!(r, Err(QueryParseError::Nlp(_))));
    }

    #[test]
    fn clause_count_statistics() {
        // MVQA averages 2.2 clauses; sanity-check the generator counts
        // clauses the way Table II does.
        let one = generate("How many dogs are sitting on the grass?");
        assert_eq!(one.len(), 1);
        let two = generate("What kind of animals is carried by the pets that were situated in the car?");
        assert_eq!(two.len(), 2);
    }
}
