//! SPOC quadruples and noun-phrase rendering.
//!
//! §II: "The SPOC is a quadruple abstract structure whose subject, predict,
//! object, and constraint are denoted by `v_s`, `v_p`, `v_o`, and `v_c`".

use serde::{Deserialize, Serialize};

/// Which SPOC slot carries the question's answer variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AnswerRole {
    /// The subject is asked for.
    Subject,
    /// The object is asked for.
    Object,
}

/// A rendered noun phrase: the full surface phrase plus its lemmatized head
/// noun (what `matchVertex` keys on — "for non-simple nouns, the function
/// obtains its main noun", §V-A).
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct NounPhrase {
    /// Full phrase in lemma-normalized form, e.g. "kind of clothes",
    /// "harry potter's girlfriend".
    pub phrase: String,
    /// The lemmatized main noun, e.g. "clothes" → "clothing"-head "clothes";
    /// for "kind of X" phrases this is X's head (the aggregator word "kind"
    /// asks for the matched vertex's label, it is not itself an entity).
    pub head: String,
}

impl NounPhrase {
    /// A phrase made of a bare head noun.
    pub fn simple(head: impl Into<String>) -> Self {
        let head = head.into();
        NounPhrase {
            phrase: head.clone(),
            head,
        }
    }

    /// Whether the phrase is empty (missing SPOC slot).
    pub fn is_empty(&self) -> bool {
        self.head.is_empty()
    }
}

/// A SPOC quadruple — one vertex of the query graph.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Spoc {
    /// `c_s` — the (voice-normalized, semantic) subject.
    pub subject: NounPhrase,
    /// `c_p` — the predicate, lemmatized ("are worn" → "wear"); phrasal
    /// particles are kept ("hang out").
    pub predicate: String,
    /// `c_o` — the object.
    pub object: NounPhrase,
    /// `c_c` — the constraint, when present ("most frequently").
    pub constraint: Option<String>,
    /// Which slot the question asks for, if this clause carries the
    /// answer variable.
    pub answer_role: Option<AnswerRole>,
    /// Whether the answer asks for the *category* of the matched entity
    /// ("what kind of ...") rather than its identity.
    pub asks_kind: bool,
}

impl Spoc {
    /// Human-readable `⟨s, p, o, c⟩` rendering for logs and examples.
    pub fn display(&self) -> String {
        match &self.constraint {
            Some(c) => format!(
                "⟨{}, {}, {}, {}⟩",
                self.subject.phrase, self.predicate, self.object.phrase, c
            ),
            None => format!(
                "⟨{}, {}, {}⟩",
                self.subject.phrase, self.predicate, self.object.phrase
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_phrase() {
        let np = NounPhrase::simple("dog");
        assert_eq!(np.phrase, "dog");
        assert_eq!(np.head, "dog");
        assert!(!np.is_empty());
        assert!(NounPhrase::default().is_empty());
    }

    #[test]
    fn display_with_and_without_constraint() {
        let mut spoc = Spoc {
            subject: NounPhrase::simple("wizard"),
            predicate: "hang out".into(),
            object: NounPhrase::simple("girlfriend"),
            ..Spoc::default()
        };
        assert_eq!(spoc.display(), "⟨wizard, hang out, girlfriend⟩");
        spoc.constraint = Some("most frequently".into());
        assert_eq!(spoc.display(), "⟨wizard, hang out, girlfriend, most frequently⟩");
    }
}
