//! # svqa-qparser
//!
//! The Query Graph Generator of the SVQA reproduction (§IV, Algorithm 2):
//! transforms a complex natural-language question `Q` into a query graph
//! `G_q` — a DAG of SPOC quadruples (subject, predicate, object,
//! constraint) whose edges encode how sub-query answers flow into later
//! sub-queries.
//!
//! Pipeline (Algorithm 2):
//! 1. **Initial stage** — POS-tag the question and build its dependency
//!    tree (`svqa-nlp`).
//! 2. **Parse stage** — segment clauses around content verbs and run the
//!    SPOC extraction state machine over each clause ([`spoc`]): passive
//!    voice is normalized to active ("are worn" → "wear"), relative
//!    pronouns are replenished with their antecedents via the `acl` edge,
//!    and constraint adverbials ("most frequently") become `c_c`.
//! 3. **Connect stage** — vertices that share a noun phrase get a directed
//!    dependency edge ([`qgraph::Dependency`]); inner (more deeply
//!    embedded) clauses point at the clauses that consume their answers.
//!
//! Note on edge naming: the paper's Fig. 4 prose calls its example edge
//! "S2S" while its own Algorithm 3 replacement table (`S2O ⇒
//! Replace(v'.c_s, AP.Obj)` etc.) fixes the convention *consumer role ←
//! provider side*. We follow the table: the first letter names the
//! consumer's SPOC slot being replaced, the second the provider's answer
//! side being written into it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod clause;
pub mod generator;
pub mod qgraph;
pub mod spoc;

pub use builder::{BuildError, QueryBuilder};
pub use generator::{QueryGraphGenerator, QueryParseError};
pub use qgraph::{Dependency, QueryEdge, QueryGraph, QuestionType};
pub use spoc::{AnswerRole, NounPhrase, Spoc};
