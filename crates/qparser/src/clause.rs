//! Clause segmentation (Algorithm 2 parse stage, first half).
//!
//! §IV-B: clauses are found through their predicates — "we first find all
//! the verbs in the sentence and then obtain the words that have the edges
//! with the verbs in the DT". A clause is identified by its content verb;
//! relative clauses carry their antecedent (the noun their verb's
//! `acl:relcl` arc points at) and a nesting depth.

use serde::{Deserialize, Serialize};
use svqa_nlp::dep::{DepLabel, DepTree};

/// One segmented clause.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clause {
    /// Token index of the clause's content verb.
    pub verb: usize,
    /// Nesting depth: 0 for the main clause, +1 per `acl:relcl` hop.
    pub depth: usize,
    /// Token index of the antecedent noun, for relative clauses.
    pub antecedent: Option<usize>,
}

/// Segment a dependency tree into clauses, main clause first, then by
/// increasing depth (stable within a depth level by verb position).
pub fn segment(tree: &DepTree) -> Vec<Clause> {
    let mut clauses = Vec::new();
    let root = tree.root();
    clauses.push(Clause {
        verb: root,
        depth: 0,
        antecedent: None,
    });
    // Relative clauses: verbs attached with acl:relcl; their antecedent is
    // their head noun. Depth = depth of the clause the antecedent belongs
    // to + 1, resolved by walking up the tree.
    let mut rel_verbs: Vec<usize> = (0..tree.len())
        .filter(|&i| tree.label_of(i) == DepLabel::AclRelcl && tree.tag(i).is_verb())
        .collect();
    rel_verbs.sort_unstable();
    for v in rel_verbs {
        let antecedent = tree.head_of(v);
        let depth = acl_depth(tree, v);
        clauses.push(Clause {
            verb: v,
            depth,
            antecedent,
        });
    }
    // Coordinated clauses ("... and ...") run at the main level, as do
    // stray second verbs the parser attached as `dep`.
    for i in 0..tree.len() {
        if (tree.label_of(i) == DepLabel::Conj
            || (tree.label_of(i) == DepLabel::Dep && tree.tag(i).is_verb()))
            && tree.tag(i).is_verb()
            && tree.head_of(i) == Some(root)
            && !has_aux_to(tree, i, root)
        {
            clauses.push(Clause {
                verb: i,
                depth: 0,
                antecedent: None,
            });
        }
    }
    clauses.sort_by_key(|c| (c.depth, c.verb));
    clauses
}

/// Number of `acl:relcl` arcs on the path from `v` to the root.
fn acl_depth(tree: &DepTree, mut v: usize) -> usize {
    let mut depth = 0;
    let mut hops = 0;
    loop {
        if tree.label_of(v) == DepLabel::AclRelcl {
            depth += 1;
        }
        match tree.head_of(v) {
            Some(h) => v = h,
            None => break,
        }
        hops += 1;
        if hops > tree.len() {
            break; // defensive: validate() makes this unreachable
        }
    }
    depth
}

/// Whether token `i` is an auxiliary of `head` (guards against counting a
/// stray auxiliary as a conjoined clause).
fn has_aux_to(tree: &DepTree, i: usize, head: usize) -> bool {
    tree.head_of(i) == Some(head)
        && matches!(tree.label_of(i), DepLabel::Aux | DepLabel::AuxPass)
}

/// The token span loosely belonging to a clause: the verb's yield (all
/// descendants), excluding nested relative clauses. Used for the Fig. 4(b)
/// style clause rendering.
pub fn clause_tokens(tree: &DepTree, verb: usize) -> Vec<usize> {
    let mut members = Vec::new();
    collect(tree, verb, verb, &mut members);
    members.sort_unstable();
    members
}

fn collect(tree: &DepTree, node: usize, clause_verb: usize, out: &mut Vec<usize>) {
    out.push(node);
    for child in tree.children_of(node) {
        // A nested relative clause belongs to its own segment.
        if tree.label_of(child) == DepLabel::AclRelcl && child != clause_verb {
            continue;
        }
        collect(tree, child, clause_verb, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svqa_nlp::{PosTagger, RuleDependencyParser};

    fn parse(q: &str) -> DepTree {
        RuleDependencyParser::new()
            .parse(&PosTagger::new().tag(q))
            .unwrap()
    }

    #[test]
    fn single_clause() {
        let t = parse("the dog catches the frisbee");
        let cs = segment(&t);
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].depth, 0);
        assert_eq!(t.text(cs[0].verb), "catches");
    }

    #[test]
    fn two_clauses_with_antecedent() {
        let t = parse("What kind of animals is carried by the pets that were situated in the car?");
        let cs = segment(&t);
        assert_eq!(cs.len(), 2);
        assert_eq!(t.text(cs[0].verb), "carried");
        assert_eq!(cs[0].depth, 0);
        assert_eq!(t.text(cs[1].verb), "situated");
        assert_eq!(cs[1].depth, 1);
        assert_eq!(t.text(cs[1].antecedent.unwrap()), "pets");
    }

    #[test]
    fn three_level_nesting() {
        let t = parse(
            "What kind of clothes are worn by the wizard who is watching the dog that is sitting on the grass?",
        );
        let cs = segment(&t);
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[0].depth, 0);
        assert_eq!(cs[1].depth, 1);
        assert_eq!(cs[2].depth, 2);
        assert_eq!(t.text(cs[2].verb), "sitting");
        assert_eq!(t.text(cs[2].antecedent.unwrap()), "dog");
    }

    #[test]
    fn clause_tokens_exclude_nested_relatives() {
        let t = parse("What kind of animals is carried by the pets that were situated in the car?");
        let cs = segment(&t);
        let main_tokens = clause_tokens(&t, cs[0].verb);
        let texts: Vec<_> = main_tokens.iter().map(|&i| t.text(i)).collect();
        assert!(texts.contains(&"carried"));
        assert!(texts.contains(&"pets"));
        assert!(!texts.contains(&"situated"));
        assert!(!texts.contains(&"car"));
        let rel_tokens = clause_tokens(&t, cs[1].verb);
        let rel_texts: Vec<_> = rel_tokens.iter().map(|&i| t.text(i)).collect();
        assert!(rel_texts.contains(&"situated"));
        assert!(rel_texts.contains(&"car"));
    }

    #[test]
    fn clauses_sorted_by_depth_then_position() {
        let t = parse(
            "What kind of clothes are worn by the wizard who is watching the dog that is sitting on the grass?",
        );
        let cs = segment(&t);
        for w in cs.windows(2) {
            assert!(w[0].depth <= w[1].depth);
        }
    }
}
