//! Programmatic query construction.
//!
//! Natural language is one front-end to the query engine; applications
//! embedding SVQA (the paper's data-lake motivation, §I) often know their
//! query structurally. [`QueryBuilder`] assembles the same query graphs
//! Algorithm 2 produces, without going through the NLP stack — handy for
//! tests, for programmatic clients, and for replaying the structured specs
//! the dataset generator stores.
//!
//! ```
//! use svqa_qparser::builder::QueryBuilder;
//! use svqa_qparser::{Dependency, QuestionType};
//!
//! // "What kind of clothes are worn by the wizard who is most frequently
//! //  hanging out with Harry Potter's girlfriend?"
//! let gq = QueryBuilder::reasoning()
//!     .clause("wizard", "wearing", "clothes")
//!     .asks_kind_of_object()
//!     .clause("wizard", "near", "girlfriend")
//!     .constraint("most frequently")
//!     .wildcard_subject_clause("girlfriend of", "harry potter")
//!     .depend(2, 1, Dependency::O2S)
//!     .depend(1, 0, Dependency::S2S)
//!     .build()
//!     .unwrap();
//! assert_eq!(gq.question_type, QuestionType::Reasoning);
//! assert_eq!(gq.len(), 3);
//! ```

use crate::qgraph::{Dependency, QueryEdge, QueryGraph, QuestionType};
use crate::spoc::{AnswerRole, NounPhrase, Spoc};
use std::fmt;

/// Errors from building a query graph by hand.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// No clauses were added.
    Empty,
    /// A dependency edge references a clause index that does not exist.
    UnknownClause(usize),
    /// The dependency edges form a cycle.
    Cyclic,
    /// A modifier was applied before any clause existed.
    NoCurrentClause,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Empty => write!(f, "query has no clauses"),
            BuildError::UnknownClause(i) => write!(f, "dependency references unknown clause {i}"),
            BuildError::Cyclic => write!(f, "dependency edges form a cycle"),
            BuildError::NoCurrentClause => write!(f, "modifier applied before any clause"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Fluent builder for [`QueryGraph`]s.
#[derive(Debug, Clone)]
pub struct QueryBuilder {
    question_type: QuestionType,
    vertices: Vec<Spoc>,
    edges: Vec<QueryEdge>,
    description: String,
}

impl QueryBuilder {
    /// Start a reasoning query (entity answer).
    pub fn reasoning() -> Self {
        Self::new(QuestionType::Reasoning)
    }

    /// Start a judgment query (yes/no answer).
    pub fn judgment() -> Self {
        Self::new(QuestionType::Judgment)
    }

    /// Start a counting query (numeric answer).
    pub fn counting() -> Self {
        Self::new(QuestionType::Counting)
    }

    fn new(question_type: QuestionType) -> Self {
        QueryBuilder {
            question_type,
            vertices: Vec::new(),
            edges: Vec::new(),
            description: String::new(),
        }
    }

    /// Add a clause `⟨subject, predicate, object⟩`. The first clause added
    /// is the answer clause (query-graph vertex 0).
    pub fn clause(mut self, subject: &str, predicate: &str, object: &str) -> Self {
        self.vertices.push(Spoc {
            subject: NounPhrase::simple(subject),
            predicate: predicate.to_owned(),
            object: NounPhrase::simple(object),
            ..Spoc::default()
        });
        self
    }

    /// Add a clause with a wildcard subject (`⟨*, predicate, object⟩`) —
    /// the shape of knowledge-graph sub-queries like
    /// `⟨*, girlfriend of, harry potter⟩`.
    pub fn wildcard_subject_clause(mut self, predicate: &str, object: &str) -> Self {
        self.vertices.push(Spoc {
            subject: NounPhrase::default(),
            predicate: predicate.to_owned(),
            object: NounPhrase::simple(object),
            ..Spoc::default()
        });
        self
    }

    /// Attach a constraint ("most frequently", …) to the last clause.
    pub fn constraint(mut self, constraint: &str) -> Self {
        if let Some(last) = self.vertices.last_mut() {
            last.constraint = Some(constraint.to_owned());
        }
        self
    }

    /// Mark the last clause's subject as the answer variable.
    pub fn answer_is_subject(mut self) -> Self {
        if let Some(last) = self.vertices.last_mut() {
            last.answer_role = Some(AnswerRole::Subject);
        }
        self
    }

    /// Mark the last clause's object as the answer variable.
    pub fn answer_is_object(mut self) -> Self {
        if let Some(last) = self.vertices.last_mut() {
            last.answer_role = Some(AnswerRole::Object);
        }
        self
    }

    /// Mark the last clause as asking for the *kind* of its object
    /// ("what kind of clothes …").
    pub fn asks_kind_of_object(mut self) -> Self {
        if let Some(last) = self.vertices.last_mut() {
            last.answer_role = Some(AnswerRole::Object);
            last.asks_kind = true;
        }
        self
    }

    /// Add a dependency edge: `provider`'s answers flow into `consumer`'s
    /// slot per `dependency` (Algorithm 3's table convention).
    pub fn depend(mut self, provider: usize, consumer: usize, dependency: Dependency) -> Self {
        self.edges.push(QueryEdge {
            provider,
            consumer,
            dependency,
        });
        self
    }

    /// Set the human-readable description stored on the graph.
    pub fn describe(mut self, text: &str) -> Self {
        self.description = text.to_owned();
        self
    }

    /// Validate and produce the query graph.
    pub fn build(self) -> Result<QueryGraph, BuildError> {
        if self.vertices.is_empty() {
            return Err(BuildError::Empty);
        }
        for e in &self.edges {
            if e.provider >= self.vertices.len() {
                return Err(BuildError::UnknownClause(e.provider));
            }
            if e.consumer >= self.vertices.len() {
                return Err(BuildError::UnknownClause(e.consumer));
            }
        }
        let gq = QueryGraph {
            vertices: self.vertices,
            edges: self.edges,
            question_type: self.question_type,
            question: self.description,
        };
        if gq.execution_order().is_none() {
            return Err(BuildError::Cyclic);
        }
        Ok(gq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_chain() {
        let gq = QueryBuilder::counting()
            .clause("dog", "near", "man")
            .answer_is_subject()
            .clause("dog", "on", "grass")
            .depend(1, 0, Dependency::S2S)
            .describe("how many dogs on the grass are near the man")
            .build()
            .unwrap();
        assert_eq!(gq.len(), 2);
        assert_eq!(gq.execution_order(), Some(vec![1, 0]));
        assert_eq!(gq.answer_vertex(), 0);
        assert_eq!(gq.question, "how many dogs on the grass are near the man");
    }

    #[test]
    fn empty_build_fails() {
        assert_eq!(QueryBuilder::judgment().build(), Err(BuildError::Empty));
    }

    #[test]
    fn unknown_clause_reference_fails() {
        let err = QueryBuilder::judgment()
            .clause("dog", "in", "car")
            .depend(3, 0, Dependency::S2S)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::UnknownClause(3));
    }

    #[test]
    fn cycles_are_rejected() {
        let err = QueryBuilder::judgment()
            .clause("dog", "in", "car")
            .clause("dog", "on", "grass")
            .depend(0, 1, Dependency::S2S)
            .depend(1, 0, Dependency::S2S)
            .build()
            .unwrap_err();
        assert_eq!(err, BuildError::Cyclic);
    }

    #[test]
    fn modifiers_apply_to_last_clause() {
        let gq = QueryBuilder::reasoning()
            .clause("wizard", "wearing", "clothes")
            .asks_kind_of_object()
            .clause("wizard", "near", "girl")
            .constraint("most frequently")
            .build()
            .unwrap();
        assert!(gq.vertices[0].asks_kind);
        assert_eq!(gq.vertices[1].constraint.as_deref(), Some("most frequently"));
        assert_eq!(gq.vertices[0].constraint, None);
    }

    #[test]
    fn builder_matches_nlp_parse_semantics() {
        // The builder graph for the Fig. 7 question should execute like the
        // NLP-parsed one: same vertex count and answer structure.
        let nlp = crate::QueryGraphGenerator::new()
            .generate("What kind of animals is carried by the pets that were situated in the car?")
            .unwrap();
        let built = QueryBuilder::reasoning()
            .clause("pet", "carry", "animal")
            .asks_kind_of_object()
            .clause("pet", "situated in", "car")
            .depend(1, 0, Dependency::S2S)
            .build()
            .unwrap();
        assert_eq!(nlp.len(), built.len());
        assert_eq!(nlp.edges.len(), built.edges.len());
        assert_eq!(nlp.vertices[0].subject.head, built.vertices[0].subject.head);
    }
}
