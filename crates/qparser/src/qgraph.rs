//! The query graph `G_q` (Definition 3).

use crate::spoc::Spoc;
use serde::{Deserialize, Serialize};

/// The five dependency kinds of §IV-C (NULL = no edge). Naming follows
/// Algorithm 3's replacement table: `X2Y` means the *consumer's* slot `X`
/// is replaced by the *provider's* answer side `Y`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dependency {
    /// Consumer subject ← provider subject answers.
    S2S,
    /// Consumer subject ← provider object answers.
    S2O,
    /// Consumer object ← provider subject answers.
    O2S,
    /// Consumer object ← provider object answers.
    O2O,
}

impl Dependency {
    /// The label as printed in the paper.
    pub fn as_str(self) -> &'static str {
        match self {
            Dependency::S2S => "S2S",
            Dependency::S2O => "S2O",
            Dependency::O2S => "O2S",
            Dependency::O2O => "O2O",
        }
    }
}

/// The three question types of §V / §VI ("counting, reasoning, and judgment
/// questions following [OK-VQA]").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QuestionType {
    /// Yes/no answer.
    Judgment,
    /// Numeric answer.
    Counting,
    /// Entity answer.
    Reasoning,
}

impl QuestionType {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            QuestionType::Judgment => "Judgment",
            QuestionType::Counting => "Counting",
            QuestionType::Reasoning => "Reasoning",
        }
    }
}

/// A directed dependency edge `provider → consumer`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryEdge {
    /// Vertex whose answers flow out (executed first).
    pub provider: usize,
    /// Vertex that consumes the answers.
    pub consumer: usize,
    /// Which slots are connected.
    pub dependency: Dependency,
}

/// The query graph: SPOC vertices plus dependency edges. Vertices are
/// stored in clause discovery order; execution order is derived from the
/// edges (providers first).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryGraph {
    /// SPOC vertices.
    pub vertices: Vec<Spoc>,
    /// Dependency edges.
    pub edges: Vec<QueryEdge>,
    /// Question type.
    pub question_type: QuestionType,
    /// The original question text.
    pub question: String,
}

impl QueryGraph {
    /// Number of vertices (clauses).
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }

    /// Vertices with in-degree 0 — Algorithm 3's start vertices.
    pub fn start_vertices(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&v| !self.edges.iter().any(|e| e.consumer == v))
            .collect()
    }

    /// Out-edges of a vertex.
    pub fn out_edges(&self, v: usize) -> impl Iterator<Item = &QueryEdge> {
        self.edges.iter().filter(move |e| e.provider == v)
    }

    /// In-edges of a vertex.
    pub fn in_edges(&self, v: usize) -> impl Iterator<Item = &QueryEdge> {
        self.edges.iter().filter(move |e| e.consumer == v)
    }

    /// Topological execution order (providers before consumers). Returns
    /// `None` if the dependency edges form a cycle (cannot happen for
    /// generator-produced graphs; guarded for hand-built ones).
    pub fn execution_order(&self) -> Option<Vec<usize>> {
        let n = self.len();
        let mut indegree = vec![0usize; n];
        for e in &self.edges {
            indegree[e.consumer] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&v| indegree[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(v) = queue.pop() {
            order.push(v);
            for e in self.out_edges(v) {
                indegree[e.consumer] -= 1;
                if indegree[e.consumer] == 0 {
                    queue.push(e.consumer);
                }
            }
        }
        (order.len() == n).then_some(order)
    }

    /// The vertex carrying the answer variable: the one with an
    /// `answer_role`, defaulting to the last vertex in execution order.
    pub fn answer_vertex(&self) -> usize {
        (0..self.len())
            .find(|&v| self.vertices[v].answer_role.is_some())
            .or_else(|| self.execution_order().and_then(|o| o.last().copied()))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spoc::NounPhrase;

    fn spoc(s: &str, p: &str, o: &str) -> Spoc {
        Spoc {
            subject: NounPhrase::simple(s),
            predicate: p.to_owned(),
            object: NounPhrase::simple(o),
            ..Spoc::default()
        }
    }

    fn two_vertex_graph() -> QueryGraph {
        QueryGraph {
            vertices: vec![
                spoc("wizard", "hang out", "girlfriend"),
                spoc("wizard", "wear", "clothes"),
            ],
            edges: vec![QueryEdge {
                provider: 0,
                consumer: 1,
                dependency: Dependency::S2S,
            }],
            question_type: QuestionType::Reasoning,
            question: "test".into(),
        }
    }

    #[test]
    fn start_vertices_have_no_in_edges() {
        let g = two_vertex_graph();
        assert_eq!(g.start_vertices(), vec![0]);
    }

    #[test]
    fn execution_order_respects_dependencies() {
        let g = two_vertex_graph();
        assert_eq!(g.execution_order(), Some(vec![0, 1]));
    }

    #[test]
    fn cycle_detected() {
        let mut g = two_vertex_graph();
        g.edges.push(QueryEdge {
            provider: 1,
            consumer: 0,
            dependency: Dependency::O2O,
        });
        assert_eq!(g.execution_order(), None);
    }

    #[test]
    fn answer_vertex_prefers_marked_vertex() {
        let mut g = two_vertex_graph();
        g.vertices[1].answer_role = Some(crate::spoc::AnswerRole::Object);
        assert_eq!(g.answer_vertex(), 1);
    }

    #[test]
    fn answer_vertex_defaults_to_last_in_order() {
        let g = two_vertex_graph();
        assert_eq!(g.answer_vertex(), 1);
    }

    #[test]
    fn dependency_labels() {
        assert_eq!(Dependency::S2S.as_str(), "S2S");
        assert_eq!(Dependency::O2S.as_str(), "O2S");
        assert_eq!(QuestionType::Counting.name(), "Counting");
    }

    #[test]
    fn three_level_chain_orders_inner_first() {
        let g = QueryGraph {
            vertices: vec![
                spoc("a", "p", "b"),
                spoc("b", "q", "c"),
                spoc("c", "r", "d"),
            ],
            edges: vec![
                QueryEdge { provider: 2, consumer: 1, dependency: Dependency::O2S },
                QueryEdge { provider: 1, consumer: 0, dependency: Dependency::O2S },
            ],
            question_type: QuestionType::Reasoning,
            question: "chain".into(),
        };
        let order = g.execution_order().unwrap();
        assert!(order.iter().position(|&v| v == 2) < order.iter().position(|&v| v == 1));
        assert!(order.iter().position(|&v| v == 1) < order.iter().position(|&v| v == 0));
    }
}
