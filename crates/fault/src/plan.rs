//! The fault plan: what goes wrong, where, and how often.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What kind of fault fires at a site.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The operation fails with a typed error (transient from the caller's
    /// point of view — the retry policy applies).
    Error,
    /// The operation succeeds, but only after the given extra latency in
    /// milliseconds (capped by the caller's deadline, never past it).
    Latency(u64),
    /// The operation "succeeds" but its result is silently dropped — an
    /// empty scan, a missed detection, a cache miss, a reply that never
    /// arrives.
    DropResult,
    /// The operation succeeds with a corrupted label — the scene-graph
    /// corruption mode of Damodaran et al., reproduced deterministically.
    CorruptLabel,
}

impl FaultKind {
    /// Stable lowercase name, for metrics and logs.
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::Error => "error",
            FaultKind::Latency(_) => "latency",
            FaultKind::DropResult => "drop-result",
            FaultKind::CorruptLabel => "corrupt-label",
        }
    }
}

/// One fault rule at one site.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiteFault {
    /// What happens when the rule fires.
    pub kind: FaultKind,
    /// Probability in `[0, 1]` that a given draw at the site fires this
    /// rule. Rules at a site are mutually exclusive per draw (their
    /// probabilities stack cumulatively), so the sum over a site should
    /// stay ≤ 1.
    pub probability: f64,
    /// Stop firing after this many triggers (`None` = unbounded). The rule
    /// still consumes its slice of the probability space afterwards, so
    /// disarming one rule never shifts another rule's sequence.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub max_triggers: Option<u64>,
}

impl SiteFault {
    /// An unbounded rule.
    pub fn new(kind: FaultKind, probability: f64) -> SiteFault {
        SiteFault {
            kind,
            probability,
            max_triggers: None,
        }
    }

    /// A rule that disarms after `n` triggers.
    pub fn limited(kind: FaultKind, probability: f64, n: u64) -> SiteFault {
        SiteFault {
            kind,
            probability,
            max_triggers: Some(n),
        }
    }
}

/// A seeded, fully deterministic description of per-site faults.
///
/// The plan is pure data: install one with [`crate::install`] to arm the
/// injection sites. Every decision derives from `(seed, site, per-site
/// draw counter)`, so the same plan over the same call sequence reproduces
/// the identical fault sequence.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The seed every injection decision derives from.
    pub seed: u64,
    /// Fault rules per site (site names from [`crate::site`]; unknown
    /// names are inert).
    #[serde(default)]
    pub sites: BTreeMap<String, Vec<SiteFault>>,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            sites: BTreeMap::new(),
        }
    }

    /// Builder: add a fault rule at `site`.
    pub fn with_fault(mut self, site: &str, fault: SiteFault) -> FaultPlan {
        self.sites.entry(site.to_owned()).or_default().push(fault);
        self
    }

    /// A plan firing `kind` with the same probability at every listed site.
    pub fn uniform(seed: u64, sites: &[&str], kind: FaultKind, probability: f64) -> FaultPlan {
        let mut plan = FaultPlan::new(seed);
        for s in sites {
            plan = plan.with_fault(s, SiteFault::new(kind, probability));
        }
        plan
    }

    /// No site has any rule.
    pub fn is_empty(&self) -> bool {
        self.sites.values().all(Vec::is_empty)
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("plan serialization is infallible")
    }

    /// Parse from JSON (the `svqa-cli serve --fault-plan FILE` format).
    pub fn from_json(text: &str) -> Result<FaultPlan, serde_json::Error> {
        serde_json::from_str(text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site;

    #[test]
    fn plan_round_trips_through_json() {
        let plan = FaultPlan::new(42)
            .with_fault(site::SOURCE_KG, SiteFault::new(FaultKind::Error, 0.1))
            .with_fault(site::SOURCE_KG, SiteFault::limited(FaultKind::Latency(25), 0.05, 3))
            .with_fault(site::CACHE_GET, SiteFault::new(FaultKind::DropResult, 0.2))
            .with_fault(site::DETECTOR_DETECT, SiteFault::new(FaultKind::CorruptLabel, 0.3));
        let back = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn uniform_covers_all_sites() {
        let plan = FaultPlan::uniform(1, &site::ALL, FaultKind::DropResult, 0.5);
        assert_eq!(plan.sites.len(), site::ALL.len());
        assert!(!plan.is_empty());
        assert!(FaultPlan::new(9).is_empty());
    }

    #[test]
    fn minimal_json_parses_with_defaults() {
        let plan = FaultPlan::from_json(r#"{"seed": 7}"#).unwrap();
        assert_eq!(plan.seed, 7);
        assert!(plan.is_empty());
        let plan = FaultPlan::from_json(
            r#"{"seed": 7, "sites": {"source.kg": [{"kind": "Error", "probability": 0.1}]}}"#,
        )
        .unwrap();
        assert_eq!(plan.sites["source.kg"][0].kind, FaultKind::Error);
        assert_eq!(plan.sites["source.kg"][0].max_triggers, None);
    }
}
