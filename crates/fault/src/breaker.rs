//! Per-source circuit breakers: closed → open after N consecutive faults
//! → half-open probe → closed again.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize, Value};
use std::time::{Duration, Instant};

/// Breaker tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before letting one probe through.
    pub cooldown_ms: u64,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 250,
        }
    }
}

// Manual impl so sparse JSON fills from `Self::default()` rather than the
// per-type zero (a zero failure threshold would trip on the first fault).
impl Deserialize for BreakerConfig {
    fn from_value(v: &Value) -> Result<BreakerConfig, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("BreakerConfig: expected object"))?;
        let mut out = BreakerConfig::default();
        if let Some(x) = obj.get("failure_threshold") {
            out.failure_threshold = Deserialize::from_value(x)?;
        }
        if let Some(x) = obj.get("cooldown_ms") {
            out.cooldown_ms = Deserialize::from_value(x)?;
        }
        Ok(out)
    }
}

/// The three breaker states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Normal operation; failures are being counted.
    Closed,
    /// Tripped: callers are rejected until the cooldown elapses.
    Open,
    /// Cooldown elapsed: exactly one probe call is let through; its
    /// outcome decides between `Closed` and another `Open` round.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name for health payloads and logs.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }

    /// Gauge encoding: closed = 0, half-open = 1, open = 2.
    pub fn gauge_value(self) -> f64 {
        match self {
            BreakerState::Closed => 0.0,
            BreakerState::HalfOpen => 1.0,
            BreakerState::Open => 2.0,
        }
    }
}

/// What [`CircuitBreaker::try_acquire`] decided for this call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquire {
    /// Breaker closed: proceed normally.
    Ready,
    /// Breaker half-open and this caller won the probe slot: proceed, and
    /// report the outcome — it decides whether the breaker recloses.
    Probe,
    /// Breaker open: do not call the source; retry after the hint.
    Rejected {
        /// How long until the breaker will allow a probe.
        retry_after: Duration,
    },
}

#[derive(Debug)]
enum Inner {
    Closed { consecutive: u32 },
    Open { until: Instant },
    HalfOpen,
}

/// A per-source circuit breaker.
///
/// Thread-safe; one instance per evidence source. Callers gate work on
/// [`try_acquire`](CircuitBreaker::try_acquire) and report every outcome
/// via [`record_success`](CircuitBreaker::record_success) /
/// [`record_failure`](CircuitBreaker::record_failure).
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    inner: Mutex<Inner>,
}

impl CircuitBreaker {
    /// A closed breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            inner: Mutex::new(Inner::Closed { consecutive: 0 }),
        }
    }

    /// The tuning this breaker runs with.
    pub fn config(&self) -> &BreakerConfig {
        &self.config
    }

    /// Gate a call on the breaker. `Rejected` means the source must not be
    /// touched; `Probe` means this caller holds the single half-open slot
    /// (concurrent acquirers are rejected until its outcome is recorded).
    pub fn try_acquire(&self) -> Acquire {
        let mut inner = self.inner.lock();
        match *inner {
            Inner::Closed { .. } => Acquire::Ready,
            Inner::Open { until } => {
                let now = Instant::now();
                if now < until {
                    Acquire::Rejected {
                        retry_after: until - now,
                    }
                } else {
                    *inner = Inner::HalfOpen;
                    Acquire::Probe
                }
            }
            // The probe slot is taken; hold the line until it reports.
            Inner::HalfOpen => Acquire::Rejected {
                retry_after: Duration::from_millis(self.config.cooldown_ms),
            },
        }
    }

    /// Report a successful call: resets the failure streak, and recloses
    /// the breaker if this was the half-open probe.
    pub fn record_success(&self) {
        *self.inner.lock() = Inner::Closed { consecutive: 0 };
    }

    /// Report a failed call: extends the streak, trips the breaker at the
    /// threshold, and reopens it if this was the half-open probe.
    pub fn record_failure(&self) {
        let mut inner = self.inner.lock();
        let reopen = Instant::now() + Duration::from_millis(self.config.cooldown_ms);
        match *inner {
            Inner::Closed { consecutive } => {
                let consecutive = consecutive + 1;
                if consecutive >= self.config.failure_threshold {
                    *inner = Inner::Open { until: reopen };
                } else {
                    *inner = Inner::Closed { consecutive };
                }
            }
            Inner::HalfOpen => *inner = Inner::Open { until: reopen },
            Inner::Open { .. } => {}
        }
    }

    /// Trip the breaker open immediately (used when a source is known-dead,
    /// e.g. its availability probe faulted hard).
    pub fn force_open(&self) {
        *self.inner.lock() = Inner::Open {
            until: Instant::now() + Duration::from_millis(self.config.cooldown_ms),
        };
    }

    /// The current state (open breakers whose cooldown has elapsed report
    /// `HalfOpen`, matching what the next acquirer will see).
    pub fn state(&self) -> BreakerState {
        match *self.inner.lock() {
            Inner::Closed { .. } => BreakerState::Closed,
            Inner::Open { until } => {
                if Instant::now() < until {
                    BreakerState::Open
                } else {
                    BreakerState::HalfOpen
                }
            }
            Inner::HalfOpen => BreakerState::HalfOpen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> BreakerConfig {
        BreakerConfig {
            failure_threshold: 3,
            cooldown_ms: 20,
        }
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let b = CircuitBreaker::new(fast());
        assert_eq!(b.try_acquire(), Acquire::Ready);
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.try_acquire(), Acquire::Ready);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        assert!(matches!(b.try_acquire(), Acquire::Rejected { .. }));
    }

    #[test]
    fn success_resets_the_streak() {
        let b = CircuitBreaker::new(fast());
        b.record_failure();
        b.record_failure();
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn half_open_probe_recovers_or_reopens() {
        let b = CircuitBreaker::new(fast());
        for _ in 0..3 {
            b.record_failure();
        }
        assert!(matches!(b.try_acquire(), Acquire::Rejected { .. }));
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // First acquirer wins the probe slot; a concurrent one is rejected.
        assert_eq!(b.try_acquire(), Acquire::Probe);
        assert!(matches!(b.try_acquire(), Acquire::Rejected { .. }));
        // Failed probe → open again.
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open);
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(b.try_acquire(), Acquire::Probe);
        // Successful probe → closed, streak reset.
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.try_acquire(), Acquire::Ready);
    }

    #[test]
    fn rejected_retry_after_is_bounded_by_cooldown() {
        let b = CircuitBreaker::new(fast());
        b.force_open();
        match b.try_acquire() {
            Acquire::Rejected { retry_after } => {
                assert!(retry_after <= Duration::from_millis(20));
            }
            other => panic!("expected rejection, got {other:?}"),
        }
    }

    #[test]
    fn gauge_values_and_names() {
        assert_eq!(BreakerState::Closed.gauge_value(), 0.0);
        assert_eq!(BreakerState::HalfOpen.gauge_value(), 1.0);
        assert_eq!(BreakerState::Open.gauge_value(), 2.0);
        assert_eq!(BreakerState::Open.name(), "open");
        assert_eq!(BreakerState::HalfOpen.name(), "half-open");
    }
}
