//! Bounded retries with deterministic jittered exponential backoff.

use crate::breaker::BreakerConfig;
use crate::splitmix64;
use serde::{Deserialize, Serialize, Value};
use std::time::{Duration, Instant};

/// Retry tuning: how many times, and how long between attempts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = no retries).
    pub max_retries: u32,
    /// Base backoff in milliseconds; attempt `n` waits ~`base * 2^n`.
    pub base_ms: u64,
    /// Hard cap on a single backoff sleep, in milliseconds.
    pub max_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 2,
            base_ms: 5,
            max_ms: 100,
        }
    }
}

// Manual impl so sparse JSON fills from `Self::default()` rather than the
// per-type zero (see `BreakerConfig`).
impl Deserialize for RetryPolicy {
    fn from_value(v: &Value) -> Result<RetryPolicy, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("RetryPolicy: expected object"))?;
        let mut out = RetryPolicy::default();
        if let Some(x) = obj.get("max_retries") {
            out.max_retries = Deserialize::from_value(x)?;
        }
        if let Some(x) = obj.get("base_ms") {
            out.base_ms = Deserialize::from_value(x)?;
        }
        if let Some(x) = obj.get("max_ms") {
            out.max_ms = Deserialize::from_value(x)?;
        }
        Ok(out)
    }
}

impl RetryPolicy {
    /// The backoff before retry `attempt` (0-based): exponential in the
    /// attempt, capped at `max_ms`, with deterministic ±50% jitter derived
    /// from `salt` — so a seeded chaos run reproduces its exact timing.
    pub fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        let exp = self
            .base_ms
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
            .min(self.max_ms);
        let mut state = salt ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let r = splitmix64(&mut state);
        // Jitter in [0.5, 1.5) of the exponential step.
        let jitter = 0.5 + (r >> 11) as f64 / (1u64 << 53) as f64;
        Duration::from_micros((exp as f64 * 1000.0 * jitter) as u64)
    }

    /// Whether retry `attempt` (plus its backoff) fits before `deadline`.
    /// With no deadline every budgeted retry fits.
    pub fn fits(&self, attempt: u32, salt: u64, deadline: Option<Instant>) -> bool {
        if attempt >= self.max_retries {
            return false;
        }
        match deadline {
            Some(d) => Instant::now() + self.backoff(attempt, salt) < d,
            None => true,
        }
    }
}

/// The full degradation policy: breaker tuning plus retry tuning, carried
/// in `SvqaConfig` so serve and eval share one knob set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct DegradePolicy {
    /// Per-source circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Transient-fault retry tuning.
    pub retry: RetryPolicy,
    /// Confidence penalty reported on degraded answers, per missing
    /// source, in `[0, 1]`.
    pub confidence_penalty: f64,
}

impl Default for DegradePolicy {
    fn default() -> DegradePolicy {
        DegradePolicy {
            breaker: BreakerConfig::default(),
            retry: RetryPolicy::default(),
            confidence_penalty: 0.25,
        }
    }
}

impl Deserialize for DegradePolicy {
    fn from_value(v: &Value) -> Result<DegradePolicy, serde::Error> {
        let obj = v
            .as_object()
            .ok_or_else(|| serde::Error::custom("DegradePolicy: expected object"))?;
        let mut out = DegradePolicy::default();
        if let Some(x) = obj.get("breaker") {
            out.breaker = Deserialize::from_value(x)?;
        }
        if let Some(x) = obj.get("retry") {
            out.retry = Deserialize::from_value(x)?;
        }
        if let Some(x) = obj.get("confidence_penalty") {
            out.confidence_penalty = Deserialize::from_value(x)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_and_caps() {
        let p = RetryPolicy {
            max_retries: 5,
            base_ms: 10,
            max_ms: 40,
        };
        let b0 = p.backoff(0, 1);
        let b3 = p.backoff(3, 1);
        // Jitter is ±50%, so compare against the envelope.
        assert!(b0 >= Duration::from_millis(5) && b0 < Duration::from_millis(15));
        assert!(b3 >= Duration::from_millis(20) && b3 < Duration::from_millis(60));
        // Huge attempt index must not overflow.
        assert!(p.backoff(200, 1) < Duration::from_millis(60));
    }

    #[test]
    fn backoff_is_deterministic_in_salt() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff(1, 42), p.backoff(1, 42));
        assert_ne!(p.backoff(1, 42), p.backoff(1, 43));
    }

    #[test]
    fn fits_respects_budget_and_deadline() {
        let p = RetryPolicy {
            max_retries: 2,
            base_ms: 5,
            max_ms: 10,
        };
        assert!(p.fits(0, 7, None));
        assert!(p.fits(1, 7, None));
        assert!(!p.fits(2, 7, None), "out of retry budget");
        let past = Instant::now();
        assert!(!p.fits(0, 7, Some(past)), "expired deadline");
        let far = Instant::now() + Duration::from_secs(5);
        assert!(p.fits(0, 7, Some(far)));
    }

    #[test]
    fn degrade_policy_round_trips_and_defaults() {
        let policy = DegradePolicy::default();
        assert_eq!(policy.breaker.failure_threshold, 3);
        assert_eq!(policy.retry.max_retries, 2);
        assert!(policy.confidence_penalty > 0.0);
        let json = serde_json::to_string(&policy).unwrap();
        let back: DegradePolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(policy, back);
        let sparse: DegradePolicy = serde_json::from_str("{}").unwrap();
        assert_eq!(sparse, DegradePolicy::default());
    }
}
