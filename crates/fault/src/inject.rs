//! The injection machinery: deterministic per-site draws, and the global
//! installation that arms every site in the process.

use crate::plan::{FaultKind, FaultPlan};
use crate::unit_draw;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use svqa_telemetry::{counter, global};

/// Per-site decision state: total draws (the deterministic sequence
/// position) and per-rule trigger counts (for `max_triggers`).
#[derive(Debug, Default)]
struct SiteState {
    draws: u64,
    triggers: Vec<u64>,
}

/// A fault injector over one [`FaultPlan`].
///
/// Usable standalone (tests, simulations) or installed process-globally
/// via [`install`] so the workspace's injection sites see it.
#[derive(Debug)]
pub struct Injector {
    plan: FaultPlan,
    state: Mutex<HashMap<String, SiteState>>,
}

impl Injector {
    /// Build an injector over `plan`.
    pub fn new(plan: FaultPlan) -> Injector {
        Injector {
            plan,
            state: Mutex::new(HashMap::new()),
        }
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// One deterministic decision at `site`: `None` = proceed normally,
    /// `Some(kind)` = the fault to inject. Decision `n` at a site is a pure
    /// function of `(plan.seed, site, n)`, independent of every other site.
    pub fn draw(&self, site: &str) -> Option<FaultKind> {
        let faults = self.plan.sites.get(site)?;
        if faults.is_empty() {
            return None;
        }
        let mut state = self.state.lock();
        let st = state.entry(site.to_owned()).or_default();
        if st.triggers.len() < faults.len() {
            st.triggers.resize(faults.len(), 0);
        }
        let n = st.draws;
        st.draws += 1;
        let u = unit_draw(self.plan.seed, site, n);
        let mut cumulative = 0.0;
        for (i, fault) in faults.iter().enumerate() {
            cumulative += fault.probability;
            if u < cumulative {
                // An exhausted rule still owns its probability slice, so
                // disarming never perturbs sibling rules' sequences.
                if fault.max_triggers.is_some_and(|max| st.triggers[i] >= max) {
                    return None;
                }
                st.triggers[i] += 1;
                return Some(fault.kind);
            }
        }
        None
    }

    /// How many decisions `site` has made (the determinism probe: two runs
    /// over the same call sequence end at the same count).
    pub fn draws_at(&self, site: &str) -> u64 {
        self.state.lock().get(site).map_or(0, |s| s.draws)
    }

    /// Total faults this injector has fired across all sites.
    pub fn faults_fired(&self) -> u64 {
        self.state
            .lock()
            .values()
            .map(|s| s.triggers.iter().sum::<u64>())
            .sum()
    }
}

/// Fast disarm check: with no plan installed, [`draw`] is one relaxed
/// atomic load — the "zero-cost when not armed" contract.
static ARMED: AtomicBool = AtomicBool::new(false);
static GLOBAL: Mutex<Option<Arc<Injector>>> = Mutex::new(None);
/// Serializes plan installations process-wide (held by [`InstalledPlan`]),
/// so concurrently running tests cannot interleave plans.
static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

/// The process-global injection decision. Sites call this at their fault
/// points; it returns `None` immediately (one relaxed atomic load) unless
/// a plan is installed. Fired faults bump the `faults_injected` counter.
#[inline]
pub fn draw(site: &str) -> Option<FaultKind> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    draw_armed(site)
}

/// The slow path, outlined so the disarmed fast path stays trivial.
fn draw_armed(site: &str) -> Option<FaultKind> {
    let injector = GLOBAL.lock().clone()?;
    let kind = injector.draw(site)?;
    global().incr_counter(counter::FAULTS_INJECTED);
    Some(kind)
}

/// The currently installed injector, if any (for assertions and status
/// endpoints; returns `None` when disarmed).
pub fn active() -> Option<Arc<Injector>> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    GLOBAL.lock().clone()
}

/// Install `plan` process-globally, arming every injection site. The
/// returned guard disarms on drop; holding it also serializes installers
/// (a second `install` blocks until the first guard drops), which keeps
/// concurrently running chaos tests from seeing each other's plans.
pub fn install(plan: FaultPlan) -> InstalledPlan {
    let serial = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    let injector = Arc::new(Injector::new(plan));
    *GLOBAL.lock() = Some(Arc::clone(&injector));
    ARMED.store(true, Ordering::SeqCst);
    InstalledPlan {
        injector,
        _serial: serial,
    }
}

/// RAII guard for an installed [`FaultPlan`]: the plan stays armed until
/// this drops.
pub struct InstalledPlan {
    injector: Arc<Injector>,
    _serial: std::sync::MutexGuard<'static, ()>,
}

impl InstalledPlan {
    /// The armed injector (for determinism assertions).
    pub fn injector(&self) -> &Arc<Injector> {
        &self.injector
    }
}

impl Drop for InstalledPlan {
    fn drop(&mut self) {
        ARMED.store(false, Ordering::SeqCst);
        *GLOBAL.lock() = None;
    }
}

/// Apply a [`FaultKind::Latency`] fault: sleep `ms`, but never past
/// `deadline`. Returns `true` if the full latency fit the budget (callers
/// that treat an over-budget stall as a failed operation check this).
pub fn apply_latency(ms: u64, deadline: Option<Instant>) -> bool {
    let wanted = Duration::from_millis(ms);
    let allowed = match deadline {
        Some(d) => d.saturating_duration_since(Instant::now()).min(wanted),
        None => wanted,
    };
    if !allowed.is_zero() {
        std::thread::sleep(allowed);
    }
    allowed >= wanted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::SiteFault;
    use crate::site;

    #[test]
    fn same_seed_reproduces_the_identical_fault_sequence() {
        let plan = FaultPlan::new(0xC0FFEE)
            .with_fault(site::SOURCE_KG, SiteFault::new(FaultKind::Error, 0.3))
            .with_fault(site::SOURCE_KG, SiteFault::new(FaultKind::DropResult, 0.2));
        let a = Injector::new(plan.clone());
        let b = Injector::new(plan);
        let seq_a: Vec<_> = (0..200).map(|_| a.draw(site::SOURCE_KG)).collect();
        let seq_b: Vec<_> = (0..200).map(|_| b.draw(site::SOURCE_KG)).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.contains(&Some(FaultKind::Error)));
        assert!(seq_a.contains(&Some(FaultKind::DropResult)));
        assert!(seq_a.iter().any(Option::is_none));
        assert_eq!(a.draws_at(site::SOURCE_KG), 200);
    }

    #[test]
    fn different_sites_draw_independent_sequences() {
        let plan = FaultPlan::uniform(
            9,
            &[site::CACHE_GET, site::CACHE_PUT],
            FaultKind::DropResult,
            0.5,
        );
        let inj = Injector::new(plan);
        let a: Vec<_> = (0..64).map(|_| inj.draw(site::CACHE_GET).is_some()).collect();
        let b: Vec<_> = (0..64).map(|_| inj.draw(site::CACHE_PUT).is_some()).collect();
        assert_ne!(a, b, "sites should decorrelate");
    }

    #[test]
    fn probability_extremes_and_unknown_sites() {
        let plan = FaultPlan::new(1)
            .with_fault("always", SiteFault::new(FaultKind::Error, 1.0))
            .with_fault("never", SiteFault::new(FaultKind::Error, 0.0));
        let inj = Injector::new(plan);
        assert!((0..50).all(|_| inj.draw("always") == Some(FaultKind::Error)));
        assert!((0..50).all(|_| inj.draw("never").is_none()));
        assert!(inj.draw("no.such.site").is_none());
        assert_eq!(inj.draws_at("no.such.site"), 0);
    }

    #[test]
    fn max_triggers_disarms_without_shifting_siblings() {
        let limited = FaultPlan::new(3)
            .with_fault("s", SiteFault::limited(FaultKind::Error, 0.5, 2))
            .with_fault("s", SiteFault::new(FaultKind::DropResult, 0.3));
        let unlimited = FaultPlan::new(3)
            .with_fault("s", SiteFault::new(FaultKind::Error, 0.5))
            .with_fault("s", SiteFault::new(FaultKind::DropResult, 0.3));
        let a = Injector::new(limited);
        let b = Injector::new(unlimited);
        let seq_a: Vec<_> = (0..100).map(|_| a.draw("s")).collect();
        let seq_b: Vec<_> = (0..100).map(|_| b.draw("s")).collect();
        assert_eq!(
            seq_a.iter().filter(|k| **k == Some(FaultKind::Error)).count(),
            2,
            "rule must disarm after 2 triggers"
        );
        // The sibling DropResult rule fires at exactly the same positions.
        let drops = |seq: &[Option<FaultKind>]| -> Vec<usize> {
            seq.iter()
                .enumerate()
                .filter(|(_, k)| **k == Some(FaultKind::DropResult))
                .map(|(i, _)| i)
                .collect()
        };
        assert_eq!(drops(&seq_a), drops(&seq_b));
        assert_eq!(a.faults_fired(), 2 + drops(&seq_a).len() as u64);
    }

    #[test]
    fn install_arms_and_drop_disarms() {
        assert!(draw("anything").is_none());
        {
            let guard = install(FaultPlan::new(5).with_fault("g", SiteFault::new(FaultKind::Error, 1.0)));
            assert_eq!(draw("g"), Some(FaultKind::Error));
            assert!(active().is_some());
            assert_eq!(guard.injector().draws_at("g"), 1);
        }
        assert!(draw("g").is_none());
        assert!(active().is_none());
    }

    #[test]
    fn latency_respects_deadlines() {
        let t0 = Instant::now();
        assert!(apply_latency(5, None));
        assert!(t0.elapsed() >= Duration::from_millis(5));
        let tight = Instant::now() + Duration::from_millis(2);
        let t1 = Instant::now();
        assert!(!apply_latency(500, Some(tight)), "capped sleep is a failed stall");
        assert!(t1.elapsed() < Duration::from_millis(400));
        // Expired deadline: no sleep at all.
        let t2 = Instant::now();
        assert!(!apply_latency(50, Some(Instant::now())));
        assert!(t2.elapsed() < Duration::from_millis(40));
    }
}
