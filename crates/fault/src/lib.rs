//! Deterministic fault injection and graceful-degradation primitives.
//!
//! SVQA answers questions across *multiple* sources — scene graphs
//! distilled from images plus a knowledge graph — so the interesting
//! failures are partial: one source is slow, noisy, or gone while the
//! other still holds the answer. This crate provides everything needed to
//! reproduce (and survive) those failures on demand:
//!
//! * [`FaultPlan`] — a seeded, fully deterministic description of
//!   per-site faults ([`FaultKind::Error`], [`FaultKind::Latency`],
//!   [`FaultKind::DropResult`], [`FaultKind::CorruptLabel`]) with
//!   per-site probabilities. Serde round-trippable, loadable from JSON.
//! * [`Injector`] / [`install`] — the injection machinery. Sites across
//!   the workspace (see [`site`]) call [`draw`] at their fault points;
//!   with no plan installed the call is a single relaxed atomic load, so
//!   injection points are zero-cost no-ops in production.
//! * [`CircuitBreaker`] — the per-source availability state machine
//!   (closed → open after N consecutive faults → half-open probe).
//! * [`RetryPolicy`] — bounded retries with jittered exponential backoff
//!   that respect a request deadline.
//!
//! Determinism: every decision is a pure function of `(plan seed, site
//! name, per-site draw counter)`. Two runs over the same plan and the same
//! call sequence observe the identical fault sequence — which is what lets
//! the chaos tests assert exact behaviour instead of probabilistic shapes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod breaker;
mod inject;
mod plan;
mod retry;

pub use breaker::{Acquire, BreakerConfig, BreakerState, CircuitBreaker};
pub use inject::{active, apply_latency, draw, install, InstalledPlan, Injector};
pub use plan::{FaultKind, FaultPlan, SiteFault};
pub use retry::{DegradePolicy, RetryPolicy};

use serde::{Deserialize, Serialize};

/// Canonical injection-site names.
///
/// A site is a named point in the pipeline where a [`FaultPlan`] can
/// strike. Plans address sites by these strings; unknown names are
/// silently inert (a plan written for a newer build degrades to a weaker
/// plan, not an error).
pub mod site {
    /// Per-query knowledge-graph availability probe (`Svqa::answer_guarded`).
    pub const SOURCE_KG: &str = "source.kg";
    /// Per-query scene-graph availability probe (`Svqa::answer_guarded`).
    pub const SOURCE_SCENE: &str = "source.scene";
    /// Knowledge-graph construction, one draw per triple (`svqa-dataset`).
    pub const KG_TRIPLE: &str = "kg.triple";
    /// Scene-graph generation, one draw per image (`svqa-vision::sgg`).
    pub const SGG_GENERATE: &str = "sgg.generate";
    /// Object detection, one draw per detection (`svqa-vision::detector`).
    pub const DETECTOR_DETECT: &str = "detector.detect";
    /// Relation-pair collection, one draw per query-graph vertex
    /// (`svqa-executor`).
    pub const RELATION_SCAN: &str = "executor.relation_scan";
    /// Sharded-cache lookups (`svqa-executor::cache`).
    pub const CACHE_GET: &str = "cache.get";
    /// Sharded-cache inserts (`svqa-executor::cache`).
    pub const CACHE_PUT: &str = "cache.put";
    /// Query-server worker job execution (`svqa::serve`).
    pub const SERVE_WORKER: &str = "serve.worker";

    /// Every site, for plan builders that want blanket coverage.
    pub const ALL: [&str; 9] = [
        SOURCE_KG,
        SOURCE_SCENE,
        KG_TRIPLE,
        SGG_GENERATE,
        DETECTOR_DETECT,
        RELATION_SCAN,
        CACHE_GET,
        CACHE_PUT,
        SERVE_WORKER,
    ];
}

/// The evidence sources a query runs across, for per-source circuit
/// breaking and partial answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Source {
    /// The external knowledge graph.
    Kg,
    /// Scene graphs distilled from images.
    Scene,
}

impl Source {
    /// Both sources, in stable order.
    pub const ALL: [Source; 2] = [Source::Kg, Source::Scene];

    /// Stable lowercase name (used in metrics, health payloads, and
    /// `AnswerStatus::Degraded::missing_sources`).
    pub fn name(self) -> &'static str {
        match self {
            Source::Kg => "kg",
            Source::Scene => "scene",
        }
    }

    /// The injection site probed once per query for this source.
    pub fn probe_site(self) -> &'static str {
        match self {
            Source::Kg => site::SOURCE_KG,
            Source::Scene => site::SOURCE_SCENE,
        }
    }
}

impl std::fmt::Display for Source {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// SplitMix64 — the workspace's standard seeding mixer (matches the
/// vendored `rand`'s seeding path). Pure, allocation-free, and good enough
/// to decorrelate `(seed, site, counter)` triples.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a site name — stable across runs and platforms, unlike
/// `DefaultHasher`.
pub(crate) fn site_hash(site: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in site.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A uniform draw in `[0, 1)` from `(seed, site, counter)` — the single
/// source of randomness behind every injection decision.
pub(crate) fn unit_draw(seed: u64, site: &str, counter: u64) -> f64 {
    let mut state = seed ^ site_hash(site).rotate_left(17) ^ counter.wrapping_mul(0x9E37_79B9);
    let r = splitmix64(&mut state);
    // 53 random bits → [0, 1) exactly representable in f64.
    (r >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_draw_is_deterministic_and_uniform_ish() {
        assert_eq!(unit_draw(7, "a.site", 0), unit_draw(7, "a.site", 0));
        assert_ne!(unit_draw(7, "a.site", 0), unit_draw(7, "a.site", 1));
        assert_ne!(unit_draw(7, "a.site", 0), unit_draw(8, "a.site", 0));
        assert_ne!(unit_draw(7, "a.site", 0), unit_draw(7, "b.site", 0));
        let n = 10_000;
        let mean: f64 = (0..n).map(|i| unit_draw(42, "x", i)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!((0..n).all(|i| (0.0..1.0).contains(&unit_draw(42, "x", i))));
    }

    #[test]
    fn source_names_and_sites() {
        assert_eq!(Source::Kg.name(), "kg");
        assert_eq!(Source::Scene.to_string(), "scene");
        assert_eq!(Source::Kg.probe_site(), site::SOURCE_KG);
        assert_eq!(Source::Scene.probe_site(), site::SOURCE_SCENE);
    }
}
