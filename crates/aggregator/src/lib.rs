//! # svqa-aggregator
//!
//! The Data Aggregator of the SVQA reproduction (§III of the paper):
//! unifies scene graphs `{G_sg(I)}` and the knowledge graph `G` into one
//! *merged graph* `G_mg`, using Algorithm 1's frequency-driven subgraph
//! cache to speed up entity linking.
//!
//! The merged graph contains:
//! * every knowledge-graph vertex and edge, unchanged;
//! * every scene-graph vertex and edge (vertex properties carry the image
//!   id), absorbed per image;
//! * *link edges* (label configurable, default `"same as"`) connecting each
//!   scene vertex to the knowledge-graph vertex with the matching label,
//!   in both directions, so query execution can hop between visual
//!   evidence and external knowledge.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod cache;
pub mod incremental;

pub use aggregate::{AggregatorConfig, DataAggregator, MergeStats, MergedGraph};
pub use cache::SubgraphCache;
pub use incremental::IncrementalMerger;
