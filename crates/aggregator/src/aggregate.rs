//! Graph merging (Algorithm 1).

use crate::cache::SubgraphCache;
use serde::{Deserialize, Serialize};
use svqa_graph::{Graph, VertexId};

/// Configuration of the aggregator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregatorConfig {
    /// Frequency threshold `c'`: categories appearing more often than this
    /// across the scene graphs get a cached subgraph. The paper uses 5
    /// ("generate subgraphs for all vertices T that occur more than 5
    /// times", §III-B).
    pub frequency_threshold: usize,
    /// Neighbourhood radius `k` for `G[S(t, k)]`. The paper sets `k = 2`.
    pub k: usize,
    /// Label of the link edges between scene vertices and their
    /// knowledge-graph counterparts.
    pub link_label: String,
}

impl Default for AggregatorConfig {
    fn default() -> Self {
        AggregatorConfig {
            frequency_threshold: 5,
            k: 2,
            link_label: "same as".to_owned(),
        }
    }
}

/// Accounting from one merge run — exposes the paper's §III-B coverage
/// claims ("approximately 58% of vertex types occur more than 5 times, and
/// nearly 82% of vertices are covered") plus cache effectiveness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MergeStats {
    /// Number of cached subgraphs built in the initial stage.
    pub cached_subgraphs: usize,
    /// Attach-stage lookups answered by a cached subgraph.
    pub cache_hits: usize,
    /// Attach-stage lookups that fell back to the full graph.
    pub cache_misses: usize,
    /// Link edges created (×2 for bidirectionality).
    pub links_created: usize,
    /// Scene vertices with no knowledge-graph counterpart.
    pub unlinked_vertices: usize,
    /// Fraction of distinct scene categories above the threshold.
    pub fraction_labels_cached: f64,
    /// Fraction of scene vertices whose category is above the threshold.
    pub fraction_vertices_covered: f64,
    /// Bytes held by the subgraph-cache indexes.
    pub cache_index_bytes: usize,
}

/// The merged graph `G_mg` plus provenance maps.
#[derive(Debug)]
pub struct MergedGraph {
    /// The unified graph.
    pub graph: Graph,
    /// For each input scene graph, the vertex-id translation into `graph`.
    pub scene_mappings: Vec<Vec<VertexId>>,
    /// Number of vertices that came from the knowledge graph (they occupy
    /// ids `0..kg_vertex_count`).
    pub kg_vertex_count: usize,
    /// Merge accounting.
    pub stats: MergeStats,
}

/// The Data Aggregator (Algorithm 1 driver).
#[derive(Debug, Clone, Default)]
pub struct DataAggregator {
    config: AggregatorConfig,
}

impl DataAggregator {
    /// Build an aggregator with the given configuration.
    pub fn new(config: AggregatorConfig) -> Self {
        DataAggregator { config }
    }

    /// The configuration.
    pub fn config(&self) -> &AggregatorConfig {
        &self.config
    }

    /// Algorithm 1: merge `scene_graphs` into knowledge graph `kg`.
    pub fn merge(&self, scene_graphs: &[Graph], kg: &Graph) -> MergedGraph {
        let _span = svqa_telemetry::Span::enter(svqa_telemetry::stage::AGGREGATE);
        // --- Initial stage (lines 1–7): build the subgraph cache. ---
        let (mut cache, histogram) =
            SubgraphCache::build(scene_graphs, kg, self.config.frequency_threshold, self.config.k);

        // G_mg starts as a copy of G; scene graphs are absorbed into it.
        let scene_vertices: usize = scene_graphs.iter().map(Graph::vertex_count).sum();
        let scene_edges: usize = scene_graphs.iter().map(Graph::edge_count).sum();
        let mut merged = Graph::with_capacity(
            kg.vertex_count() + scene_vertices,
            kg.edge_count() + scene_edges + 2 * scene_vertices,
        );
        let kg_mapping = merged.absorb(kg);
        debug_assert!(kg_mapping.iter().enumerate().all(|(i, v)| v.index() == i));

        // --- Attach stage (lines 8–16). ---
        let mut links_created = 0usize;
        let mut unlinked = 0usize;
        let mut scene_mappings = Vec::with_capacity(scene_graphs.len());
        for sg in scene_graphs {
            let mapping = merged.absorb(sg);
            for (sg_vertex, &merged_id) in sg.vertices().map(|(_, v)| v).zip(&mapping) {
                // Lines 9–14: find the corresponding knowledge-graph vertex
                // through the cache, falling back to a direct query.
                match cache.lookup(kg, sg_vertex.label()) {
                    Some(kg_local) => {
                        // connect(v, v') — bidirectional link edges so the
                        // executor can traverse either way.
                        let kg_in_merged = kg_mapping[kg_local.index()];
                        merged
                            .add_edge(merged_id, kg_in_merged, self.config.link_label.as_str())
                            .expect("both endpoints exist");
                        merged
                            .add_edge(kg_in_merged, merged_id, self.config.link_label.as_str())
                            .expect("both endpoints exist");
                        links_created += 2;
                    }
                    None => unlinked += 1,
                }
            }
            scene_mappings.push(mapping);
        }

        let stats = MergeStats {
            cached_subgraphs: cache.len(),
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            links_created,
            unlinked_vertices: unlinked,
            fraction_labels_cached: histogram
                .fraction_of_labels_above(self.config.frequency_threshold),
            fraction_vertices_covered: histogram
                .fraction_of_items_above(self.config.frequency_threshold),
            cache_index_bytes: cache.index_size_bytes(),
        };
        MergedGraph {
            graph: merged,
            scene_mappings,
            kg_vertex_count: kg.vertex_count(),
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svqa_graph::GraphBuilder;

    fn scene(labels: &[&str], pred: &str) -> Graph {
        let mut g = Graph::new();
        let ids: Vec<_> = labels.iter().map(|l| g.add_vertex(*l)).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], pred).unwrap();
        }
        g
    }

    fn kg() -> Graph {
        let mut b = GraphBuilder::new();
        b.triple("dog", "is a", "animal")
            .triple("cat", "is a", "animal")
            .triple("man", "is a", "person")
            .triple("ginny weasley", "girlfriend of", "harry potter")
            .triple("harry potter", "is a", "wizard");
        b.build()
    }

    #[test]
    fn merged_graph_contains_everything() {
        let scenes = vec![scene(&["dog", "man"], "near"), scene(&["cat"], "near")];
        let graph = kg();
        let merged = DataAggregator::default().merge(&scenes, &graph);
        // 7 KG vertices + 3 scene vertices.
        assert_eq!(merged.graph.vertex_count(), graph.vertex_count() + 3);
        assert_eq!(merged.kg_vertex_count, graph.vertex_count());
        // KG edges + 1 scene edge + 6 link edges (3 linked vertices × 2).
        assert_eq!(
            merged.graph.edge_count(),
            graph.edge_count() + 1 + merged.stats.links_created
        );
        merged.graph.validate().unwrap();
    }

    #[test]
    fn link_edges_are_bidirectional() {
        let scenes = vec![scene(&["dog"], "near")];
        let graph = kg();
        let merged = DataAggregator::default().merge(&scenes, &graph);
        let scene_dog = merged.scene_mappings[0][0];
        let kg_dog = graph.vertices_with_label("dog")[0];
        assert!(merged.graph.has_edge(scene_dog, kg_dog, "same as"));
        assert!(merged.graph.has_edge(kg_dog, scene_dog, "same as"));
    }

    #[test]
    fn unlinked_vertices_counted() {
        let scenes = vec![scene(&["unicorn", "dog"], "near")];
        let merged = DataAggregator::default().merge(&scenes, &kg());
        assert_eq!(merged.stats.unlinked_vertices, 1);
        assert_eq!(merged.stats.links_created, 2);
    }

    #[test]
    fn cache_is_used_for_frequent_categories() {
        // 6 dogs exceed the default threshold of 5 → "dog" is cached and
        // every dog lookup is a hit.
        let scenes: Vec<Graph> = (0..6).map(|_| scene(&["dog"], "near")).collect();
        let merged = DataAggregator::default().merge(&scenes, &kg());
        assert_eq!(merged.stats.cached_subgraphs, 1);
        assert_eq!(merged.stats.cache_hits, 6);
        assert_eq!(merged.stats.cache_misses, 0);
        assert!(merged.stats.cache_index_bytes > 0);
    }

    #[test]
    fn threshold_zero_caches_everything_seen() {
        let scenes = vec![scene(&["dog", "man"], "near")];
        let agg = DataAggregator::new(AggregatorConfig {
            frequency_threshold: 0,
            ..AggregatorConfig::default()
        });
        let merged = agg.merge(&scenes, &kg());
        assert_eq!(merged.stats.cached_subgraphs, 2);
        assert_eq!(merged.stats.fraction_labels_cached, 1.0);
        assert_eq!(merged.stats.fraction_vertices_covered, 1.0);
    }

    #[test]
    fn coverage_fractions() {
        // dog ×3, cat ×1 with threshold 2: 1/2 labels cached, 3/4 vertices
        // covered.
        let scenes = vec![
            scene(&["dog"], "near"),
            scene(&["dog"], "near"),
            scene(&["dog", "cat"], "near"),
        ];
        let agg = DataAggregator::new(AggregatorConfig {
            frequency_threshold: 2,
            ..AggregatorConfig::default()
        });
        let merged = agg.merge(&scenes, &kg());
        assert!((merged.stats.fraction_labels_cached - 0.5).abs() < 1e-12);
        assert!((merged.stats.fraction_vertices_covered - 0.75).abs() < 1e-12);
    }

    #[test]
    fn scene_edge_labels_survive_merging() {
        let scenes = vec![scene(&["dog", "grass"], "sitting on")];
        let merged = DataAggregator::default().merge(&scenes, &kg());
        let labels: Vec<_> = merged
            .graph
            .edge_label_counts()
            .map(|(l, _)| l.to_owned())
            .collect();
        assert!(labels.contains(&"sitting on".to_owned()));
    }

    #[test]
    fn empty_scene_list_reproduces_kg() {
        let graph = kg();
        let merged = DataAggregator::default().merge(&[], &graph);
        assert_eq!(merged.graph.vertex_count(), graph.vertex_count());
        assert_eq!(merged.graph.edge_count(), graph.edge_count());
        assert_eq!(merged.stats.links_created, 0);
    }
}
