//! Incremental graph attachment.
//!
//! The paper's §I motivation is a data lake: sources arrive continuously.
//! Rebuilding `G_mg` per batch would repeat Algorithm 1's initial stage
//! every time, so [`IncrementalMerger`] keeps the subgraph cache alive
//! between batches and runs only the attach stage (Algorithm 1 lines 8–16)
//! for new scene graphs.

use crate::aggregate::AggregatorConfig;
use crate::cache::SubgraphCache;
use svqa_graph::{Graph, VertexId};

/// A long-lived merger: owns the growing merged graph, the knowledge
/// graph, and the Algorithm-1 subgraph cache.
pub struct IncrementalMerger {
    config: AggregatorConfig,
    kg: Graph,
    merged: Graph,
    cache: SubgraphCache,
    /// KG vertex ids in `merged` (index-aligned with `kg`).
    kg_mapping: Vec<VertexId>,
    scene_graphs_attached: usize,
}

impl IncrementalMerger {
    /// Start from a knowledge graph and an *initial* corpus of scene
    /// graphs (used to seed the frequency statistics of the cache — a
    /// deployment knows its historical category distribution).
    pub fn new(config: AggregatorConfig, kg: &Graph, seed_scene_graphs: &[Graph]) -> Self {
        let (cache, _histogram) = SubgraphCache::build(
            seed_scene_graphs,
            kg,
            config.frequency_threshold,
            config.k,
        );
        let mut merged = Graph::with_capacity(kg.vertex_count() * 2, kg.edge_count() * 2);
        let kg_mapping = merged.absorb(kg);
        let mut merger = IncrementalMerger {
            config,
            kg: kg.clone(),
            merged,
            cache,
            kg_mapping,
            scene_graphs_attached: 0,
        };
        merger.attach_batch(seed_scene_graphs);
        merger
    }

    /// Attach stage for a batch of new scene graphs; returns link edges
    /// created.
    pub fn attach_batch(&mut self, scene_graphs: &[Graph]) -> usize {
        let mut links = 0usize;
        for sg in scene_graphs {
            let mapping = self.merged.absorb(sg);
            for (sg_vertex, &merged_id) in sg.vertices().map(|(_, v)| v).zip(&mapping) {
                // Algorithm 1 lines 9–14: cached-subgraph lookup first,
                // direct knowledge-graph query as the fallback.
                if let Some(kg_local) = self.cache.lookup(&self.kg, sg_vertex.label()) {
                    let kg_in_merged = self.kg_mapping[kg_local.index()];
                    self.merged
                        .add_edge(merged_id, kg_in_merged, self.config.link_label.as_str())
                        .expect("endpoints exist");
                    self.merged
                        .add_edge(kg_in_merged, merged_id, self.config.link_label.as_str())
                        .expect("endpoints exist");
                    links += 2;
                }
            }
        }
        self.scene_graphs_attached += scene_graphs.len();
        links
    }

    /// The merged graph so far.
    pub fn merged_graph(&self) -> &Graph {
        &self.merged
    }

    /// Scene graphs attached so far (including the seed corpus).
    pub fn scene_graphs_attached(&self) -> usize {
        self.scene_graphs_attached
    }

    /// Cache `(hits, misses)` across all batches.
    pub fn cache_stats(&self) -> (usize, usize) {
        (self.cache.hits(), self.cache.misses())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::DataAggregator;
    use svqa_graph::GraphBuilder;

    fn scene(labels: &[&str]) -> Graph {
        let mut g = Graph::new();
        let ids: Vec<_> = labels.iter().map(|l| g.add_vertex(*l)).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], "near").unwrap();
        }
        g
    }

    fn kg() -> Graph {
        let mut b = GraphBuilder::new();
        b.triple("dog", "is a", "pet")
            .triple("cat", "is a", "pet")
            .triple("man", "is a", "person");
        b.build()
    }

    #[test]
    fn incremental_matches_batch_merge() {
        let kg = kg();
        let scenes: Vec<Graph> = (0..10)
            .map(|i| scene(if i % 2 == 0 { &["dog", "man"] } else { &["cat"] }))
            .collect();
        // Batch merge.
        let batch = DataAggregator::new(AggregatorConfig::default()).merge(&scenes, &kg);
        // Incremental: seed with the first half, stream the second.
        let mut inc =
            IncrementalMerger::new(AggregatorConfig::default(), &kg, &scenes[..5]);
        inc.attach_batch(&scenes[5..]);
        assert_eq!(
            inc.merged_graph().vertex_count(),
            batch.graph.vertex_count()
        );
        assert_eq!(inc.merged_graph().edge_count(), batch.graph.edge_count());
        inc.merged_graph().validate().unwrap();
        assert_eq!(inc.scene_graphs_attached(), 10);
    }

    #[test]
    fn cache_keeps_serving_across_batches() {
        let kg = kg();
        let seed: Vec<Graph> = (0..6).map(|_| scene(&["dog"])).collect();
        let mut inc = IncrementalMerger::new(
            AggregatorConfig {
                frequency_threshold: 3,
                ..AggregatorConfig::default()
            },
            &kg,
            &seed,
        );
        let (h0, _) = inc.cache_stats();
        assert!(h0 >= 6, "seed lookups should hit the dog subgraph: {h0}");
        // New batches keep hitting without rebuilding anything.
        inc.attach_batch(&[scene(&["dog"]), scene(&["dog"])]);
        let (h1, _) = inc.cache_stats();
        assert_eq!(h1, h0 + 2);
    }

    #[test]
    fn unknown_labels_fall_back_and_stay_unlinked() {
        let kg = kg();
        let mut inc = IncrementalMerger::new(AggregatorConfig::default(), &kg, &[]);
        let links = inc.attach_batch(&[scene(&["unicorn", "dog"])]);
        // Only the dog links (2 directed edges).
        assert_eq!(links, 2);
    }
}
