//! The subgraph cache of Algorithm 1's initial stage.
//!
//! For every frequent scene category `t` (count `> c'`), the induced
//! subgraph `G[S(t, k)]` of the knowledge graph is extracted and kept as an
//! index view (Definition 2). During the attach stage, label lookups go
//! through these views first; only misses fall back to a full-graph query
//! (Algorithm 1 lines 12–14).

use svqa_graph::{induced_subgraph, Graph, LabelHistogram, SubgraphView, VertexId};

/// The ordered cache list `G_N` of Algorithm 1, plus hit/miss accounting.
#[derive(Debug)]
pub struct SubgraphCache {
    /// `(category, cached view)` in descending frequency order.
    entries: Vec<(String, SubgraphView)>,
    hits: usize,
    misses: usize,
}

impl SubgraphCache {
    /// Initial stage (Algorithm 1 lines 1–7): count scene-graph categories,
    /// and for each category above `frequency_threshold` that resolves to a
    /// knowledge-graph vertex, cache its `k`-hop induced subgraph.
    pub fn build(
        scene_graphs: &[Graph],
        kg: &Graph,
        frequency_threshold: usize,
        k: usize,
    ) -> (Self, LabelHistogram) {
        let histogram = LabelHistogram::from_vertex_labels(scene_graphs.iter());
        let mut entries = Vec::new();
        for (category, _count) in histogram.above_threshold(frequency_threshold) {
            // find(t_sg, V): the first knowledge-graph vertex labeled with
            // the category; categories unknown to the graph get no cache
            // entry (their lookups will fall back to direct queries).
            let Some(&t) = kg.vertices_with_label(category).first() else {
                continue;
            };
            entries.push((category.to_owned(), induced_subgraph(kg, t, k)));
        }
        (
            SubgraphCache {
                entries,
                hits: 0,
                misses: 0,
            },
            histogram,
        )
    }

    /// Attach-stage lookup: find the knowledge-graph vertex labeled `label`
    /// through the cached views first (hit), falling back to the full graph
    /// (miss) — Algorithm 1 lines 9–14.
    pub fn lookup(&mut self, kg: &Graph, label: &str) -> Option<VertexId> {
        for (_, view) in &self.entries {
            if let Some(v) = view.vertices_with_label(kg, label).next() {
                self.hits += 1;
                return Some(v);
            }
        }
        self.misses += 1;
        kg.vertices_with_label(label).first().copied()
    }

    /// Number of cached subgraphs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cache hits so far.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Cache misses (direct-query fallbacks) so far.
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// Total bytes of index structures held by the cached views.
    pub fn index_size_bytes(&self) -> usize {
        self.entries
            .iter()
            .map(|(c, v)| c.len() + v.index_size_bytes())
            .sum()
    }

    /// Categories with a cached subgraph, in descending frequency order.
    pub fn cached_categories(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(c, _)| c.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use svqa_graph::GraphBuilder;

    fn scene(labels: &[&str]) -> Graph {
        let mut g = Graph::new();
        let ids: Vec<_> = labels.iter().map(|l| g.add_vertex(*l)).collect();
        for w in ids.windows(2) {
            g.add_edge(w[0], w[1], "near").unwrap();
        }
        g
    }

    fn kg() -> Graph {
        let mut b = GraphBuilder::new();
        b.triple("dog", "is a", "animal")
            .triple("cat", "is a", "animal")
            .triple("animal", "is a", "creature")
            .triple("man", "is a", "person")
            .triple("harry potter", "is a", "wizard")
            .triple("wizard", "is a", "person");
        b.build()
    }

    #[test]
    fn frequent_categories_get_cached() {
        let scenes = vec![
            scene(&["dog", "man"]),
            scene(&["dog", "man"]),
            scene(&["dog", "cat"]),
        ];
        let (cache, hist) = SubgraphCache::build(&scenes, &kg(), 1, 2);
        // dog (3) and man (2) exceed threshold 1; cat (1) does not.
        let cached: Vec<_> = cache.cached_categories().collect();
        assert_eq!(cached, vec!["dog", "man"]);
        assert_eq!(hist.count("dog"), 3);
    }

    #[test]
    fn categories_missing_from_kg_are_skipped() {
        let scenes = vec![scene(&["unicorn", "unicorn", "dog", "dog"])];
        let (cache, _) = SubgraphCache::build(&scenes, &kg(), 1, 2);
        let cached: Vec<_> = cache.cached_categories().collect();
        assert_eq!(cached, vec!["dog"]);
    }

    #[test]
    fn lookup_hits_cached_neighborhood() {
        let scenes = vec![scene(&["dog", "dog"])];
        let graph = kg();
        let (mut cache, _) = SubgraphCache::build(&scenes, &graph, 1, 2);
        // "animal" is within 2 hops of "dog" → cache hit.
        let v = cache.lookup(&graph, "animal").unwrap();
        assert_eq!(graph.vertex_label(v), Some("animal"));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn lookup_falls_back_to_full_graph() {
        let scenes = vec![scene(&["dog", "dog"])];
        let graph = kg();
        let (mut cache, _) = SubgraphCache::build(&scenes, &graph, 1, 1);
        // "harry potter" is far from "dog" → miss, then direct query.
        let v = cache.lookup(&graph, "harry potter").unwrap();
        assert_eq!(graph.vertex_label(v), Some("harry potter"));
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn lookup_of_unknown_label_is_none_and_counts_miss() {
        let scenes = vec![scene(&["dog", "dog"])];
        let graph = kg();
        let (mut cache, _) = SubgraphCache::build(&scenes, &graph, 1, 2);
        assert!(cache.lookup(&graph, "spaceship").is_none());
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn empty_inputs() {
        let (cache, hist) = SubgraphCache::build(&[], &Graph::new(), 5, 2);
        assert!(cache.is_empty());
        assert_eq!(hist.total(), 0);
        assert_eq!(cache.index_size_bytes(), 0);
    }
}
