//! Property-based tests for the NLP substrate.

use proptest::prelude::*;
use svqa_nlp::lev::{levenshtein, levenshtein_similarity, normalized_levenshtein};
use svqa_nlp::transition::{is_projective, oracle_derivation, replays_to};
use svqa_nlp::{tokenize, Embedder, Lemmatizer, PosTagger, RuleDependencyParser};

proptest! {
    // ---------------- Levenshtein is a metric ----------------
    #[test]
    fn levenshtein_identity(s in "[a-z ]{0,16}") {
        prop_assert_eq!(levenshtein(&s, &s), 0);
    }

    #[test]
    fn levenshtein_symmetry(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
    }

    #[test]
    fn levenshtein_triangle(a in "[a-z]{0,8}", b in "[a-z]{0,8}", c in "[a-z]{0,8}") {
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    #[test]
    fn levenshtein_bounded_by_longer_string(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
        let d = levenshtein(&a, &b);
        prop_assert!(d <= a.len().max(b.len()));
        prop_assert!(d >= a.len().abs_diff(b.len()));
        let n = normalized_levenshtein(&a, &b);
        prop_assert!((0.0..=1.0).contains(&n));
        prop_assert!((levenshtein_similarity(&a, &b) + n - 1.0).abs() < 1e-12);
    }

    // ---------------- Tokenizer ----------------
    #[test]
    fn tokenizer_offsets_point_at_surfaces(s in "[A-Za-z',?. ]{0,60}") {
        for t in tokenize(&s) {
            prop_assert!(s[t.offset..].starts_with(&t.surface),
                "offset {} does not start surface {:?} in {:?}", t.offset, t.surface, s);
        }
    }

    #[test]
    fn tokenizer_is_case_insensitive_in_text(s in "[A-Za-z ]{0,40}") {
        let lower: Vec<String> = tokenize(&s.to_lowercase()).into_iter().map(|t| t.text).collect();
        let mixed: Vec<String> = tokenize(&s).into_iter().map(|t| t.text).collect();
        prop_assert_eq!(lower, mixed);
    }

    // ---------------- Tagger & parser never panic; parser output is a tree
    #[test]
    fn tagger_tags_every_token(s in "[A-Za-z',?. ]{0,60}") {
        let tagger = PosTagger::new();
        let tagged = tagger.tag(&s);
        prop_assert_eq!(tagged.len(), tokenize(&s).len());
    }

    #[test]
    fn parser_output_is_a_single_rooted_tree_or_error(s in "[a-z ]{1,60}") {
        let tagger = PosTagger::new();
        let parser = RuleDependencyParser::new();
        if let Ok(tree) = parser.parse(&tagger.tag(&s)) {
            // Exactly one root.
            let roots = (0..tree.len()).filter(|&i| tree.head_of(i).is_none()).count();
            prop_assert_eq!(roots, 1);
            // Acyclic: walking up from any node terminates.
            for start in 0..tree.len() {
                let mut cur = start;
                let mut steps = 0;
                while let Some(h) = tree.head_of(cur) {
                    cur = h;
                    steps += 1;
                    prop_assert!(steps <= tree.len(), "cycle from {start}");
                }
            }
        }
    }

    // ---------------- Lemmatizer ----------------
    #[test]
    fn verb_lemma_is_idempotent(s in "[a-z]{1,12}") {
        let l = Lemmatizer::new();
        let once = l.verb_lemma(&s);
        // Lemmatizing a lemma may simplify further at most once more for
        // pathological inputs, but must stabilize by the second pass.
        let twice = l.verb_lemma(&once);
        let thrice = l.verb_lemma(&twice);
        prop_assert_eq!(&twice, &thrice, "input {:?} lemma chain {:?} -> {:?} -> {:?}", s, once, twice, thrice);
    }

    #[test]
    fn noun_lemma_never_grows(s in "[a-z]{1,12}") {
        let l = Lemmatizer::new();
        prop_assert!(l.noun_lemma(&s).len() <= s.len() + 2);
    }

    // ---------------- Embeddings ----------------
    #[test]
    fn cosine_is_bounded_and_symmetric(a in "[a-z]{1,10}", b in "[a-z]{1,10}") {
        let e = Embedder::new();
        let s1 = e.similarity(&a, &b);
        let s2 = e.similarity(&b, &a);
        prop_assert!((-1.01..=1.01).contains(&s1));
        prop_assert!((s1 - s2).abs() < 1e-5);
        // Self-similarity is 1 for any non-empty word.
        prop_assert!((e.similarity(&a, &a) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn embeddings_are_unit_norm(w in "[a-z ]{1,20}") {
        let e = Embedder::new();
        let v = e.embed(&w);
        let n = v.norm();
        // Zero only for effectively-empty input.
        if w.trim().is_empty() {
            prop_assert_eq!(n, 0.0);
        } else {
            prop_assert!((n - 1.0).abs() < 1e-4, "norm {n} for {:?}", w);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // Derivations of real parses replay exactly (expensive — fewer cases).
    #[test]
    fn projective_parses_replay_through_arc_standard(
        det in prop::sample::select(vec!["the", "a"]),
        noun in prop::sample::select(vec!["dog", "cat", "man", "wizard"]),
        verb in prop::sample::select(vec!["catches", "watches", "holds"]),
        obj in prop::sample::select(vec!["frisbee", "ball", "hat"]),
    ) {
        let q = format!("{det} {noun} {verb} the {obj}");
        let tagger = PosTagger::new();
        let tree = RuleDependencyParser::new().parse(&tagger.tag(&q)).unwrap();
        prop_assert!(is_projective(&tree));
        let actions = oracle_derivation(&tree).unwrap();
        prop_assert!(replays_to(&tree, &actions));
        prop_assert_eq!(actions.len(), 2 * tree.len() - 1);
    }
}
