//! Lemmatization and voice normalization.
//!
//! The paper's Example 4 ends with "we change the passive voice (*are
//! worn*) to simple present (*wear*)" — SPOC predicates are stored in lemma
//! form so the executor's `maxScore` compares like with like.

use crate::tags::PosTag;
use crate::vocab;
use std::collections::HashMap;

/// Lemmatizer with irregular-form tables and regular suffix stripping.
pub struct Lemmatizer {
    irregular_verbs: HashMap<&'static str, &'static str>,
    irregular_plurals: HashMap<&'static str, &'static str>,
}

impl Default for Lemmatizer {
    fn default() -> Self {
        Self::new()
    }
}

impl Lemmatizer {
    /// Build the lemmatizer from the shared vocabulary tables.
    pub fn new() -> Self {
        Lemmatizer {
            irregular_verbs: vocab::IRREGULAR_VERBS.iter().copied().collect(),
            irregular_plurals: vocab::IRREGULAR_PLURALS.iter().copied().collect(),
        }
    }

    /// Lemmatize a word given its POS tag.
    pub fn lemmatize(&self, word: &str, tag: PosTag) -> String {
        if tag.is_verb() {
            self.verb_lemma(word)
        } else if tag.is_noun() {
            self.noun_lemma(word)
        } else {
            word.to_owned()
        }
    }

    /// Lemma of a verb form ("worn" → "wear", "carried" → "carry",
    /// "sitting" → "sit").
    pub fn verb_lemma(&self, form: &str) -> String {
        if let Some(lemma) = self.irregular_verbs.get(form) {
            return (*lemma).to_owned();
        }
        if let Some(stem) = form.strip_suffix("ing") {
            return undouble(restore_e(stem, form));
        }
        if let Some(stem) = form.strip_suffix("ied") {
            return format!("{stem}y");
        }
        if let Some(stem) = form.strip_suffix("ed") {
            return undouble(restore_e(stem, form));
        }
        if let Some(stem) = form.strip_suffix("ies") {
            return format!("{stem}y");
        }
        if let Some(stem) = form.strip_suffix("es") {
            if stem.ends_with("ch") || stem.ends_with("sh") || stem.ends_with('x') || stem.ends_with('s') {
                return stem.to_owned();
            }
        }
        if let Some(stem) = form.strip_suffix('s') {
            if !form.ends_with("ss") {
                return stem.to_owned();
            }
        }
        form.to_owned()
    }

    /// Singular of a noun ("dogs" → "dog", "people" → "person").
    pub fn noun_lemma(&self, form: &str) -> String {
        if let Some(singular) = self.irregular_plurals.get(form) {
            return (*singular).to_owned();
        }
        if let Some(stem) = form.strip_suffix("ies") {
            return format!("{stem}y");
        }
        if let Some(stem) = form.strip_suffix("es") {
            if stem.ends_with("ch") || stem.ends_with("sh") || stem.ends_with('x') || stem.ends_with('s') {
                return stem.to_owned();
            }
        }
        if let Some(stem) = form.strip_suffix('s') {
            if !form.ends_with("ss") && !form.ends_with("us") && !form.ends_with("is") {
                return stem.to_owned();
            }
        }
        form.to_owned()
    }
}

/// Restore a dropped final "e" for stems that need it: "riding" → "rid" →
/// "ride"; decided by whether the bare stem is a known verb.
fn restore_e(stem: &str, _original: &str) -> String {
    let known: bool = vocab::known_verb_forms().any(|v| v == stem);
    if known {
        return stem.to_owned();
    }
    let with_e = format!("{stem}e");
    if vocab::known_verb_forms().any(|v| v == with_e) {
        return with_e;
    }
    stem.to_owned()
}

/// Undo consonant doubling: "sitting" → "sitt" → "sit".
fn undouble(stem: String) -> String {
    let bytes = stem.as_bytes();
    if bytes.len() >= 2
        && bytes[bytes.len() - 1] == bytes[bytes.len() - 2]
        && !matches!(bytes[bytes.len() - 1], b'l' | b's' | b'e')
    {
        let undoubled = &stem[..stem.len() - 1];
        if vocab::known_verb_forms().any(|v| v == undoubled) {
            return undoubled.to_owned();
        }
    }
    stem
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passive_to_simple_present() {
        // The paper's Example 4: "are worn" → "wear".
        let l = Lemmatizer::new();
        assert_eq!(l.verb_lemma("worn"), "wear");
    }

    #[test]
    fn regular_verb_suffixes() {
        let l = Lemmatizer::new();
        assert_eq!(l.verb_lemma("jumped"), "jump");
        assert_eq!(l.verb_lemma("carried"), "carry");
        assert_eq!(l.verb_lemma("carries"), "carry");
        assert_eq!(l.verb_lemma("watches"), "watch");
        assert_eq!(l.verb_lemma("wears"), "wear");
    }

    #[test]
    fn gerunds() {
        let l = Lemmatizer::new();
        assert_eq!(l.verb_lemma("sitting"), "sit");
        assert_eq!(l.verb_lemma("riding"), "ride");
        assert_eq!(l.verb_lemma("jumping"), "jump");
        assert_eq!(l.verb_lemma("hanging"), "hang");
        assert_eq!(l.verb_lemma("running"), "run");
    }

    #[test]
    fn irregular_verbs() {
        let l = Lemmatizer::new();
        assert_eq!(l.verb_lemma("caught"), "catch");
        assert_eq!(l.verb_lemma("held"), "hold");
        assert_eq!(l.verb_lemma("sat"), "sit");
        assert_eq!(l.verb_lemma("were"), "be");
        assert_eq!(l.verb_lemma("is"), "be");
    }

    #[test]
    fn noun_plurals() {
        let l = Lemmatizer::new();
        assert_eq!(l.noun_lemma("dogs"), "dog");
        assert_eq!(l.noun_lemma("fences"), "fence");
        assert_eq!(l.noun_lemma("ladies"), "lady");
        assert_eq!(l.noun_lemma("people"), "person");
        assert_eq!(l.noun_lemma("children"), "child");
        // -ss / -us / -is words are not plurals.
        assert_eq!(l.noun_lemma("grass"), "grass");
        assert_eq!(l.noun_lemma("bus"), "bus");
    }

    #[test]
    fn lemmatize_respects_tag() {
        let l = Lemmatizer::new();
        assert_eq!(l.lemmatize("worn", PosTag::VBN), "wear");
        assert_eq!(l.lemmatize("dogs", PosTag::NNS), "dog");
        // Non noun/verb tags pass through.
        assert_eq!(l.lemmatize("frequently", PosTag::RB), "frequently");
    }

    #[test]
    fn already_lemma_forms_are_stable() {
        let l = Lemmatizer::new();
        assert_eq!(l.verb_lemma("wear"), "wear");
        assert_eq!(l.noun_lemma("dog"), "dog");
    }
}
