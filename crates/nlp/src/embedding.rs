//! Deterministic concept-cluster word embeddings.
//!
//! Algorithm 3's `maxScore` "works by converting the inputs to embeddings
//! and filtering out the most similar type based on cosine similarity"
//! (§V-A, citing word2vec). Pre-trained vectors are replaced here by a
//! deterministic construction over the concept taxonomy in [`crate::vocab`]:
//!
//! * every concept cluster gets a unit direction seeded by its name;
//! * every parent field gets a unit direction seeded by its name;
//! * a word's vector is `w_field · field_dir + w_cluster · cluster_dir +
//!   w_word · word_dir`, normalized.
//!
//! The weights are chosen so that, in expectation over the pseudo-random
//! directions: same-cluster pairs score ≈ 0.87, same-field pairs ≈ 0.35,
//! and unrelated pairs ≈ 0. That is all `maxScore` needs — synonyms beat
//! siblings beat strangers — and it is bit-reproducible across runs.
//!
//! Multi-word phrases ("in front of", "girlfriend of") that appear as
//! cluster members embed as members; other phrases fall back to the mean of
//! their word vectors.

use crate::vocab;
use serde::{Deserialize, Serialize};

/// Embedding dimensionality. 64 keeps random directions nearly orthogonal
/// (expected |cos| ≈ 1/√64 ≈ 0.125) while staying cheap to compare.
pub const DIM: usize = 64;

const W_FIELD: f32 = 0.45;
const W_CLUSTER: f32 = 1.0;
const W_WORD: f32 = 0.45;

/// A dense embedding vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Embedding(pub Vec<f32>);

impl Embedding {
    /// The zero vector (embedding of the empty string).
    pub fn zero() -> Self {
        Embedding(vec![0.0; DIM])
    }

    /// L2 norm.
    pub fn norm(&self) -> f32 {
        self.0.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Normalize in place to unit length (no-op for the zero vector).
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            for x in &mut self.0 {
                *x /= n;
            }
        }
    }
}

/// Cosine similarity between two embeddings; 0.0 when either is zero.
pub fn cosine_similarity(a: &Embedding, b: &Embedding) -> f32 {
    let dot: f32 = a.0.iter().zip(&b.0).map(|(x, y)| x * y).sum();
    let na = a.norm();
    let nb = b.norm();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// The embedder: maps words and phrases to vectors.
#[derive(Debug, Default, Clone)]
pub struct Embedder;

impl Embedder {
    /// Create an embedder.
    pub fn new() -> Self {
        Embedder
    }

    /// Embed a word or phrase.
    pub fn embed(&self, text: &str) -> Embedding {
        let text = text.trim().to_lowercase();
        if text.is_empty() {
            return Embedding::zero();
        }
        if let Some(cluster) = vocab::cluster_of(&text) {
            return member_vector(cluster, &text);
        }
        // Phrase fallback: mean of word vectors.
        let words: Vec<&str> = text.split_whitespace().collect();
        if words.len() > 1 {
            let mut acc = Embedding::zero();
            for w in &words {
                let v = self.embed(w);
                for (a, b) in acc.0.iter_mut().zip(&v.0) {
                    *a += b;
                }
            }
            acc.normalize();
            return acc;
        }
        // Unknown single word: its own pseudo-random direction.
        let mut v = seeded_direction(&format!("word:{text}"));
        v.normalize();
        v
    }

    /// Cosine similarity between the embeddings of two strings — the
    /// `maxScore` comparison primitive.
    pub fn similarity(&self, a: &str, b: &str) -> f32 {
        cosine_similarity(&self.embed(a), &self.embed(b))
    }

    /// `maxScore` (§V-A): among `candidates`, the one whose embedding is
    /// most similar to `query`; ties break to the earliest candidate.
    /// Returns `(index, similarity)`.
    pub fn max_score<'a>(
        &self,
        query: &str,
        candidates: impl IntoIterator<Item = &'a str>,
    ) -> Option<(usize, f32)> {
        let q = self.embed(query);
        let mut best: Option<(usize, f32)> = None;
        for (i, cand) in candidates.into_iter().enumerate() {
            let s = cosine_similarity(&q, &self.embed(cand));
            if best.is_none_or(|(_, bs)| s > bs) {
                best = Some((i, s));
            }
        }
        best
    }
}

/// Composite vector for a member of a cluster.
fn member_vector(cluster: &vocab::ConceptCluster, word: &str) -> Embedding {
    let field = seeded_direction(&format!("field:{}", cluster.parent));
    let cluster_dir = seeded_direction(&format!("cluster:{}", cluster.name));
    let word_dir = seeded_direction(&format!("word:{word}"));
    let mut v = Embedding::zero();
    for i in 0..DIM {
        v.0[i] = W_FIELD * field.0[i] + W_CLUSTER * cluster_dir.0[i] + W_WORD * word_dir.0[i];
    }
    v.normalize();
    v
}

/// A deterministic pseudo-random unit direction derived from a seed string
/// (splitmix64 over the FNV-1a hash of the seed).
fn seeded_direction(seed: &str) -> Embedding {
    let mut state = fnv1a(seed);
    let mut v = Embedding::zero();
    for x in &mut v.0 {
        state = splitmix64(state);
        // Map to roughly standard normal via sum of uniforms.
        let u1 = (state >> 11) as f32 / (1u64 << 53) as f32;
        state = splitmix64(state);
        let u2 = (state >> 11) as f32 / (1u64 << 53) as f32;
        *x = (u1 + u2) - 1.0;
    }
    v.normalize();
    v
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synonyms_score_high() {
        let e = Embedder::new();
        // The paper's example: "dog" vs "puppy" must be considered
        // consistent (§VII experimental setting).
        assert!(e.similarity("dog", "puppy") > 0.7);
        assert!(e.similarity("worn", "wear") > 0.7);
        assert!(e.similarity("sofa", "couch") > 0.7);
    }

    #[test]
    fn siblings_score_moderate() {
        let e = Embedder::new();
        let dog_cat = e.similarity("dog", "cat");
        assert!(dog_cat > 0.1 && dog_cat < 0.7, "dog/cat = {dog_cat}");
    }

    #[test]
    fn strangers_score_low() {
        let e = Embedder::new();
        assert!(e.similarity("dog", "fence").abs() < 0.45);
        assert!(e.similarity("wear", "car").abs() < 0.45);
    }

    #[test]
    fn synonyms_beat_siblings_beat_strangers() {
        let e = Embedder::new();
        let syn = e.similarity("dog", "puppy");
        let sib = e.similarity("dog", "horse");
        let stranger = e.similarity("dog", "window");
        assert!(syn > sib, "{syn} !> {sib}");
        assert!(sib > stranger, "{sib} !> {stranger}");
    }

    #[test]
    fn embeddings_are_deterministic() {
        let e = Embedder::new();
        assert_eq!(e.embed("wizard"), e.embed("wizard"));
        assert_eq!(e.embed("in front of"), e.embed("in front of"));
    }

    #[test]
    fn phrase_members_hit_their_cluster() {
        let e = Embedder::new();
        // "in front of" is a cluster member, "facing" too.
        assert!(e.similarity("in front of", "facing") > 0.7);
        // near≈beside
        assert!(e.similarity("near", "beside") > 0.7);
    }

    #[test]
    fn unknown_phrase_falls_back_to_word_mean() {
        let e = Embedder::new();
        let v = e.embed("purple dog");
        assert!((v.norm() - 1.0).abs() < 1e-5);
        // Still closer to "dog" than to an unrelated word.
        assert!(
            cosine_similarity(&v, &e.embed("puppy"))
                > cosine_similarity(&v, &e.embed("window"))
        );
    }

    #[test]
    fn max_score_picks_best_candidate() {
        let e = Embedder::new();
        let cands = ["near", "wearing", "in front of", "holding"];
        let (idx, score) = e.max_score("facing", cands).unwrap();
        assert_eq!(cands[idx], "in front of");
        assert!(score > 0.6);
    }

    #[test]
    fn max_score_of_empty_candidates_is_none() {
        let e = Embedder::new();
        assert!(e.max_score("dog", std::iter::empty()).is_none());
    }

    #[test]
    fn empty_string_embeds_to_zero() {
        let e = Embedder::new();
        assert_eq!(e.embed(""), Embedding::zero());
        assert_eq!(e.similarity("", "dog"), 0.0);
    }

    #[test]
    fn unit_norm_invariant() {
        let e = Embedder::new();
        for w in ["dog", "wizard", "in front of", "zzz-unknown"] {
            let n = e.embed(w).norm();
            assert!((n - 1.0).abs() < 1e-5, "{w}: {n}");
        }
    }
}
