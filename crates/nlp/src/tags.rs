//! The Penn Treebank part-of-speech tag set.
//!
//! The paper (§IV-B) observes that "there are 45 tags produced by Stanford
//! POS Tagger" and that only four coarse classes (nouns, verbs, adjectives,
//! adverbs) are needed to segment clauses. This module carries the full tag
//! set so that observation is reproducible, plus the coarse-class predicates
//! the clause splitter uses.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A Penn Treebank POS tag (36 word tags + 9 punctuation/symbol tags = 45).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)] // the variants are the standard PTB inventory
pub enum PosTag {
    // --- word tags ---
    CC, CD, DT, EX, FW, IN, JJ, JJR, JJS, LS, MD,
    NN, NNS, NNP, NNPS, PDT, POS, PRP, PRPS, // PRPS = PRP$
    RB, RBR, RBS, RP, SYM, TO, UH,
    VB, VBD, VBG, VBN, VBP, VBZ,
    WDT, WP, WPS, // WPS = WP$
    WRB,
    // --- punctuation / symbol tags ---
    Period, Comma, Colon, LParen, RParen, OpenQuote, CloseQuote, Dollar, Hash,
}

impl PosTag {
    /// All 45 tags, in canonical order.
    pub const ALL: [PosTag; 45] = [
        PosTag::CC, PosTag::CD, PosTag::DT, PosTag::EX, PosTag::FW, PosTag::IN,
        PosTag::JJ, PosTag::JJR, PosTag::JJS, PosTag::LS, PosTag::MD,
        PosTag::NN, PosTag::NNS, PosTag::NNP, PosTag::NNPS, PosTag::PDT,
        PosTag::POS, PosTag::PRP, PosTag::PRPS, PosTag::RB, PosTag::RBR,
        PosTag::RBS, PosTag::RP, PosTag::SYM, PosTag::TO, PosTag::UH,
        PosTag::VB, PosTag::VBD, PosTag::VBG, PosTag::VBN, PosTag::VBP,
        PosTag::VBZ, PosTag::WDT, PosTag::WP, PosTag::WPS, PosTag::WRB,
        PosTag::Period, PosTag::Comma, PosTag::Colon, PosTag::LParen,
        PosTag::RParen, PosTag::OpenQuote, PosTag::CloseQuote, PosTag::Dollar,
        PosTag::Hash,
    ];

    /// The PTB surface string of this tag.
    pub fn as_str(self) -> &'static str {
        match self {
            PosTag::CC => "CC", PosTag::CD => "CD", PosTag::DT => "DT",
            PosTag::EX => "EX", PosTag::FW => "FW", PosTag::IN => "IN",
            PosTag::JJ => "JJ", PosTag::JJR => "JJR", PosTag::JJS => "JJS",
            PosTag::LS => "LS", PosTag::MD => "MD", PosTag::NN => "NN",
            PosTag::NNS => "NNS", PosTag::NNP => "NNP", PosTag::NNPS => "NNPS",
            PosTag::PDT => "PDT", PosTag::POS => "POS", PosTag::PRP => "PRP",
            PosTag::PRPS => "PRP$", PosTag::RB => "RB", PosTag::RBR => "RBR",
            PosTag::RBS => "RBS", PosTag::RP => "RP", PosTag::SYM => "SYM",
            PosTag::TO => "TO", PosTag::UH => "UH", PosTag::VB => "VB",
            PosTag::VBD => "VBD", PosTag::VBG => "VBG", PosTag::VBN => "VBN",
            PosTag::VBP => "VBP", PosTag::VBZ => "VBZ", PosTag::WDT => "WDT",
            PosTag::WP => "WP", PosTag::WPS => "WP$", PosTag::WRB => "WRB",
            PosTag::Period => ".", PosTag::Comma => ",", PosTag::Colon => ":",
            PosTag::LParen => "-LRB-", PosTag::RParen => "-RRB-",
            PosTag::OpenQuote => "``", PosTag::CloseQuote => "''",
            PosTag::Dollar => "$", PosTag::Hash => "#",
        }
    }

    /// Parse a PTB surface string back to a tag.
    pub fn from_str_opt(s: &str) -> Option<PosTag> {
        PosTag::ALL.iter().copied().find(|t| t.as_str() == s)
    }

    /// Noun-class tag (NN, NNS, NNP, NNPS) — one of the paper's four
    /// segmentation classes.
    pub fn is_noun(self) -> bool {
        matches!(self, PosTag::NN | PosTag::NNS | PosTag::NNP | PosTag::NNPS)
    }

    /// Verb-class tag (VB, VBD, VBG, VBN, VBP, VBZ).
    pub fn is_verb(self) -> bool {
        matches!(
            self,
            PosTag::VB | PosTag::VBD | PosTag::VBG | PosTag::VBN | PosTag::VBP | PosTag::VBZ
        )
    }

    /// Adjective-class tag (JJ, JJR, JJS).
    pub fn is_adjective(self) -> bool {
        matches!(self, PosTag::JJ | PosTag::JJR | PosTag::JJS)
    }

    /// Adverb-class tag (RB, RBR, RBS, WRB).
    pub fn is_adverb(self) -> bool {
        matches!(self, PosTag::RB | PosTag::RBR | PosTag::RBS | PosTag::WRB)
    }

    /// One of the paper's four clause-segmentation classes (§IV-B strategy
    /// (1): "we only use 4 tags ... out of 45").
    pub fn is_segmentation_class(self) -> bool {
        self.is_noun() || self.is_verb() || self.is_adjective() || self.is_adverb()
    }

    /// WH-word tag (WDT, WP, WP$, WRB).
    pub fn is_wh(self) -> bool {
        matches!(self, PosTag::WDT | PosTag::WP | PosTag::WPS | PosTag::WRB)
    }

    /// Punctuation or symbol tag.
    pub fn is_punct(self) -> bool {
        matches!(
            self,
            PosTag::Period
                | PosTag::Comma
                | PosTag::Colon
                | PosTag::LParen
                | PosTag::RParen
                | PosTag::OpenQuote
                | PosTag::CloseQuote
                | PosTag::Dollar
                | PosTag::Hash
        )
    }
}

impl fmt::Display for PosTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn there_are_exactly_45_tags() {
        // The paper: "There are 45 tags produced by Stanford POS Tagger".
        assert_eq!(PosTag::ALL.len(), 45);
        // And they are distinct.
        let mut strings: Vec<_> = PosTag::ALL.iter().map(|t| t.as_str()).collect();
        strings.sort();
        strings.dedup();
        assert_eq!(strings.len(), 45);
    }

    #[test]
    fn string_roundtrip() {
        for tag in PosTag::ALL {
            assert_eq!(PosTag::from_str_opt(tag.as_str()), Some(tag));
        }
        assert_eq!(PosTag::from_str_opt("XYZ"), None);
    }

    #[test]
    fn coarse_classes() {
        assert!(PosTag::NNS.is_noun());
        assert!(PosTag::VBN.is_verb());
        assert!(PosTag::JJS.is_adjective());
        assert!(PosTag::RBS.is_adverb());
        assert!(!PosTag::IN.is_segmentation_class());
        assert!(PosTag::NN.is_segmentation_class());
    }

    #[test]
    fn only_four_coarse_classes_count_for_segmentation() {
        let seg: Vec<_> = PosTag::ALL
            .iter()
            .filter(|t| t.is_segmentation_class())
            .collect();
        // 4 noun + 6 verb + 3 adjective + 4 adverb (incl. WRB) tags.
        assert_eq!(seg.len(), 17);
    }

    #[test]
    fn wh_and_punct_predicates() {
        assert!(PosTag::WP.is_wh());
        assert!(PosTag::WRB.is_wh());
        assert!(!PosTag::NN.is_wh());
        assert!(PosTag::Period.is_punct());
        assert!(!PosTag::FW.is_punct());
    }
}
