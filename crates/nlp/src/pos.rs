//! Part-of-speech tagging over the Penn Treebank tag set.
//!
//! The stand-in for the Stanford MaxEnt tagger (Eq. (4) of the paper). The
//! MaxEnt model's `arg max_y exp(Σ λ_i f_i(x, y)) / Z(x)` is replaced by a
//! deterministic pipeline with the same shape: a lexicon proposes candidate
//! tags per word (the feature templates), a contextual disambiguation pass
//! picks the arg-max candidate (the weights, here encoded as rule
//! priorities), and a morphological guesser covers unknown words.
//!
//! The guesser intentionally reproduces the paper's Fig. 8a failure mode:
//! a lexicon-unknown word with a Latinate ending (the paper's example is
//! *canis*) is tagged `FW` (foreign word), which later derails SPOC
//! extraction exactly as described in the error analysis.

use crate::tags::PosTag;
use crate::token::{tokenize, Token};
use crate::vocab;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A token paired with its assigned POS tag.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaggedToken {
    /// The underlying token.
    pub token: Token,
    /// The assigned Penn Treebank tag.
    pub tag: PosTag,
}

impl TaggedToken {
    /// The case-folded text of the token.
    pub fn text(&self) -> &str {
        &self.token.text
    }
}

/// Candidate tags for a word, in lexical priority order.
type Candidates = Vec<PosTag>;

/// Words that exist in the concept taxonomy (so the *embedder* knows them)
/// but are deliberately absent from the tagger lexicon — reproducing the
/// Fig. 8a error where "canis" is parsed as a foreign word.
const TAGGER_UNKNOWN: &[&str] = &["canis"];

/// The rule-based PTB tagger.
pub struct PosTagger {
    lexicon: HashMap<&'static str, Candidates>,
}

impl Default for PosTagger {
    fn default() -> Self {
        Self::new()
    }
}

impl PosTagger {
    /// Build the tagger (constructs the lexicon from the shared vocabulary).
    pub fn new() -> Self {
        let mut lexicon: HashMap<&'static str, Candidates> = HashMap::new();
        let mut add = |w: &'static str, t: PosTag| {
            let entry = lexicon.entry(w).or_default();
            if !entry.contains(&t) {
                entry.push(t);
            }
        };

        for &w in vocab::DETERMINERS {
            add(w, PosTag::DT);
        }
        for &w in vocab::PREPOSITIONS {
            add(w, PosTag::IN);
        }
        for &w in vocab::PRONOUNS {
            add(w, PosTag::PRP);
        }
        for &w in vocab::POSSESSIVE_PRONOUNS {
            add(w, PosTag::PRPS);
        }
        for &w in vocab::WH_PRONOUNS {
            add(w, PosTag::WP);
        }
        for &w in vocab::WH_DETERMINERS {
            add(w, PosTag::WDT);
        }
        for &w in vocab::WH_ADVERBS {
            add(w, PosTag::WRB);
        }
        for &w in vocab::MODALS {
            add(w, PosTag::MD);
        }
        for &w in vocab::CONJUNCTIONS {
            add(w, PosTag::CC);
        }
        for &w in vocab::ADVERBS {
            add(w, PosTag::RB);
        }
        for &w in vocab::SUPERLATIVE_ADVERBS {
            add(w, PosTag::RBS);
        }
        for &w in vocab::ADJECTIVES {
            add(w, PosTag::JJ);
        }
        for &w in vocab::NUMBER_WORDS {
            add(w, PosTag::CD);
        }
        // Auxiliaries / copulas with their inflection-specific tags.
        for (w, t) in [
            ("is", PosTag::VBZ), ("are", PosTag::VBP), ("am", PosTag::VBP),
            ("was", PosTag::VBD), ("were", PosTag::VBD),
            ("be", PosTag::VB), ("been", PosTag::VBN), ("being", PosTag::VBG),
            ("does", PosTag::VBZ), ("do", PosTag::VBP), ("did", PosTag::VBD),
            ("has", PosTag::VBZ), ("have", PosTag::VBP), ("had", PosTag::VBD),
            ("there", PosTag::EX),
        ] {
            add(w, t);
        }
        // Open-class verbs with morphology-derived candidates.
        for form in vocab::known_verb_forms() {
            for t in verb_form_tags(form) {
                add(form, t);
            }
        }
        // Open-class nouns (minus the deliberate unknowns).
        for noun in vocab::known_nouns() {
            if TAGGER_UNKNOWN.contains(&noun) {
                continue;
            }
            let tag = if noun.ends_with('s') && !noun.ends_with("ss") && noun != "bus" {
                PosTag::NNS
            } else {
                PosTag::NN
            };
            add(noun, tag);
            // Regular plural of every known singular noun.
            if tag == PosTag::NN {
                // Leak is bounded: the lexicon is built once per tagger and
                // the plural set is finite (the fixed taxonomy).
                let plural: &'static str = Box::leak(regular_plural(noun).into_boxed_str());
                add(plural, PosTag::NNS);
            }
        }
        PosTagger { lexicon }
    }

    /// Tokenize and tag a question.
    pub fn tag(&self, question: &str) -> Vec<TaggedToken> {
        self.tag_tokens(tokenize(question))
    }

    /// Tag a pre-tokenized question.
    pub fn tag_tokens(&self, tokens: Vec<Token>) -> Vec<TaggedToken> {
        let candidates: Vec<Candidates> = tokens
            .iter()
            .map(|t| self.candidates_for(t))
            .collect();
        let mut tags = Vec::with_capacity(tokens.len());
        for i in 0..tokens.len() {
            let tag = self.disambiguate(&tokens, &candidates, &tags, i);
            tags.push(tag);
        }
        tokens
            .into_iter()
            .zip(tags)
            .map(|(token, tag)| TaggedToken { token, tag })
            .collect()
    }

    /// Candidate tags for a token: lexicon hit or morphological guess.
    fn candidates_for(&self, token: &Token) -> Candidates {
        if token.text == "'s" {
            return vec![PosTag::POS];
        }
        if let Some(punct) = punct_tag(&token.text) {
            return vec![punct];
        }
        if let Some(c) = self.lexicon.get(token.text.as_str()) {
            return c.clone();
        }
        vec![guess_unknown(token)]
    }

    /// Pick the contextual arg-max among a token's candidates (the stand-in
    /// for Eq. (4)'s weighted feature sum).
    fn disambiguate(
        &self,
        tokens: &[Token],
        candidates: &[Candidates],
        assigned: &[PosTag],
        i: usize,
    ) -> PosTag {
        let cands = &candidates[i];
        if cands.len() == 1 {
            return self.contextual_fixups(tokens, candidates, assigned, i, cands[0]);
        }
        let prev = last_non_adverb(assigned);
        let text = tokens[i].text.as_str();

        // Noun/verb ambiguity: nominal context forces the noun reading.
        let has_noun = cands.iter().any(|t| t.is_noun());
        let has_verb = cands.iter().any(|t| t.is_verb());
        if has_noun && has_verb {
            let nominal_context = matches!(
                prev,
                Some(PosTag::DT | PosTag::JJ | PosTag::JJR | PosTag::JJS | PosTag::PRPS
                    | PosTag::CD | PosTag::POS | PosTag::WDT)
            );
            let chosen = if nominal_context {
                *cands.iter().find(|t| t.is_noun()).expect("has noun")
            } else {
                *cands.iter().find(|t| t.is_verb()).expect("has verb")
            };
            return self.contextual_fixups(tokens, candidates, assigned, i, chosen);
        }

        // VB vs VBP: infinitival/do-support context selects the base form.
        if cands.contains(&PosTag::VB) && cands.contains(&PosTag::VBP) {
            let base_context = matches!(prev, Some(PosTag::TO | PosTag::MD))
                || prev_is_do_form(tokens, assigned);
            let chosen = if base_context { PosTag::VB } else { PosTag::VBP };
            return self.contextual_fixups(tokens, candidates, assigned, i, chosen);
        }

        // VBD vs VBN: a preceding be/have auxiliary selects the participle.
        if cands.contains(&PosTag::VBD) && cands.contains(&PosTag::VBN) {
            let chosen = if prev_is_aux(tokens, assigned) {
                PosTag::VBN
            } else {
                PosTag::VBD
            };
            return self.contextual_fixups(tokens, candidates, assigned, i, chosen);
        }

        let _ = text;
        self.contextual_fixups(tokens, candidates, assigned, i, cands[0])
    }

    /// Brill-style transformations applied after the lexical choice.
    fn contextual_fixups(
        &self,
        tokens: &[Token],
        candidates: &[Candidates],
        assigned: &[PosTag],
        i: usize,
        tag: PosTag,
    ) -> PosTag {
        let text = tokens[i].text.as_str();
        let next_cands = candidates.get(i + 1);

        // "that" heading a relative clause is WDT, not DT/IN:
        // "the pets that were situated ..." — next word is a verb or aux.
        if text == "that" {
            let next_is_verbal = next_cands
                .is_some_and(|c| c.iter().any(|t| t.is_verb() || *t == PosTag::MD));
            return if next_is_verbal { PosTag::WDT } else { PosTag::DT };
        }
        // "what kind ..." — WP becomes WDT before a nominal.
        if text == "what" && tag == PosTag::WP {
            let next_is_nominal = next_cands
                .is_some_and(|c| c.iter().any(|t| t.is_noun() || t.is_adjective()));
            if next_is_nominal {
                return PosTag::WDT;
            }
        }
        // "many"/"few" after "how" are JJ (the tagger may know them already,
        // this guards the guesser path).
        if matches!(assigned.last(), Some(PosTag::WRB)) && (text == "many" || text == "few") {
            return PosTag::JJ;
        }
        // Participle after be/have even when the lexicon only offered VBD
        // (covers irregulars listed once).
        if tag == PosTag::VBD && prev_is_aux(tokens, assigned) {
            return PosTag::VBN;
        }
        // A base/present verb form directly after a nominal determiner is a
        // noun conversion ("the watch", "a run").
        if matches!(tag, PosTag::VB | PosTag::VBP)
            && matches!(
                last_non_adverb(assigned),
                Some(PosTag::DT | PosTag::PRPS | PosTag::JJ | PosTag::CD | PosTag::POS)
            )
        {
            return PosTag::NN;
        }
        tag
    }
}

/// Tags a verb form can take, inferred from its morphology.
fn verb_form_tags(form: &str) -> Candidates {
    if form.ends_with("ing") {
        vec![PosTag::VBG]
    } else if vocab::IRREGULAR_VERBS
        .iter()
        .any(|(f, _)| *f == form)
    {
        // Irregular inflected form: past/participle, disambiguated in
        // context.
        vec![PosTag::VBD, PosTag::VBN]
    } else if form.ends_with("ed") {
        vec![PosTag::VBD, PosTag::VBN]
    } else if form.ends_with('s') {
        vec![PosTag::VBZ]
    } else {
        vec![PosTag::VBP, PosTag::VB]
    }
}

/// Regular plural formation (used to extend the noun lexicon).
fn regular_plural(noun: &str) -> String {
    if noun.ends_with('s')
        || noun.ends_with('x')
        || noun.ends_with("ch")
        || noun.ends_with("sh")
    {
        format!("{noun}es")
    } else if noun.ends_with('y')
        && !noun.ends_with("ay")
        && !noun.ends_with("ey")
        && !noun.ends_with("oy")
    {
        format!("{}ies", &noun[..noun.len() - 1])
    } else {
        format!("{noun}s")
    }
}

/// Tag for punctuation tokens.
fn punct_tag(text: &str) -> Option<PosTag> {
    match text {
        "." | "?" | "!" => Some(PosTag::Period),
        "," => Some(PosTag::Comma),
        ":" | ";" => Some(PosTag::Colon),
        "(" => Some(PosTag::LParen),
        ")" => Some(PosTag::RParen),
        "\"" | "``" => Some(PosTag::OpenQuote),
        "''" => Some(PosTag::CloseQuote),
        "$" => Some(PosTag::Dollar),
        "#" => Some(PosTag::Hash),
        _ => None,
    }
}

/// Morphological guesser for lexicon-unknown words.
fn guess_unknown(token: &Token) -> PosTag {
    let text = token.text.as_str();
    if text.chars().all(|c| c.is_ascii_digit()) {
        return PosTag::CD;
    }
    if text.ends_with("ly") {
        return PosTag::RB;
    }
    if text.ends_with("ing") && text.len() > 4 {
        return PosTag::VBG;
    }
    if text.ends_with("ed") && text.len() > 3 {
        return PosTag::VBD;
    }
    // Fig. 8a: unknown Latinate word → FW.
    if vocab::FOREIGN_ENDINGS.iter().any(|e| text.ends_with(e)) && text.len() > 3 {
        return PosTag::FW;
    }
    // Capitalized unknown words are proper nouns; a sentence-initial
    // capital also counts here because closed-class sentence starters
    // ("Does", "What", "The") are all lexicon-known and never reach the
    // guesser.
    if token.surface.chars().next().is_some_and(char::is_uppercase) {
        return if text.ends_with('s') {
            PosTag::NNPS
        } else {
            PosTag::NNP
        };
    }
    if text.ends_with('s') && text.len() > 2 {
        return PosTag::NNS;
    }
    PosTag::NN
}

/// The most recent assigned tag that is not an adverb (adverbs are
/// transparent for agreement contexts: "is most frequently hanging").
fn last_non_adverb(assigned: &[PosTag]) -> Option<PosTag> {
    assigned.iter().rev().copied().find(|t| !t.is_adverb())
}

/// Whether the closest preceding non-adverb word is a be/have auxiliary.
fn prev_is_aux(tokens: &[Token], assigned: &[PosTag]) -> bool {
    for j in (0..assigned.len()).rev() {
        if assigned[j].is_adverb() {
            continue;
        }
        let w = tokens[j].text.as_str();
        return matches!(
            w,
            "is" | "are" | "am" | "was" | "were" | "be" | "been" | "being"
                | "has" | "have" | "had"
        );
    }
    false
}

/// Whether a preceding do-form governs this position ("does the dog ...
/// appear"). Do-support skips the whole subject NP, including embedded
/// relative clauses ("does the dog that is sitting on the bed appear").
fn prev_is_do_form(tokens: &[Token], assigned: &[PosTag]) -> bool {
    for j in (0..assigned.len()).rev() {
        let t = assigned[j];
        let w = tokens[j].text.as_str();
        let transparent = t.is_adverb()
            || t.is_noun()
            || t.is_adjective()
            || t.is_wh()
            || matches!(
                t,
                PosTag::DT | PosTag::IN | PosTag::POS | PosTag::PRPS | PosTag::CD
                    | PosTag::VBG | PosTag::VBN
            )
            || matches!(w, "is" | "are" | "was" | "were" | "be" | "been" | "being");
        if transparent {
            continue;
        }
        return matches!(w, "does" | "do" | "did");
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag_strs(q: &str) -> Vec<(String, PosTag)> {
        PosTagger::new()
            .tag(q)
            .into_iter()
            .map(|t| (t.token.text.clone(), t.tag))
            .collect()
    }

    fn tags_of(q: &str) -> Vec<PosTag> {
        tag_strs(q).into_iter().map(|(_, t)| t).collect()
    }

    #[test]
    fn example4_passive_main_clause() {
        // "What kind of clothes are worn by the wizard"
        let tags = tag_strs("What kind of clothes are worn by the wizard?");
        let expect = [
            ("what", PosTag::WDT),
            ("kind", PosTag::NN),
            ("of", PosTag::IN),
            ("clothes", PosTag::NNS),
            ("are", PosTag::VBP),
            ("worn", PosTag::VBN),
            ("by", PosTag::IN),
            ("the", PosTag::DT),
            ("wizard", PosTag::NN),
            ("?", PosTag::Period),
        ];
        for (got, want) in tags.iter().zip(expect.iter()) {
            assert_eq!((got.0.as_str(), got.1), *want, "full: {tags:?}");
        }
    }

    #[test]
    fn relative_that_is_wdt() {
        let tags = tag_strs("the pets that were situated in the car");
        let that = tags.iter().find(|(w, _)| w == "that").unwrap();
        assert_eq!(that.1, PosTag::WDT);
        let situated = tags.iter().find(|(w, _)| w == "situated").unwrap();
        assert_eq!(situated.1, PosTag::VBN);
    }

    #[test]
    fn demonstrative_that_is_dt() {
        let tags = tag_strs("that dog is near the man");
        assert_eq!(tags[0], ("that".to_owned(), PosTag::DT));
    }

    #[test]
    fn progressive_with_adverbs() {
        // "is most frequently hanging out with"
        let tags = tag_strs("the wizard is most frequently hanging out with her");
        let pairs: Vec<_> = tags.iter().map(|(w, t)| (w.as_str(), *t)).collect();
        assert!(pairs.contains(&("most", PosTag::RBS)));
        assert!(pairs.contains(&("frequently", PosTag::RB)));
        assert!(pairs.contains(&("hanging", PosTag::VBG)));
        assert!(pairs.contains(&("out", PosTag::RB)));
    }

    #[test]
    fn canis_is_foreign_word() {
        // Fig. 8a: "the kind of canis that is sitting on the bed".
        let tags = tag_strs("Does the kind of canis that is sitting on the bed appear?");
        let canis = tags.iter().find(|(w, _)| w == "canis").unwrap();
        assert_eq!(canis.1, PosTag::FW);
    }

    #[test]
    fn how_many_counting_question() {
        let tags = tag_strs("How many dogs are sitting on the grass?");
        let pairs: Vec<_> = tags.iter().map(|(w, t)| (w.as_str(), *t)).collect();
        assert!(pairs.contains(&("how", PosTag::WRB)));
        assert!(pairs.contains(&("many", PosTag::JJ)));
        assert!(pairs.contains(&("dogs", PosTag::NNS)));
        assert!(pairs.contains(&("sitting", PosTag::VBG)));
    }

    #[test]
    fn do_support_base_verb() {
        let tags = tag_strs("Does the dog appear in front of the car?");
        let pairs: Vec<_> = tags.iter().map(|(w, t)| (w.as_str(), *t)).collect();
        assert!(pairs.contains(&("does", PosTag::VBZ)));
        assert!(pairs.contains(&("appear", PosTag::VB)), "{pairs:?}");
    }

    #[test]
    fn possessive_tagging() {
        let tags = tag_strs("Harry Potter's girlfriend");
        let pairs: Vec<_> = tags.iter().map(|(w, t)| (w.as_str(), *t)).collect();
        assert_eq!(pairs[0], ("harry", PosTag::NNP));
        assert_eq!(pairs[1], ("potter", PosTag::NNP));
        assert_eq!(pairs[2], ("'s", PosTag::POS));
        assert_eq!(pairs[3].1, PosTag::NN);
    }

    #[test]
    fn noun_verb_ambiguity_resolved_by_context() {
        // "watch" is noun after a determiner, verb otherwise.
        let noun_read = tag_strs("the watch is on the table");
        assert_eq!(noun_read[1], ("watch".to_owned(), PosTag::NN));
        let verb_read = tag_strs("they watch the dog");
        assert_eq!(verb_read[1].1, PosTag::VBP);
    }

    #[test]
    fn plural_nouns_from_regular_morphology() {
        let tags = tag_strs("the wizards and the fences");
        let pairs: Vec<_> = tags.iter().map(|(w, t)| (w.as_str(), *t)).collect();
        assert!(pairs.contains(&("wizards", PosTag::NNS)));
        assert!(pairs.contains(&("fences", PosTag::NNS)));
        assert!(pairs.contains(&("and", PosTag::CC)));
    }

    #[test]
    fn digits_are_cd() {
        assert_eq!(tags_of("3 dogs")[0], PosTag::CD);
        assert_eq!(tags_of("two dogs")[0], PosTag::CD);
    }

    #[test]
    fn unknown_capitalized_word_is_proper_noun() {
        let tags = tag_strs("a dog near Hogwarts");
        let h = tags.iter().find(|(w, _)| w == "hogwarts").unwrap();
        // ends in 's' and mid-sentence capitalized → NNPS;
        assert!(matches!(h.1, PosTag::NNP | PosTag::NNPS));
    }

    #[test]
    fn every_question_word_gets_some_tag() {
        // Smoke test: no panics, one tag per token on a long question.
        let q = "What kind of clothes are worn by the wizard who is most \
                 frequently hanging out with Harry Potter's girlfriend?";
        let tagged = PosTagger::new().tag(q);
        assert_eq!(tagged.len(), tokenize(q).len());
    }
}
