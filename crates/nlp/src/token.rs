//! Tokenization.
//!
//! Splits a question into word and punctuation tokens. Two details matter
//! for SVQA's questions:
//!
//! * possessives are split PTB-style: `Harry Potter's girlfriend` →
//!   `Harry`, `Potter`, `'s`, `girlfriend` (the `'s` is tagged `POS` and the
//!   dependency parser turns it into an `nmod:poss` relation);
//! * all words are case-folded — the merged graph's labels are lower-case,
//!   and the tagger's lexicon is keyed on folded forms (proper-noun evidence
//!   is carried by the original casing on the token).

use serde::{Deserialize, Serialize};

/// A single token with its original surface form and position.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Token {
    /// The case-folded text used by the tagger and parser.
    pub text: String,
    /// The surface form as written in the question.
    pub surface: String,
    /// Byte offset of the first character in the original question.
    pub offset: usize,
    /// Whether the surface form started with an upper-case letter while not
    /// being sentence-initial (a proper-noun hint for the tagger).
    pub mid_sentence_capitalized: bool,
}

impl Token {
    fn new(surface: &str, offset: usize, sentence_initial: bool) -> Self {
        let first_upper = surface.chars().next().is_some_and(char::is_uppercase);
        Token {
            text: surface.to_lowercase(),
            surface: surface.to_owned(),
            offset,
            mid_sentence_capitalized: first_upper && !sentence_initial,
        }
    }

    /// Whether this token is a single punctuation mark.
    pub fn is_punct(&self) -> bool {
        self.text.chars().all(|c| c.is_ascii_punctuation()) && self.text != "'s"
    }
}

/// Tokenize a question into words and punctuation.
pub fn tokenize(input: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut word_start: Option<usize> = None;
    let mut saw_word = false;

    let flush =
        |tokens: &mut Vec<Token>, input: &str, start: usize, end: usize, saw_word: &mut bool| {
            if start >= end {
                return;
            }
            let raw = &input[start..end];
            // Split trailing possessive: "Potter's" → "Potter" + "'s";
            // plain trailing apostrophe ("dogs'") → "dogs" + "'s".
            if let Some(stem_len) = possessive_split(raw) {
                tokens.push(Token::new(&raw[..stem_len], start, !*saw_word));
                *saw_word = true;
                tokens.push(Token {
                    text: "'s".to_owned(),
                    surface: raw[stem_len..].to_owned(),
                    offset: start + stem_len,
                    mid_sentence_capitalized: false,
                });
            } else {
                tokens.push(Token::new(raw, start, !*saw_word));
                *saw_word = true;
            }
        };

    for (i, ch) in input.char_indices() {
        if ch.is_alphanumeric() || ch == '-' || ch == '\'' {
            if word_start.is_none() {
                word_start = Some(i);
            }
        } else {
            if let Some(start) = word_start.take() {
                flush(&mut tokens, input, start, i, &mut saw_word);
            }
            if !ch.is_whitespace() {
                let end = i + ch.len_utf8();
                tokens.push(Token::new(&input[i..end], i, false));
            }
        }
    }
    if let Some(start) = word_start.take() {
        flush(&mut tokens, input, start, input.len(), &mut saw_word);
    }
    tokens
}

/// If `raw` ends in a possessive marker, return the stem length.
fn possessive_split(raw: &str) -> Option<usize> {
    if raw.len() > 2 && raw.ends_with("'s") {
        Some(raw.len() - 2)
    } else if raw.len() > 1 && raw.ends_with('\'') && !raw.ends_with("''") {
        Some(raw.len() - 1)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(input: &str) -> Vec<String> {
        tokenize(input).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn simple_sentence() {
        assert_eq!(
            texts("What kind of clothes are worn?"),
            vec!["what", "kind", "of", "clothes", "are", "worn", "?"]
        );
    }

    #[test]
    fn possessive_is_split() {
        assert_eq!(
            texts("Harry Potter's girlfriend"),
            vec!["harry", "potter", "'s", "girlfriend"]
        );
    }

    #[test]
    fn plural_possessive() {
        assert_eq!(texts("the dogs' owner"), vec!["the", "dogs", "'s", "owner"]);
    }

    #[test]
    fn proper_noun_hint_set_mid_sentence_only() {
        let toks = tokenize("Harry met Sally");
        assert!(!toks[0].mid_sentence_capitalized); // sentence-initial
        assert!(!toks[1].mid_sentence_capitalized);
        assert!(toks[2].mid_sentence_capitalized);
    }

    #[test]
    fn offsets_point_into_input() {
        let input = "a dog, a man";
        for t in tokenize(input) {
            assert!(input[t.offset..].starts_with(&t.surface));
        }
    }

    #[test]
    fn hyphenated_words_stay_together() {
        assert_eq!(texts("a well-known wizard"), vec!["a", "well-known", "wizard"]);
    }

    #[test]
    fn punctuation_tokens() {
        let toks = tokenize("who, me?");
        assert_eq!(
            toks.iter().map(|t| t.is_punct()).collect::<Vec<_>>(),
            vec![false, true, false, true]
        );
    }

    #[test]
    fn empty_and_whitespace_inputs() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t ").is_empty());
    }

    #[test]
    fn case_folding_preserves_surface() {
        let toks = tokenize("Ginny Weasley");
        assert_eq!(toks[0].text, "ginny");
        assert_eq!(toks[0].surface, "Ginny");
    }
}
