//! Levenshtein edit distance.
//!
//! Algorithm 3's `matchVertex` "uses the Levenshtein Distance (LD) to find
//! v ∈ V_mg whose distance is less than the empirical threshold" (§V-A).
//! The normalized form follows Yujian & Bo's metric normalization cited by
//! the paper.

/// Classic Levenshtein distance (unit costs), computed with a single-row DP
/// over characters.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut prev_diag = row[0];
        row[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            let candidate = (prev_diag + cost).min(row[j] + 1).min(row[j + 1] + 1);
            prev_diag = row[j + 1];
            row[j + 1] = candidate;
        }
    }
    row[b.len()]
}

/// Levenshtein distance normalized to `[0, 1]` by the longer string's
/// length: 0 means identical, 1 means nothing shared.
pub fn normalized_levenshtein(a: &str, b: &str) -> f64 {
    let max_len = a.chars().count().max(b.chars().count());
    if max_len == 0 {
        return 0.0;
    }
    levenshtein(a, b) as f64 / max_len as f64
}

/// Similarity in `[0, 1]` (1 − normalized distance), the form `matchVertex`
/// thresholds on.
pub fn levenshtein_similarity(a: &str, b: &str) -> f64 {
    1.0 - normalized_levenshtein(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classic_cases() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("dog", "dog"), 0);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", ""), 0);
    }

    #[test]
    fn unicode_counts_chars_not_bytes() {
        assert_eq!(levenshtein("héllo", "hello"), 1);
    }

    #[test]
    fn normalization_bounds() {
        assert_eq!(normalized_levenshtein("", ""), 0.0);
        assert_eq!(normalized_levenshtein("abc", "abc"), 0.0);
        assert_eq!(normalized_levenshtein("abc", "xyz"), 1.0);
        let d = normalized_levenshtein("dog", "dogs");
        assert!(d > 0.0 && d < 1.0);
    }

    #[test]
    fn similarity_complements_distance() {
        let a = "wizard";
        let b = "wizards";
        let s = levenshtein_similarity(a, b);
        assert!((s + normalized_levenshtein(a, b) - 1.0).abs() < 1e-12);
        assert!(s > 0.8);
    }

    #[test]
    fn symmetry() {
        for (a, b) in [("dog", "puppy"), ("fence", "bench"), ("", "x")] {
            assert_eq!(levenshtein(a, b), levenshtein(b, a));
        }
    }

    #[test]
    fn triangle_inequality_spot_checks() {
        let words = ["dog", "dig", "dug", "bag"];
        for a in words {
            for b in words {
                for c in words {
                    assert!(levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c));
                }
            }
        }
    }
}
