//! Curated vocabulary shared by the tagger, lemmatizer and embedder.
//!
//! This is the stand-in for the *trained models'* lexical knowledge
//! (see `DESIGN.md`): a concept taxonomy covering the MVQA vocabulary (COCO
//! object categories, scene-graph predicates, knowledge-graph relations and
//! the question templates' verbs), irregular-verb morphology, and the
//! closed-class word lists of English.

/// A concept cluster: a semantic group of near-synonymous words. Words in
/// the same cluster embed close together (cosine ≈ 0.9); clusters sharing a
/// parent concept embed moderately close (cosine ≈ 0.5).
pub struct ConceptCluster {
    /// Cluster identifier (also the canonical member).
    pub name: &'static str,
    /// Parent concept (a coarse semantic field).
    pub parent: &'static str,
    /// Member words/phrases.
    pub members: &'static [&'static str],
}

/// The concept taxonomy. Parents are the coarse fields; members are the
/// surface forms the dataset generator and the questions use.
pub const CONCEPT_CLUSTERS: &[ConceptCluster] = &[
    // --- animals ---
    ConceptCluster { name: "dog", parent: "animal", members: &["dog", "puppy", "canine", "canis", "hound"] },
    ConceptCluster { name: "cat", parent: "animal", members: &["cat", "kitten", "feline"] },
    ConceptCluster { name: "bird", parent: "animal", members: &["bird", "pigeon", "parrot"] },
    ConceptCluster { name: "horse", parent: "animal", members: &["horse", "pony"] },
    ConceptCluster { name: "sheep", parent: "animal", members: &["sheep", "lamb"] },
    ConceptCluster { name: "cow", parent: "animal", members: &["cow", "cattle", "bull"] },
    ConceptCluster { name: "elephant", parent: "animal", members: &["elephant"] },
    ConceptCluster { name: "bear", parent: "animal", members: &["bear"] },
    ConceptCluster { name: "zebra", parent: "animal", members: &["zebra"] },
    ConceptCluster { name: "giraffe", parent: "animal", members: &["giraffe"] },
    ConceptCluster { name: "animal", parent: "animal", members: &["animal", "animals", "pet", "pets", "creature"] },
    // --- people ---
    ConceptCluster { name: "man", parent: "person", members: &["man", "men", "guy", "gentleman"] },
    ConceptCluster { name: "woman", parent: "person", members: &["woman", "women", "lady"] },
    ConceptCluster { name: "child", parent: "person", members: &["child", "children", "kid", "boy", "girl"] },
    ConceptCluster { name: "person", parent: "person", members: &["person", "people", "human", "somebody"] },
    ConceptCluster { name: "wizard", parent: "person", members: &["wizard", "sorcerer", "mage"] },
    ConceptCluster { name: "player", parent: "person", members: &["player", "athlete"] },
    ConceptCluster { name: "rider", parent: "person", members: &["rider", "cyclist"] },
    // --- vehicles ---
    ConceptCluster { name: "car", parent: "vehicle", members: &["car", "automobile", "sedan"] },
    ConceptCluster { name: "bus", parent: "vehicle", members: &["bus", "coach"] },
    ConceptCluster { name: "truck", parent: "vehicle", members: &["truck", "lorry"] },
    ConceptCluster { name: "motorcycle", parent: "vehicle", members: &["motorcycle", "motorbike"] },
    ConceptCluster { name: "bicycle", parent: "vehicle", members: &["bicycle", "bike"] },
    ConceptCluster { name: "train", parent: "vehicle", members: &["train"] },
    ConceptCluster { name: "boat", parent: "vehicle", members: &["boat", "ship"] },
    ConceptCluster { name: "airplane", parent: "vehicle", members: &["airplane", "plane", "aircraft"] },
    ConceptCluster { name: "vehicle", parent: "vehicle", members: &["vehicle", "vehicles"] },
    // --- buildings / structures ---
    ConceptCluster { name: "building", parent: "structure", members: &["building", "buildings"] },
    ConceptCluster { name: "house", parent: "structure", members: &["house", "home", "cottage"] },
    ConceptCluster { name: "fence", parent: "structure", members: &["fence", "railing"] },
    ConceptCluster { name: "bench", parent: "structure", members: &["bench"] },
    ConceptCluster { name: "tower", parent: "structure", members: &["tower"] },
    ConceptCluster { name: "bridge", parent: "structure", members: &["bridge"] },
    // --- clothing ---
    ConceptCluster { name: "hat", parent: "clothing", members: &["hat", "cap"] },
    ConceptCluster { name: "shirt", parent: "clothing", members: &["shirt", "t-shirt", "tshirt"] },
    ConceptCluster { name: "jacket", parent: "clothing", members: &["jacket", "coat"] },
    ConceptCluster { name: "robe", parent: "clothing", members: &["robe", "gown", "cloak"] },
    ConceptCluster { name: "helmet", parent: "clothing", members: &["helmet"] },
    ConceptCluster { name: "dress", parent: "clothing", members: &["dress", "skirt"] },
    ConceptCluster { name: "clothes", parent: "clothing", members: &["clothes", "clothing", "cloth", "outfit", "garment"] },
    // --- everyday objects ---
    ConceptCluster { name: "frisbee", parent: "object", members: &["frisbee", "disc"] },
    ConceptCluster { name: "ball", parent: "object", members: &["ball", "football", "basketball"] },
    ConceptCluster { name: "umbrella", parent: "object", members: &["umbrella", "parasol"] },
    ConceptCluster { name: "backpack", parent: "object", members: &["backpack", "bag", "knapsack"] },
    ConceptCluster { name: "bottle", parent: "object", members: &["bottle", "flask"] },
    ConceptCluster { name: "cup", parent: "object", members: &["cup", "mug", "glass"] },
    ConceptCluster { name: "book", parent: "object", members: &["book", "novel"] },
    ConceptCluster { name: "phone", parent: "object", members: &["phone", "cellphone", "smartphone"] },
    ConceptCluster { name: "laptop", parent: "object", members: &["laptop", "computer", "notebook"] },
    ConceptCluster { name: "tv", parent: "object", members: &["tv", "television", "screen"] },
    ConceptCluster { name: "kite", parent: "object", members: &["kite"] },
    ConceptCluster { name: "skateboard", parent: "object", members: &["skateboard"] },
    ConceptCluster { name: "surfboard", parent: "object", members: &["surfboard"] },
    // --- furniture / indoor ---
    ConceptCluster { name: "bed", parent: "furniture", members: &["bed", "mattress"] },
    ConceptCluster { name: "chair", parent: "furniture", members: &["chair", "seat", "stool"] },
    ConceptCluster { name: "table", parent: "furniture", members: &["table", "desk"] },
    ConceptCluster { name: "couch", parent: "furniture", members: &["couch", "sofa"] },
    ConceptCluster { name: "window", parent: "furniture", members: &["window"] },
    ConceptCluster { name: "door", parent: "furniture", members: &["door"] },
    // --- outdoor scenery ---
    ConceptCluster { name: "grass", parent: "scenery", members: &["grass", "lawn", "field"] },
    ConceptCluster { name: "tree", parent: "scenery", members: &["tree", "trees"] },
    ConceptCluster { name: "road", parent: "scenery", members: &["road", "street", "sidewalk"] },
    ConceptCluster { name: "sky", parent: "scenery", members: &["sky"] },
    ConceptCluster { name: "water", parent: "scenery", members: &["water", "lake", "river", "sea"] },
    ConceptCluster { name: "beach", parent: "scenery", members: &["beach", "sand", "shore"] },
    // --- action verbs (all inflections share a cluster) ---
    ConceptCluster { name: "wear", parent: "action", members: &["wear", "wears", "wearing", "worn", "wore", "dressed"] },
    ConceptCluster { name: "carry", parent: "action", members: &["carry", "carries", "carrying", "carried", "hold", "holds", "holding", "held"] },
    ConceptCluster { name: "ride", parent: "action", members: &["ride", "rides", "riding", "ridden", "rode"] },
    ConceptCluster { name: "sit", parent: "action", members: &["sit", "sits", "sitting", "sat", "situated", "situate"] },
    ConceptCluster { name: "stand", parent: "action", members: &["stand", "stands", "standing", "stood"] },
    ConceptCluster { name: "jump", parent: "action", members: &["jump", "jumps", "jumping", "jumped", "leap"] },
    ConceptCluster { name: "watch", parent: "action", members: &["watch", "watches", "watching", "watched", "observe", "look", "looks", "looking", "looked", "looking at", "look at"] },
    ConceptCluster { name: "walk", parent: "action", members: &["walk", "walks", "walking", "walked"] },
    ConceptCluster { name: "run", parent: "action", members: &["run", "runs", "running", "ran"] },
    ConceptCluster { name: "catch", parent: "action", members: &["catch", "catches", "catching", "caught"] },
    ConceptCluster { name: "hang", parent: "action", members: &["hang", "hangs", "hanging", "hung"] },
    ConceptCluster { name: "appear", parent: "action", members: &["appear", "appears", "appearing", "appeared"] },
    ConceptCluster { name: "eat", parent: "action", members: &["eat", "eats", "eating", "ate", "eaten"] },
    ConceptCluster { name: "play", parent: "action", members: &["play", "plays", "playing", "played"] },
    ConceptCluster { name: "drive", parent: "action", members: &["drive", "drives", "driving", "drove", "driven"] },
    ConceptCluster { name: "fly", parent: "action", members: &["fly", "flies", "flying", "flew", "flown"] },
    ConceptCluster { name: "throw", parent: "action", members: &["throw", "throws", "throwing", "threw", "thrown"] },
    // --- spatial relation predicates (scene-graph edge labels) ---
    ConceptCluster { name: "on", parent: "spatial", members: &["on", "on top of", "atop", "upon", "sitting on", "standing on", "sit on", "stand on"] },
    ConceptCluster { name: "in", parent: "spatial", members: &["in", "inside", "within", "situated in"] },
    ConceptCluster { name: "near", parent: "spatial", members: &["near", "next to", "beside", "close to", "by", "hang out with", "hanging out with", "hang out", "hanging out", "appear with", "appearing with", "together with"] },
    ConceptCluster { name: "behind", parent: "spatial", members: &["behind", "in back of"] },
    ConceptCluster { name: "in front of", parent: "spatial", members: &["in front of", "before", "facing"] },
    ConceptCluster { name: "under", parent: "spatial", members: &["under", "below", "beneath", "underneath"] },
    ConceptCluster { name: "above", parent: "spatial", members: &["above", "over"] },
    // --- knowledge-graph relations ---
    ConceptCluster { name: "girlfriend of", parent: "kg-relation", members: &["girlfriend of", "girlfriend"] },
    ConceptCluster { name: "boyfriend of", parent: "kg-relation", members: &["boyfriend of", "boyfriend"] },
    ConceptCluster { name: "friend of", parent: "kg-relation", members: &["friend of", "friend", "friends with"] },
    ConceptCluster { name: "married to", parent: "kg-relation", members: &["married to", "spouse of", "wife of", "husband of"] },
    ConceptCluster { name: "sibling of", parent: "kg-relation", members: &["sibling of", "brother of", "sister of"] },
    ConceptCluster { name: "mentor of", parent: "kg-relation", members: &["mentor of", "teacher of", "teaches"] },
    ConceptCluster { name: "enemy of", parent: "kg-relation", members: &["enemy of", "rival of"] },
    ConceptCluster { name: "member of", parent: "kg-relation", members: &["member of", "belongs to"] },
    ConceptCluster { name: "owns", parent: "kg-relation", members: &["owns", "owner of", "owned by"] },
    ConceptCluster { name: "lives in", parent: "kg-relation", members: &["lives in", "resides in"] },
    // --- constraint keywords (predefined word set 𝕊 of Algorithm 3) ---
    ConceptCluster { name: "most frequently", parent: "constraint", members: &["most frequently", "most often", "most", "frequently"] },
    ConceptCluster { name: "least frequently", parent: "constraint", members: &["least frequently", "least often", "least", "rarely"] },
    ConceptCluster { name: "at least", parent: "constraint", members: &["at least", "no fewer than"] },
    ConceptCluster { name: "at most", parent: "constraint", members: &["at most", "no more than"] },
    ConceptCluster { name: "exactly", parent: "constraint", members: &["exactly", "precisely"] },
];

/// Irregular verb forms: `(inflected form, lemma)`. Regular morphology is
/// handled by suffix stripping in the lemmatizer.
pub const IRREGULAR_VERBS: &[(&str, &str)] = &[
    ("worn", "wear"), ("wore", "wear"),
    ("held", "hold"),
    ("ridden", "ride"), ("rode", "ride"),
    ("sat", "sit"),
    ("stood", "stand"),
    ("caught", "catch"),
    ("hung", "hang"),
    ("ate", "eat"), ("eaten", "eat"),
    ("drove", "drive"), ("driven", "drive"),
    ("flew", "fly"), ("flown", "fly"),
    ("threw", "throw"), ("thrown", "throw"),
    ("ran", "run"),
    ("was", "be"), ("were", "be"), ("been", "be"), ("is", "be"), ("are", "be"), ("am", "be"), ("being", "be"),
    ("has", "have"), ("had", "have"), ("having", "have"),
    ("does", "do"), ("did", "do"), ("done", "do"), ("doing", "do"),
    ("saw", "see"), ("seen", "see"),
    ("went", "go"), ("gone", "go"),
    ("took", "take"), ("taken", "take"),
    ("gave", "give"), ("given", "give"),
    ("made", "make"),
    ("found", "find"),
    ("kept", "keep"),
    ("left", "leave"),
    ("met", "meet"),
    ("wrote", "write"), ("written", "write"),
];

/// Irregular noun plurals: `(plural, singular)`.
pub const IRREGULAR_PLURALS: &[(&str, &str)] = &[
    ("men", "man"),
    ("women", "woman"),
    ("children", "child"),
    ("people", "person"),
    ("sheep", "sheep"),
    ("clothes", "clothes"),
    ("pants", "pants"),
    ("glasses", "glasses"),
    ("scissors", "scissors"),
    ("feet", "foot"),
    ("teeth", "tooth"),
    ("mice", "mouse"),
    ("geese", "goose"),
    ("wolves", "wolf"),
    ("knives", "knife"),
    ("lives", "life"),
];

/// Determiners (tagged `DT`).
pub const DETERMINERS: &[&str] = &[
    "the", "a", "an", "this", "that", "these", "those", "some", "any", "no",
    "every", "each", "either", "neither", "all", "both",
];

/// Prepositions and subordinating conjunctions (tagged `IN`).
pub const PREPOSITIONS: &[&str] = &[
    "of", "in", "on", "at", "by", "with", "from", "to", "about", "over",
    "under", "behind", "near", "beside", "between", "through", "during",
    "inside", "outside", "above", "below", "across", "around", "upon",
    "within", "if", "whether", "because", "while", "than", "as", "beneath",
    "atop",
];

/// Personal pronouns (tagged `PRP`).
pub const PRONOUNS: &[&str] = &[
    "i", "you", "he", "she", "it", "we", "they", "me", "him", "her", "us",
    "them", "himself", "herself", "itself", "themselves",
];

/// Possessive pronouns (tagged `PRP$`).
pub const POSSESSIVE_PRONOUNS: &[&str] = &["my", "your", "his", "her", "its", "our", "their"];

/// WH-pronouns (tagged `WP`).
pub const WH_PRONOUNS: &[&str] = &["who", "whom", "what"];

/// WH-determiners (tagged `WDT`).
pub const WH_DETERMINERS: &[&str] = &["which", "whichever"];

/// WH-adverbs (tagged `WRB`).
pub const WH_ADVERBS: &[&str] = &["how", "where", "when", "why"];

/// Modal verbs (tagged `MD`).
pub const MODALS: &[&str] = &["can", "could", "may", "might", "must", "shall", "should", "will", "would"];

/// Coordinating conjunctions (tagged `CC`).
pub const CONJUNCTIONS: &[&str] = &["and", "or", "but", "nor", "yet", "so"];

/// Common adverbs (tagged `RB`) seen in the question templates.
pub const ADVERBS: &[&str] = &[
    "not", "n't", "very", "too", "also", "only", "often", "frequently",
    "rarely", "usually", "always", "never", "out", "together", "currently",
];

/// Superlative adverbs (tagged `RBS`).
pub const SUPERLATIVE_ADVERBS: &[&str] = &["most", "least"];

/// Common adjectives (tagged `JJ`) seen in the dataset.
pub const ADJECTIVES: &[&str] = &[
    "red", "blue", "green", "yellow", "black", "white", "brown", "gray",
    "orange", "purple", "pink", "big", "small", "large", "little", "young",
    "old", "tall", "short", "same", "different", "many", "several", "toy",
    "wooden", "main", "complex", "simple",
];

/// Cardinal number words (tagged `CD`).
pub const NUMBER_WORDS: &[&str] = &[
    "zero", "one", "two", "three", "four", "five", "six", "seven", "eight",
    "nine", "ten", "eleven", "twelve",
];

/// Latinate / foreign endings that push an unknown word towards `FW`
/// (reproducing the paper's Fig. 8a, where "canis" is tagged as a foreign
/// word). "canis" is detected by its `-is` ending while not being in the
/// lexicon.
pub const FOREIGN_ENDINGS: &[&str] = &["is", "us", "um", "ae", "os"];

/// Look up the concept cluster containing `word` (exact member match).
pub fn cluster_of(word: &str) -> Option<&'static ConceptCluster> {
    CONCEPT_CLUSTERS
        .iter()
        .find(|c| c.members.contains(&word))
}

/// All nouns known to the taxonomy (members of non-action, non-spatial,
/// non-relation clusters) — the open-class noun lexicon for the tagger.
pub fn known_nouns() -> impl Iterator<Item = &'static str> {
    CONCEPT_CLUSTERS
        .iter()
        .filter(|c| {
            !matches!(
                c.parent,
                "action" | "spatial" | "kg-relation" | "constraint"
            )
        })
        .flat_map(|c| c.members.iter().copied())
        .filter(|m| !m.contains(' '))
}

/// All verb forms known to the taxonomy.
pub fn known_verb_forms() -> impl Iterator<Item = &'static str> {
    CONCEPT_CLUSTERS
        .iter()
        .filter(|c| c.parent == "action")
        .flat_map(|c| c.members.iter().copied())
        .filter(|m| !m.contains(' '))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clusters_have_members() {
        for c in CONCEPT_CLUSTERS {
            assert!(!c.members.is_empty(), "cluster {} empty", c.name);
        }
    }

    #[test]
    fn cluster_lookup() {
        assert_eq!(cluster_of("puppy").unwrap().name, "dog");
        assert_eq!(cluster_of("worn").unwrap().name, "wear");
        assert_eq!(cluster_of("sofa").unwrap().name, "couch");
        assert!(cluster_of("xylophone").is_none());
    }

    #[test]
    fn canis_is_a_dog_term() {
        // Fig. 8a's failure word is in the dog cluster (it *should* parse as
        // a noun; the tagger mis-tags it as FW because it is lexicon-unknown
        // at the POS level — see pos.rs).
        assert_eq!(cluster_of("canis").unwrap().name, "dog");
    }

    #[test]
    fn known_nouns_exclude_actions() {
        let nouns: Vec<_> = known_nouns().collect();
        assert!(nouns.contains(&"dog"));
        assert!(nouns.contains(&"fence"));
        assert!(!nouns.contains(&"wearing"));
    }

    #[test]
    fn known_verbs_cover_inflections() {
        let verbs: Vec<_> = known_verb_forms().collect();
        for form in ["wear", "worn", "wearing", "carried", "sitting"] {
            assert!(verbs.contains(&form), "{form} missing");
        }
    }

    #[test]
    fn no_duplicate_members_across_noun_clusters() {
        let mut seen = std::collections::HashSet::new();
        for c in CONCEPT_CLUSTERS {
            for m in c.members {
                assert!(seen.insert((c.parent == "action", *m)) || c.parent == "spatial" || c.parent == "kg-relation" || c.parent == "constraint",
                    "duplicate member {m}");
            }
        }
    }

    #[test]
    fn irregular_tables_are_folded() {
        for (form, lemma) in IRREGULAR_VERBS {
            assert_eq!(form.to_lowercase(), *form);
            assert_eq!(lemma.to_lowercase(), *lemma);
        }
        for (plural, singular) in IRREGULAR_PLURALS {
            assert_eq!(plural.to_lowercase(), *plural);
            assert_eq!(singular.to_lowercase(), *singular);
        }
    }
}
