//! # svqa-nlp
//!
//! The natural-language substrate of the SVQA reproduction: everything §IV
//! ("Query Graph Generator") and §V ("maxScore" / "matchVertex") of the
//! paper consume from Stanford CoreNLP and word2vec, rebuilt from scratch:
//!
//! * a tokenizer ([`token`]) that splits questions into words, handling
//!   possessives ("Harry Potter's girlfriend") and punctuation;
//! * a Penn-Treebank part-of-speech tagger ([`pos`]) over the full 45-tag
//!   set the paper mentions, with lexicon, morphological-suffix and
//!   contextual rules — the deterministic stand-in for the Stanford MaxEnt
//!   tagger of Eq. (4);
//! * a rule-driven dependency parser ([`dep`]) emitting Universal
//!   Dependencies (`nsubj`, `nsubj:pass`, `obj`, `obl`, `nmod`, `case`,
//!   `acl:relcl`, ...) — the stand-in for the Stanford transition-based
//!   parser of Eq. (5), together with an arc-standard transition system that
//!   can replay any produced tree (so projectivity/derivability is testable);
//! * a lemmatizer and passive→active voice normalizer ([`lemma`])
//!   ("are worn" → "wear", as in the paper's Example 4);
//! * deterministic concept-cluster word embeddings with cosine similarity
//!   ([`embedding`]) — the stand-in for word2vec in `maxScore`;
//! * Levenshtein edit distance ([`lev`]) used by `matchVertex`.
//!
//! The substitutions are documented in the repository's `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dep;
pub mod embedding;
pub mod lemma;
pub mod lev;
pub mod pos;
pub mod tags;
pub mod token;
pub mod transition;
pub mod vocab;

pub use dep::{DepLabel, DepTree, RuleDependencyParser};
pub use embedding::{cosine_similarity, Embedder, Embedding};
pub use lemma::Lemmatizer;
pub use lev::{levenshtein, normalized_levenshtein};
pub use pos::{PosTagger, TaggedToken};
pub use tags::PosTag;
pub use token::{tokenize, Token};
