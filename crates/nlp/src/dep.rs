//! Dependency parsing.
//!
//! The stand-in for the Stanford transition-based neural parser (Eq. (5) of
//! the paper). The neural action scorer is replaced by deterministic
//! linguistic attachment rules; the output is a Universal-Dependencies tree
//! over the tagged question, carrying exactly the relations §IV consumes:
//! `nsubj`, `nsubj:pass`, `obj`, `obl`, `nmod`, `nmod:poss`, `case`, `det`,
//! `amod`, `compound`, `advmod`, `aux`, `aux:pass`, `acl:relcl`, `fixed`.
//!
//! The parser runs a fixed cascade of passes (multiword prepositions →
//! auxiliaries → noun-phrase internals → prepositional attachment →
//! relative clauses → subjects → objects → root selection); each pass only
//! attaches still-headless tokens, so the cascade is confluent and the
//! result is a single-rooted tree (validated before returning). The
//! companion [`crate::transition`] module replays any produced tree as an
//! arc-standard derivation, which doubles as a projectivity check.

use crate::pos::TaggedToken;
use crate::tags::PosTag;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Universal-Dependencies relation labels used by SVQA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum DepLabel {
    Root,
    Nsubj,
    NsubjPass,
    Obj,
    Obl,
    Nmod,
    NmodPoss,
    Case,
    Det,
    Amod,
    Compound,
    Advmod,
    Aux,
    AuxPass,
    AclRelcl,
    Fixed,
    /// Coordinated clause ("... and the man watches the dog").
    Conj,
    /// The coordinating conjunction word itself.
    Cc,
    Punct,
    /// Fallback attachment for tokens no rule claimed.
    Dep,
}

impl DepLabel {
    /// The UD surface string.
    pub fn as_str(self) -> &'static str {
        match self {
            DepLabel::Root => "root",
            DepLabel::Nsubj => "nsubj",
            DepLabel::NsubjPass => "nsubj:pass",
            DepLabel::Obj => "obj",
            DepLabel::Obl => "obl",
            DepLabel::Nmod => "nmod",
            DepLabel::NmodPoss => "nmod:poss",
            DepLabel::Case => "case",
            DepLabel::Det => "det",
            DepLabel::Amod => "amod",
            DepLabel::Compound => "compound",
            DepLabel::Advmod => "advmod",
            DepLabel::Aux => "aux",
            DepLabel::AuxPass => "aux:pass",
            DepLabel::AclRelcl => "acl:relcl",
            DepLabel::Fixed => "fixed",
            DepLabel::Conj => "conj",
            DepLabel::Cc => "cc",
            DepLabel::Punct => "punct",
            DepLabel::Dep => "dep",
        }
    }
}

impl fmt::Display for DepLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Errors from parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The question contains no verb, so no clause structure exists.
    NoVerb,
    /// The sentence is empty.
    Empty,
    /// Internal invariant failure (cycle / multiple roots); carries a
    /// description. Should be unreachable; surfaced instead of panicking.
    Inconsistent(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::NoVerb => write!(f, "no verb found in question"),
            ParseError::Empty => write!(f, "empty question"),
            ParseError::Inconsistent(m) => write!(f, "inconsistent parse: {m}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// A dependency tree over a tagged sentence.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DepTree {
    tokens: Vec<TaggedToken>,
    /// `heads[i]` is the head index of token `i`; `None` only for the root.
    heads: Vec<Option<usize>>,
    labels: Vec<DepLabel>,
    root: usize,
}

impl DepTree {
    /// The tagged tokens.
    pub fn tokens(&self) -> &[TaggedToken] {
        &self.tokens
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// Index of the root token (the main-clause predicate).
    pub fn root(&self) -> usize {
        self.root
    }

    /// Head of token `i` (`None` for the root).
    pub fn head_of(&self, i: usize) -> Option<usize> {
        self.heads[i]
    }

    /// Label of the arc into token `i` (`Root` for the root).
    pub fn label_of(&self, i: usize) -> DepLabel {
        self.labels[i]
    }

    /// Children of token `i`, in surface order.
    pub fn children_of(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        (0..self.len()).filter(move |&j| self.heads[j] == Some(i))
    }

    /// Children of `i` attached with `label`.
    pub fn children_with_label(&self, i: usize, label: DepLabel) -> impl Iterator<Item = usize> + '_ {
        self.children_of(i)
            .filter(move |&j| self.labels[j] == label)
    }

    /// First child of `i` with `label`, if any.
    pub fn child_with_label(&self, i: usize, label: DepLabel) -> Option<usize> {
        self.children_with_label(i, label).next()
    }

    /// The case-folded text of token `i`.
    pub fn text(&self, i: usize) -> &str {
        &self.tokens[i].token.text
    }

    /// The POS tag of token `i`.
    pub fn tag(&self, i: usize) -> PosTag {
        self.tokens[i].tag
    }

    /// CoNLL-like rendering (index, word, tag, head, label) for debugging
    /// and the error-analysis example.
    pub fn to_conll(&self) -> String {
        let mut out = String::new();
        for i in 0..self.len() {
            let head = self.heads[i].map_or(0, |h| h + 1);
            out.push_str(&format!(
                "{}\t{}\t{}\t{}\t{}\n",
                i + 1,
                self.text(i),
                self.tag(i),
                head,
                self.labels[i]
            ));
        }
        out
    }

    /// Check single-rootedness and acyclicity.
    fn validate(&self) -> Result<(), ParseError> {
        let roots = self.heads.iter().filter(|h| h.is_none()).count();
        if roots != 1 {
            return Err(ParseError::Inconsistent(format!("{roots} roots")));
        }
        for start in 0..self.len() {
            let mut seen = 0usize;
            let mut cur = start;
            while let Some(h) = self.heads[cur] {
                cur = h;
                seen += 1;
                if seen > self.len() {
                    return Err(ParseError::Inconsistent(format!(
                        "cycle reachable from token {start}"
                    )));
                }
            }
        }
        Ok(())
    }
}

/// Multiword prepositions recognized as fixed expressions ("in front of").
const MULTIWORD_PREPS: &[&[&str]] = &[
    &["in", "front", "of"],
    &["in", "back", "of"],
    &["on", "top", "of"],
    &["next", "to"],
    &["close", "to"],
];

/// The rule-based dependency parser.
#[derive(Debug, Default, Clone)]
pub struct RuleDependencyParser;

impl RuleDependencyParser {
    /// Create a parser.
    pub fn new() -> Self {
        RuleDependencyParser
    }

    /// Parse a tagged sentence into a dependency tree.
    pub fn parse(&self, tokens: &[TaggedToken]) -> Result<DepTree, ParseError> {
        if tokens.is_empty() {
            return Err(ParseError::Empty);
        }
        let n = tokens.len();
        let mut p = Parser {
            toks: tokens,
            heads: vec![None; n],
            labels: vec![DepLabel::Dep; n],
            is_mwe_cont: vec![false; n],
            content_verb: vec![false; n],
        };
        p.mark_multiword_preps();
        p.attach_auxiliaries();
        p.attach_np_internals();
        p.attach_adverbs();
        p.attach_prepositional_phrases();
        p.attach_relative_clauses();
        // Objects before subjects: an inner clause's object ("dogs that are
        // holding THE BALL are …") must be claimed before the outer
        // clause's subject scan walks left past it.
        p.attach_objects();
        p.attach_subjects();
        let root = p.select_root()?;
        p.attach_leftovers(root);

        let tree = DepTree {
            tokens: tokens.to_vec(),
            heads: p.heads,
            labels: p.labels,
            root,
        };
        tree.validate()?;
        Ok(tree)
    }
}

/// Working state for one parse.
struct Parser<'a> {
    toks: &'a [TaggedToken],
    heads: Vec<Option<usize>>,
    labels: Vec<DepLabel>,
    /// Token is a non-initial word of a multiword preposition.
    is_mwe_cont: Vec<bool>,
    /// Token is a content (non-auxiliary) verb.
    content_verb: Vec<bool>,
}

impl Parser<'_> {
    fn n(&self) -> usize {
        self.toks.len()
    }

    fn text(&self, i: usize) -> &str {
        &self.toks[i].token.text
    }

    fn tag(&self, i: usize) -> PosTag {
        self.toks[i].tag
    }

    fn attached(&self, i: usize) -> bool {
        self.heads[i].is_some()
    }

    fn attach(&mut self, dep: usize, head: usize, label: DepLabel) {
        debug_assert!(self.heads[dep].is_none(), "token {dep} already attached");
        debug_assert_ne!(dep, head);
        self.heads[dep] = Some(head);
        self.labels[dep] = label;
    }

    fn is_be_form(&self, i: usize) -> bool {
        matches!(
            self.text(i),
            "is" | "are" | "am" | "was" | "were" | "be" | "been" | "being"
        )
    }

    fn is_do_form(&self, i: usize) -> bool {
        matches!(self.text(i), "does" | "do" | "did")
    }

    fn is_have_form(&self, i: usize) -> bool {
        matches!(self.text(i), "has" | "have" | "had")
    }

    fn is_aux_word(&self, i: usize) -> bool {
        self.is_be_form(i) || self.is_do_form(i) || self.is_have_form(i) || self.tag(i) == PosTag::MD
    }

    /// Pass 0: recognize multiword prepositions; continuation words get
    /// `fixed` arcs to the first word and stop participating in other rules.
    fn mark_multiword_preps(&mut self) {
        let mut i = 0;
        while i < self.n() {
            let mut matched = 0usize;
            for pat in MULTIWORD_PREPS {
                if pat.len() <= self.n() - i
                    && pat
                        .iter()
                        .enumerate()
                        .all(|(k, w)| self.text(i + k) == *w && !self.is_mwe_cont[i + k])
                {
                    matched = matched.max(pat.len());
                }
            }
            if matched >= 2 {
                for k in 1..matched {
                    self.attach(i + k, i, DepLabel::Fixed);
                    self.is_mwe_cont[i + k] = true;
                }
                i += matched;
            } else {
                i += 1;
            }
        }
    }

    /// Pass 1: attach auxiliaries to their content verbs and record which
    /// verbs are content verbs.
    fn attach_auxiliaries(&mut self) {
        // Mark every verb as content until claimed as aux.
        for i in 0..self.n() {
            if self.tag(i).is_verb() || self.tag(i) == PosTag::MD {
                self.content_verb[i] = true;
            }
        }
        for i in 0..self.n() {
            if !(self.is_aux_word(i) && self.content_verb[i]) {
                continue;
            }
            // Search right for the content verb this auxiliary supports.
            // The inverted subject NP may contain a whole relative clause
            // ("does the dog THAT IS SITTING ON THE BED appear"), which is
            // skipped as a unit: a WH word opens it, its own verb group
            // closes it.
            let is_do = self.is_do_form(i);
            let mut j = i + 1;
            let mut found: Option<usize> = None;
            let mut in_relclause = false;
            while j < self.n() {
                let t = self.tag(j);
                if t.is_punct() || t == PosTag::CC {
                    break;
                }
                if t.is_wh() {
                    in_relclause = true;
                    j += 1;
                    continue;
                }
                if t.is_verb() || t == PosTag::MD {
                    if in_relclause {
                        // Consume the relative clause's verb group. An aux
                        // followed (modulo adverbs) by a participle keeps
                        // the clause open ("that is sitting on …"); a
                        // copular aux closes it ("that is on the grass").
                        if self.is_aux_word(j) {
                            let next_participle = (j + 1..self.n())
                                .find(|&k| !self.tag(k).is_adverb())
                                .is_some_and(|k| {
                                    matches!(self.tag(k), PosTag::VBG | PosTag::VBN)
                                });
                            if !next_participle {
                                in_relclause = false;
                            }
                        } else {
                            in_relclause = false;
                        }
                        j += 1;
                        continue;
                    }
                    if self.is_aux_word(j) {
                        break; // another auxiliary chain begins
                    }
                    let acceptable = matches!(t, PosTag::VBG | PosTag::VBN | PosTag::VB)
                        || (is_do && t == PosTag::VBP);
                    if acceptable {
                        found = Some(j);
                    }
                    break;
                }
                // Skip over the subject NP's words, adverbs, adjectives and
                // (inside or after a relative clause) prepositional phrases.
                if t.is_noun()
                    || t.is_adjective()
                    || t.is_adverb()
                    || matches!(t, PosTag::DT | PosTag::PRPS | PosTag::CD | PosTag::POS | PosTag::PRP)
                    || (t == PosTag::IN && (in_relclause || is_do))
                {
                    j += 1;
                    continue;
                }
                break;
            }
            if let Some(v) = found {
                let label = if self.is_be_form(i) && self.tag(v) == PosTag::VBN {
                    DepLabel::AuxPass
                } else {
                    DepLabel::Aux
                };
                self.attach(i, v, label);
                self.content_verb[i] = false;
            }
        }
    }

    /// Pass 2: noun-phrase internals — determiners, adjectives, compounds,
    /// possessives, WH-determiners.
    fn attach_np_internals(&mut self) {
        // Possessives first: [NNP...] NNP POS NN → compound chain + case +
        // nmod:poss.
        for i in 0..self.n() {
            if self.tag(i) != PosTag::POS || self.attached(i) {
                continue;
            }
            // possessor = nearest noun to the left.
            let Some(possessor) = (0..i).rev().find(|&j| self.tag(j).is_noun()) else {
                continue;
            };
            // possessed = nearest noun head to the right.
            let Some(possessed) = (i + 1..self.n()).find(|&j| self.tag(j).is_noun()) else {
                continue;
            };
            self.attach(i, possessor, DepLabel::Case);
            if !self.attached(possessor) {
                self.attach(possessor, possessed, DepLabel::NmodPoss);
            }
            // Proper-noun compounds to the left of the possessor
            // ("harry potter 's").
            let mut k = possessor;
            while k > 0 && self.tag(k - 1).is_noun() && !self.attached(k - 1) {
                self.attach(k - 1, possessor, DepLabel::Compound);
                k -= 1;
            }
        }
        // Determiners, WH-determiners, adjectives, numbers, noun compounds:
        // attach to the nearest noun head to the right.
        for i in 0..self.n() {
            if self.attached(i) {
                continue;
            }
            let t = self.tag(i);
            let wants_noun = matches!(t, PosTag::DT | PosTag::WDT | PosTag::PRPS | PosTag::CD | PosTag::PDT)
                || t.is_adjective()
                || (t.is_noun() && self.next_is_noun(i));
            if !wants_noun {
                continue;
            }
            // WDT heading a relative clause ("that were situated", "which
            // the man wears") must not be eaten here; only attach WDT when
            // its noun follows without an intervening determiner.
            if t == PosTag::WDT
                && (i + 1..self.n()).find(|&j| !self.is_mwe_cont[j]).is_some_and(|j| {
                    matches!(self.tag(j), PosTag::DT | PosTag::PRPS)
                })
            {
                continue;
            }
            let Some(head) = self.nearest_noun_head_right(i) else {
                continue;
            };
            let label = if t.is_adjective() {
                DepLabel::Amod
            } else if t.is_noun() {
                DepLabel::Compound
            } else if t == PosTag::PRPS {
                DepLabel::NmodPoss
            } else {
                DepLabel::Det
            };
            self.attach(i, head, label);
        }
    }

    /// Whether the next unattached token is a noun (for compound detection).
    fn next_is_noun(&self, i: usize) -> bool {
        (i + 1..self.n())
            .find(|&j| !self.is_mwe_cont[j])
            .is_some_and(|j| self.tag(j).is_noun())
    }

    /// The nearest noun to the right of `i` with no verb, punctuation or WH
    /// boundary in between. Skips attached tokens for boundary purposes but
    /// the found noun may be pre-attached (compound chains) — in that case
    /// follow to its head noun.
    fn nearest_noun_head_right(&self, i: usize) -> Option<usize> {
        for j in i + 1..self.n() {
            let t = self.tag(j);
            if t.is_noun() {
                return Some(self.noun_phrase_head(j));
            }
            if t.is_verb() || t.is_punct() || t.is_wh() || t == PosTag::IN || t == PosTag::CC {
                return None;
            }
        }
        None
    }

    /// Follow compound/nmod:poss arcs from a noun to its phrase head.
    fn noun_phrase_head(&self, mut j: usize) -> usize {
        while let Some(h) = self.heads[j] {
            if matches!(self.labels[j], DepLabel::Compound | DepLabel::NmodPoss)
                && self.tag(h).is_noun()
            {
                j = h;
            } else {
                break;
            }
        }
        j
    }

    /// Pass 3: adverbs attach to the nearest verb (rightward first, then
    /// leftward — "most frequently *hanging*" vs "hanging *out*"); "most"
    /// (RBS) attaches to a following adverb/adjective when present.
    fn attach_adverbs(&mut self) {
        for i in 0..self.n() {
            if self.attached(i) || !self.tag(i).is_adverb() || self.tag(i) == PosTag::WRB {
                continue;
            }
            // RBS before RB/JJ: "most frequently", "most famous".
            if self.tag(i) == PosTag::RBS && i + 1 < self.n() {
                let t = self.tag(i + 1);
                if (t.is_adverb() && t != PosTag::WRB) || t.is_adjective() {
                    self.attach(i, i + 1, DepLabel::Advmod);
                    continue;
                }
            }
            if let Some(v) = self.nearest_verb(i) {
                self.attach(i, v, DepLabel::Advmod);
            }
        }
        // WRB ("how") attaches to a following adjective/adverb ("how many")
        // or the clause verb.
        for i in 0..self.n() {
            if self.attached(i) || self.tag(i) != PosTag::WRB {
                continue;
            }
            if i + 1 < self.n() && (self.tag(i + 1).is_adjective() || self.tag(i + 1).is_adverb()) {
                self.attach(i, i + 1, DepLabel::Advmod);
            } else if let Some(v) = self.nearest_verb(i) {
                self.attach(i, v, DepLabel::Advmod);
            }
        }
    }

    /// Nearest content verb, preferring rightward within the clause.
    fn nearest_verb(&self, i: usize) -> Option<usize> {
        for j in i + 1..self.n() {
            if self.content_verb[j] {
                return Some(j);
            }
            if self.tag(j).is_punct() || self.tag(j).is_wh() {
                break;
            }
        }
        (0..i).rev().find(|&j| self.content_verb[j])
    }

    /// Pass 4: prepositional phrases. Prepositions become `case` children of
    /// their noun; the noun attaches `obl` to a preceding verb or `nmod` to
    /// a preceding noun ("of" is always `nmod`).
    fn attach_prepositional_phrases(&mut self) {
        for i in 0..self.n() {
            if self.attached(i) || self.tag(i) != PosTag::IN || self.is_mwe_cont[i] {
                continue;
            }
            // The object of the preposition: nearest noun head to the right.
            let mut obj = None;
            for j in i + 1..self.n() {
                if self.is_mwe_cont[j] {
                    continue;
                }
                let t = self.tag(j);
                if t.is_noun() {
                    obj = Some(self.noun_phrase_head(j));
                    break;
                }
                if t.is_verb() || t.is_punct() || t.is_wh() || t == PosTag::IN {
                    break;
                }
            }
            let Some(obj) = obj else { continue };
            // Attachment site: scan left skipping attached/function tokens.
            let mut site = None;
            for j in (0..i).rev() {
                if self.content_verb[j] {
                    site = Some((j, DepLabel::Obl));
                    break;
                }
                if self.tag(j).is_noun() && self.heads[j].is_none_or(|_| {
                    !matches!(self.labels[j], DepLabel::Compound)
                }) {
                    site = Some((self.noun_phrase_head(j), DepLabel::Nmod));
                    break;
                }
            }
            // "of" strongly prefers the noun reading ("kind of clothes");
            // other prepositions take whatever came first (verb wins when
            // adjacent: "worn by ...").
            if self.text(i) == "of" {
                if let Some(noun_site) = (0..i).rev().find(|&j| self.tag(j).is_noun()) {
                    site = Some((self.noun_phrase_head(noun_site), DepLabel::Nmod));
                }
            }
            let Some((head, label)) = site else { continue };
            if self.attached(obj) || obj == head {
                continue;
            }
            self.attach(i, obj, DepLabel::Case);
            self.attach(obj, head, label);
        }
    }

    /// Pass 5: relative clauses. A WH pronoun/determiner following a noun
    /// introduces a relative clause: the clause verb attaches `acl:relcl`
    /// to the antecedent and the WH word becomes its subject (or object when
    /// a subject noun intervenes).
    fn attach_relative_clauses(&mut self) {
        for i in 0..self.n() {
            if self.attached(i) || !(self.tag(i) == PosTag::WDT || self.tag(i) == PosTag::WP) {
                continue;
            }
            // Antecedent: nearest noun head to the left.
            let antecedent = (0..i)
                .rev()
                .find(|&j| self.tag(j).is_noun())
                .map(|j| self.noun_phrase_head(j));
            // Relative-clause verb: nearest content verb to the right.
            let rel_verb = (i + 1..self.n()).find(|&j| self.content_verb[j]);
            let (Some(ant), Some(v)) = (antecedent, rel_verb) else {
                continue;
            };
            // Subject or object relative? A noun strictly between the WH
            // word and the verb that is not inside a PP means the WH word is
            // the object ("the hat which the man wears").
            let has_inner_subject = (i + 1..v).any(|j| {
                self.tag(j).is_noun() && !matches!(self.labels[j], DepLabel::Nmod | DepLabel::Obl)
            });
            let passive = self.is_passive(v);
            let wh_label = if has_inner_subject {
                DepLabel::Obj
            } else if passive {
                DepLabel::NsubjPass
            } else {
                DepLabel::Nsubj
            };
            self.attach(i, v, wh_label);
            if !self.attached(v) && v != ant {
                self.attach(v, ant, DepLabel::AclRelcl);
            }
        }
    }

    /// Whether verb `v` has a passive auxiliary child.
    fn is_passive(&self, v: usize) -> bool {
        (0..self.n()).any(|j| self.heads[j] == Some(v) && self.labels[j] == DepLabel::AuxPass)
    }

    /// Pass 6: subjects. Each content verb without a subject takes the
    /// nearest unattached noun head to its left (within the clause).
    fn attach_subjects(&mut self) {
        for v in 0..self.n() {
            if !self.content_verb[v] || self.has_subject(v) {
                continue;
            }
            let mut j = v;
            while j > 0 {
                j -= 1;
                let t = self.tag(j);
                // Attached content verbs are relative-clause predicates —
                // transparent when looking for the outer clause's subject
                // ("the dog [that is sitting on the bed] appears").
                if t.is_punct() || (t.is_verb() && self.content_verb[j] && !self.attached(j)) {
                    break;
                }
                if t.is_noun() && !self.attached(j) {
                    let label = if self.is_passive(v) {
                        DepLabel::NsubjPass
                    } else {
                        DepLabel::Nsubj
                    };
                    self.attach(j, v, label);
                    break;
                }
            }
        }
    }

    fn has_subject(&self, v: usize) -> bool {
        (0..self.n()).any(|j| {
            self.heads[j] == Some(v)
                && matches!(self.labels[j], DepLabel::Nsubj | DepLabel::NsubjPass)
        })
    }

    /// Pass 7: objects. Each content verb takes the nearest unattached noun
    /// head to its right (before the next clause boundary) as `obj`.
    fn attach_objects(&mut self) {
        for v in 0..self.n() {
            if !self.content_verb[v] {
                continue;
            }
            for j in v + 1..self.n() {
                let t = self.tag(j);
                if t.is_punct() || t.is_wh() || (t.is_verb() && self.content_verb[j]) || t == PosTag::IN
                {
                    break;
                }
                if t.is_noun() && !self.attached(j) {
                    self.attach(j, v, DepLabel::Obj);
                    break;
                }
            }
        }
    }

    /// Pass 8: root selection — the first unattached content verb; as a
    /// fallback (verbless fragments are rejected earlier) the first
    /// unattached token.
    fn select_root(&mut self) -> Result<usize, ParseError> {
        if !self.content_verb.iter().any(|&c| c) {
            return Err(ParseError::NoVerb);
        }
        let root = (0..self.n())
            .find(|&i| self.content_verb[i] && !self.attached(i))
            .or_else(|| (0..self.n()).find(|&i| !self.attached(i)))
            .ok_or_else(|| ParseError::Inconsistent("no root candidate".into()))?;
        self.labels[root] = DepLabel::Root;
        Ok(root)
    }

    /// Pass 9: attach every remaining headless token to the root.
    /// Coordinated clauses ("... AND the man watches ...") get `conj` arcs
    /// with the conjunction word as a `cc` child of the conjunct verb.
    fn attach_leftovers(&mut self, root: usize) {
        // Conjunct verbs first so the CC can attach to them.
        let conj_verbs: Vec<usize> = (root + 1..self.n())
            .filter(|&i| {
                !self.attached(i)
                    && self.tag(i).is_verb()
                    && self.content_verb[i]
                    && (root + 1..i).any(|j| self.tag(j) == PosTag::CC)
            })
            .collect();
        for v in conj_verbs {
            self.attach(v, root, DepLabel::Conj);
            if let Some(cc) = (root + 1..v).rev().find(|&j| {
                self.tag(j) == PosTag::CC && !self.attached(j)
            }) {
                self.attach(cc, v, DepLabel::Cc);
            }
        }
        for i in 0..self.n() {
            if i == root || self.attached(i) {
                continue;
            }
            let label = if self.tag(i).is_punct() {
                DepLabel::Punct
            } else {
                DepLabel::Dep
            };
            self.attach(i, root, label);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pos::PosTagger;

    fn parse(q: &str) -> DepTree {
        let tagger = PosTagger::new();
        RuleDependencyParser::new()
            .parse(&tagger.tag(q))
            .unwrap_or_else(|e| panic!("parse failed for {q:?}: {e}"))
    }

    fn find(tree: &DepTree, word: &str) -> usize {
        (0..tree.len())
            .find(|&i| tree.text(i) == word)
            .unwrap_or_else(|| panic!("{word:?} not in {:?}", tree.to_conll()))
    }

    fn arc(tree: &DepTree, dep: &str) -> (Option<String>, DepLabel) {
        let i = find(tree, dep);
        (
            tree.head_of(i).map(|h| tree.text(h).to_owned()),
            tree.label_of(i),
        )
    }

    #[test]
    fn example4_main_clause() {
        // Figure 4: "What kind of clothes are worn by the wizard ..."
        let t = parse("What kind of clothes are worn by the wizard?");
        assert_eq!(arc(&t, "kind"), (Some("worn".into()), DepLabel::NsubjPass));
        assert_eq!(arc(&t, "clothes"), (Some("kind".into()), DepLabel::Nmod));
        assert_eq!(arc(&t, "of"), (Some("clothes".into()), DepLabel::Case));
        assert_eq!(arc(&t, "are"), (Some("worn".into()), DepLabel::AuxPass));
        assert_eq!(arc(&t, "wizard"), (Some("worn".into()), DepLabel::Obl));
        assert_eq!(arc(&t, "by"), (Some("wizard".into()), DepLabel::Case));
        assert_eq!(arc(&t, "what"), (Some("kind".into()), DepLabel::Det));
        assert_eq!(t.text(t.root()), "worn");
    }

    #[test]
    fn example4_relative_clause_acl() {
        // "... the wizard who is most frequently hanging out with the girl"
        let t = parse(
            "What kind of clothes are worn by the wizard who is most frequently hanging out with the girl?",
        );
        // The acl edge connects "hanging" to "wizard" (paper: "the acl edge
        // connects from hanging to wizard").
        assert_eq!(
            arc(&t, "hanging"),
            (Some("wizard".into()), DepLabel::AclRelcl)
        );
        assert_eq!(arc(&t, "who"), (Some("hanging".into()), DepLabel::Nsubj));
        assert_eq!(arc(&t, "is"), (Some("hanging".into()), DepLabel::Aux));
        assert_eq!(
            arc(&t, "frequently"),
            (Some("hanging".into()), DepLabel::Advmod)
        );
        assert_eq!(arc(&t, "most"), (Some("frequently".into()), DepLabel::Advmod));
        assert_eq!(arc(&t, "girl"), (Some("hanging".into()), DepLabel::Obl));
        assert_eq!(arc(&t, "with"), (Some("girl".into()), DepLabel::Case));
    }

    #[test]
    fn passive_relative_clause() {
        // Figure 7: "What kind of animals is carried by the pets that were
        // situated in the car?"
        let t = parse("What kind of animals is carried by the pets that were situated in the car?");
        assert_eq!(arc(&t, "animals"), (Some("kind".into()), DepLabel::Nmod));
        assert_eq!(arc(&t, "kind"), (Some("carried".into()), DepLabel::NsubjPass));
        assert_eq!(arc(&t, "pets"), (Some("carried".into()), DepLabel::Obl));
        assert_eq!(arc(&t, "situated"), (Some("pets".into()), DepLabel::AclRelcl));
        assert_eq!(arc(&t, "that"), (Some("situated".into()), DepLabel::NsubjPass));
        assert_eq!(arc(&t, "car"), (Some("situated".into()), DepLabel::Obl));
    }

    #[test]
    fn multiword_preposition_in_front_of() {
        let t = parse("Does the dog appear in front of the car?");
        let front = find(&t, "front");
        let of = find(&t, "of");
        let inn = find(&t, "in");
        assert_eq!(t.label_of(front), DepLabel::Fixed);
        assert_eq!(t.head_of(front), Some(inn));
        assert_eq!(t.label_of(of), DepLabel::Fixed);
        assert_eq!(arc(&t, "car"), (Some("appear".into()), DepLabel::Obl));
        assert_eq!(arc(&t, "dog"), (Some("appear".into()), DepLabel::Nsubj));
        assert_eq!(arc(&t, "does"), (Some("appear".into()), DepLabel::Aux));
    }

    #[test]
    fn possessive_chain() {
        // "Harry Potter's girlfriend is holding a bag"
        let t = parse("Harry Potter's girlfriend is holding a bag");
        assert_eq!(arc(&t, "harry"), (Some("potter".into()), DepLabel::Compound));
        assert_eq!(
            arc(&t, "potter"),
            (Some("girlfriend".into()), DepLabel::NmodPoss)
        );
        assert_eq!(arc(&t, "'s"), (Some("potter".into()), DepLabel::Case));
        assert_eq!(
            arc(&t, "girlfriend"),
            (Some("holding".into()), DepLabel::Nsubj)
        );
        assert_eq!(arc(&t, "bag"), (Some("holding".into()), DepLabel::Obj));
    }

    #[test]
    fn counting_question() {
        let t = parse("How many dogs are sitting on the grass?");
        assert_eq!(arc(&t, "how"), (Some("many".into()), DepLabel::Advmod));
        assert_eq!(arc(&t, "many"), (Some("dogs".into()), DepLabel::Amod));
        assert_eq!(arc(&t, "dogs"), (Some("sitting".into()), DepLabel::Nsubj));
        assert_eq!(arc(&t, "grass"), (Some("sitting".into()), DepLabel::Obl));
        assert_eq!(t.text(t.root()), "sitting");
    }

    #[test]
    fn object_relative_clause() {
        let t = parse("the hat which the man wears is red");
        assert_eq!(arc(&t, "which"), (Some("wears".into()), DepLabel::Obj));
        assert_eq!(arc(&t, "man"), (Some("wears".into()), DepLabel::Nsubj));
        assert_eq!(arc(&t, "wears"), (Some("hat".into()), DepLabel::AclRelcl));
    }

    #[test]
    fn copular_sentence() {
        let t = parse("the dog is near the man");
        // "is" is the only verb → root; "man" obl with case "near".
        assert_eq!(t.text(t.root()), "is");
        assert_eq!(arc(&t, "dog"), (Some("is".into()), DepLabel::Nsubj));
        assert_eq!(arc(&t, "man"), (Some("is".into()), DepLabel::Obl));
        assert_eq!(arc(&t, "near"), (Some("man".into()), DepLabel::Case));
    }

    #[test]
    fn simple_transitive() {
        let t = parse("the dog catches the frisbee");
        assert_eq!(arc(&t, "dog"), (Some("catches".into()), DepLabel::Nsubj));
        assert_eq!(arc(&t, "frisbee"), (Some("catches".into()), DepLabel::Obj));
    }

    #[test]
    fn empty_input_is_error() {
        let parser = RuleDependencyParser::new();
        assert!(matches!(parser.parse(&[]), Err(ParseError::Empty)));
    }

    #[test]
    fn verbless_input_is_no_verb_error() {
        let tagger = PosTagger::new();
        let toks = tagger.tag("the red dog");
        assert!(matches!(
            RuleDependencyParser::new().parse(&toks),
            Err(ParseError::NoVerb)
        ));
    }

    #[test]
    fn every_tree_is_single_rooted_and_acyclic() {
        // validate() runs inside parse(); exercise a batch of shapes.
        for q in [
            "What kind of clothes are worn by the wizard?",
            "How many dogs are sitting on the grass near the man?",
            "Does the dog that is sitting on the bed appear in front of the tv?",
            "the man is wearing a hat and watching the dog",
            "Is the bird carried by the dog that is looking out of the window?",
        ] {
            parse(q);
        }
    }

    #[test]
    fn conll_rendering_has_one_line_per_token() {
        let t = parse("the dog catches the frisbee");
        assert_eq!(t.to_conll().lines().count(), t.len());
    }

    #[test]
    fn children_accessors() {
        let t = parse("the dog catches the frisbee");
        let root = t.root();
        let subj = t.child_with_label(root, DepLabel::Nsubj).unwrap();
        assert_eq!(t.text(subj), "dog");
        assert_eq!(t.children_of(root).count(), 2);
        assert_eq!(t.children_with_label(subj, DepLabel::Det).count(), 1);
    }
}
