//! Arc-standard transition system.
//!
//! The paper's Eq. (5) describes the Stanford parser as a sequence of
//! `(state, action)` steps. This module implements that transition system
//! (SHIFT / LEFT-ARC(l) / RIGHT-ARC(l)) and a static oracle that, given a
//! projective dependency tree, emits the derivation producing it. The rule
//! parser in [`crate::dep`] produces the trees; replaying them here both
//! certifies projectivity and exercises the paper's state/action framing.

use crate::dep::{DepLabel, DepTree};
use serde::{Deserialize, Serialize};

/// A parser action in the arc-standard system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Action {
    /// Move the front of the buffer onto the stack.
    Shift,
    /// Make the stack top the head of the second item (which is popped),
    /// with the given label.
    LeftArc(DepLabel),
    /// Make the second stack item the head of the top (which is popped),
    /// with the given label.
    RightArc(DepLabel),
}

/// The parser configuration: stack, buffer cursor, and the arcs built so
/// far.
#[derive(Debug, Clone)]
pub struct Config {
    stack: Vec<usize>,
    buffer_front: usize,
    n: usize,
    /// `heads[i] = Some((head, label))` once token `i` is attached.
    heads: Vec<Option<(usize, DepLabel)>>,
}

impl Config {
    /// Initial configuration for a sentence of `n` tokens.
    pub fn new(n: usize) -> Self {
        Config {
            stack: Vec::new(),
            buffer_front: 0,
            n,
            heads: vec![None; n],
        }
    }

    /// Whether this is a terminal configuration (buffer drained, one item on
    /// the stack).
    pub fn is_terminal(&self) -> bool {
        self.buffer_front >= self.n && self.stack.len() <= 1
    }

    /// Apply an action; returns `false` (leaving the configuration
    /// unchanged) if the action is not permissible.
    pub fn apply(&mut self, action: Action) -> bool {
        match action {
            Action::Shift => {
                if self.buffer_front >= self.n {
                    return false;
                }
                self.stack.push(self.buffer_front);
                self.buffer_front += 1;
                true
            }
            Action::LeftArc(label) => {
                if self.stack.len() < 2 {
                    return false;
                }
                let top = *self.stack.last().expect("len >= 2");
                let second = self.stack[self.stack.len() - 2];
                self.heads[second] = Some((top, label));
                self.stack.remove(self.stack.len() - 2);
                true
            }
            Action::RightArc(label) => {
                if self.stack.len() < 2 {
                    return false;
                }
                let top = self.stack.pop().expect("len >= 2");
                let second = *self.stack.last().expect("len >= 2 before pop");
                self.heads[top] = Some((second, label));
                true
            }
        }
    }

    /// Arcs built so far.
    pub fn arcs(&self) -> &[Option<(usize, DepLabel)>] {
        &self.heads
    }
}

/// Errors from oracle derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OracleError {
    /// The tree is non-projective: no arc-standard derivation exists.
    NonProjective,
}

impl std::fmt::Display for OracleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OracleError::NonProjective => write!(f, "tree is non-projective"),
        }
    }
}

impl std::error::Error for OracleError {}

/// Compute the arc-standard action sequence deriving `tree` (the static
/// oracle). Fails iff the tree is non-projective.
pub fn oracle_derivation(tree: &DepTree) -> Result<Vec<Action>, OracleError> {
    let n = tree.len();
    // Gold arcs and per-head pending-children counts.
    let mut pending_children = vec![0usize; n];
    for i in 0..n {
        if let Some(h) = tree.head_of(i) {
            pending_children[h] += 1;
        }
    }
    let mut config = Config::new(n);
    let mut actions = Vec::new();
    loop {
        if config.is_terminal() {
            break;
        }
        let action = choose_oracle_action(tree, &config, &pending_children);
        match action {
            Some(a) => {
                if let Action::LeftArc(_) = a {
                    let second = config.stack[config.stack.len() - 2];
                    if let Some(h) = tree.head_of(second) {
                        pending_children[h] -= 1;
                        let _ = h;
                    }
                } else if let Action::RightArc(_) = a {
                    let top = *config.stack.last().expect("non-empty");
                    if let Some(h) = tree.head_of(top) {
                        pending_children[h] -= 1;
                        let _ = h;
                    }
                }
                let ok = config.apply(a);
                debug_assert!(ok);
                actions.push(a);
            }
            None => return Err(OracleError::NonProjective),
        }
    }
    Ok(actions)
}

/// Standard arc-standard static-oracle rule: LEFT-ARC when the second stack
/// item's gold head is the top; RIGHT-ARC when the top's gold head is the
/// second item *and* the top has collected all its children; otherwise
/// SHIFT.
fn choose_oracle_action(
    tree: &DepTree,
    config: &Config,
    pending_children: &[usize],
) -> Option<Action> {
    if config.stack.len() >= 2 {
        let top = *config.stack.last().expect("len >= 2");
        let second = config.stack[config.stack.len() - 2];
        if tree.head_of(second) == Some(top) && pending_children[second] == 0 {
            return Some(Action::LeftArc(tree.label_of(second)));
        }
        if tree.head_of(top) == Some(second) && pending_children[top] == 0 {
            return Some(Action::RightArc(tree.label_of(top)));
        }
    }
    if config.buffer_front < tree.len() {
        return Some(Action::Shift);
    }
    None
}

/// Replay a derivation and verify it reproduces `tree` exactly.
pub fn replays_to(tree: &DepTree, actions: &[Action]) -> bool {
    let mut config = Config::new(tree.len());
    for &a in actions {
        if !config.apply(a) {
            return false;
        }
    }
    if !config.is_terminal() {
        return false;
    }
    (0..tree.len()).all(|i| match tree.head_of(i) {
        Some(h) => config.heads[i] == Some((h, tree.label_of(i))),
        None => config.heads[i].is_none(),
    })
}

/// Whether `tree` is projective (has an arc-standard derivation).
pub fn is_projective(tree: &DepTree) -> bool {
    oracle_derivation(tree).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dep::RuleDependencyParser;
    use crate::pos::PosTagger;

    fn parse(q: &str) -> DepTree {
        RuleDependencyParser::new()
            .parse(&PosTagger::new().tag(q))
            .unwrap()
    }

    #[test]
    fn simple_sentence_derivation_replays() {
        let t = parse("the dog catches the frisbee");
        let actions = oracle_derivation(&t).unwrap();
        assert!(replays_to(&t, &actions));
        // 2n-1 actions for an n-token projective tree: n shifts + (n-1) arcs.
        assert_eq!(actions.len(), 2 * t.len() - 1);
    }

    #[test]
    fn paper_questions_are_projective() {
        for q in [
            "What kind of clothes are worn by the wizard?",
            "What kind of animals is carried by the pets that were situated in the car?",
            "How many dogs are sitting on the grass?",
            "Does the dog appear in front of the car?",
        ] {
            let t = parse(q);
            assert!(is_projective(&t), "non-projective parse for {q:?}");
            let actions = oracle_derivation(&t).unwrap();
            assert!(replays_to(&t, &actions), "bad replay for {q:?}");
        }
    }

    #[test]
    fn shift_fails_on_empty_buffer() {
        let mut c = Config::new(1);
        assert!(c.apply(Action::Shift));
        assert!(!c.apply(Action::Shift));
    }

    #[test]
    fn arcs_need_two_stack_items() {
        let mut c = Config::new(2);
        assert!(!c.apply(Action::LeftArc(DepLabel::Det)));
        assert!(c.apply(Action::Shift));
        assert!(!c.apply(Action::RightArc(DepLabel::Obj)));
        assert!(c.apply(Action::Shift));
        assert!(c.apply(Action::RightArc(DepLabel::Obj)));
        assert!(c.is_terminal());
    }

    #[test]
    fn wrong_derivation_does_not_replay() {
        let t = parse("the dog catches the frisbee");
        // All-shift derivation is incomplete.
        let bogus = vec![Action::Shift; t.len()];
        assert!(!replays_to(&t, &bogus));
    }
}
