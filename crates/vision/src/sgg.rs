//! Scene-graph generation end-to-end (§III-A) with the Table V model zoo.
//!
//! `G_sg(I) = (V_sg, E_sg)`: detections become vertices; per ordered pair,
//! the relation model produces scores (Original = Eq. (1) argmax,
//! TDE = Eq. (3) argmax) and pairs above threshold become edges.

use crate::detector::{Detection, Detector, DetectorConfig};
use crate::eval::RelationPrediction;
use crate::prior::PairPrior;
use crate::relation::{RelationModelParams, RelationPredictor, RELATION_VOCAB};
use crate::scene::SyntheticImage;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use svqa_graph::{Graph, Properties, VertexId};

/// The SGG frameworks compared in Table V, as parameterisations of the
/// simulated relation model. Ordered weakest → strongest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SggModel {
    /// Zhang et al. 2017: translation-embedding model — weakest geometry.
    VTransE,
    /// Tang et al. 2019: dynamic tree composition.
    VCTree,
    /// Zellers et al. 2018: the paper's default (MOTIFNET).
    NeuralMotifs,
}

impl SggModel {
    /// All three models, in Table V order.
    pub const ALL: [SggModel; 3] = [SggModel::VTransE, SggModel::VCTree, SggModel::NeuralMotifs];

    /// Display name as printed in Table V.
    pub fn name(self) -> &'static str {
        match self {
            SggModel::VTransE => "VTransE",
            SggModel::VCTree => "VCTree",
            SggModel::NeuralMotifs => "Neural-Motifs",
        }
    }

    /// Relation-model parameters for this framework. `prior_weight` is the
    /// shared training bias; fidelity/noise encode each model's geometry
    /// reading quality, calibrated so Neural-Motifs > VCTree > VTransE on
    /// mR@K (Table V).
    pub fn params(self) -> RelationModelParams {
        match self {
            SggModel::VTransE => RelationModelParams {
                fidelity: 0.65,
                prior_weight: 1.3,
                noise: 0.14,
            },
            SggModel::VCTree => RelationModelParams {
                fidelity: 0.95,
                prior_weight: 1.25,
                noise: 0.08,
            },
            SggModel::NeuralMotifs => RelationModelParams {
                fidelity: 1.10,
                prior_weight: 1.2,
                noise: 0.06,
            },
        }
    }
}

/// Configuration of a scene-graph generation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SggConfig {
    /// Which relation framework to use.
    pub model: SggModel,
    /// Whether to apply TDE debiasing (Eq. (3)) — the Original/TDE split of
    /// Table V.
    pub use_tde: bool,
    /// Detector channel parameters.
    pub detector: DetectorConfig,
    /// Minimum score for a pair to yield an edge.
    pub edge_threshold: f64,
    /// Base seed; each image derives its own stream from `seed ^ image id`.
    pub seed: u64,
}

impl Default for SggConfig {
    fn default() -> Self {
        SggConfig {
            model: SggModel::NeuralMotifs,
            use_tde: true,
            detector: DetectorConfig::default(),
            edge_threshold: 0.35,
            seed: 0x5eed,
        }
    }
}

/// The generated scene graph plus evaluation bookkeeping.
#[derive(Debug, Clone)]
pub struct SceneGraphOutput {
    /// The scene graph `G_sg(I)` (vertex props carry `image` and bbox;
    /// edge props carry `score`).
    pub graph: Graph,
    /// The detections backing each vertex, aligned with vertex ids.
    pub detections: Vec<Detection>,
    /// Vertex ids aligned with `detections`.
    pub vertex_ids: Vec<VertexId>,
    /// All scored pair predictions (for mR@K), sorted descending by score.
    pub predictions: Vec<RelationPrediction>,
}

/// The scene-graph generator: detector + relation model + edge selection.
pub struct SceneGraphGenerator {
    config: SggConfig,
    detector: Detector,
    predictor: RelationPredictor,
}

impl SceneGraphGenerator {
    /// Build a generator; `prior` is the fitted training bias (use
    /// [`PairPrior::fit`] on the image corpus).
    pub fn new(config: SggConfig, prior: PairPrior) -> Self {
        let detector = Detector::new(config.detector.clone());
        let predictor = RelationPredictor::new(config.model.params(), prior);
        SceneGraphGenerator {
            config,
            detector,
            predictor,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SggConfig {
        &self.config
    }

    /// Generate the scene graph of one image.
    pub fn generate(&self, image: &SyntheticImage) -> SceneGraphOutput {
        let _span = svqa_telemetry::Span::enter(svqa_telemetry::stage::SGG);
        // Fault-plan gate, one draw per image. Generation is infallible, so
        // `Error` degrades to an empty scene graph (the image yields
        // nothing); `CorruptLabel` scrambles every edge predicate.
        let fault = svqa_fault::draw(svqa_fault::site::SGG_GENERATE);
        match fault {
            Some(svqa_fault::FaultKind::Error | svqa_fault::FaultKind::DropResult) => {
                return SceneGraphOutput {
                    graph: Graph::new(),
                    detections: Vec::new(),
                    vertex_ids: Vec::new(),
                    predictions: Vec::new(),
                };
            }
            Some(svqa_fault::FaultKind::Latency(ms)) => {
                svqa_fault::apply_latency(ms, None);
            }
            Some(svqa_fault::FaultKind::CorruptLabel) | None => {}
        }
        let corrupt_edges = fault == Some(svqa_fault::FaultKind::CorruptLabel);
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ u64::from(image.id));
        let detections = self.detector.detect(image, &mut rng);

        let mut graph = Graph::with_capacity(detections.len(), detections.len() * 2);
        let mut vertex_ids = Vec::with_capacity(detections.len());
        for d in &detections {
            let props: Properties = [
                ("image", svqa_graph::PropValue::Int(i64::from(image.id))),
                ("x", svqa_graph::PropValue::Float(d.bbox.x)),
                ("y", svqa_graph::PropValue::Float(d.bbox.y)),
                ("w", svqa_graph::PropValue::Float(d.bbox.w)),
                ("h", svqa_graph::PropValue::Float(d.bbox.h)),
            ]
            .into_iter()
            .collect();
            vertex_ids.push(graph.add_vertex_with_props(d.label.clone(), props));
        }

        // Predictions rank every (ordered pair, predicate) triplet — the
        // standard SGG evaluation protocol behind mR@K. Graph edges keep
        // only the per-pair argmax above threshold (the relational matrix
        // of Eq. (3)).
        let mut predictions = Vec::new();
        let mut edges: Vec<(usize, usize, usize, f64)> = Vec::new();
        for i in 0..detections.len() {
            for j in 0..detections.len() {
                if i == j {
                    continue;
                }
                let scores = if self.config.use_tde {
                    self.predictor
                        .tde_scores(&detections[i], &detections[j], &mut rng)
                } else {
                    self.predictor
                        .original_scores(&detections[i], &detections[j], &mut rng)
                };
                let mut best = 0usize;
                for (r, &score) in scores.iter().enumerate() {
                    predictions.push(RelationPrediction {
                        sub: i,
                        obj: j,
                        relation: r,
                        score,
                    });
                    if score > scores[best] {
                        best = r;
                    }
                }
                if scores[best] >= self.config.edge_threshold {
                    edges.push((i, j, best, scores[best]));
                }
            }
        }
        predictions.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("finite"));

        for (i, j, relation, score) in edges {
            let mut props = Properties::new();
            props.set("score", score);
            let relation = if corrupt_edges {
                (relation + 1) % RELATION_VOCAB.len()
            } else {
                relation
            };
            graph
                .add_edge_with_props(
                    vertex_ids[i],
                    vertex_ids[j],
                    RELATION_VOCAB[relation],
                    props,
                )
                .expect("vertices exist");
        }

        SceneGraphOutput {
            graph,
            detections,
            vertex_ids,
            predictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::SceneBuilder;

    fn frisbee_scene() -> SyntheticImage {
        // Figure 3's scene: a dog jumping over grass to catch a frisbee, a
        // man watching from behind a fence.
        let mut rng = StdRng::seed_from_u64(33);
        let mut b = SceneBuilder::new(1, &mut rng);
        let dog = b.add_object("dog");
        let grass = b.add_object("grass");
        let man = b.add_object("man");
        let frisbee = b.add_object("frisbee");
        b.relate(dog, "jumping over", grass);
        b.relate(man, "behind", dog);
        b.relate(dog, "holding", frisbee);
        b.build()
    }

    fn noiseless_config(use_tde: bool) -> SggConfig {
        SggConfig {
            use_tde,
            detector: DetectorConfig {
                detect_prob: 1.0,
                confusion_prob: 0.0,
                bbox_jitter: 0.0,
                spurious_rate: 0.0,
            },
            ..SggConfig::default()
        }
    }

    #[test]
    fn scene_graph_has_vertex_per_detection() {
        let img = frisbee_scene();
        let gen = SceneGraphGenerator::new(noiseless_config(true), PairPrior::uniform());
        let out = gen.generate(&img);
        assert_eq!(out.graph.vertex_count(), 4);
        assert_eq!(out.detections.len(), 4);
        assert_eq!(out.vertex_ids.len(), 4);
        let labels: Vec<_> = out.graph.vertices().map(|(_, v)| v.label()).collect();
        for l in ["dog", "grass", "man", "frisbee"] {
            assert!(labels.contains(&l), "{l} missing from {labels:?}");
        }
    }

    #[test]
    fn predictions_cover_all_ordered_pairs_sorted() {
        let img = frisbee_scene();
        let gen = SceneGraphGenerator::new(noiseless_config(true), PairPrior::uniform());
        let out = gen.generate(&img);
        assert_eq!(out.predictions.len(), 4 * 3 * RELATION_VOCAB.len());
        for w in out.predictions.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn edges_carry_scores_and_respect_threshold() {
        let img = frisbee_scene();
        let mut cfg = noiseless_config(true);
        cfg.edge_threshold = 0.2;
        let gen = SceneGraphGenerator::new(cfg, PairPrior::uniform());
        let out = gen.generate(&img);
        for (_, e) in out.graph.edges() {
            let score = e.props().get("score").and_then(|p| p.as_float()).unwrap();
            assert!(score >= 0.2);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let img = frisbee_scene();
        let gen = SceneGraphGenerator::new(SggConfig::default(), PairPrior::uniform());
        let a = gen.generate(&img);
        let b = gen.generate(&img);
        assert_eq!(a.graph.vertex_count(), b.graph.vertex_count());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        assert_eq!(a.predictions.len(), b.predictions.len());
        for (x, y) in a.predictions.iter().zip(&b.predictions) {
            assert_eq!(x.relation, y.relation);
            assert!((x.score - y.score).abs() < 1e-12);
        }
    }

    #[test]
    fn model_zoo_parameters_are_ordered() {
        let v = SggModel::VTransE.params();
        let c = SggModel::VCTree.params();
        let m = SggModel::NeuralMotifs.params();
        assert!(v.fidelity < c.fidelity && c.fidelity < m.fidelity);
        assert!(v.noise > c.noise && c.noise > m.noise);
        assert_eq!(SggModel::NeuralMotifs.name(), "Neural-Motifs");
    }

    #[test]
    fn tde_mode_differs_from_original() {
        // With a biased prior the two modes must produce different edges at
        // least sometimes.
        let mut rng = StdRng::seed_from_u64(55);
        let mut train = Vec::new();
        for i in 0..30 {
            let mut b = SceneBuilder::new(i + 100, &mut rng);
            let d = b.add_object("dog");
            let g = b.add_object("grass");
            b.relate(d, "near", g);
            train.push(b.build());
        }
        let prior = PairPrior::fit(&train);
        let img = frisbee_scene();
        let orig = SceneGraphGenerator::new(noiseless_config(false), prior.clone()).generate(&img);
        let tde = SceneGraphGenerator::new(noiseless_config(true), prior).generate(&img);
        let rels = |out: &SceneGraphOutput| {
            out.predictions
                .iter()
                .map(|p| p.relation)
                .collect::<Vec<_>>()
        };
        assert_ne!(rels(&orig), rels(&tde));
    }
}
