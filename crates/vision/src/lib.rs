//! # svqa-vision
//!
//! The visual substrate of the SVQA reproduction (§III-A of the paper):
//! scene-graph generation from images.
//!
//! The paper's pipeline uses a trained Mask R-CNN for object detection and
//! an RNN-based MOTIFNET for relation prediction, debiased with Total
//! Direct Effect (TDE). Per the substitution policy in `DESIGN.md`, images
//! are replaced by [`scene::SyntheticImage`]s — procedurally generated
//! ground-truth scenes — and the trained networks by *noise channels* over
//! that ground truth with the same interfaces and failure modes:
//!
//! * [`detector`] — the Mask R-CNN stand-in: per-category detection
//!   probability, a label confusion matrix (Fig. 8b's "toy bear → bear"),
//!   bounding-box jitter, spurious detections; emits `(b_i, m_i, l_i)`
//!   triples exactly as Eq. (1) consumes them;
//! * [`feature`] — feature maps `m_i`: deterministic vectors encoding
//!   geometry, depth and appearance (what the RPN features carry);
//! * [`prior`] — the label-pair co-occurrence prior, i.e. the *training
//!   bias* that TDE subtracts, fitted on ground-truth scenes;
//! * [`relation`] — the MOTIFNET stand-in: relation probability = feature
//!   evidence + label prior (Eq. (1)); masking the feature maps leaves the
//!   prior (Eq. (2)); the TDE difference recovers the explicit predicate
//!   (Eq. (3));
//! * [`sgg`] — scene-graph generation end-to-end, with the three model
//!   parameterisations of Table V (Neural Motifs / VCTree / VTransE), each
//!   in Original and TDE mode;
//! * [`eval`] — the Mean Recall@K (mR@K) metric of Exp-3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bbox;
pub mod detector;
pub mod eval;
pub mod feature;
pub mod prior;
pub mod relation;
pub mod scene;
pub mod sgg;

pub use bbox::BBox;
pub use detector::{Detection, Detector, DetectorConfig};
pub use eval::{mean_recall_at_k, RelationPrediction};
pub use feature::FeatureMap;
pub use prior::PairPrior;
pub use relation::{RelationPredictor, RELATION_VOCAB};
pub use scene::{SceneObject, SyntheticImage};
pub use sgg::{SceneGraphGenerator, SggConfig, SggModel};
