//! The label-pair co-occurrence prior — the "training bias".
//!
//! §III-A (2): "the explicit relationship between the objects may be
//! obscured by the ubiquitous relationships that exist within the `l_i` and
//! `l_j`. Such a training bias thus needs to be deducted". In a trained
//! MOTIFNET the bias lives in the weights; here it is made explicit: a
//! conditional distribution `P(relation | supertype(l_i), supertype(l_j))`
//! fitted on ground-truth scenes. The relation model adds this prior to its
//! feature evidence (Eq. (1)); the masked pass returns *only* the prior
//! (Eq. (2)); TDE subtracts it (Eq. (3)).

use crate::relation::{relation_index, RELATION_VOCAB};
use crate::scene::{supertype, SyntheticImage};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Conditional relation distribution keyed by supertype pairs, with a
/// global marginal fallback for unseen pairs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PairPrior {
    by_pair: HashMap<(String, String), Vec<f64>>,
    marginal: Vec<f64>,
}

/// How much of the training annotation mass collapses onto the ubiquitous
/// predicates ("on"/"near"). Visual Genome's predicate distribution is
/// annotation-biased — annotators overwhelmingly write the easy coarse
/// predicate — and this is precisely the "training bias" §III-A says TDE
/// must deduct. 0.0 would be an oracle-annotated corpus.
const ANNOTATION_BIAS: f64 = 0.85;

/// The coarse predicate a lazy annotator writes instead of `r`.
fn ubiquitous_for(r: usize) -> usize {
    const VERTICALISH: [&str; 7] = [
        "on", "sitting on", "standing on", "riding", "jumping over", "under", "in",
    ];
    if VERTICALISH.contains(&RELATION_VOCAB[r]) {
        relation_index("on").expect("in vocab")
    } else {
        relation_index("near").expect("in vocab")
    }
}

impl PairPrior {
    /// Fit the prior on a corpus of scenes as a *biased annotator* would
    /// label them: each true relation contributes most of its mass to the
    /// ubiquitous coarse predicate and only the remainder to its true
    /// class. The resulting prior is exactly the training bias the paper's
    /// Eq. (2)/(3) machinery exists to remove.
    pub fn fit<'a>(images: impl IntoIterator<Item = &'a SyntheticImage>) -> Self {
        let mut by_pair: HashMap<(String, String), Vec<f64>> = HashMap::new();
        let mut marginal = vec![0.0; RELATION_VOCAB.len()];
        for img in images {
            for rel in &img.relations {
                let Some(r) = relation_index(&rel.pred) else {
                    continue;
                };
                let key = (
                    supertype(&img.objects[rel.sub].category).to_owned(),
                    supertype(&img.objects[rel.obj].category).to_owned(),
                );
                let dist = by_pair
                    .entry(key)
                    .or_insert_with(|| vec![0.0; RELATION_VOCAB.len()]);
                dist[r] += 1.0 - ANNOTATION_BIAS;
                dist[ubiquitous_for(r)] += ANNOTATION_BIAS;
                marginal[r] += 1.0 - ANNOTATION_BIAS;
                marginal[ubiquitous_for(r)] += ANNOTATION_BIAS;
            }
        }
        normalize(&mut marginal);
        for dist in by_pair.values_mut() {
            normalize(dist);
        }
        PairPrior { by_pair, marginal }
    }

    /// A uniform prior (used when no training corpus is supplied).
    pub fn uniform() -> Self {
        let n = RELATION_VOCAB.len();
        PairPrior {
            by_pair: HashMap::new(),
            marginal: vec![1.0 / n as f64; n],
        }
    }

    /// `P(relation | l_sub, l_obj)` as a dense vector over the relation
    /// vocabulary (categories are reduced to supertypes; unseen pairs fall
    /// back to the marginal).
    pub fn distribution(&self, sub_label: &str, obj_label: &str) -> &[f64] {
        let key = (
            supertype(sub_label).to_owned(),
            supertype(obj_label).to_owned(),
        );
        self.by_pair
            .get(&key)
            .map(Vec::as_slice)
            .unwrap_or(&self.marginal)
    }

    /// Number of distinct supertype pairs seen at fit time.
    pub fn pair_count(&self) -> usize {
        self.by_pair.len()
    }
}

fn normalize(dist: &mut [f64]) {
    let sum: f64 = dist.iter().sum();
    if sum > 0.0 {
        for x in dist.iter_mut() {
            *x /= sum;
        }
    } else {
        let n = dist.len();
        dist.fill(1.0 / n as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::SceneBuilder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn corpus() -> Vec<SyntheticImage> {
        let mut rng = StdRng::seed_from_u64(11);
        let mut images = Vec::new();
        // Bias: animals are overwhelmingly "near" humans, rarely "in front
        // of" them.
        for i in 0..20 {
            let mut b = SceneBuilder::new(i, &mut rng);
            let dog = b.add_object("dog");
            let man = b.add_object("man");
            let pred = if i % 10 == 0 { "in front of" } else { "near" };
            b.relate(dog, pred, man);
            images.push(b.build());
        }
        images
    }

    #[test]
    fn fitted_prior_reflects_corpus_bias() {
        let imgs = corpus();
        let prior = PairPrior::fit(&imgs);
        let dist = prior.distribution("dog", "man");
        let near = dist[relation_index("near").unwrap()];
        let front = dist[relation_index("in front of").unwrap()];
        assert!(near > 0.7, "near = {near}");
        assert!(front < 0.25, "front = {front}");
        // At least the declared (animal, human) pair; emergent ground-truth
        // relations may add more supertype pairs.
        assert!(prior.pair_count() >= 1);
    }

    #[test]
    fn distributions_sum_to_one() {
        let imgs = corpus();
        let prior = PairPrior::fit(&imgs);
        let sum: f64 = prior.distribution("dog", "man").iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        let sum: f64 = prior.distribution("car", "building").iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn supertype_generalization() {
        // A cat/woman pair falls in the same (animal, human) bucket as the
        // dog/man training pairs.
        let imgs = corpus();
        let prior = PairPrior::fit(&imgs);
        let dist = prior.distribution("cat", "woman");
        assert!(dist[relation_index("near").unwrap()] > 0.8);
    }

    #[test]
    fn unseen_pair_falls_back_to_marginal() {
        let imgs = corpus();
        let prior = PairPrior::fit(&imgs);
        let dist = prior.distribution("car", "tower");
        // Marginal equals the overall relation frequencies.
        assert!(dist[relation_index("near").unwrap()] > 0.8);
    }

    #[test]
    fn uniform_prior() {
        let prior = PairPrior::uniform();
        let dist = prior.distribution("dog", "man");
        let expected = 1.0 / RELATION_VOCAB.len() as f64;
        for &p in dist {
            assert!((p - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_corpus_yields_uniform_marginal() {
        let prior = PairPrior::fit(std::iter::empty());
        let sum: f64 = prior.distribution("dog", "man").iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }
}
