//! Bounding boxes.
//!
//! The paper (§III-A): "Each bounding box `b_i` is a tuple
//! `(x_i, y_i, w_i, h_i)`, where `(x_i, y_i)` are the coordinates of the
//! top-left corner". Coordinates are in a normalized `[0, 1]` image frame
//! (the synthetic scenes have no pixel grid).

use serde::{Deserialize, Serialize};

/// An axis-aligned bounding box `(x, y, w, h)` with top-left origin;
/// `y` grows downward (image convention).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BBox {
    /// Left edge.
    pub x: f64,
    /// Top edge.
    pub y: f64,
    /// Width.
    pub w: f64,
    /// Height.
    pub h: f64,
}

impl BBox {
    /// Construct a box; width/height are clamped to non-negative.
    pub fn new(x: f64, y: f64, w: f64, h: f64) -> Self {
        BBox {
            x,
            y,
            w: w.max(0.0),
            h: h.max(0.0),
        }
    }

    /// Box area.
    pub fn area(&self) -> f64 {
        self.w * self.h
    }

    /// Center point `(cx, cy)`.
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Bottom edge y-coordinate (larger y = lower in the image).
    pub fn bottom(&self) -> f64 {
        self.y + self.h
    }

    /// Right edge x-coordinate.
    pub fn right(&self) -> f64 {
        self.x + self.w
    }

    /// Intersection area with another box.
    pub fn intersection_area(&self, other: &BBox) -> f64 {
        let ix = (self.right().min(other.right()) - self.x.max(other.x)).max(0.0);
        let iy = (self.bottom().min(other.bottom()) - self.y.max(other.y)).max(0.0);
        ix * iy
    }

    /// Intersection-over-union.
    pub fn iou(&self, other: &BBox) -> f64 {
        let inter = self.intersection_area(other);
        let union = self.area() + other.area() - inter;
        if union <= 0.0 {
            0.0
        } else {
            inter / union
        }
    }

    /// Fraction of `self`'s area inside `other`.
    pub fn containment_in(&self, other: &BBox) -> f64 {
        let a = self.area();
        if a <= 0.0 {
            0.0
        } else {
            self.intersection_area(other) / a
        }
    }

    /// Euclidean distance between centers.
    pub fn center_distance(&self, other: &BBox) -> f64 {
        let (ax, ay) = self.center();
        let (bx, by) = other.center();
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }

    /// Horizontal overlap length with another box.
    pub fn x_overlap(&self, other: &BBox) -> f64 {
        (self.right().min(other.right()) - self.x.max(other.x)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_and_center() {
        let b = BBox::new(0.1, 0.2, 0.4, 0.2);
        assert!((b.area() - 0.08).abs() < 1e-12);
        let (cx, cy) = b.center();
        assert!((cx - 0.3).abs() < 1e-12);
        assert!((cy - 0.3).abs() < 1e-12);
    }

    #[test]
    fn negative_dims_clamped() {
        let b = BBox::new(0.0, 0.0, -1.0, -2.0);
        assert_eq!(b.area(), 0.0);
    }

    #[test]
    fn iou_disjoint_is_zero() {
        let a = BBox::new(0.0, 0.0, 0.1, 0.1);
        let b = BBox::new(0.5, 0.5, 0.1, 0.1);
        assert_eq!(a.iou(&b), 0.0);
    }

    #[test]
    fn iou_identical_is_one() {
        let a = BBox::new(0.2, 0.2, 0.3, 0.3);
        assert!((a.iou(&a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn iou_partial_overlap() {
        let a = BBox::new(0.0, 0.0, 0.2, 0.2);
        let b = BBox::new(0.1, 0.0, 0.2, 0.2);
        // intersection 0.1*0.2 = 0.02; union 0.04+0.04-0.02 = 0.06.
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn containment() {
        let inner = BBox::new(0.1, 0.1, 0.1, 0.1);
        let outer = BBox::new(0.0, 0.0, 0.5, 0.5);
        assert!((inner.containment_in(&outer) - 1.0).abs() < 1e-12);
        assert!(outer.containment_in(&inner) < 0.1);
    }

    #[test]
    fn distances_are_symmetric() {
        let a = BBox::new(0.0, 0.0, 0.2, 0.2);
        let b = BBox::new(0.6, 0.8, 0.2, 0.2);
        assert!((a.center_distance(&b) - b.center_distance(&a)).abs() < 1e-12);
        assert!((a.center_distance(&b) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn serde_roundtrip() {
        let b = BBox::new(0.1, 0.2, 0.3, 0.4);
        let j = serde_json::to_string(&b).unwrap();
        let back: BBox = serde_json::from_str(&j).unwrap();
        assert_eq!(back, b);
    }
}
