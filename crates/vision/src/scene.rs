//! Synthetic images: ground-truth scenes.
//!
//! A [`SyntheticImage`] is what a COCO image *means*: a set of objects with
//! categories, bounding boxes, depths and attributes, plus the true
//! relations between them. The detector and relation predictor observe this
//! ground truth through noise channels; SVQA itself never sees it.
//!
//! [`SceneBuilder`] constructs scenes whose geometry is *consistent with*
//! the requested relations (an object placed "on" another really does rest
//! on top of it), so the relation predictor's geometric evidence is real
//! signal, not a lookup of the answer.

use crate::bbox::BBox;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Category metadata: `(name, supertype, default width, default height)`.
/// Supertypes follow §VI-B: "humans, animals, vehicles, and buildings,
/// which have the highest proportion and crossover rate in COCO", plus the
/// supporting prop categories scenes need.
pub const CATEGORIES: &[(&str, &str, f64, f64)] = &[
    // humans
    ("person", "human", 0.14, 0.38), ("man", "human", 0.14, 0.38),
    ("woman", "human", 0.13, 0.36), ("child", "human", 0.10, 0.24),
    ("wizard", "human", 0.14, 0.40), ("player", "human", 0.14, 0.38),
    // animals
    ("dog", "animal", 0.16, 0.14), ("cat", "animal", 0.12, 0.10),
    ("bird", "animal", 0.06, 0.05), ("horse", "animal", 0.26, 0.24),
    ("sheep", "animal", 0.18, 0.14), ("cow", "animal", 0.26, 0.20),
    ("elephant", "animal", 0.34, 0.28), ("bear", "animal", 0.22, 0.20),
    ("teddy bear", "animal", 0.08, 0.09), ("zebra", "animal", 0.24, 0.20),
    ("giraffe", "animal", 0.20, 0.36),
    // vehicles
    ("car", "vehicle", 0.30, 0.16), ("bus", "vehicle", 0.42, 0.26),
    ("truck", "vehicle", 0.40, 0.24), ("motorcycle", "vehicle", 0.22, 0.16),
    ("bicycle", "vehicle", 0.20, 0.16), ("train", "vehicle", 0.55, 0.22),
    ("boat", "vehicle", 0.30, 0.14), ("airplane", "vehicle", 0.44, 0.14),
    // buildings / structures
    ("building", "building", 0.40, 0.55), ("house", "building", 0.34, 0.38),
    ("fence", "building", 0.45, 0.12), ("bench", "building", 0.24, 0.12),
    ("tower", "building", 0.16, 0.60), ("bridge", "building", 0.55, 0.16),
    // clothing
    ("hat", "clothing", 0.07, 0.05), ("shirt", "clothing", 0.12, 0.14),
    ("jacket", "clothing", 0.13, 0.16), ("robe", "clothing", 0.14, 0.26),
    ("helmet", "clothing", 0.07, 0.06), ("dress", "clothing", 0.12, 0.22),
    // everyday objects
    ("frisbee", "object", 0.06, 0.03), ("ball", "object", 0.05, 0.05),
    ("umbrella", "object", 0.14, 0.10), ("backpack", "object", 0.09, 0.11),
    ("bottle", "object", 0.03, 0.08), ("cup", "object", 0.04, 0.05),
    ("book", "object", 0.06, 0.05), ("phone", "object", 0.03, 0.05),
    ("laptop", "object", 0.10, 0.08), ("tv", "object", 0.16, 0.12),
    ("kite", "object", 0.10, 0.07), ("skateboard", "object", 0.12, 0.04),
    ("surfboard", "object", 0.16, 0.05),
    // furniture
    ("bed", "furniture", 0.34, 0.20), ("chair", "furniture", 0.14, 0.18),
    ("table", "furniture", 0.28, 0.16), ("couch", "furniture", 0.32, 0.18),
    ("window", "furniture", 0.14, 0.18), ("door", "furniture", 0.12, 0.30),
    // scenery
    ("grass", "scenery", 0.70, 0.18), ("tree", "scenery", 0.18, 0.40),
    ("road", "scenery", 0.80, 0.16), ("sky", "scenery", 0.95, 0.25),
    ("water", "scenery", 0.70, 0.20), ("beach", "scenery", 0.70, 0.18),
];

/// Look up `(supertype, default width, default height)` for a category.
pub fn category_info(category: &str) -> Option<(&'static str, f64, f64)> {
    CATEGORIES
        .iter()
        .find(|(n, ..)| *n == category)
        .map(|&(_, s, w, h)| (s, w, h))
}

/// Supertype of a category ("human", "animal", "vehicle", "building",
/// "clothing", "object", "furniture", "scenery").
pub fn supertype(category: &str) -> &'static str {
    category_info(category).map_or("object", |(s, ..)| s)
}

/// A ground-truth object in a scene.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SceneObject {
    /// COCO-style category name.
    pub category: String,
    /// Normalized bounding box.
    pub bbox: BBox,
    /// Depth in `[0, 1]`; larger = farther from the camera. Drives
    /// "behind" / "in front of" ground truth.
    pub depth: f64,
    /// Named identity, when the object is a recognizable entity that also
    /// lives in the knowledge graph ("harry potter"). Empty for anonymous
    /// objects.
    pub entity: Option<String>,
    /// Attribute pairs, e.g. `("color", "red")`.
    pub attributes: Vec<(String, String)>,
}

impl SceneObject {
    /// The label this object contributes to the scene graph: its entity
    /// name when recognized, otherwise its category.
    pub fn scene_label(&self) -> &str {
        self.entity.as_deref().unwrap_or(&self.category)
    }

    /// Attribute lookup.
    pub fn attribute(&self, key: &str) -> Option<&str> {
        self.attributes
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A ground-truth relation `subject —predicate→ object` (indexes into the
/// image's object list).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroundTruthRelation {
    /// Subject object index.
    pub sub: usize,
    /// Predicate (one of [`crate::relation::RELATION_VOCAB`]).
    pub pred: String,
    /// Object object index.
    pub obj: usize,
    /// Whether this relation was *derived* from final geometry rather than
    /// declared by the scene script. Emergent relations are real (they are
    /// answered and scored like any other) but question generation avoids
    /// building questions around them.
    #[serde(default)]
    pub emergent: bool,
}

/// A synthetic image: ground-truth objects plus relations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SyntheticImage {
    /// Image id (unique within a dataset).
    pub id: u32,
    /// Ground-truth objects.
    pub objects: Vec<SceneObject>,
    /// Ground-truth relations.
    pub relations: Vec<GroundTruthRelation>,
    /// A caption describing the scene (MVQA questions were authored from
    /// COCO captions; the dataset generator mirrors that).
    pub caption: String,
}

impl SyntheticImage {
    /// The ground-truth predicate between two objects, if any.
    pub fn relation_between(&self, sub: usize, obj: usize) -> Option<&str> {
        self.relations
            .iter()
            .find(|r| r.sub == sub && r.obj == obj)
            .map(|r| r.pred.as_str())
    }
}

/// Builds a scene whose geometry realizes the requested relations.
pub struct SceneBuilder<'r> {
    id: u32,
    objects: Vec<SceneObject>,
    relations: Vec<GroundTruthRelation>,
    rng: &'r mut StdRng,
}

impl<'r> SceneBuilder<'r> {
    /// Start a scene.
    pub fn new(id: u32, rng: &'r mut StdRng) -> Self {
        SceneBuilder {
            id,
            objects: Vec::new(),
            relations: Vec::new(),
            rng,
        }
    }

    /// Access the builder's random stream (scene composition decisions in
    /// callers share the stream so a scene is one deterministic draw).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// Add an object at a random free position, with default size for its
    /// category (jittered ±15%).
    pub fn add_object(&mut self, category: &str) -> usize {
        self.add_entity_object(category, None)
    }

    /// Add an object whose category is drawn uniformly from `options`.
    pub fn add_object_from(&mut self, options: &[&str]) -> usize {
        let category = options[self.rng.gen_range(0..options.len())];
        self.add_object(category)
    }

    /// Add an object with a named identity.
    pub fn add_entity_object(&mut self, category: &str, entity: Option<&str>) -> usize {
        let (_, w0, h0) = category_info(category).unwrap_or(("object", 0.1, 0.1));
        let jw = w0 * self.rng.gen_range(0.85..1.15);
        let jh = h0 * self.rng.gen_range(0.85..1.15);
        let x = self.rng.gen_range(0.0..(1.0 - jw).max(0.001));
        // Ground objects sit in the lower half by default.
        let y = self.rng.gen_range(0.3..(1.0 - jh).max(0.31));
        let depth = self.rng.gen_range(0.2..0.8);
        self.objects.push(SceneObject {
            category: category.to_owned(),
            bbox: BBox::new(x, y, jw, jh),
            depth,
            entity: entity.map(str::to_owned),
            attributes: Vec::new(),
        });
        self.objects.len() - 1
    }

    /// Attach an attribute to an object.
    pub fn set_attribute(&mut self, idx: usize, key: &str, value: &str) {
        self.objects[idx]
            .attributes
            .push((key.to_owned(), value.to_owned()));
    }

    /// Record `sub —pred→ obj` and move `sub` so the geometry realizes the
    /// predicate relative to `obj`'s current position.
    pub fn relate(&mut self, sub: usize, pred: &str, obj: usize) {
        let target = self.objects[obj].bbox;
        let target_depth = self.objects[obj].depth;
        let b = self.objects[sub].bbox;
        let eps = self.rng.gen_range(-0.01..0.01);
        let (bbox, depth) = match pred {
            "on" | "sitting on" | "standing on" => (
                BBox::new(
                    target.x + (target.w - b.w) / 2.0 + eps,
                    target.y - b.h + 0.01,
                    b.w,
                    b.h,
                ),
                target_depth,
            ),
            "in" => {
                let w = b.w.min(target.w * 0.8);
                let h = b.h.min(target.h * 0.8);
                (
                    BBox::new(
                        target.x + (target.w - w) / 2.0 + eps,
                        target.y + (target.h - h) / 2.0,
                        w,
                        h,
                    ),
                    target_depth,
                )
            }
            "near" => (
                BBox::new(
                    (target.right() + 0.03 + eps.abs()).min(1.0 - b.w),
                    target.bottom() - b.h,
                    b.w,
                    b.h,
                ),
                target_depth + self.rng.gen_range(-0.05..0.05),
            ),
            // Watchers stand off at a characteristic distance — the
            // geometric signature that separates attention from adjacency.
            "looking at" | "watching" => (
                BBox::new(
                    (target.right() + 0.22 + eps.abs()).min(1.0 - b.w),
                    target.bottom() - b.h,
                    b.w,
                    b.h,
                ),
                target_depth + self.rng.gen_range(-0.05..0.05),
            ),
            "behind" => (
                BBox::new(
                    target.x + eps,
                    target.y - b.h * 0.3,
                    b.w,
                    b.h,
                ),
                target_depth + 0.25,
            ),
            "in front of" => (
                BBox::new(
                    target.x + eps,
                    target.bottom() - b.h * 0.8,
                    b.w,
                    b.h,
                ),
                (target_depth - 0.25).max(0.0),
            ),
            "under" => (
                BBox::new(
                    target.x + (target.w - b.w) / 2.0 + eps,
                    (target.bottom() + 0.02).min(1.0 - b.h),
                    b.w,
                    b.h,
                ),
                target_depth,
            ),
            "wearing" => {
                // subject (person) wears object — move the *object* onto the
                // subject instead; `relate(person, "wearing", hat)` keeps the
                // person still and dresses them.
                let wearer = self.objects[sub].bbox;
                let c = self.objects[obj].bbox;
                self.objects[obj].bbox = clamp_bbox(BBox::new(
                    wearer.x + (wearer.w - c.w) / 2.0,
                    wearer.y + wearer.h * 0.05,
                    c.w.min(wearer.w),
                    c.h.min(wearer.h * 0.6),
                ));
                self.objects[obj].depth = self.objects[sub].depth;
                self.relations.push(GroundTruthRelation {
                    sub,
                    pred: pred.to_owned(),
                    obj,
                    emergent: false,
                });
                return;
            }
            "holding" | "carrying" => {
                // Move the carried object to the subject's mid-side.
                let holder = self.objects[sub].bbox;
                let c = self.objects[obj].bbox;
                self.objects[obj].bbox = clamp_bbox(BBox::new(
                    (holder.right() - c.w * 0.5).min(1.0 - c.w),
                    holder.y + holder.h * 0.45,
                    c.w,
                    c.h,
                ));
                self.objects[obj].depth = self.objects[sub].depth;
                self.relations.push(GroundTruthRelation {
                    sub,
                    pred: pred.to_owned(),
                    obj,
                    emergent: false,
                });
                return;
            }
            "riding" => (
                BBox::new(
                    target.x + (target.w - b.w) / 2.0 + eps,
                    target.y - b.h * 0.6,
                    b.w,
                    b.h,
                ),
                target_depth,
            ),
            "jumping over" => (
                BBox::new(
                    target.x + (target.w - b.w) / 2.0 + eps,
                    (target.y - b.h - 0.06).max(0.0),
                    b.w,
                    b.h,
                ),
                target_depth,
            ),
            _ => (b, target_depth),
        };
        self.objects[sub].bbox = clamp_bbox(bbox);
        self.objects[sub].depth = depth.clamp(0.0, 1.0);
        self.relations.push(GroundTruthRelation {
            sub,
            pred: pred.to_owned(),
            obj,
            emergent: false,
        });
    }

    /// Record `sub —pred→ obj` keeping `sub` where it is and moving `obj`
    /// to realize the relation (the inverse of [`SceneBuilder::relate`]).
    /// Needed when the subject already participates in earlier relations
    /// whose geometry must survive.
    pub fn relate_anchored(&mut self, sub: usize, pred: &str, obj: usize) {
        let anchor = self.objects[sub].bbox;
        let anchor_depth = self.objects[sub].depth;
        let b = self.objects[obj].bbox;
        let eps = self.rng.gen_range(-0.01..0.01);
        let (bbox, depth) = match pred {
            // sub in front of obj ⇒ obj sits behind sub.
            "in front of" => (
                BBox::new(anchor.x + eps, anchor.y - b.h * 0.3, b.w, b.h),
                (anchor_depth + 0.25).min(1.0),
            ),
            "behind" => (
                BBox::new(anchor.x + eps, anchor.bottom() - b.h * 0.8, b.w, b.h),
                (anchor_depth - 0.25).max(0.0),
            ),
            "near" => (
                BBox::new(
                    (anchor.right() + 0.03 + eps.abs()).min(1.0 - b.w),
                    anchor.bottom() - b.h,
                    b.w,
                    b.h,
                ),
                anchor_depth + self.rng.gen_range(-0.05..0.05),
            ),
            "watching" | "looking at" => (
                BBox::new(
                    (anchor.right() + 0.22 + eps.abs()).min(1.0 - b.w),
                    anchor.bottom() - b.h,
                    b.w,
                    b.h,
                ),
                anchor_depth + self.rng.gen_range(-0.05..0.05),
            ),
            // sub on obj ⇒ obj slides under sub.
            "on" | "sitting on" | "standing on" => (
                BBox::new(
                    anchor.x + (anchor.w - b.w) / 2.0 + eps,
                    (anchor.bottom() - 0.01).min(1.0 - b.h),
                    b.w,
                    b.h,
                ),
                anchor_depth,
            ),
            "under" => (
                BBox::new(
                    anchor.x + (anchor.w - b.w) / 2.0 + eps,
                    (anchor.y - b.h - 0.02).max(0.0),
                    b.w,
                    b.h,
                ),
                anchor_depth,
            ),
            _ => (b, anchor_depth),
        };
        self.objects[obj].bbox = clamp_bbox(bbox);
        self.objects[obj].depth = depth.clamp(0.0, 1.0);
        self.relations.push(GroundTruthRelation {
            sub,
            pred: pred.to_owned(),
            obj,
            emergent: false,
        });
    }

    /// Finish the scene with a generated caption. Beyond the *declared*
    /// relations, any pair whose final geometry confidently implies a
    /// predicate gets an **emergent** ground-truth relation (a person
    /// placed to watch a dog on the grass really is standing on that
    /// grass): ground truth describes the scene as it is, so a faithful
    /// perception pipeline is scored against what it can actually see.
    pub fn build(self) -> SyntheticImage {
        let caption = self
            .relations
            .iter()
            .map(|r| {
                format!(
                    "a {} {} a {}",
                    self.objects[r.sub].scene_label(),
                    r.pred,
                    self.objects[r.obj].scene_label()
                )
            })
            .collect::<Vec<_>>()
            .join("; ");
        let mut relations = self.relations;
        for i in 0..self.objects.len() {
            for j in 0..self.objects.len() {
                if i == j || relations.iter().any(|r| r.sub == i && r.obj == j) {
                    continue;
                }
                let evidence = crate::relation::geometric_evidence_boxes(
                    self.objects[i].bbox,
                    self.objects[i].depth,
                    self.objects[j].bbox,
                    self.objects[j].depth,
                );
                let (best, &score) = evidence
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                    .expect("non-empty vocabulary");
                // Only decisively implied relations become ground truth:
                // high absolute evidence and a clear winner over the
                // runner-up (ignoring the winner's own alias group).
                let runner_up = evidence
                    .iter()
                    .enumerate()
                    .filter(|(r, _)| {
                        !crate::relation::predicates_aliased(
                            crate::relation::RELATION_VOCAB[*r],
                            crate::relation::RELATION_VOCAB[best],
                        )
                    })
                    .map(|(_, &s)| s)
                    .fold(0.0f64, f64::max);
                if score >= 0.65 && score >= 1.7 * runner_up {
                    relations.push(GroundTruthRelation {
                        sub: i,
                        pred: crate::relation::RELATION_VOCAB[best].to_owned(),
                        obj: j,
                        emergent: true,
                    });
                }
            }
        }
        SyntheticImage {
            id: self.id,
            objects: self.objects,
            relations,
            caption,
        }
    }
}

fn clamp_bbox(b: BBox) -> BBox {
    let w = b.w.min(1.0);
    let h = b.h.min(1.0);
    BBox::new(b.x.clamp(0.0, 1.0 - w), b.y.clamp(0.0, 1.0 - h), w, h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn category_table_lookup() {
        assert_eq!(supertype("dog"), "animal");
        assert_eq!(supertype("wizard"), "human");
        assert_eq!(supertype("unknown-thing"), "object");
        assert!(category_info("car").is_some());
    }

    #[test]
    fn on_relation_places_subject_atop_object() {
        let mut r = rng();
        let mut b = SceneBuilder::new(0, &mut r);
        let dog = b.add_object("dog");
        let grass = b.add_object("grass");
        b.relate(dog, "on", grass);
        let img = b.build();
        let d = &img.objects[dog].bbox;
        let g = &img.objects[grass].bbox;
        assert!(d.bottom() <= g.y + 0.05, "dog bottom {} vs grass top {}", d.bottom(), g.y);
        assert!(d.x_overlap(g) > 0.0);
        assert_eq!(img.relation_between(dog, grass), Some("on"));
    }

    #[test]
    fn in_relation_contains_subject() {
        let mut r = rng();
        let mut b = SceneBuilder::new(0, &mut r);
        let dog = b.add_object("dog");
        let car = b.add_object("car");
        b.relate(dog, "in", car);
        let img = b.build();
        assert!(img.objects[dog].bbox.containment_in(&img.objects[car].bbox) > 0.9);
    }

    #[test]
    fn behind_increases_depth() {
        let mut r = rng();
        let mut b = SceneBuilder::new(0, &mut r);
        let man = b.add_object("man");
        let dog = b.add_object("dog");
        b.relate(man, "behind", dog);
        let img = b.build();
        assert!(img.objects[man].depth > img.objects[dog].depth);
    }

    #[test]
    fn wearing_moves_the_garment() {
        let mut r = rng();
        let mut b = SceneBuilder::new(0, &mut r);
        let man = b.add_object("man");
        let before = b.objects[man].bbox;
        let hat = b.add_object("hat");
        b.relate(man, "wearing", hat);
        let img = b.build();
        // The wearer did not move; the garment is inside the wearer.
        assert_eq!(img.objects[man].bbox, before);
        assert!(img.objects[hat].bbox.containment_in(&img.objects[man].bbox) > 0.8);
    }

    #[test]
    fn entity_objects_use_entity_label() {
        let mut r = rng();
        let mut b = SceneBuilder::new(0, &mut r);
        let g = b.add_entity_object("woman", Some("ginny weasley"));
        let img = b.build();
        assert_eq!(img.objects[g].scene_label(), "ginny weasley");
        assert_eq!(img.objects[g].category, "woman");
    }

    #[test]
    fn attributes() {
        let mut r = rng();
        let mut b = SceneBuilder::new(0, &mut r);
        let bear = b.add_object("teddy bear");
        b.set_attribute(bear, "kind", "toy");
        let img = b.build();
        assert_eq!(img.objects[bear].attribute("kind"), Some("toy"));
        assert_eq!(img.objects[bear].attribute("color"), None);
    }

    #[test]
    fn caption_mentions_relations() {
        let mut r = rng();
        let mut b = SceneBuilder::new(3, &mut r);
        let dog = b.add_object("dog");
        let car = b.add_object("car");
        b.relate(dog, "in", car);
        let img = b.build();
        assert!(img.caption.contains("dog in a car"), "{}", img.caption);
        assert_eq!(img.id, 3);
    }

    #[test]
    fn bboxes_stay_in_frame() {
        let mut r = rng();
        for seed_obj in ["dog", "elephant", "bus"] {
            let mut b = SceneBuilder::new(0, &mut r);
            let a = b.add_object(seed_obj);
            let t = b.add_object("building");
            for pred in ["on", "in", "near", "behind", "in front of", "under", "riding", "jumping over"] {
                b.relate(a, pred, t);
            }
            let img = b.build();
            for o in &img.objects {
                assert!(o.bbox.x >= 0.0 && o.bbox.y >= 0.0);
                assert!(o.bbox.right() <= 1.0 + 1e-9 && o.bbox.bottom() <= 1.0 + 1e-9);
            }
        }
    }
}
