//! Relation (linkage) prediction — the MOTIFNET stand-in.
//!
//! Implements §III-A "Linkage Generation" faithfully:
//!
//! * Eq. (1): `{(b_i, m_i, l_i), (b_j, m_j, l_j)} → {p_rij}` — the relation
//!   probability is a blend of *feature evidence* (geometric compatibility
//!   decoded from the feature maps) and the *label-pair prior* (the
//!   training bias);
//! * Eq. (2): the same pass with `Mask(m)` zero feature maps — the evidence
//!   term vanishes and only the prior survives;
//! * Eq. (3): `r_ij = argmax(p_rij − p′_rij)` — the Total Direct Effect,
//!   which strips the bias and recovers the explicit predicate.

use crate::detector::Detection;
use crate::feature::FeatureMap;
use crate::prior::PairPrior;
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The relation vocabulary (scene-graph predicates).
pub const RELATION_VOCAB: &[&str] = &[
    "on",
    "in",
    "near",
    "behind",
    "in front of",
    "under",
    "holding",
    "wearing",
    "riding",
    "carrying",
    "watching",
    "sitting on",
    "standing on",
    "looking at",
    "jumping over",
];

/// Index of a predicate in [`RELATION_VOCAB`].
pub fn relation_index(pred: &str) -> Option<usize> {
    RELATION_VOCAB.iter().position(|&r| r == pred)
}

/// Predicate equivalence classes. Some predicates are geometrically
/// indistinguishable ("on" / "sitting on" / "standing on"; "holding" /
/// "carrying"; "watching" / "looking at") — standard SGG practice treats
/// them as aliases at evaluation time, and the reproduction applies the
/// same equivalence end-to-end (SGG eval, ground-truth answering, and the
/// executor's predicate matching all agree).
pub const ALIAS_GROUPS: &[&[&str]] = &[
    &["on", "sitting on", "standing on"],
    &["holding", "carrying"],
    &["watching", "looking at"],
];

/// Whether two predicates are equal or aliases of each other.
pub fn predicates_aliased(a: &str, b: &str) -> bool {
    a == b
        || ALIAS_GROUPS
            .iter()
            .any(|g| g.contains(&a) && g.contains(&b))
}

/// Parameters of the simulated relation model. The three SGG frameworks of
/// Table V are three parameterisations (see [`crate::sgg::SggModel`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RelationModelParams {
    /// Weight of the feature-evidence term — how well the model reads
    /// geometry out of the feature maps.
    pub fidelity: f64,
    /// Weight of the label-pair prior term — the strength of the training
    /// bias baked into the model.
    pub prior_weight: f64,
    /// Amplitude of per-pair prediction noise.
    pub noise: f64,
}

/// The relation predictor.
#[derive(Debug, Clone)]
pub struct RelationPredictor {
    params: RelationModelParams,
    prior: PairPrior,
}

impl RelationPredictor {
    /// Build a predictor from model parameters and a fitted prior.
    pub fn new(params: RelationModelParams, prior: PairPrior) -> Self {
        RelationPredictor { params, prior }
    }

    /// Model parameters.
    pub fn params(&self) -> &RelationModelParams {
        &self.params
    }

    /// Raw (pre-softmax) relation scores for an ordered pair — the "logit"
    /// space in which real TDE implementations take the Eq. (3) difference.
    /// Pass [`FeatureMap::masked`] maps to obtain the Eq. (2) biased pass.
    pub fn predict_raw(
        &self,
        sub_features: &FeatureMap,
        sub_label: &str,
        obj_features: &FeatureMap,
        obj_label: &str,
        rng: &mut StdRng,
    ) -> Vec<f64> {
        let evidence = if sub_features.is_masked() || obj_features.is_masked() {
            vec![0.0; RELATION_VOCAB.len()]
        } else {
            geometric_evidence(sub_features, obj_features)
        };
        let prior = self.prior.distribution(sub_label, obj_label);
        (0..RELATION_VOCAB.len())
            .map(|r| {
                self.params.fidelity * evidence[r]
                    + self.params.prior_weight * prior[r]
                    + self.params.noise * rng.gen::<f64>()
            })
            .collect()
    }

    /// Eq. (1) / Eq. (2): the normalized relation distribution `p_rij`.
    pub fn predict(
        &self,
        sub_features: &FeatureMap,
        sub_label: &str,
        obj_features: &FeatureMap,
        obj_label: &str,
        rng: &mut StdRng,
    ) -> Vec<f64> {
        let mut scores = self.predict_raw(sub_features, sub_label, obj_features, obj_label, rng);
        let sum: f64 = scores.iter().sum();
        if sum > 0.0 {
            for s in &mut scores {
                *s /= sum;
            }
        }
        scores
    }

    /// Eq. (3): the Total-Direct-Effect scores `p − p′` for a pair, taken
    /// in raw score space (subtracting *normalized* distributions with
    /// different normalizers would over-subtract exactly the
    /// prior-dominant relations TDE is meant to recover).
    pub fn tde_scores(&self, sub: &Detection, obj: &Detection, rng: &mut StdRng) -> Vec<f64> {
        let p = self.predict_raw(&sub.features, &sub.label, &obj.features, &obj.label, rng);
        let masked = FeatureMap::masked();
        let p_prime = self.predict_raw(&masked, &sub.label, &masked, &obj.label, rng);
        p.iter().zip(&p_prime).map(|(a, b)| a - b).collect()
    }

    /// Biased (original-model) scores for a pair: Eq. (1) only, raw space
    /// (argmax-equivalent to the normalized form).
    pub fn original_scores(&self, sub: &Detection, obj: &Detection, rng: &mut StdRng) -> Vec<f64> {
        self.predict_raw(&sub.features, &sub.label, &obj.features, &obj.label, rng)
    }
}

/// Geometric compatibility of each predicate for an ordered region pair,
/// decoded from the feature maps. Values in `[0, 1]`.
pub fn geometric_evidence(sub: &FeatureMap, obj: &FeatureMap) -> Vec<f64> {
    geometric_evidence_boxes(sub.bbox(), sub.depth(), obj.bbox(), obj.depth())
}

/// [`geometric_evidence`] on raw geometry (used both by the relation model
/// via feature maps and by the scene generator to derive the *emergent*
/// ground-truth relations implied by final object placement).
pub fn geometric_evidence_boxes(
    sb: crate::bbox::BBox,
    sd: f64,
    ob: crate::bbox::BBox,
    od: f64,
) -> Vec<f64> {
    let dist = sb.center_distance(&ob);
    // Edge-to-edge gap: adjacency for big regions is about separation
    // between box edges, not centers.
    let dx = (sb.x.max(ob.x) - sb.right().min(ob.right())).max(0.0);
    let dy = (sb.y.max(ob.y) - sb.bottom().min(ob.bottom())).max(0.0);
    let gap = (dx * dx + dy * dy).sqrt();
    let x_overlap_frac = if sb.w.min(ob.w) > 0.0 {
        sb.x_overlap(&ob) / sb.w.min(ob.w)
    } else {
        0.0
    };
    // Vertical contact: subject bottom at object top.
    let contact_top = gauss(sb.bottom() - ob.y, 0.04);
    // Subject below object.
    let below = gauss(sb.y - ob.bottom(), 0.06);
    let containment = sb.containment_in(&ob);
    let rev_containment = ob.containment_in(&sb);
    let depth_gap = sd - od;
    // ≈1 when the subject region dwarfs the object region (a person
    // holding a cup), ≈0 the other way around.
    let subject_dominates = gauss_above(sb.area() / (ob.area() + 1e-9) - 1.0, 1.0);
    let size_ratio = sb.area() / (ob.area() + 1e-9);

    let on = contact_top * x_overlap_frac;
    // Containment reads as "in" only at matching depth (a region overlapped
    // by something *behind* it is occlusion, not containment) and unless
    // the subject dwarfs the object.
    let inn = containment
        * gauss(depth_gap, 0.1)
        * (1.0 - gauss_above(size_ratio - 1.5, 0.5));
    // Adjacency at touching distance; attention ("watching") lives at a
    // characteristic standoff distance instead, and overlapping regions
    // are grips/garments, not neighbours.
    let obj_overlap = ob.intersection_area(&sb) / (ob.area() + 1e-9);
    // Neighbours sit side by side: horizontal separation with vertical
    // range overlap. Vertically stacked pairs (x-overlapping) are
    // "on"/"under", not "near".
    let near = gauss(gap, 0.05)
        * (1.0 - x_overlap_frac).max(0.0)
        * (1.0 - containment)
        * (1.0 - obj_overlap) * (1.0 - obj_overlap)
        * gauss(depth_gap, 0.15);
    // Occlusion-order predicates need a clear depth gap *and* line-of-sight
    // alignment (x-overlap) — depth alone would relate every pair of
    // objects at different distances.
    let behind = gauss_above(depth_gap - 0.15, 0.07)
        * x_overlap_frac
        * gauss(dist, 0.35);
    let in_front = gauss_above(-depth_gap - 0.15, 0.07)
        * x_overlap_frac
        * gauss(dist, 0.35);
    let under = below * x_overlap_frac;
    // Holding/carrying: a small object overlapping the subject's mid
    // region at its *side* (where hands/mouths are); wearing: a garment
    // centred on the subject's frame. The horizontal offset is the main
    // discriminator between the two.
    let grip = ob.containment_in(&sb).max(obj_overlap);
    let side_offset = (ob.center().0 - sb.right()) / (sb.w + 1e-9);
    let center_offset = (ob.center().0 - sb.center().0) / (sb.w + 1e-9);
    let holding = grip
        * subject_dominates
        * gauss((ob.center().1 - (sb.y + sb.h * 0.5)) / (sb.h + 1e-9), 0.25)
        * gauss(side_offset, 0.35);
    let carrying = holding;
    let wearing = ob.containment_in(&sb)
        * subject_dominates
        * gauss((ob.center().1 - (sb.y + sb.h * 0.3)) / (sb.h + 1e-9), 0.3)
        * gauss(center_offset, 0.25);
    // Riding: subject overlapping the object's top, bottom inside it, at
    // the same depth (an occluding figure farther back is "behind", not a
    // rider).
    let riding = x_overlap_frac
        * gauss(sb.bottom() - (ob.y + ob.h * 0.4), 0.12)
        * gauss_above(ob.y - sb.y, 0.05)
        * gauss(depth_gap, 0.1);
    let watching = gauss(gap - 0.2, 0.09)
        * (1.0 - x_overlap_frac).max(0.0)
        * (1.0 - containment)
        * (1.0 - rev_containment)
        * gauss(depth_gap, 0.2);
    let sitting_on = on;
    let standing_on = on;
    let looking_at = watching;
    // Jumping requires a clear air gap between the subject's bottom and the
    // object's top (contact means "on", not "jumping over").
    let jumping_over = x_overlap_frac * gauss(ob.y - sb.bottom() - 0.06, 0.035);

    vec![
        on, inn, near, behind, in_front, under, holding, wearing, riding,
        carrying, watching, sitting_on, standing_on, looking_at, jumping_over,
    ]
}

/// Gaussian bump centred at zero.
fn gauss(x: f64, sigma: f64) -> f64 {
    (-x * x / (2.0 * sigma * sigma)).exp()
}

/// Smooth step: ≈1 when `x ≫ 0`, ≈0 when `x ≪ 0`.
fn gauss_above(x: f64, sigma: f64) -> f64 {
    1.0 / (1.0 + (-x / sigma).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{Detector, DetectorConfig};
    use crate::scene::SceneBuilder;
    use rand::SeedableRng;

    fn perfect_detector() -> Detector {
        Detector::new(DetectorConfig {
            detect_prob: 1.0,
            confusion_prob: 0.0,
            bbox_jitter: 0.0,
            spurious_rate: 0.0,
        })
    }

    /// Build detections for a two-object scene with the given relation.
    fn pair_scene(sub_cat: &str, pred: &str, obj_cat: &str, seed: u64) -> (Detection, Detection) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = SceneBuilder::new(0, &mut rng);
        let s = b.add_object(sub_cat);
        let o = b.add_object(obj_cat);
        b.relate(s, pred, o);
        let img = b.build();
        let ds = perfect_detector().detect(&img, &mut rng);
        let sub = ds.iter().find(|d| d.gt_index == Some(s)).unwrap().clone();
        let obj = ds.iter().find(|d| d.gt_index == Some(o)).unwrap().clone();
        (sub, obj)
    }

    #[test]
    fn vocabulary_lookup() {
        assert_eq!(relation_index("on"), Some(0));
        assert_eq!(relation_index("jumping over"), Some(14));
        assert_eq!(relation_index("unknown"), None);
    }

    #[test]
    fn geometric_evidence_favors_the_placed_relation() {
        // Seeds are tuned so each placement is geometrically unambiguous
        // (e.g. a "near" scene where the boxes don't accidentally overlap
        // into an "in" reading).
        for (pred, seed) in [("on", 1), ("in", 2), ("under", 3), ("near", 5)] {
            let (sub, obj) = pair_scene("dog", pred, "bench", seed);
            let ev = geometric_evidence(&sub.features, &obj.features);
            let placed = ev[relation_index(pred).unwrap()];
            // The placed predicate must score in the top tier (some
            // predicates share evidence, e.g. on/sitting on).
            let max = ev.iter().cloned().fold(0.0f64, f64::max);
            assert!(
                placed > 0.3 && placed >= max * 0.6,
                "{pred}: placed={placed:.3} max={max:.3} ev={ev:?}"
            );
        }
    }

    #[test]
    fn masked_features_kill_the_evidence() {
        let (sub, obj) = pair_scene("dog", "on", "grass", 7);
        let prior = PairPrior::uniform();
        let params = RelationModelParams {
            fidelity: 1.0,
            prior_weight: 1.0,
            noise: 0.0,
        };
        let model = RelationPredictor::new(params, prior);
        let mut rng = StdRng::seed_from_u64(1);
        let masked = FeatureMap::masked();
        let p_prime = model.predict(&masked, &sub.label, &masked, &obj.label, &mut rng);
        // Uniform prior + no evidence + no noise = uniform distribution.
        let expected = 1.0 / RELATION_VOCAB.len() as f64;
        for &p in &p_prime {
            assert!((p - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn tde_recovers_explicit_predicate_under_strong_bias() {
        // Reproduce Example 2: a biased prior says animal-near-scenery, but
        // the dog is ON the grass. Original argmax follows the bias, TDE
        // argmax recovers "on".
        let mut rng = StdRng::seed_from_u64(21);
        let mut train = Vec::new();
        for i in 0..50 {
            let mut b = SceneBuilder::new(i, &mut rng);
            let dog = b.add_object("dog");
            let grass = b.add_object("grass");
            b.relate(dog, "near", grass);
            train.push(b.build());
        }
        let prior = PairPrior::fit(&train);
        let params = RelationModelParams {
            fidelity: 0.5,
            prior_weight: 1.0,
            noise: 0.0,
        };
        let model = RelationPredictor::new(params, prior);
        let (sub, obj) = pair_scene("dog", "on", "grass", 8);

        let mut rng = StdRng::seed_from_u64(3);
        let p = model.original_scores(&sub, &obj, &mut rng);
        let original_argmax = argmax(&p);
        assert_eq!(RELATION_VOCAB[original_argmax], "near", "bias should win: {p:?}");

        let mut rng = StdRng::seed_from_u64(3);
        let tde = model.tde_scores(&sub, &obj, &mut rng);
        let tde_argmax = argmax(&tde);
        // on / sitting on / standing on share geometry; any of them counts
        // as recovering the explicit contact predicate.
        assert!(
            matches!(RELATION_VOCAB[tde_argmax], "on" | "sitting on" | "standing on"),
            "TDE picked {} ({tde:?})",
            RELATION_VOCAB[tde_argmax]
        );
    }

    #[test]
    fn distributions_are_normalized() {
        let (sub, obj) = pair_scene("man", "near", "fence", 9);
        let model = RelationPredictor::new(
            RelationModelParams {
                fidelity: 0.8,
                prior_weight: 0.5,
                noise: 0.1,
            },
            PairPrior::uniform(),
        );
        let mut rng = StdRng::seed_from_u64(4);
        let p = model.predict(&sub.features, &sub.label, &obj.features, &obj.label, &mut rng);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&x| x >= 0.0));
    }

    fn argmax(xs: &[f64]) -> usize {
        xs.iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap()
    }
}
