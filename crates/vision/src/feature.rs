//! Feature maps.
//!
//! The paper's Eq. (1) feeds `(b_i, m_i, l_i)` into the relation model;
//! Eq. (2) repeats the pass with `Mask(m_i)` — zeroed feature maps. Here a
//! feature map is a fixed-width vector encoding what the RPN features carry
//! about a region: its geometry, depth, and an appearance signature of the
//! *true* object (the region's pixels don't lie even when the classifier
//! head mislabels them — this is what lets TDE recover explicit predicates
//! that the label prior obscures).

use crate::bbox::BBox;
use crate::scene::SceneObject;
use serde::{Deserialize, Serialize};

/// Feature vector width: 5 geometry dims + 11 appearance dims.
pub const FEATURE_DIM: usize = 16;
const GEOM_DIMS: usize = 5;

/// A region feature map `m_i`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureMap(pub Vec<f32>);

impl FeatureMap {
    /// Extract the feature map of a ground-truth object (what the RPN would
    /// compute for its region).
    pub fn extract(obj: &SceneObject, bbox: &BBox) -> Self {
        let mut v = vec![0.0f32; FEATURE_DIM];
        let (cx, cy) = bbox.center();
        v[0] = cx as f32;
        v[1] = cy as f32;
        v[2] = bbox.w as f32;
        v[3] = bbox.h as f32;
        v[4] = obj.depth as f32;
        // Appearance signature: seeded by the true category and attributes.
        let mut seed = fnv1a(&obj.category);
        for (k, val) in &obj.attributes {
            seed ^= fnv1a(k).rotate_left(17) ^ fnv1a(val);
        }
        let mut state = seed;
        for slot in v.iter_mut().skip(GEOM_DIMS) {
            state = splitmix64(state);
            *slot = ((state >> 11) as f32 / (1u64 << 53) as f32) * 2.0 - 1.0;
        }
        FeatureMap(v)
    }

    /// `Mask(m)`: the zero vector (Eq. (2)).
    pub fn masked() -> Self {
        FeatureMap(vec![0.0; FEATURE_DIM])
    }

    /// Whether this map has been masked.
    pub fn is_masked(&self) -> bool {
        self.0.iter().all(|&x| x == 0.0)
    }

    /// Decoded region center `(cx, cy)`.
    pub fn center(&self) -> (f64, f64) {
        (f64::from(self.0[0]), f64::from(self.0[1]))
    }

    /// Decoded region size `(w, h)`.
    pub fn size(&self) -> (f64, f64) {
        (f64::from(self.0[2]), f64::from(self.0[3]))
    }

    /// Decoded depth.
    pub fn depth(&self) -> f64 {
        f64::from(self.0[4])
    }

    /// Decoded bounding box.
    pub fn bbox(&self) -> BBox {
        let (cx, cy) = self.center();
        let (w, h) = self.size();
        BBox::new(cx - w / 2.0, cy - h / 2.0, w, h)
    }

    /// Cosine similarity of the appearance signature dims.
    pub fn appearance_similarity(&self, other: &FeatureMap) -> f32 {
        let a = &self.0[GEOM_DIMS..];
        let b = &other.0[GEOM_DIMS..];
        let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
        let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
        if na == 0.0 || nb == 0.0 {
            0.0
        } else {
            dot / (na * nb)
        }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(category: &str, bbox: BBox) -> SceneObject {
        SceneObject {
            category: category.to_owned(),
            bbox,
            depth: 0.4,
            entity: None,
            attributes: Vec::new(),
        }
    }

    #[test]
    fn geometry_roundtrips() {
        let b = BBox::new(0.1, 0.2, 0.3, 0.4);
        let o = obj("dog", b);
        let f = FeatureMap::extract(&o, &b);
        let back = f.bbox();
        assert!((back.x - b.x).abs() < 1e-5);
        assert!((back.w - b.w).abs() < 1e-5);
        assert!((f.depth() - 0.4).abs() < 1e-5);
    }

    #[test]
    fn masked_map_is_zero() {
        let m = FeatureMap::masked();
        assert!(m.is_masked());
        assert_eq!(m.0.len(), FEATURE_DIM);
        assert_eq!(m.bbox().area(), 0.0);
    }

    #[test]
    fn same_category_same_appearance() {
        let b1 = BBox::new(0.1, 0.1, 0.2, 0.2);
        let b2 = BBox::new(0.6, 0.6, 0.3, 0.3);
        let f1 = FeatureMap::extract(&obj("dog", b1), &b1);
        let f2 = FeatureMap::extract(&obj("dog", b2), &b2);
        assert!(f1.appearance_similarity(&f2) > 0.99);
    }

    #[test]
    fn different_category_different_appearance() {
        let b = BBox::new(0.1, 0.1, 0.2, 0.2);
        let f1 = FeatureMap::extract(&obj("dog", b), &b);
        let f2 = FeatureMap::extract(&obj("car", b), &b);
        assert!(f1.appearance_similarity(&f2).abs() < 0.8);
    }

    #[test]
    fn attributes_shift_appearance() {
        let b = BBox::new(0.1, 0.1, 0.2, 0.2);
        let plain = obj("bear", b);
        let mut toy = obj("bear", b);
        toy.attributes.push(("kind".into(), "toy".into()));
        let f1 = FeatureMap::extract(&plain, &b);
        let f2 = FeatureMap::extract(&toy, &b);
        assert!(f1.appearance_similarity(&f2) < 0.99);
    }

    #[test]
    fn extraction_is_deterministic() {
        let b = BBox::new(0.2, 0.2, 0.1, 0.1);
        let o = obj("cat", b);
        assert_eq!(FeatureMap::extract(&o, &b), FeatureMap::extract(&o, &b));
    }
}
