//! Scene-graph evaluation: Mean Recall@K.
//!
//! Exp-3 (Table V) scores SGG with mR@20/50/100: for each image, take the
//! top-K scored triple predictions; per relation class, recall is the
//! fraction of ground-truth triples of that class recovered; mR@K is the
//! mean over classes (this is the metric that exposes bias — a model that
//! only ever predicts "near" has high plain recall but terrible *mean*
//! recall).

use crate::detector::Detection;
use crate::relation::{relation_index, RELATION_VOCAB};
use crate::scene::SyntheticImage;
use serde::{Deserialize, Serialize};

/// A scored triple prediction over detection indexes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelationPrediction {
    /// Subject detection index.
    pub sub: usize,
    /// Object detection index.
    pub obj: usize,
    /// Relation index into [`RELATION_VOCAB`].
    pub relation: usize,
    /// Prediction score (higher = more confident).
    pub score: f64,
}

/// Per-class recall tallies accumulated across images.
#[derive(Debug, Clone, Default)]
pub struct RecallAccumulator {
    /// `(recovered, total)` ground-truth triples per relation class.
    per_class: Vec<(usize, usize)>,
    /// Whether predicate alias groups count as matches (pipeline-style) or
    /// only exact classes (strict SGG benchmarking — Table V).
    exact: bool,
}

impl RecallAccumulator {
    /// Fresh accumulator with alias-group matching.
    pub fn new() -> Self {
        RecallAccumulator {
            per_class: vec![(0, 0); RELATION_VOCAB.len()],
            exact: false,
        }
    }

    /// Strict accumulator: only the exact predicate class counts (the
    /// regime of the paper's Table V, where the 50-class benchmark gives no
    /// alias credit).
    pub fn exact() -> Self {
        RecallAccumulator {
            per_class: vec![(0, 0); RELATION_VOCAB.len()],
            exact: true,
        }
    }

    /// Score one image's predictions (sorted descending; only the top `k`
    /// are considered) against its ground truth.
    pub fn add_image(
        &mut self,
        image: &SyntheticImage,
        detections: &[Detection],
        predictions: &[RelationPrediction],
        k: usize,
    ) {
        let top_k = &predictions[..predictions.len().min(k)];
        for gt in &image.relations {
            let Some(class) = relation_index(&gt.pred) else {
                continue;
            };
            self.per_class[class].1 += 1;
            // Aliased contact predicates count for each other: "sitting on"
            // ground truth is recovered by an "on" prediction and vice
            // versa (standard predicate-cluster matching in SGG evals).
            let recovered = top_k.iter().any(|p| {
                detections.get(p.sub).and_then(|d| d.gt_index) == Some(gt.sub)
                    && detections.get(p.obj).and_then(|d| d.gt_index) == Some(gt.obj)
                    && if self.exact {
                        p.relation == class
                    } else {
                        predicates_match(p.relation, class)
                    }
            });
            if recovered {
                self.per_class[class].0 += 1;
            }
        }
    }

    /// Mean recall over the classes that appeared in ground truth.
    pub fn mean_recall(&self) -> f64 {
        let mut sum = 0.0;
        let mut classes = 0usize;
        for &(hit, total) in &self.per_class {
            if total > 0 {
                sum += hit as f64 / total as f64;
                classes += 1;
            }
        }
        if classes == 0 {
            0.0
        } else {
            sum / classes as f64
        }
    }

    /// Per-class `(relation, recall)` pairs for classes with ground truth.
    pub fn per_class_recall(&self) -> Vec<(&'static str, f64)> {
        self.per_class
            .iter()
            .enumerate()
            .filter(|(_, (_, total))| *total > 0)
            .map(|(i, &(hit, total))| (RELATION_VOCAB[i], hit as f64 / total as f64))
            .collect()
    }
}

/// Contact-predicate clusters considered equivalent at eval time (shared
/// with the rest of the pipeline via [`crate::relation::ALIAS_GROUPS`]).
fn predicates_match(predicted: usize, gold: usize) -> bool {
    crate::relation::predicates_aliased(RELATION_VOCAB[predicted], RELATION_VOCAB[gold])
}

/// Convenience wrapper: mR@K over a corpus for one generator output stream.
pub fn mean_recall_at_k<'a>(
    items: impl IntoIterator<Item = (&'a SyntheticImage, &'a [Detection], &'a [RelationPrediction])>,
    k: usize,
) -> f64 {
    let mut acc = RecallAccumulator::new();
    for (img, dets, preds) in items {
        acc.add_image(img, dets, preds, k);
    }
    acc.mean_recall()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bbox::BBox;
    use crate::feature::FeatureMap;
    use crate::scene::{GroundTruthRelation, SceneObject};

    fn obj(cat: &str) -> SceneObject {
        SceneObject {
            category: cat.to_owned(),
            bbox: BBox::new(0.1, 0.1, 0.2, 0.2),
            depth: 0.5,
            entity: None,
            attributes: Vec::new(),
        }
    }

    fn det(gt: usize) -> Detection {
        Detection {
            bbox: BBox::new(0.1, 0.1, 0.2, 0.2),
            features: FeatureMap::masked(),
            label: "dog".to_owned(),
            score: 1.0,
            gt_index: Some(gt),
        }
    }

    fn image_with(pred: &str) -> SyntheticImage {
        SyntheticImage {
            id: 0,
            objects: vec![obj("dog"), obj("grass")],
            relations: vec![GroundTruthRelation {
                sub: 0,
                pred: pred.to_owned(),
                obj: 1,
                emergent: false,
            }],
            caption: String::new(),
        }
    }

    #[test]
    fn perfect_prediction_gives_full_recall() {
        let img = image_with("on");
        let dets = vec![det(0), det(1)];
        let preds = vec![RelationPrediction {
            sub: 0,
            obj: 1,
            relation: relation_index("on").unwrap(),
            score: 0.9,
        }];
        let mut acc = RecallAccumulator::new();
        acc.add_image(&img, &dets, &preds, 20);
        assert_eq!(acc.mean_recall(), 1.0);
    }

    #[test]
    fn wrong_relation_gives_zero() {
        let img = image_with("on");
        let dets = vec![det(0), det(1)];
        let preds = vec![RelationPrediction {
            sub: 0,
            obj: 1,
            relation: relation_index("behind").unwrap(),
            score: 0.9,
        }];
        let mut acc = RecallAccumulator::new();
        acc.add_image(&img, &dets, &preds, 20);
        assert_eq!(acc.mean_recall(), 0.0);
    }

    #[test]
    fn k_truncation_applies() {
        let img = image_with("on");
        let dets = vec![det(0), det(1)];
        let preds = vec![
            RelationPrediction {
                sub: 1,
                obj: 0,
                relation: relation_index("near").unwrap(),
                score: 0.95,
            },
            RelationPrediction {
                sub: 0,
                obj: 1,
                relation: relation_index("on").unwrap(),
                score: 0.9,
            },
        ];
        let mut acc = RecallAccumulator::new();
        acc.add_image(&img, &dets, &preds, 1);
        assert_eq!(acc.mean_recall(), 0.0);
        let mut acc = RecallAccumulator::new();
        acc.add_image(&img, &dets, &preds, 2);
        assert_eq!(acc.mean_recall(), 1.0);
    }

    #[test]
    fn contact_cluster_aliases_count() {
        let img = image_with("sitting on");
        let dets = vec![det(0), det(1)];
        let preds = vec![RelationPrediction {
            sub: 0,
            obj: 1,
            relation: relation_index("on").unwrap(),
            score: 0.9,
        }];
        let mut acc = RecallAccumulator::new();
        acc.add_image(&img, &dets, &preds, 20);
        assert_eq!(acc.mean_recall(), 1.0);
    }

    #[test]
    fn mean_is_over_classes_not_triples() {
        // 10 "near" triples recovered, 1 "wearing" missed → mean = 0.5, not
        // 10/11.
        let mut img = image_with("near");
        img.relations = Vec::new();
        for _ in 0..10 {
            img.relations.push(GroundTruthRelation {
                sub: 0,
                pred: "near".into(),
                obj: 1,
                emergent: false,
            });
        }
        img.relations.push(GroundTruthRelation {
            sub: 1,
            pred: "wearing".into(),
            obj: 0,
            emergent: false,
        });
        let dets = vec![det(0), det(1)];
        let preds = vec![RelationPrediction {
            sub: 0,
            obj: 1,
            relation: relation_index("near").unwrap(),
            score: 0.9,
        }];
        let mut acc = RecallAccumulator::new();
        acc.add_image(&img, &dets, &preds, 20);
        assert!((acc.mean_recall() - 0.5).abs() < 1e-12);
        let per = acc.per_class_recall();
        assert_eq!(per.len(), 2);
    }

    #[test]
    fn missed_detection_blocks_recovery() {
        let img = image_with("on");
        // Only the subject was detected.
        let dets = vec![det(0)];
        let preds = vec![RelationPrediction {
            sub: 0,
            obj: 1, // out of range — no such detection
            relation: relation_index("on").unwrap(),
            score: 0.9,
        }];
        let mut acc = RecallAccumulator::new();
        acc.add_image(&img, &dets, &preds, 20);
        assert_eq!(acc.mean_recall(), 0.0);
    }

    #[test]
    fn empty_accumulator_is_zero() {
        assert_eq!(RecallAccumulator::new().mean_recall(), 0.0);
        assert_eq!(mean_recall_at_k(std::iter::empty(), 20), 0.0);
    }
}
