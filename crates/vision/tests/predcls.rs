//! PredCls vs SGDet: with oracle detections (the PredCls protocol), mean
//! recall must not be worse than with the noisy detector (SGDet), since
//! the only remaining error source is the relation model.

use svqa_vision::detector::DetectorConfig;
use svqa_vision::eval::RecallAccumulator;
use svqa_vision::prior::PairPrior;
use svqa_vision::scene::SceneBuilder;
use svqa_vision::sgg::{SceneGraphGenerator, SggConfig};

fn scenes() -> Vec<svqa_vision::scene::SyntheticImage> {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    (0..120u32)
        .map(|id| {
            let mut b = SceneBuilder::new(id, &mut rng);
            let person = b.add_object("man");
            let dog = b.add_object("dog");
            let grass = b.add_object("grass");
            let hat = b.add_object("hat");
            b.relate(dog, "on", grass);
            b.relate(person, "standing on", grass);
            b.relate(person, "wearing", hat);
            b.relate(person, "watching", dog);
            b.build()
        })
        .collect()
}

fn mr20(config: SggConfig, images: &[svqa_vision::scene::SyntheticImage]) -> f64 {
    let prior = PairPrior::fit(images);
    let sgg = SceneGraphGenerator::new(config, prior);
    let mut acc = RecallAccumulator::exact();
    for img in images {
        let out = sgg.generate(img);
        acc.add_image(img, &out.detections, &out.predictions, 20);
    }
    acc.mean_recall()
}

#[test]
fn oracle_detection_does_not_hurt_recall() {
    let images = scenes();
    let sgdet = mr20(SggConfig::default(), &images);
    let predcls = mr20(
        SggConfig {
            detector: DetectorConfig::oracle(),
            ..SggConfig::default()
        },
        &images,
    );
    assert!(
        predcls + 0.02 >= sgdet,
        "PredCls {predcls} should be at least SGDet {sgdet}"
    );
    assert!(predcls > 0.2, "PredCls mR@20 too low: {predcls}");
}

#[test]
fn oracle_detector_sees_every_object() {
    use rand::SeedableRng;
    let images = scenes();
    let det = svqa_vision::detector::Detector::new(DetectorConfig::oracle());
    for img in &images {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let ds = det.detect(img, &mut rng);
        assert_eq!(ds.len(), img.objects.len());
        assert!(ds.iter().all(|d| d.gt_index.is_some()));
        for (d, o) in ds.iter().zip(&img.objects) {
            assert_eq!(d.label, *o.scene_label());
            assert_eq!(d.bbox, o.bbox);
        }
    }
}
