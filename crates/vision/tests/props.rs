//! Property-based tests for the vision substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use svqa_vision::bbox::BBox;
use svqa_vision::detector::{Detector, DetectorConfig};
use svqa_vision::prior::PairPrior;
use svqa_vision::relation::{geometric_evidence_boxes, RELATION_VOCAB};
use svqa_vision::scene::{SceneBuilder, CATEGORIES};
use svqa_vision::sgg::{SceneGraphGenerator, SggConfig};

fn arb_bbox() -> impl Strategy<Value = BBox> {
    (0.0f64..0.8, 0.0f64..0.8, 0.01f64..0.3, 0.01f64..0.3)
        .prop_map(|(x, y, w, h)| BBox::new(x, y, w, h))
}

proptest! {
    // ---------------- BBox geometry ----------------
    #[test]
    fn iou_is_symmetric_and_bounded(a in arb_bbox(), b in arb_bbox()) {
        let i1 = a.iou(&b);
        let i2 = b.iou(&a);
        prop_assert!((i1 - i2).abs() < 1e-12);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&i1));
    }

    #[test]
    fn self_iou_is_one(a in arb_bbox()) {
        prop_assert!((a.iou(&a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn intersection_bounded_by_smaller_area(a in arb_bbox(), b in arb_bbox()) {
        let inter = a.intersection_area(&b);
        prop_assert!(inter <= a.area() + 1e-12);
        prop_assert!(inter <= b.area() + 1e-12);
        prop_assert!(inter >= 0.0);
    }

    #[test]
    fn containment_is_a_fraction(a in arb_bbox(), b in arb_bbox()) {
        prop_assert!((0.0..=1.0 + 1e-9).contains(&a.containment_in(&b)));
    }

    // ---------------- Evidence functions ----------------
    #[test]
    fn geometric_evidence_is_bounded(
        a in arb_bbox(), b in arb_bbox(),
        da in 0.0f64..1.0, db in 0.0f64..1.0,
    ) {
        let ev = geometric_evidence_boxes(a, da, b, db);
        prop_assert_eq!(ev.len(), RELATION_VOCAB.len());
        for (&e, name) in ev.iter().zip(RELATION_VOCAB) {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&e), "{name} = {e}");
            prop_assert!(e.is_finite());
        }
    }

    // ---------------- Scene building ----------------
    #[test]
    fn scenes_keep_boxes_in_frame(seed in 0u64..500, cat1 in 0usize..20, cat2 in 0usize..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = SceneBuilder::new(0, &mut rng);
        let a = b.add_object(CATEGORIES[cat1 % CATEGORIES.len()].0);
        let t = b.add_object(CATEGORIES[cat2 % CATEGORIES.len()].0);
        for pred in ["on", "in", "near", "behind", "in front of", "under",
                     "wearing", "holding", "riding", "jumping over", "watching"] {
            b.relate(a, pred, t);
        }
        let img = b.build();
        for o in &img.objects {
            prop_assert!(o.bbox.x >= -1e-9 && o.bbox.y >= -1e-9);
            prop_assert!(o.bbox.right() <= 1.0 + 1e-9);
            prop_assert!(o.bbox.bottom() <= 1.0 + 1e-9);
            prop_assert!((0.0..=1.0).contains(&o.depth));
        }
    }

    #[test]
    fn declared_relations_survive_into_ground_truth(seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = SceneBuilder::new(0, &mut rng);
        let dog = b.add_object("dog");
        let grass = b.add_object("grass");
        b.relate(dog, "on", grass);
        let img = b.build();
        prop_assert!(img.relations.iter().any(|r| r.sub == dog && r.obj == grass && !r.emergent));
        // Emergent relations never duplicate a declared pair.
        for r in img.relations.iter().filter(|r| r.emergent) {
            prop_assert!(!img.relations.iter().any(|d| !d.emergent && d.sub == r.sub && d.obj == r.obj));
        }
    }

    // ---------------- Detector channel ----------------
    #[test]
    fn detection_count_bounded_by_objects_plus_ghosts(seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = SceneBuilder::new(0, &mut rng);
        let a = b.add_object("dog");
        let t = b.add_object("grass");
        b.relate(a, "on", t);
        let img = b.build();
        let det = Detector::new(DetectorConfig::default());
        let ds = det.detect(&img, &mut rng);
        let real = ds.iter().filter(|d| d.gt_index.is_some()).count();
        prop_assert!(real <= img.objects.len());
        for d in &ds {
            prop_assert!((0.5..1.0).contains(&d.score));
            if let Some(gi) = d.gt_index {
                prop_assert!(gi < img.objects.len());
            }
        }
    }

    // ---------------- SGG output invariants ----------------
    #[test]
    fn scene_graph_predictions_are_sorted_and_complete(seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = SceneBuilder::new(seed as u32, &mut rng);
        let dog = b.add_object("dog");
        let grass = b.add_object("grass");
        let man = b.add_object("man");
        b.relate(dog, "on", grass);
        b.relate(man, "watching", dog);
        let img = b.build();
        let sgg = SceneGraphGenerator::new(SggConfig::default(), PairPrior::uniform());
        let out = sgg.generate(&img);
        let n = out.detections.len();
        prop_assert_eq!(out.predictions.len(), n * n.saturating_sub(1) * RELATION_VOCAB.len());
        for w in out.predictions.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        out.graph.validate().unwrap();
        // At most one edge per ordered detection pair.
        let mut pairs = std::collections::HashSet::new();
        for (_, e) in out.graph.edges() {
            prop_assert!(pairs.insert((e.src(), e.dst())), "duplicate pair edge");
        }
    }
}
