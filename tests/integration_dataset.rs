//! Integration tests for the MVQA dataset against the NLP/query stack: the
//! generated questions must be fully consumable by the parser, and the
//! structured ground truth must agree with what the parsed query graphs
//! express.

use svqa::dataset::groundtruth::Side;
use svqa::qparser::{AnswerRole, QueryGraphGenerator};
use svqa_dataset::Mvqa;

#[test]
fn parsed_query_graphs_mirror_the_structured_specs() {
    let mvqa = Mvqa::generate_small(800, 2718);
    let generator = QueryGraphGenerator::new();
    for (pair, spec) in mvqa.questions.iter().zip(&mvqa.specs) {
        if pair.adversarial {
            continue;
        }
        let gq = generator
            .generate(&pair.question)
            .unwrap_or_else(|e| panic!("{:?}: {e}", pair.question));
        assert_eq!(gq.len(), spec.chain.len(), "{:?}", pair.question);
        assert_eq!(gq.edges.len(), spec.links.len(), "{:?}", pair.question);
        // The answer slot agrees (judgment questions have no answer slot —
        // the yes/no comes from AP emptiness).
        if pair.qtype != svqa::qparser::QuestionType::Judgment {
            let parsed_side = gq.vertices[gq.answer_vertex()]
                .answer_role
                .unwrap_or(AnswerRole::Object);
            let expected = match spec.answer_side {
                Side::Sub => AnswerRole::Subject,
                Side::Obj => AnswerRole::Object,
            };
            assert_eq!(parsed_side, expected, "{:?}", pair.question);
        }
    }
}

#[test]
fn parsed_spocs_use_the_spec_vocabulary() {
    // Clause 0's subject/object heads should be recognizable forms of the
    // structured heads (lemma equality, or prefix for lemmatization
    // variants).
    let mvqa = Mvqa::generate_small(800, 2718);
    let generator = QueryGraphGenerator::new();
    let mut checked = 0;
    for (pair, spec) in mvqa.questions.iter().zip(&mvqa.specs) {
        if pair.adversarial {
            continue;
        }
        let Ok(gq) = generator.generate(&pair.question) else {
            continue;
        };
        let main = &gq.vertices[0];
        let spec_main = &spec.chain[0];
        for (parsed, structured) in [
            (&main.subject.head, &spec_main.sub),
            (&main.object.head, &spec_main.obj),
        ] {
            if structured.is_empty() || parsed.is_empty() {
                continue;
            }
            let p = parsed.as_str();
            let s = structured.as_str();
            assert!(
                p == s || p.starts_with(s) || s.starts_with(p),
                "vocabulary drift in {:?}: parsed {p:?} vs spec {s:?}",
                pair.question
            );
            checked += 1;
        }
    }
    assert!(checked > 100, "too few comparisons ran: {checked}");
}

#[test]
fn dataset_statistics_are_scale_invariant_in_shape() {
    let small = Mvqa::generate_small(400, 1).stats();
    let larger = Mvqa::generate_small(1200, 1).stats();
    // Question composition is fixed by Table II regardless of image count.
    assert_eq!(small.judgment.questions, larger.judgment.questions);
    assert_eq!(small.counting.questions, larger.counting.questions);
    assert_eq!(small.reasoning.questions, larger.reasoning.questions);
    assert_eq!(small.total_clauses, 219);
    assert_eq!(larger.total_clauses, 219);
    // Scan sets grow with the dataset.
    assert!(larger.judgment.avg_images > small.judgment.avg_images);
}

#[test]
fn ground_truth_reeval_is_stable() {
    // Re-evaluating the stored specs must reproduce the stored answers.
    let mvqa = Mvqa::generate_small(600, 99);
    let gt = svqa::dataset::GroundTruth::new(&mvqa.images, &mvqa.kg);
    for (pair, spec) in mvqa.questions.iter().zip(&mvqa.specs) {
        let again = gt.eval(&spec.chain, &spec.links, spec.qtype, spec.answer_side);
        assert_eq!(again, pair.answer, "{:?}", pair.question);
    }
}
