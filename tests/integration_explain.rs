//! End-to-end `EXPLAIN ANALYZE`: the CLI must render a plan tree with
//! candidate counts, cache classification and wall times, and the
//! `--trace-out` / `--profile-out` artifacts must be well-formed JSON
//! (the Chrome trace loadable by chrome://tracing, the profile
//! deserializable back into an `ExecutionProfile`).

use std::path::PathBuf;
use std::process::Command;

const QUESTION: &str = "Does the dog appear in the car?";

/// Build a small world once into a per-process temp dir, shared by all
/// the CLI invocations below.
fn world_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("svqa_explain_world_{}", std::process::id()));
    if !dir.join("merged.svqg").exists() {
        let status = Command::new(env!("CARGO_BIN_EXE_svqa-cli"))
            .args([
                "build",
                "--images",
                "60",
                "--seed",
                "11",
                "--out",
                dir.to_str().unwrap(),
            ])
            .status()
            .expect("svqa-cli runs");
        assert!(status.success(), "build failed: {status:?}");
    }
    dir
}

fn run_cli(args: &[&str]) -> String {
    let out = Command::new(env!("CARGO_BIN_EXE_svqa-cli"))
        .args(args)
        .output()
        .expect("svqa-cli runs");
    assert!(
        out.status.success(),
        "svqa-cli {args:?} failed: {}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

#[test]
fn explain_renders_the_plan_tree() {
    let world = world_dir();
    let text = run_cli(&["explain", "--world", world.to_str().unwrap(), QUESTION]);

    assert!(text.contains("EXPLAIN ANALYZE"), "{text}");
    assert!(text.contains(QUESTION), "{text}");
    assert!(text.contains("type: Judgment"), "{text}");
    assert!(text.contains("answer:"), "{text}");
    assert!(text.contains("plan (execution order:"), "{text}");
    // Per-quadruple details: slot provenance, cache classification, the
    // pruning funnel, and a wall time on every plan node.
    assert!(text.contains("sub:"), "{text}");
    assert!(text.contains("path cache:"), "{text}");
    assert!(text.contains("edges scanned:"), "{text}");
    assert!(text.contains("after predicate"), "{text}");
    assert!(text.contains("stage parse:"), "{text}");
}

#[test]
fn explain_json_is_a_machine_readable_profile() {
    let world = world_dir();
    let text = run_cli(&["explain", "--json", "--world", world.to_str().unwrap(), QUESTION]);
    let v: serde_json::Value = serde_json::from_str(&text).expect("valid JSON profile");

    assert_eq!(v["question"].as_str(), Some(QUESTION));
    assert_eq!(v["question_type"].as_str(), Some("Judgment"));
    assert!(v["total_ns"].as_u64().unwrap_or(0) > 0, "{v:?}");
    let quads = v["quads"].as_array().expect("quads array");
    assert!(!quads.is_empty());
    for q in quads {
        let t = &q["trace"];
        assert!(t["elapsed_ns"].as_u64().is_some(), "{q:?}");
        assert!(t["edges_scanned"].as_u64().is_some(), "{q:?}");
        assert!(t["path_cache"].as_str().is_some(), "{q:?}");
    }
    // The parse stage was prepended ahead of the match stage.
    let stages = v["stages"].as_array().expect("stages array");
    assert_eq!(stages[0]["stage"].as_str(), Some("parse"));
}

#[test]
fn ask_explain_writes_chrome_trace_and_profile_json() {
    let world = world_dir();
    let trace_path = world.join("trace.json");
    let profile_path = world.join("profile.json");
    let text = run_cli(&[
        "ask",
        "--world",
        world.to_str().unwrap(),
        "--explain",
        "--trace-out",
        trace_path.to_str().unwrap(),
        "--profile-out",
        profile_path.to_str().unwrap(),
        QUESTION,
    ]);
    // The boolean `--explain` must not swallow the question, and the
    // answer line precedes the plan tree.
    assert!(text.contains("answer:"), "{text}");
    assert!(text.contains("EXPLAIN ANALYZE"), "{text}");

    // Chrome trace-event checker: a JSON array of complete ("X") events
    // with microsecond ts/dur — the shape chrome://tracing and Perfetto
    // require.
    let trace: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&trace_path).unwrap())
            .expect("trace is valid JSON");
    let events = trace.as_array().expect("trace is a JSON array");
    assert!(!events.is_empty(), "trace has no events");
    for e in events {
        assert_eq!(e["ph"].as_str(), Some("X"), "{e:?}");
        assert!(e["ts"].as_f64().is_some(), "{e:?}");
        assert!(e["dur"].as_f64().is_some(), "{e:?}");
        assert!(e["pid"].as_u64().is_some(), "{e:?}");
        assert!(e["tid"].as_u64().is_some(), "{e:?}");
        assert!(e["name"].as_str().is_some(), "{e:?}");
    }
    // Both recorded stages made it into the trace.
    let names: Vec<&str> = events.iter().filter_map(|e| e["name"].as_str()).collect();
    assert!(names.contains(&"parse"), "{names:?}");
    assert!(names.contains(&"match"), "{names:?}");

    // Profile checker: parses and matches the question asked.
    let profile: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&profile_path).unwrap())
            .expect("profile is valid JSON");
    assert_eq!(profile["question"].as_str(), Some(QUESTION));
    assert!(profile["quads"].as_array().is_some_and(|q| !q.is_empty()));
}
