//! Cross-crate integration tests: the full Fig. 2 pipeline.

use svqa::executor::Answer;
use svqa::{evaluate_on_mvqa, Svqa, SvqaConfig, SvqaError};
use svqa_dataset::{GtAnswer, Mvqa};

fn world() -> (Svqa, Mvqa) {
    let mvqa = Mvqa::generate_small(500, 314);
    let system = Svqa::build(&mvqa.images, &mvqa.kg, SvqaConfig::default());
    (system, mvqa)
}

#[test]
fn merged_graph_is_well_formed_and_linked() {
    let (system, mvqa) = world();
    let g = system.merged_graph();
    g.validate().unwrap();
    // KG + scene vertices.
    assert!(g.vertex_count() > mvqa.kg.vertex_count());
    // Link edges exist.
    assert!(g.edge_label_counts().any(|(l, _)| l == "same as"));
    // Every scene vertex carries its image id.
    let stats = system.build_stats();
    assert_eq!(stats.scene_graphs, mvqa.images.len());
    assert!(stats.merge.links_created > 0);
}

#[test]
fn example1_pipeline_answers_a_garment() {
    // The paper's flagship question must produce a clothing category.
    let (system, _) = world();
    let answer = system
        .answer(
            "What kind of clothes are worn by the wizard who is most \
             frequently hanging out with Harry Potter's girlfriend?",
        )
        .expect("question executes");
    match answer {
        Answer::Entity { label, .. } => {
            assert!(
                label == "robe" || label == "hat",
                "expected a signature garment, got {label}"
            );
        }
        other => panic!("expected an entity answer, got {other:?}"),
    }
}

#[test]
fn all_mvqa_questions_execute_or_fail_as_parse_errors() {
    let (system, mvqa) = world();
    for q in &mvqa.questions {
        match system.answer(&q.question) {
            Ok(_) => {}
            // Adversarial rare-word questions may fail to parse (Fig. 8a);
            // nothing else is allowed to error.
            Err(SvqaError::Parse(_)) => {
                assert!(q.adversarial, "non-adversarial parse failure: {:?}", q.question)
            }
            Err(e) => panic!("unexpected error for {:?}: {e}", q.question),
        }
    }
}

#[test]
fn answer_types_match_question_types() {
    let (system, mvqa) = world();
    for q in &mvqa.questions {
        let Ok(answer) = system.answer(&q.question) else {
            continue;
        };
        match q.answer {
            GtAnswer::YesNo(_) => assert!(
                matches!(answer, Answer::Judgment(_)),
                "{:?} → {answer:?}",
                q.question
            ),
            GtAnswer::Count(_) => assert!(
                matches!(answer, Answer::Count(_)),
                "{:?} → {answer:?}",
                q.question
            ),
            GtAnswer::Entity(_) => assert!(
                matches!(answer, Answer::Entity { .. } | Answer::Unknown),
                "{:?} → {answer:?}",
                q.question
            ),
        }
    }
}

#[test]
fn end_to_end_accuracy_beats_chance_by_far() {
    let (system, mvqa) = world();
    let outcome = evaluate_on_mvqa(&system, &mvqa);
    assert!(
        outcome.overall > 0.7,
        "pipeline accuracy regressed: {outcome:?}"
    );
}

#[test]
fn batch_answers_match_single_answers() {
    let (system, mvqa) = world();
    let questions: Vec<&str> = mvqa
        .questions
        .iter()
        .take(20)
        .map(|q| q.question.as_str())
        .collect();
    let batch = system.answer_batch(&questions);
    for (q, batched) in questions.iter().zip(&batch.answers) {
        let single = system.answer(q);
        match (batched, single) {
            (Ok(a), Ok(b)) => assert_eq!(a, &b, "mismatch on {q:?}"),
            (Err(_), Err(_)) => {}
            (a, b) => panic!("divergent outcomes for {q:?}: {a:?} vs {b:?}"),
        }
    }
}

#[test]
fn pipeline_is_deterministic() {
    let mvqa = Mvqa::generate_small(300, 11);
    let s1 = Svqa::build(&mvqa.images, &mvqa.kg, SvqaConfig::default());
    let s2 = Svqa::build(&mvqa.images, &mvqa.kg, SvqaConfig::default());
    assert_eq!(
        s1.merged_graph().vertex_count(),
        s2.merged_graph().vertex_count()
    );
    assert_eq!(s1.merged_graph().edge_count(), s2.merged_graph().edge_count());
    for q in mvqa.questions.iter().take(10) {
        assert_eq!(
            s1.answer(&q.question).ok(),
            s2.answer(&q.question).ok(),
            "nondeterministic answer for {:?}",
            q.question
        );
    }
}

#[test]
fn tde_improves_end_to_end_accuracy() {
    // The Table V claim at pipeline level: TDE ≥ Original overall.
    let mvqa = Mvqa::generate_small(500, 314);
    let mut orig_cfg = SvqaConfig::default();
    orig_cfg.sgg.use_tde = false;
    let orig = Svqa::build(&mvqa.images, &mvqa.kg, orig_cfg);
    let tde = Svqa::build(&mvqa.images, &mvqa.kg, SvqaConfig::default());
    let orig_acc = evaluate_on_mvqa(&orig, &mvqa).overall;
    let tde_acc = evaluate_on_mvqa(&tde, &mvqa).overall;
    assert!(
        tde_acc >= orig_acc,
        "TDE {tde_acc} should not lose to Original {orig_acc}"
    );
}
