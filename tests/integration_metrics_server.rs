//! The live metrics endpoint over a real TCP connection: a built world
//! answers profiled questions, then `/metrics` must serve the registry in
//! Prometheus text exposition format and `/profiles/recent` the actual
//! profiles those questions produced.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use svqa::telemetry::{global, global_profiles, MetricsServer};
use svqa::{Svqa, SvqaConfig};
use svqa_dataset::Mvqa;

fn get(addr: SocketAddr, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("header/body separator");
    (head.to_owned(), body.to_owned())
}

#[test]
fn live_endpoint_serves_real_pipeline_data() {
    let mvqa = Mvqa::generate_small(60, 13);
    let system = Svqa::build(&mvqa.images, &mvqa.kg, SvqaConfig::default());
    let marker = "Does the dog appear in the car?";
    system.answer_profiled(marker, None).expect("profiled answer");
    for q in mvqa.questions.iter().take(4) {
        let _ = system.answer_profiled(&q.question, None);
    }

    // Bind port 0 (free port) on the same registry and ring the pipeline
    // writes to — exactly what `svqa-cli serve-metrics` wires up.
    let addr = MetricsServer::bind("127.0.0.1:0", global().clone(), global_profiles().clone())
        .expect("bind")
        .spawn()
        .expect("spawn");

    // /metrics: Prometheus 0.0.4 text with the pipeline's stage
    // histograms, counters, and cumulative buckets ending at +Inf.
    let (head, body) = get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");
    assert!(body.contains("# TYPE svqa_span_duration_seconds histogram"), "{body}");
    for stage in ["parse", "match"] {
        assert!(
            body.contains(&format!("svqa_span_duration_seconds_count{{stage=\"{stage}\"}}")),
            "missing {stage} histogram:\n{body}"
        );
    }
    assert!(body.contains("le=\"+Inf\""), "{body}");
    assert!(body.contains("svqa_questions_answered_total"), "{body}");
    assert!(body.contains("svqa_cache_hit_rate{pool=\"overall\"}"), "{body}");
    // Every non-comment line is `name{labels} value` with a float value —
    // the minimal parseability contract a scraper relies on.
    for line in body.lines().filter(|l| !l.starts_with('#') && !l.is_empty()) {
        let value = line.rsplit(' ').next().unwrap_or("");
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf",
            "unparseable sample line: {line}"
        );
    }

    // /profiles/recent: the ring holds the profiles just recorded,
    // including the marker question with its plan details.
    let (head, body) = get(addr, "/profiles/recent");
    assert!(head.contains("application/json"), "{head}");
    let v: serde_json::Value = serde_json::from_str(&body).expect("valid JSON");
    let profiles = v.as_array().expect("profiles array");
    assert!(!profiles.is_empty());
    let found = profiles
        .iter()
        .find(|p| p["question"].as_str() == Some(marker))
        .unwrap_or_else(|| panic!("marker profile missing from {body}"));
    assert!(found["total_ns"].as_u64().unwrap_or(0) > 0);
    assert!(found["quads"].as_array().is_some_and(|q| !q.is_empty()));

    // The serial accept loop keeps serving after the JSON routes.
    let (head, _) = get(addr, "/metrics.json");
    assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
}
